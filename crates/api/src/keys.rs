//! API key issuance and validation.

use std::collections::HashMap;

use parking_lot::RwLock;
use tvdp_storage::UserId;

/// Thread-safe API key table: opaque tokens mapped to users.
#[derive(Debug, Default)]
pub struct ApiKeyRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counter: u64,
    keys: HashMap<String, UserId>,
}

impl ApiKeyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a fresh key for `user`. Tokens are unguessable-looking but
    /// deterministic per process (a mixed counter hash), which keeps the
    /// platform reproducible.
    pub fn issue(&self, user: UserId) -> String {
        let mut inner = self.inner.write();
        inner.counter += 1;
        // SplitMix64 over the counter: well-distributed, stable.
        let mut z = inner.counter.wrapping_mul(0x9E3779B97F4A7C15) ^ (user.raw() << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let key = format!("tvdp_{z:016x}");
        inner.keys.insert(key.clone(), user);
        key
    }

    /// The user a key belongs to, if valid.
    pub fn validate(&self, key: &str) -> Option<UserId> {
        self.inner.read().keys.get(key).copied()
    }

    /// Revokes a key; returns whether it existed.
    pub fn revoke(&self, key: &str) -> bool {
        self.inner.write().keys.remove(key).is_some()
    }

    /// Number of active keys.
    pub fn len(&self) -> usize {
        self.inner.read().keys.len()
    }

    /// Whether no key is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_validate_revoke() {
        let reg = ApiKeyRegistry::new();
        let k1 = reg.issue(UserId(1));
        let k2 = reg.issue(UserId(2));
        assert_ne!(k1, k2);
        assert_eq!(reg.validate(&k1), Some(UserId(1)));
        assert_eq!(reg.validate(&k2), Some(UserId(2)));
        assert_eq!(reg.validate("tvdp_bogus"), None);
        assert!(reg.revoke(&k1));
        assert!(!reg.revoke(&k1));
        assert_eq!(reg.validate(&k1), None);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn keys_have_stable_format() {
        let reg = ApiKeyRegistry::new();
        let k = reg.issue(UserId(0));
        assert!(k.starts_with("tvdp_"));
        assert_eq!(k.len(), 5 + 16);
    }

    #[test]
    fn many_keys_for_one_user_all_valid() {
        let reg = ApiKeyRegistry::new();
        let keys: Vec<String> = (0..10).map(|_| reg.issue(UserId(3))).collect();
        for k in &keys {
            assert_eq!(reg.validate(k), Some(UserId(3)));
        }
        assert_eq!(reg.len(), 10);
    }
}
