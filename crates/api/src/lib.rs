//! REST-style API layer for the Translational Visual Data Platform.
//!
//! The paper (Section V) exposes TVDP through simple web-service APIs so
//! participants without deep programming experience can use the platform:
//! "Users can create API keys to use TVDP features." This crate provides
//! that surface as an in-process request router with JSON bodies — the
//! semantics of the HTTP layer without the transport (see DESIGN.md).
//!
//! The seven endpoint families the paper enumerates are all here:
//!
//! | paper API | endpoint |
//! |---|---|
//! | 1. Add new data | `data/add` |
//! | 2. Search datasets | `data/search` |
//! | 3. Download datasets | `data/download` |
//! | 4. Get visual features | `features/extract` |
//! | 5. Use machine learning models | `models/apply` |
//! | 6. Download machine learning models | `models/download` |
//! | 7. Devise new ML models | `models/devise`, `models/upload` |
//!
//! plus scheme registration (`schemes/register`), human annotation
//! (`annotations/add`), edge dispatch (`edge/dispatch`), and `stats`.
//!
//! Every request carries an API key ([`keys::ApiKeyRegistry`]); a token
//! bucket per key ([`limit::RateLimiter`]) throttles abusive clients.

pub mod keys;
pub mod limit;
pub mod router;

pub use keys::ApiKeyRegistry;
pub use limit::{RateLimitConfig, RateLimiter};
pub use router::{ApiRequest, ApiResponse, ApiServer};
