//! Per-key token-bucket rate limiting.
//!
//! Time is passed in explicitly (milliseconds) so tests and simulations
//! control the clock; a production transport would feed wall-clock time.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Bucket parameters.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Maximum burst size (bucket capacity), in requests.
    pub burst: u32,
    /// Sustained rate, requests per second.
    pub per_second: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        Self {
            burst: 20,
            per_second: 10.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_ms: i64,
}

/// A token bucket per API key.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// Creates a limiter.
    pub fn new(config: RateLimitConfig) -> Self {
        assert!(config.burst >= 1, "zero burst");
        assert!(config.per_second > 0.0, "non-positive rate");
        Self {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Attempts to take one token for `key` at time `now_ms`; `true`
    /// means the request may proceed.
    pub fn allow(&self, key: &str, now_ms: i64) -> bool {
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: f64::from(self.config.burst),
            last_ms: now_ms,
        });
        // Refill for elapsed time (clock may not go backwards per key).
        let elapsed_s = ((now_ms - bucket.last_ms).max(0)) as f64 / 1000.0;
        bucket.tokens =
            (bucket.tokens + elapsed_s * self.config.per_second).min(f64::from(self.config.burst));
        bucket.last_ms = bucket.last_ms.max(now_ms);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 3,
            per_second: 1.0,
        });
        assert!(limiter.allow("k", 0));
        assert!(limiter.allow("k", 0));
        assert!(limiter.allow("k", 0));
        assert!(!limiter.allow("k", 0), "burst exhausted");
    }

    #[test]
    fn refills_over_time() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 2.0,
        });
        assert!(limiter.allow("k", 0));
        assert!(!limiter.allow("k", 100));
        // 500 ms at 2/s refills one token.
        assert!(limiter.allow("k", 600));
    }

    #[test]
    fn keys_are_independent() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 0.001,
        });
        assert!(limiter.allow("a", 0));
        assert!(limiter.allow("b", 0));
        assert!(!limiter.allow("a", 1));
    }

    #[test]
    fn capacity_never_exceeded() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 2,
            per_second: 100.0,
        });
        assert!(limiter.allow("k", 0));
        // A long quiet period must not bank more than `burst` tokens.
        assert!(limiter.allow("k", 1_000_000));
        assert!(limiter.allow("k", 1_000_000));
        assert!(!limiter.allow("k", 1_000_000));
    }
}
