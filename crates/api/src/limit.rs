//! Per-key token-bucket rate limiting.
//!
//! Time is passed in explicitly (milliseconds) so tests and simulations
//! control the clock; a production transport would feed wall-clock time.
//!
//! The bucket table is bounded: an attacker cycling through fresh API
//! keys can no longer grow it without limit. At capacity the
//! least-recently-refilled bucket is evicted — the key that has gone
//! longest without traffic loses its (by then fully refilled) bucket,
//! so the state discarded is exactly the state that had converged back
//! to "no history".

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Bucket parameters.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Maximum burst size (bucket capacity), in requests.
    pub burst: u32,
    /// Sustained rate, requests per second.
    pub per_second: f64,
    /// Maximum distinct keys tracked at once; at capacity the
    /// least-recently-refilled bucket is evicted to admit a new key.
    pub max_keys: usize,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        Self {
            burst: 20,
            per_second: 10.0,
            max_keys: 4096,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_ms: i64,
}

/// A token bucket per API key, at most [`RateLimitConfig::max_keys`]
/// of them.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<BTreeMap<String, Bucket>>,
}

impl RateLimiter {
    /// Creates a limiter.
    pub fn new(config: RateLimitConfig) -> Self {
        assert!(config.burst >= 1, "zero burst");
        assert!(config.per_second > 0.0, "non-positive rate");
        assert!(config.max_keys >= 1, "zero key capacity");
        Self {
            config,
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Attempts to take one token for `key` at time `now_ms`; `true`
    /// means the request may proceed.
    pub fn allow(&self, key: &str, now_ms: i64) -> bool {
        self.check(key, now_ms).is_ok()
    }

    /// Attempts to take one token for `key` at time `now_ms`. On denial
    /// returns the number of milliseconds until the bucket will have
    /// refilled a whole token — the `retry_after_ms` hint a 429 response
    /// carries so well-behaved clients (the edge transport) can sleep
    /// exactly as long as needed instead of guessing with backoff.
    pub fn check(&self, key: &str, now_ms: i64) -> Result<(), u64> {
        let mut buckets = self.buckets.lock();
        if !buckets.contains_key(key) && buckets.len() >= self.config.max_keys {
            // Evict the bucket whose clock is stalest (ties broken by
            // key order, so eviction is deterministic). An evicted key
            // returning later starts over with a full burst — the cost
            // of bounding memory against unbounded key churn.
            let stalest = buckets
                .iter()
                .min_by_key(|(_, b)| b.last_ms)
                .map(|(k, _)| k.clone());
            if let Some(k) = stalest {
                buckets.remove(&k);
            }
        }
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: f64::from(self.config.burst),
            last_ms: now_ms,
        });
        // Refill for elapsed time (clock may not go backwards per key).
        let elapsed_s = ((now_ms - bucket.last_ms).max(0)) as f64 / 1000.0;
        bucket.tokens =
            (bucket.tokens + elapsed_s * self.config.per_second).min(f64::from(self.config.burst));
        bucket.last_ms = bucket.last_ms.max(now_ms);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            // Time for the deficit to refill at `per_second`, rounded up
            // so retrying exactly `retry_after_ms` later always succeeds
            // (absent competing traffic on the same key).
            let deficit = 1.0 - bucket.tokens;
            let ms = (deficit / self.config.per_second * 1000.0).ceil();
            Err(ms as u64)
        }
    }

    /// Number of keys currently tracked (bounded by `max_keys`).
    pub fn tracked_keys(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 3,
            per_second: 1.0,
            ..Default::default()
        });
        assert!(limiter.allow("k", 0));
        assert!(limiter.allow("k", 0));
        assert!(limiter.allow("k", 0));
        assert!(!limiter.allow("k", 0), "burst exhausted");
    }

    #[test]
    fn refills_over_time() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 2.0,
            ..Default::default()
        });
        assert!(limiter.allow("k", 0));
        assert!(!limiter.allow("k", 100));
        // 500 ms at 2/s refills one token.
        assert!(limiter.allow("k", 600));
    }

    #[test]
    fn keys_are_independent() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 0.001,
            ..Default::default()
        });
        assert!(limiter.allow("a", 0));
        assert!(limiter.allow("b", 0));
        assert!(!limiter.allow("a", 1));
    }

    #[test]
    fn capacity_never_exceeded() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 2,
            per_second: 100.0,
            ..Default::default()
        });
        assert!(limiter.allow("k", 0));
        // A long quiet period must not bank more than `burst` tokens.
        assert!(limiter.allow("k", 1_000_000));
        assert!(limiter.allow("k", 1_000_000));
        assert!(!limiter.allow("k", 1_000_000));
    }

    #[test]
    fn denial_reports_exact_refill_time() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 2.0, // one token per 500 ms
            ..Default::default()
        });
        assert_eq!(limiter.check("k", 0), Ok(()));
        // Empty bucket: a whole token is 500 ms away.
        assert_eq!(limiter.check("k", 0), Err(500));
        // 300 ms later 0.6 tokens have refilled; 0.4 remain = 200 ms.
        assert_eq!(limiter.check("k", 300), Err(200));
        // Waiting exactly the hinted time succeeds.
        assert_eq!(limiter.check("k", 500), Ok(()));
    }

    #[test]
    fn bucket_table_is_bounded() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 1.0,
            max_keys: 8,
        });
        // A key-churn attack: 10k distinct keys.
        for i in 0..10_000i64 {
            limiter.allow(&format!("attacker-{i}"), i);
        }
        assert!(limiter.tracked_keys() <= 8, "{}", limiter.tracked_keys());
    }

    #[test]
    fn eviction_drops_the_least_recently_refilled_key() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 0.001,
            max_keys: 2,
        });
        assert!(limiter.allow("old", 0));
        assert!(limiter.allow("warm", 1_000));
        // Admitting a third key evicts "old" (stalest clock), not "warm".
        assert!(limiter.allow("new", 2_000));
        assert_eq!(limiter.tracked_keys(), 2);
        // "warm" kept its drained bucket: still throttled.
        assert!(!limiter.allow("warm", 2_001));
        // "old" was forgotten: it returns with a fresh burst (evicting
        // the now-stalest "new" to make room).
        assert!(limiter.allow("old", 2_002));
    }
}
