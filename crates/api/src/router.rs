//! The endpoint router.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use tvdp_core::models::ModelInterface;
use tvdp_core::platform::Algorithm;
use tvdp_core::{PlatformError, Tvdp};
use tvdp_edge::{DeviceClass, DispatchConstraints};
use tvdp_geo::{Fov, GeoPoint};
use tvdp_ml::SerializableModel;
use tvdp_query::Query;
use tvdp_storage::{ClassificationId, ImageId, ModelId, UserId};
use tvdp_vision::{FeatureKind, Image};

use crate::keys::ApiKeyRegistry;
use crate::limit::{RateLimitConfig, RateLimiter};

/// An API request: key, endpoint path, JSON body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiRequest {
    /// The caller's API key.
    pub key: String,
    /// Endpoint path, e.g. `"data/search"`.
    pub endpoint: String,
    /// JSON body (endpoint-specific).
    pub body: Value,
}

/// An API response: HTTP-style status plus JSON body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiResponse {
    /// 200 on success; 4xx on caller errors; 429 when throttled.
    pub status: u16,
    /// Response body or `{ "error": ... }`.
    pub body: Value,
}

impl ApiResponse {
    fn ok(body: Value) -> Self {
        Self { status: 200, body }
    }

    fn err(status: u16, message: impl std::fmt::Display) -> Self {
        Self {
            status,
            body: json!({ "error": message.to_string() }),
        }
    }

    /// Whether the call succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == 200
    }
}

fn status_for(e: &PlatformError) -> u16 {
    match e {
        PlatformError::UnknownUser(_)
        | PlatformError::UnknownModel(_)
        | PlatformError::UnknownScheme(_)
        | PlatformError::UnknownImage(_) => 404,
        _ => 400,
    }
}

#[derive(Debug, Deserialize)]
struct FovBody {
    heading_deg: f64,
    angle_deg: f64,
    radius_m: f64,
}

#[derive(Debug, Deserialize)]
struct AddDataBody {
    width: usize,
    height: usize,
    /// Interleaved RGB bytes, length `width * height * 3`.
    pixels: Vec<u8>,
    lat: f64,
    lon: f64,
    fov: Option<FovBody>,
    captured_at: i64,
    uploaded_at: i64,
    #[serde(default)]
    keywords: Vec<String>,
}

#[derive(Debug, Deserialize)]
struct SearchBody {
    query: Query,
}

#[derive(Debug, Deserialize)]
struct DownloadBody {
    ids: Vec<u64>,
    #[serde(default)]
    include_pixels: bool,
}

#[derive(Debug, Deserialize)]
struct ExtractBody {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

#[derive(Debug, Deserialize)]
struct ApplyModelBody {
    model: u64,
    images: Vec<u64>,
}

#[derive(Debug, Deserialize)]
struct DownloadModelBody {
    model: u64,
    /// Include the serialized weights (edge deployment); metadata-only
    /// responses stay small.
    #[serde(default)]
    include_weights: bool,
}

#[derive(Debug, Deserialize)]
struct UploadModelBody {
    name: String,
    scheme: u64,
    feature_kind: FeatureKind,
    input_dim: usize,
    /// A serialized [`SerializableModel`].
    weights: Value,
}

#[derive(Debug, Deserialize)]
struct DeviseModelBody {
    name: String,
    scheme: u64,
    feature_kind: FeatureKind,
    algorithm: Algorithm,
}

#[derive(Debug, Deserialize)]
struct RegisterSchemeBody {
    name: String,
    labels: Vec<String>,
}

#[derive(Debug, Deserialize)]
struct AnnotateBody {
    image: u64,
    scheme: u64,
    label: usize,
}

#[derive(Debug, Deserialize)]
struct DispatchBody {
    device: String,
    max_latency_ms: f64,
    min_accuracy: Option<f64>,
    #[serde(default)]
    min_inferences_per_charge: Option<u64>,
}

/// The TVDP API server: routes authenticated, rate-limited requests to
/// platform operations.
pub struct ApiServer {
    platform: Arc<Tvdp>,
    keys: ApiKeyRegistry,
    limiter: RateLimiter,
}

impl ApiServer {
    /// Wraps a platform with the default rate limit.
    pub fn new(platform: Arc<Tvdp>) -> Self {
        Self::with_rate_limit(platform, RateLimitConfig::default())
    }

    /// Wraps a platform with an explicit rate limit.
    pub fn with_rate_limit(platform: Arc<Tvdp>, limit: RateLimitConfig) -> Self {
        Self {
            platform,
            keys: ApiKeyRegistry::new(),
            limiter: RateLimiter::new(limit),
        }
    }

    /// Issues an API key for a registered platform user.
    pub fn issue_key(&self, user: UserId) -> String {
        self.keys.issue(user)
    }

    /// Revokes a key.
    pub fn revoke_key(&self, key: &str) -> bool {
        self.keys.revoke(key)
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &Arc<Tvdp> {
        &self.platform
    }

    /// Handles one request at wall-clock `now_ms`.
    pub fn handle(&self, request: &ApiRequest, now_ms: i64) -> ApiResponse {
        let Some(user) = self.keys.validate(&request.key) else {
            return ApiResponse::err(401, "invalid API key");
        };
        if !self.limiter.allow(&request.key, now_ms) {
            return ApiResponse::err(429, "rate limit exceeded");
        }
        match request.endpoint.as_str() {
            "data/add" => self.add_data(user, &request.body),
            "data/search" => self.search(&request.body),
            "data/download" => self.download(&request.body),
            "features/extract" => self.extract(&request.body),
            "models/apply" => self.apply_model(&request.body),
            "models/download" => self.download_model(&request.body),
            "models/devise" => self.devise_model(user, &request.body),
            "models/upload" => self.upload_model(user, &request.body),
            "schemes/register" => self.register_scheme(&request.body),
            "annotations/add" => self.annotate(user, &request.body),
            "edge/dispatch" => self.dispatch(&request.body),
            "stats" => {
                let s = self.platform.stats();
                ApiResponse::ok(json!({
                    "images": s.images,
                    "annotations": s.annotations,
                    "models": s.models,
                    "users": s.users,
                }))
            }
            other => ApiResponse::err(404, format!("unknown endpoint {other}")),
        }
    }

    fn parse<T: serde::de::DeserializeOwned>(body: &Value) -> Result<T, ApiResponse> {
        serde_json::from_value(body.clone())
            .map_err(|e| ApiResponse::err(400, format!("bad request body: {e}")))
    }

    fn add_data(&self, user: UserId, body: &Value) -> ApiResponse {
        let b: AddDataBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        if b.pixels.len() != b.width * b.height * 3 {
            return ApiResponse::err(400, "pixel buffer size mismatch");
        }
        let Some(gps) = GeoPoint::try_new(b.lat, b.lon) else {
            return ApiResponse::err(400, "invalid coordinates");
        };
        let fov = b
            .fov
            .map(|f| Fov::new(gps, f.heading_deg, f.angle_deg, f.radius_m));
        let image = Image::from_raw(b.width, b.height, b.pixels);
        match self.platform.ingest(
            user,
            image,
            tvdp_core::IngestRequest {
                gps,
                fov,
                captured_at: b.captured_at,
                uploaded_at: b.uploaded_at,
                keywords: b.keywords,
            },
        ) {
            Ok(id) => ApiResponse::ok(json!({ "image": id.raw() })),
            Err(e) => ApiResponse::err(status_for(&e), e),
        }
    }

    fn search(&self, body: &Value) -> ApiResponse {
        let b: SearchBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let results = self.platform.search(&b.query);
        let rows: Vec<Value> = results
            .iter()
            .map(|r| json!({ "image": r.image.raw(), "score": r.score }))
            .collect();
        ApiResponse::ok(json!({ "count": rows.len(), "results": rows }))
    }

    fn download(&self, body: &Value) -> ApiResponse {
        let b: DownloadBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let mut rows = Vec::new();
        for raw in b.ids {
            let id = ImageId(raw);
            let Some(record) = self.platform.store().image(id) else {
                return ApiResponse::err(404, format!("unknown image img-{raw}"));
            };
            let mut row = json!({
                "image": raw,
                "lat": record.meta.gps.lat,
                "lon": record.meta.gps.lon,
                "captured_at": record.meta.captured_at,
                "uploaded_at": record.meta.uploaded_at,
                "keywords": record.meta.keywords,
                "augmented": record.is_augmented(),
                "width": record.width,
                "height": record.height,
            });
            if b.include_pixels {
                if let Some(img) = self.platform.store().pixels(id) {
                    row["pixels"] = json!(img.raw().to_vec());
                }
            }
            rows.push(row);
        }
        ApiResponse::ok(json!({ "items": rows }))
    }

    fn extract(&self, body: &Value) -> ApiResponse {
        let b: ExtractBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        if b.pixels.len() != b.width * b.height * 3 {
            return ApiResponse::err(400, "pixel buffer size mismatch");
        }
        let image = Image::from_raw(b.width, b.height, b.pixels);
        let features = self.platform.extract_features(&image);
        let rows: Vec<Value> = features
            .into_iter()
            .map(|(kind, v)| json!({ "kind": kind, "dim": v.len(), "vector": v }))
            .collect();
        ApiResponse::ok(json!({ "features": rows }))
    }

    fn apply_model(&self, body: &Value) -> ApiResponse {
        let b: ApplyModelBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let images: Vec<ImageId> = b.images.into_iter().map(ImageId).collect();
        match self.platform.apply_model(ModelId(b.model), &images) {
            Ok(results) => {
                let rows: Vec<Value> = results
                    .into_iter()
                    .map(|(img, label, conf)| {
                        json!({ "image": img.raw(), "label": label, "confidence": conf })
                    })
                    .collect();
                ApiResponse::ok(json!({ "predictions": rows }))
            }
            Err(e) => ApiResponse::err(status_for(&e), e),
        }
    }

    fn download_model(&self, body: &Value) -> ApiResponse {
        let b: DownloadModelBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let id = ModelId(b.model);
        let Some(interface) = self.platform.models().interface(id) else {
            return ApiResponse::err(404, format!("unknown model model-{}", b.model));
        };
        let Some((name, owner, algorithm)) = self.platform.models().describe(id) else {
            return ApiResponse::err(404, format!("unknown model model-{}", b.model));
        };
        let mut body = json!({
            "model": b.model,
            "name": name,
            "owner": owner.raw(),
            "algorithm": algorithm,
            "interface": {
                "feature_kind": interface.feature_kind,
                "input_dim": interface.input_dim,
                "scheme": interface.scheme.raw(),
            },
        });
        if b.include_weights {
            match self.platform.models().export(id) {
                Some(model) => match serde_json::to_value(&model) {
                    Ok(weights) => body["weights"] = weights,
                    Err(e) => return ApiResponse::err(500, format!("serialization: {e}")),
                },
                None => {
                    return ApiResponse::err(
                        409,
                        "model is a custom in-process classifier and cannot be downloaded",
                    )
                }
            }
        }
        ApiResponse::ok(body)
    }

    fn upload_model(&self, user: UserId, body: &Value) -> ApiResponse {
        let b: UploadModelBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let model: SerializableModel = match serde_json::from_value(b.weights) {
            Ok(m) => m,
            Err(e) => return ApiResponse::err(400, format!("bad model weights: {e}")),
        };
        let interface = ModelInterface {
            feature_kind: b.feature_kind,
            input_dim: b.input_dim,
            scheme: ClassificationId(b.scheme),
        };
        match self.platform.upload_model(user, b.name, interface, model) {
            Ok(id) => ApiResponse::ok(json!({ "model": id.raw() })),
            Err(e) => ApiResponse::err(status_for(&e), e),
        }
    }

    fn devise_model(&self, user: UserId, body: &Value) -> ApiResponse {
        let b: DeviseModelBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        match self.platform.train_model(
            user,
            b.name,
            ClassificationId(b.scheme),
            b.feature_kind,
            b.algorithm,
        ) {
            Ok(id) => ApiResponse::ok(json!({ "model": id.raw() })),
            Err(e) => ApiResponse::err(status_for(&e), e),
        }
    }

    fn register_scheme(&self, body: &Value) -> ApiResponse {
        let b: RegisterSchemeBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        match self.platform.register_scheme(b.name, b.labels) {
            Ok(id) => ApiResponse::ok(json!({ "scheme": id.raw() })),
            Err(e) => ApiResponse::err(status_for(&e), e),
        }
    }

    fn annotate(&self, user: UserId, body: &Value) -> ApiResponse {
        let b: AnnotateBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        match self.platform.annotate_human(
            user,
            ImageId(b.image),
            ClassificationId(b.scheme),
            b.label,
        ) {
            Ok(id) => ApiResponse::ok(json!({ "annotation": id.raw() })),
            Err(e) => ApiResponse::err(status_for(&e), e),
        }
    }

    fn dispatch(&self, body: &Value) -> ApiResponse {
        let b: DispatchBody = match Self::parse(body) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let device = match b.device.to_lowercase().as_str() {
            "desktop" => DeviceClass::Desktop,
            "smartphone" | "phone" => DeviceClass::Smartphone,
            "rpi" | "raspberrypi" | "raspberry_pi" => DeviceClass::RaspberryPi,
            other => return ApiResponse::err(400, format!("unknown device {other}")),
        };
        let constraints = DispatchConstraints {
            max_latency_ms: b.max_latency_ms,
            min_accuracy: b.min_accuracy,
            min_inferences_per_charge: b.min_inferences_per_charge,
        };
        match self
            .platform
            .dispatch_to_device(&device.profile(), &constraints)
        {
            Some(model) => ApiResponse::ok(json!({
                "model": model.name,
                "mflops": model.mflops,
                "download_bytes": model.download_bytes(),
                "accuracy": model.accuracy,
            })),
            None => ApiResponse::err(409, "no model satisfies the constraints"),
        }
    }
}
