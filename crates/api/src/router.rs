//! The endpoint router.
//!
//! Requests carry their JSON body as a *string* and responses carry a
//! parsed [`Value`] tree — both sides of the wire format go through the
//! workspace's own codec ([`tvdp_storage::codec`]), so the API layer
//! runs without any external JSON machinery. The one exception is model
//! weights (`models/upload`, `models/download` with `include_weights`),
//! which still ride the serde exchange format of
//! [`tvdp_ml::SerializableModel`].
//!
//! Mutating uploads may attach an [`ApiRequest::idempotency_key`]: the
//! platform stores the first outcome per key and replays it verbatim on
//! retransmission, which is what makes at-least-once edge transports
//! (see `tvdp-edge`) safe — acked once means ingested exactly once.

use std::sync::Arc;

use tvdp_core::models::ModelInterface;
use tvdp_core::platform::Algorithm;
use tvdp_core::{
    AdmissionConfig, AdmissionController, IngestRequest, PlatformError, RequestClass, Tvdp,
};
use tvdp_edge::{DeviceClass, DispatchConstraints};
use tvdp_geo::{AngularRange, Fov, GeoPoint, GeoPolygon};
use tvdp_ml::SerializableModel;
use tvdp_query::{Query, QueryError, SpatialQuery, TemporalField, TextualMode, VisualMode};
use tvdp_storage::codec::{self, Value};
use tvdp_storage::{ClassificationId, ImageId, ModelId, UserId};
use tvdp_vision::Image;

use crate::keys::ApiKeyRegistry;
use crate::limit::{RateLimitConfig, RateLimiter};

/// An API request: key, endpoint path, JSON body text, and an optional
/// idempotency key for mutating endpoints.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// The caller's API key.
    pub key: String,
    /// Endpoint path, e.g. `"data/search"`.
    pub endpoint: String,
    /// JSON body text (endpoint-specific); an empty string is treated
    /// as `{}`.
    pub body: String,
    /// When set on `data/add`, retransmissions carrying the same key
    /// are deduplicated server-side and answered with the original
    /// response, byte for byte.
    pub idempotency_key: Option<String>,
    /// Optional absolute virtual-clock deadline. When set on
    /// `data/search`, the sharded engine charges a modeled cost clock
    /// as it walks scatter units and abandons the query with status 504
    /// the moment the clock passes the deadline — same decision on
    /// every pool width.
    pub deadline_ms: Option<i64>,
}

impl ApiRequest {
    /// Convenience constructor for a request without an idempotency
    /// key or deadline.
    pub fn new(
        key: impl Into<String>,
        endpoint: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        Self {
            key: key.into(),
            endpoint: endpoint.into(),
            body: body.into(),
            idempotency_key: None,
            deadline_ms: None,
        }
    }

    /// Attaches an absolute virtual-clock deadline.
    pub fn with_deadline(mut self, deadline_ms: i64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// An API response: HTTP-style status plus parsed JSON body.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// 200 on success; 4xx on caller errors; 429 when throttled.
    pub status: u16,
    /// Response body or `{ "error": ... }`.
    pub body: Value,
}

impl ApiResponse {
    fn ok(body: Value) -> Self {
        Self { status: 200, body }
    }

    fn err(status: u16, message: impl std::fmt::Display) -> Self {
        Self {
            status,
            body: obj(vec![("error", Value::str(message.to_string()))]),
        }
    }

    /// Whether the call succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == 200
    }

    /// The response body rendered to compact JSON — the exact bytes a
    /// wire transport would carry.
    pub fn render_body(&self) -> String {
        self.body.render()
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn status_for(e: &PlatformError) -> u16 {
    match e {
        PlatformError::UnknownUser(_)
        | PlatformError::UnknownModel(_)
        | PlatformError::UnknownScheme(_)
        | PlatformError::UnknownImage(_) => 404,
        // Shed by admission control: the server is fine, just full.
        PlatformError::Overloaded { .. } => 503,
        // The durable layer is degraded (e.g. read-only after a write
        // fault); the request was well-formed but the service cannot
        // take it right now.
        PlatformError::Durable(_) => 503,
        // The modeled cost clock passed the caller's deadline.
        PlatformError::Query(QueryError::DeadlineExceeded { .. }) => 504,
        _ => 400,
    }
}

/// Renders a platform error as the response body, attaching the
/// machine-readable retry hint for shed requests so clients back off by
/// exactly the modeled backlog instead of guessing.
fn error_response(e: &PlatformError) -> ApiResponse {
    let status = status_for(e);
    let mut fields = vec![("error", Value::str(e.to_string()))];
    if let PlatformError::Overloaded { retry_after_ms } = e {
        fields.push(("retry_after_ms", Value::num(*retry_after_ms)));
    }
    ApiResponse {
        status,
        body: obj(fields),
    }
}

// ---------------------------------------------------------------------
// Body decoding: hand-written mirrors of the serde shapes the wire
// format used historically (externally tagged enums, field-for-field
// structs), so existing client payloads keep working unchanged.
// ---------------------------------------------------------------------

type ParseError = String;

/// An optional object field: absent or `null` both mean `None`.
fn opt_field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    v.get(name).filter(|f| !f.is_null())
}

/// Pixel payloads arrive either as a JSON byte array (legacy clients)
/// or as a lowercase hex string (half the size; what the edge transport
/// sends).
fn decode_pixels(v: &Value) -> Result<Vec<u8>, ParseError> {
    match v {
        Value::Str(hex) => codec::hex_decode(hex),
        Value::Arr(items) => items.iter().map(|b| codec::num(b, "pixels")).collect(),
        _ => Err("pixels: expected a hex string or a byte array".into()),
    }
}

fn decode_strings(items: &[Value], what: &str) -> Result<Vec<String>, ParseError> {
    items
        .iter()
        .map(|s| match s {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!("{what}: expected strings")),
        })
        .collect()
}

fn decode_ids(items: &[Value], what: &str) -> Result<Vec<u64>, ParseError> {
    items.iter().map(|v| codec::num(v, what)).collect()
}

fn decode_fov_body(v: &Value, gps: GeoPoint) -> Result<Fov, ParseError> {
    Ok(Fov::new(
        gps,
        codec::num_field(v, "heading_deg")?,
        codec::num_field(v, "angle_deg")?,
        codec::num_field(v, "radius_m")?,
    ))
}

/// Decodes one upload object (the `data/add` body shape) into the
/// image and ingest request it describes. Shared by `data/add` and
/// every element of `data/add_batch`.
fn decode_upload(body: &Value) -> Result<(Image, IngestRequest), String> {
    let parsed = (|| -> Result<_, ParseError> {
        let width: usize = codec::num_field(body, "width")?;
        let height: usize = codec::num_field(body, "height")?;
        let pixels = decode_pixels(codec::field(body, "pixels")?)?;
        let lat: f64 = codec::num_field(body, "lat")?;
        let lon: f64 = codec::num_field(body, "lon")?;
        let captured_at: i64 = codec::num_field(body, "captured_at")?;
        let uploaded_at: i64 = codec::num_field(body, "uploaded_at")?;
        let keywords = match opt_field(body, "keywords") {
            Some(Value::Arr(items)) => decode_strings(items, "keywords")?,
            Some(_) => return Err("keywords: expected an array".into()),
            None => Vec::new(),
        };
        Ok((
            width,
            height,
            pixels,
            lat,
            lon,
            captured_at,
            uploaded_at,
            keywords,
        ))
    })();
    let (width, height, pixels, lat, lon, captured_at, uploaded_at, keywords) =
        parsed.map_err(|e| format!("bad request body: {e}"))?;
    if pixels.len() != width * height * 3 {
        return Err("pixel buffer size mismatch".into());
    }
    let gps = GeoPoint::try_new(lat, lon).ok_or_else(|| "invalid coordinates".to_string())?;
    let fov = match opt_field(body, "fov") {
        Some(f) => Some(decode_fov_body(f, gps).map_err(|e| format!("bad request body: {e}"))?),
        None => None,
    };
    Ok((
        Image::from_raw(width, height, pixels),
        IngestRequest {
            gps,
            fov,
            captured_at,
            uploaded_at,
            keywords,
        },
    ))
}

fn decode_visual_mode(v: &Value) -> Result<VisualMode, ParseError> {
    if let Some(k) = v.get("TopK") {
        Ok(VisualMode::TopK(codec::num(k, "TopK")?))
    } else if let Some(t) = v.get("Threshold") {
        Ok(VisualMode::Threshold(codec::num(t, "Threshold")?))
    } else {
        Err("visual mode: expected `TopK` or `Threshold`".into())
    }
}

fn decode_textual_mode(v: &Value) -> Result<TextualMode, ParseError> {
    match v {
        Value::Str(s) if s == "All" => Ok(TextualMode::All),
        Value::Str(s) if s == "Any" => Ok(TextualMode::Any),
        _ => {
            if let Some(k) = v.get("Ranked") {
                Ok(TextualMode::Ranked(codec::num(k, "Ranked")?))
            } else {
                Err("textual mode: expected `All`, `Any`, or `Ranked`".into())
            }
        }
    }
}

fn decode_temporal_field(v: &Value) -> Result<TemporalField, ParseError> {
    match v {
        Value::Str(s) if s == "Captured" => Ok(TemporalField::Captured),
        Value::Str(s) if s == "Uploaded" => Ok(TemporalField::Uploaded),
        _ => Err("temporal field: expected `Captured` or `Uploaded`".into()),
    }
}

fn decode_spatial(v: &Value) -> Result<SpatialQuery, ParseError> {
    if let Some(b) = v.get("Range") {
        Ok(SpatialQuery::Range(codec::decode_bbox(b)?))
    } else if let Some(n) = v.get("Nearest") {
        Ok(SpatialQuery::Nearest {
            point: codec::decode_point(codec::field(n, "point")?)?,
            k: codec::num_field(n, "k")?,
        })
    } else if let Some(p) = v.get("Covering") {
        Ok(SpatialQuery::Covering(codec::decode_point(p)?))
    } else if let Some(w) = v.get("Within") {
        let vertices = codec::arr_field(w, "vertices")?
            .iter()
            .map(codec::decode_point)
            .collect::<Result<Vec<_>, _>>()?;
        if vertices.len() < 3 {
            return Err("Within: a polygon needs at least three vertices".into());
        }
        Ok(SpatialQuery::Within(GeoPolygon::new(vertices)))
    } else if let Some(d) = v.get("Directed") {
        let dirs = codec::field(d, "directions")?;
        Ok(SpatialQuery::Directed {
            region: codec::decode_bbox(codec::field(d, "region")?)?,
            directions: AngularRange::new(
                codec::num_field(dirs, "start")?,
                codec::num_field(dirs, "width")?,
            ),
        })
    } else {
        Err(
            "spatial query: expected `Range`, `Nearest`, `Covering`, `Within`, or `Directed`"
                .into(),
        )
    }
}

fn decode_query(v: &Value) -> Result<Query, ParseError> {
    if let Some(s) = v.get("Spatial") {
        Ok(Query::Spatial(decode_spatial(s)?))
    } else if let Some(o) = v.get("Visual") {
        Ok(Query::Visual {
            example: codec::decode_vector(codec::field(o, "example")?)?,
            kind: codec::decode_kind(codec::field(o, "kind")?)?,
            mode: decode_visual_mode(codec::field(o, "mode")?)?,
        })
    } else if let Some(o) = v.get("Categorical") {
        Ok(Query::Categorical {
            scheme: ClassificationId(codec::num_field(o, "scheme")?),
            label: codec::num_field(o, "label")?,
            min_confidence: codec::num_field(o, "min_confidence")?,
        })
    } else if let Some(o) = v.get("Textual") {
        Ok(Query::Textual {
            text: codec::str_field(o, "text")?.to_string(),
            mode: decode_textual_mode(codec::field(o, "mode")?)?,
        })
    } else if let Some(o) = v.get("Temporal") {
        Ok(Query::Temporal {
            field: decode_temporal_field(codec::field(o, "field")?)?,
            from: codec::num_field(o, "from")?,
            to: codec::num_field(o, "to")?,
        })
    } else if let Some(subs) = v.get("And") {
        Ok(Query::And(decode_queries(subs)?))
    } else if let Some(subs) = v.get("Or") {
        Ok(Query::Or(decode_queries(subs)?))
    } else {
        Err(
            "query: expected one of `Spatial`, `Visual`, `Categorical`, `Textual`, `Temporal`, \
             `And`, `Or`"
                .into(),
        )
    }
}

fn decode_queries(v: &Value) -> Result<Vec<Query>, ParseError> {
    match v {
        Value::Arr(items) => items.iter().map(decode_query).collect(),
        _ => Err("And/Or: expected an array of sub-queries".into()),
    }
}

fn decode_algorithm(v: &Value) -> Result<Algorithm, ParseError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "DecisionTree" => Ok(Algorithm::DecisionTree),
            "NaiveBayes" => Ok(Algorithm::NaiveBayes),
            "Svm" => Ok(Algorithm::Svm),
            "LogisticRegression" => Ok(Algorithm::LogisticRegression),
            "Mlp" => Ok(Algorithm::Mlp),
            other => Err(format!("unknown algorithm `{other}`")),
        },
        _ => {
            if let Some(k) = v.get("Knn") {
                Ok(Algorithm::Knn(codec::num(k, "Knn")?))
            } else if let Some(n) = v.get("RandomForest") {
                Ok(Algorithm::RandomForest(codec::num(n, "RandomForest")?))
            } else {
                Err("algorithm: expected a name or `Knn`/`RandomForest`".into())
            }
        }
    }
}

/// The TVDP API server: routes authenticated, rate-limited requests to
/// platform operations.
pub struct ApiServer {
    platform: Arc<Tvdp>,
    keys: ApiKeyRegistry,
    limiter: RateLimiter,
    admission: Option<AdmissionController>,
}

impl ApiServer {
    /// Wraps a platform with the default rate limit and no admission
    /// control.
    pub fn new(platform: Arc<Tvdp>) -> Self {
        Self::with_rate_limit(platform, RateLimitConfig::default())
    }

    /// Wraps a platform with an explicit rate limit and no admission
    /// control.
    pub fn with_rate_limit(platform: Arc<Tvdp>, limit: RateLimitConfig) -> Self {
        Self {
            platform,
            keys: ApiKeyRegistry::new(),
            limiter: RateLimiter::new(limit),
            admission: None,
        }
    }

    /// Wraps a platform with admission control: every priced endpoint
    /// (ingest, search, dispatch) asks the controller before doing
    /// work, and shed requests are answered 503 with `retry_after_ms`.
    pub fn with_admission(
        platform: Arc<Tvdp>,
        limit: RateLimitConfig,
        admission: AdmissionConfig,
    ) -> Self {
        Self {
            platform,
            keys: ApiKeyRegistry::new(),
            limiter: RateLimiter::new(limit),
            admission: Some(AdmissionController::new(admission)),
        }
    }

    /// The admission controller, when configured.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Asks the admission controller (when configured) to price and
    /// admit `cost_units` of `class` work. `Err` carries the finished
    /// 503 response.
    fn admit(&self, class: RequestClass, cost_units: u64, now_ms: i64) -> Result<(), ApiResponse> {
        let Some(ctl) = &self.admission else {
            return Ok(());
        };
        match ctl.admit(class, cost_units, now_ms) {
            Ok(_ticket) => Ok(()),
            Err(e) => Err(error_response(&e)),
        }
    }

    /// Issues an API key for a registered platform user.
    pub fn issue_key(&self, user: UserId) -> String {
        self.keys.issue(user)
    }

    /// Revokes a key.
    pub fn revoke_key(&self, key: &str) -> bool {
        self.keys.revoke(key)
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &Arc<Tvdp> {
        &self.platform
    }

    /// Handles one request at wall-clock `now_ms`.
    ///
    /// Throttled requests are answered with status 429 and a body that
    /// carries `retry_after_ms`, computed from the caller's token
    /// bucket: retrying after exactly that long succeeds (absent
    /// competing traffic on the same key). The edge transport honours
    /// the hint instead of blind exponential backoff.
    pub fn handle(&self, request: &ApiRequest, now_ms: i64) -> ApiResponse {
        let Some(user) = self.keys.validate(&request.key) else {
            return ApiResponse::err(401, "invalid API key");
        };
        if let Err(retry_after_ms) = self.limiter.check(&request.key, now_ms) {
            return ApiResponse {
                status: 429,
                body: obj(vec![
                    ("error", Value::str("rate limit exceeded")),
                    ("retry_after_ms", Value::num(retry_after_ms)),
                ]),
            };
        }
        let body = if request.body.trim().is_empty() {
            Value::Obj(Vec::new())
        } else {
            match codec::parse(&request.body) {
                Ok(v) => v,
                Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
            }
        };
        match request.endpoint.as_str() {
            "data/add" => self.add_data(user, &body, request.idempotency_key.as_deref(), now_ms),
            "data/add_batch" => self.add_data_batch(user, &body, now_ms),
            "data/search" => self.search(&body, now_ms, request.deadline_ms),
            "data/download" => self.download(&body),
            "features/extract" => self.extract(&body),
            "models/apply" => self.apply_model(&body),
            "models/download" => self.download_model(&body),
            "models/devise" => self.devise_model(user, &body),
            "models/upload" => self.upload_model(user, &body),
            "schemes/register" => self.register_scheme(&body),
            "annotations/add" => self.annotate(user, &body),
            "edge/dispatch" => self.dispatch(&body, now_ms),
            "health" => self.health(now_ms),
            "stats" => {
                let s = self.platform.stats();
                ApiResponse::ok(obj(vec![
                    ("images", Value::num(s.images)),
                    ("annotations", Value::num(s.annotations)),
                    ("models", Value::num(s.models)),
                    ("users", Value::num(s.users)),
                    ("quant_code_bytes", Value::num(s.quant_code_bytes)),
                ]))
            }
            other => ApiResponse::err(404, format!("unknown endpoint {other}")),
        }
    }

    /// Modeled admission cost of one upload, in work units. Roughly
    /// the feature-extraction plus index-insert work relative to one
    /// scanned query row.
    const INGEST_UNITS_PER_IMAGE: u64 = 8;

    fn add_data(
        &self,
        user: UserId,
        body: &Value,
        idempotency_key: Option<&str>,
        now_ms: i64,
    ) -> ApiResponse {
        let (image, request) = match decode_upload(body) {
            Ok(u) => u,
            Err(e) => return ApiResponse::err(400, e),
        };
        if let Err(shed) = self.admit(RequestClass::Ingest, Self::INGEST_UNITS_PER_IMAGE, now_ms) {
            return shed;
        }
        let outcome = match idempotency_key {
            Some(key) => self
                .platform
                .ingest_idempotent(user, image, request, key)
                .map(|(id, _replayed)| id),
            None => self.platform.ingest(user, image, request),
        };
        match outcome {
            Ok(id) => ApiResponse::ok(obj(vec![("image", Value::num(id.raw()))])),
            Err(e) => error_response(&e),
        }
    }

    /// `data/add_batch`: bulk upload, the API face of the platform's
    /// group-commit ingest. Body: `{"uploads": [<data/add body>...]}`,
    /// where each element may carry its own `"idempotency_key"` —
    /// either every element has one (the batch is journaled as
    /// composite idempotent records) or none does. A shard's whole
    /// group rides one WAL fsync instead of one per op.
    fn add_data_batch(&self, user: UserId, body: &Value, now_ms: i64) -> ApiResponse {
        let uploads = match codec::arr_field(body, "uploads") {
            Ok(items) => items,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        let mut keyed = Vec::with_capacity(uploads.len());
        let mut keys_seen = 0usize;
        for (i, item) in uploads.iter().enumerate() {
            let (image, request) = match decode_upload(item) {
                Ok(u) => u,
                Err(e) => return ApiResponse::err(400, format!("uploads[{i}]: {e}")),
            };
            let key = match opt_field(item, "idempotency_key") {
                Some(Value::Str(k)) => {
                    keys_seen += 1;
                    Some(k.clone())
                }
                Some(_) => {
                    return ApiResponse::err(
                        400,
                        format!("uploads[{i}]: idempotency_key: expected a string"),
                    )
                }
                None => None,
            };
            keyed.push((image, request, key));
        }
        if keys_seen != 0 && keys_seen != keyed.len() {
            return ApiResponse::err(
                400,
                "either every upload carries an idempotency_key or none does",
            );
        }
        let batch_units = Self::INGEST_UNITS_PER_IMAGE * keyed.len().max(1) as u64;
        if let Err(shed) = self.admit(RequestClass::Ingest, batch_units, now_ms) {
            return shed;
        }
        let threads = keyed.len().clamp(1, 8);
        let outcome = if keys_seen == 0 {
            self.platform
                .ingest_batch(
                    user,
                    keyed.into_iter().map(|(im, rq, _)| (im, rq)).collect(),
                    threads,
                )
                .map(|ids| ids.into_iter().map(|id| (id, false)).collect::<Vec<_>>())
        } else {
            self.platform.ingest_idempotent_batch(
                user,
                keyed
                    .into_iter()
                    .map(|(im, rq, k)| (im, rq, k.unwrap_or_default()))
                    .collect(),
                threads,
            )
        };
        match outcome {
            Ok(rows) => ApiResponse::ok(obj(vec![
                ("count", Value::num(rows.len())),
                (
                    "images",
                    Value::Arr(rows.iter().map(|(id, _)| Value::num(id.raw())).collect()),
                ),
                (
                    "replayed",
                    Value::Arr(rows.iter().map(|&(_, r)| Value::Bool(r)).collect()),
                ),
            ])),
            Err(e) => error_response(&e),
        }
    }

    fn search(&self, body: &Value, now_ms: i64, deadline_ms: Option<i64>) -> ApiResponse {
        let query = match codec::field(body, "query").and_then(decode_query) {
            Ok(q) => q,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        // Priced from the planner's cardinality estimates: an expensive
        // query costs more admission budget than a point lookup.
        let cost = self.platform.estimate_query_cost(&query);
        if let Err(shed) = self.admit(RequestClass::Query, cost, now_ms) {
            return shed;
        }
        let outcome = match deadline_ms {
            Some(dl) => self.platform.search_with_deadline(&query, now_ms, dl),
            None => self.platform.search(&query),
        };
        let results = match outcome {
            Ok(r) => r,
            Err(e) => return error_response(&e),
        };
        let rows: Vec<Value> = results
            .iter()
            .map(|r| {
                obj(vec![
                    ("image", Value::num(r.image.raw())),
                    ("score", Value::num(r.score)),
                ])
            })
            .collect();
        ApiResponse::ok(obj(vec![
            ("count", Value::num(rows.len())),
            ("results", Value::Arr(rows)),
        ]))
    }

    fn download(&self, body: &Value) -> ApiResponse {
        let ids = match codec::arr_field(body, "ids").and_then(|items| decode_ids(items, "ids")) {
            Ok(ids) => ids,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        let include_pixels = opt_field(body, "include_pixels")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let mut rows = Vec::new();
        for raw in ids {
            let id = ImageId(raw);
            let Some(record) = self.platform.store().image(id) else {
                return ApiResponse::err(404, format!("unknown image img-{raw}"));
            };
            let mut fields = vec![
                ("image", Value::num(raw)),
                ("lat", Value::num(record.meta.gps.lat)),
                ("lon", Value::num(record.meta.gps.lon)),
                ("captured_at", Value::num(record.meta.captured_at)),
                ("uploaded_at", Value::num(record.meta.uploaded_at)),
                (
                    "keywords",
                    Value::Arr(
                        record
                            .meta
                            .keywords
                            .iter()
                            .map(|k| Value::str(k.clone()))
                            .collect(),
                    ),
                ),
                ("augmented", Value::Bool(record.is_augmented())),
                ("width", Value::num(record.width)),
                ("height", Value::num(record.height)),
            ];
            if include_pixels {
                if let Some(img) = self.platform.store().pixels(id) {
                    fields.push(("pixels", Value::str(codec::hex_encode(img.raw()))));
                }
            }
            rows.push(obj(fields));
        }
        ApiResponse::ok(obj(vec![("items", Value::Arr(rows))]))
    }

    fn extract(&self, body: &Value) -> ApiResponse {
        let parsed = (|| -> Result<_, ParseError> {
            let width: usize = codec::num_field(body, "width")?;
            let height: usize = codec::num_field(body, "height")?;
            let pixels = decode_pixels(codec::field(body, "pixels")?)?;
            Ok((width, height, pixels))
        })();
        let (width, height, pixels) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        if pixels.len() != width * height * 3 {
            return ApiResponse::err(400, "pixel buffer size mismatch");
        }
        let image = Image::from_raw(width, height, pixels);
        let features = self.platform.extract_features(&image);
        let rows: Vec<Value> = features
            .into_iter()
            .map(|(kind, v)| {
                obj(vec![
                    ("kind", codec::encode_kind(kind)),
                    ("dim", Value::num(v.len())),
                    ("vector", codec::encode_vector(&v)),
                ])
            })
            .collect();
        ApiResponse::ok(obj(vec![("features", Value::Arr(rows))]))
    }

    fn apply_model(&self, body: &Value) -> ApiResponse {
        let parsed = (|| -> Result<_, ParseError> {
            let model: u64 = codec::num_field(body, "model")?;
            let images = decode_ids(codec::arr_field(body, "images")?, "images")?;
            Ok((model, images))
        })();
        let (model, images) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        let images: Vec<ImageId> = images.into_iter().map(ImageId).collect();
        match self.platform.apply_model(ModelId(model), &images) {
            Ok(results) => {
                let rows: Vec<Value> = results
                    .into_iter()
                    .map(|(img, label, conf)| {
                        obj(vec![
                            ("image", Value::num(img.raw())),
                            ("label", Value::num(label)),
                            ("confidence", Value::num(conf)),
                        ])
                    })
                    .collect();
                ApiResponse::ok(obj(vec![("predictions", Value::Arr(rows))]))
            }
            Err(e) => error_response(&e),
        }
    }

    fn download_model(&self, body: &Value) -> ApiResponse {
        let model: u64 = match codec::num_field(body, "model") {
            Ok(m) => m,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        let include_weights = opt_field(body, "include_weights")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let id = ModelId(model);
        let Some(interface) = self.platform.models().interface(id) else {
            return ApiResponse::err(404, format!("unknown model model-{model}"));
        };
        let Some((name, owner, algorithm)) = self.platform.models().describe(id) else {
            return ApiResponse::err(404, format!("unknown model model-{model}"));
        };
        let mut fields = vec![
            ("model", Value::num(model)),
            ("name", Value::str(name)),
            ("owner", Value::num(owner.raw())),
            ("algorithm", Value::str(algorithm)),
            (
                "interface",
                obj(vec![
                    ("feature_kind", codec::encode_kind(interface.feature_kind)),
                    ("input_dim", Value::num(interface.input_dim)),
                    ("scheme", Value::num(interface.scheme.raw())),
                ]),
            ),
        ];
        if include_weights {
            match self.platform.models().export(id) {
                // Weights still ride the serde exchange format; the
                // rendered text is re-parsed into the response tree.
                Some(model) => match serde_json::to_string(&model) {
                    Ok(text) => match codec::parse(&text) {
                        Ok(weights) => fields.push(("weights", weights)),
                        Err(e) => return ApiResponse::err(500, format!("serialization: {e}")),
                    },
                    Err(e) => return ApiResponse::err(500, format!("serialization: {e}")),
                },
                None => {
                    return ApiResponse::err(
                        409,
                        "model is a custom in-process classifier and cannot be downloaded",
                    )
                }
            }
        }
        ApiResponse::ok(obj(fields))
    }

    fn upload_model(&self, user: UserId, body: &Value) -> ApiResponse {
        let parsed = (|| -> Result<_, ParseError> {
            let name = codec::str_field(body, "name")?.to_string();
            let scheme: u64 = codec::num_field(body, "scheme")?;
            let feature_kind = codec::decode_kind(codec::field(body, "feature_kind")?)?;
            let input_dim: usize = codec::num_field(body, "input_dim")?;
            let weights = codec::field(body, "weights")?.render();
            Ok((name, scheme, feature_kind, input_dim, weights))
        })();
        let (name, scheme, feature_kind, input_dim, weights) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        let model: SerializableModel = match serde_json::from_str(&weights) {
            Ok(m) => m,
            Err(e) => return ApiResponse::err(400, format!("bad model weights: {e}")),
        };
        let interface = ModelInterface {
            feature_kind,
            input_dim,
            scheme: ClassificationId(scheme),
        };
        match self.platform.upload_model(user, name, interface, model) {
            Ok(id) => ApiResponse::ok(obj(vec![("model", Value::num(id.raw()))])),
            Err(e) => error_response(&e),
        }
    }

    fn devise_model(&self, user: UserId, body: &Value) -> ApiResponse {
        let parsed = (|| -> Result<_, ParseError> {
            let name = codec::str_field(body, "name")?.to_string();
            let scheme: u64 = codec::num_field(body, "scheme")?;
            let feature_kind = codec::decode_kind(codec::field(body, "feature_kind")?)?;
            let algorithm = decode_algorithm(codec::field(body, "algorithm")?)?;
            Ok((name, scheme, feature_kind, algorithm))
        })();
        let (name, scheme, feature_kind, algorithm) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        match self.platform.train_model(
            user,
            name,
            ClassificationId(scheme),
            feature_kind,
            algorithm,
        ) {
            Ok(id) => ApiResponse::ok(obj(vec![("model", Value::num(id.raw()))])),
            Err(e) => error_response(&e),
        }
    }

    fn register_scheme(&self, body: &Value) -> ApiResponse {
        let parsed = (|| -> Result<_, ParseError> {
            let name = codec::str_field(body, "name")?.to_string();
            let labels = decode_strings(codec::arr_field(body, "labels")?, "labels")?;
            Ok((name, labels))
        })();
        let (name, labels) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        match self.platform.register_scheme(name, labels) {
            Ok(id) => ApiResponse::ok(obj(vec![("scheme", Value::num(id.raw()))])),
            Err(e) => error_response(&e),
        }
    }

    fn annotate(&self, user: UserId, body: &Value) -> ApiResponse {
        let parsed = (|| -> Result<_, ParseError> {
            let image: u64 = codec::num_field(body, "image")?;
            let scheme: u64 = codec::num_field(body, "scheme")?;
            let label: usize = codec::num_field(body, "label")?;
            Ok((image, scheme, label))
        })();
        let (image, scheme, label) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        match self
            .platform
            .annotate_human(user, ImageId(image), ClassificationId(scheme), label)
        {
            Ok(id) => ApiResponse::ok(obj(vec![("annotation", Value::num(id.raw()))])),
            Err(e) => error_response(&e),
        }
    }

    fn dispatch(&self, body: &Value, now_ms: i64) -> ApiResponse {
        if let Err(shed) = self.admit(RequestClass::Dispatch, 1, now_ms) {
            return shed;
        }
        let parsed = (|| -> Result<_, ParseError> {
            let device = codec::str_field(body, "device")?.to_string();
            let max_latency_ms: f64 = codec::num_field(body, "max_latency_ms")?;
            let min_accuracy = match opt_field(body, "min_accuracy") {
                Some(v) => Some(codec::num(v, "min_accuracy")?),
                None => None,
            };
            let min_inferences_per_charge = match opt_field(body, "min_inferences_per_charge") {
                Some(v) => Some(codec::num(v, "min_inferences_per_charge")?),
                None => None,
            };
            Ok((
                device,
                max_latency_ms,
                min_accuracy,
                min_inferences_per_charge,
            ))
        })();
        let (device, max_latency_ms, min_accuracy, min_inferences_per_charge) = match parsed {
            Ok(p) => p,
            Err(e) => return ApiResponse::err(400, format!("bad request body: {e}")),
        };
        let device = match device.to_lowercase().as_str() {
            "desktop" => DeviceClass::Desktop,
            "smartphone" | "phone" => DeviceClass::Smartphone,
            "rpi" | "raspberrypi" | "raspberry_pi" => DeviceClass::RaspberryPi,
            other => return ApiResponse::err(400, format!("unknown device {other}")),
        };
        let constraints = DispatchConstraints {
            max_latency_ms,
            min_accuracy,
            min_inferences_per_charge,
        };
        match self
            .platform
            .dispatch_to_device(&device.profile(), &constraints)
        {
            Some(model) => ApiResponse::ok(obj(vec![
                ("model", Value::str(model.name)),
                ("mflops", Value::num(model.mflops)),
                ("download_bytes", Value::num(model.download_bytes())),
                ("accuracy", Value::num(model.accuracy)),
            ])),
            None => ApiResponse::err(409, "no model satisfies the constraints"),
        }
    }

    /// `health`: the platform's durability state machine plus (when
    /// admission control is configured) the shed counters and modeled
    /// backlog. Always status 200 — a degraded platform still answers
    /// health probes; the body says how bad it is.
    fn health(&self, now_ms: i64) -> ApiResponse {
        let h = self.platform.health();
        let mut fields = vec![
            ("state", Value::str(h.state.as_str())),
            ("durable", Value::Bool(h.durable)),
            ("shards", Value::num(h.shards)),
            ("write_faults", Value::num(h.write_faults)),
            (
                "last_error",
                match h.last_error {
                    Some(e) => Value::str(e),
                    None => Value::Null,
                },
            ),
        ];
        if let Some(ctl) = &self.admission {
            let stats = ctl.stats();
            let per_class: Vec<Value> = tvdp_core::AdmissionStats::classes()
                .iter()
                .map(|&c| {
                    let s = stats.class(c);
                    obj(vec![
                        ("class", Value::str(c.as_str())),
                        ("admitted", Value::num(s.admitted)),
                        ("shed", Value::num(s.shed)),
                        ("admitted_units", Value::num(s.admitted_units)),
                    ])
                })
                .collect();
            fields.push((
                "admission",
                obj(vec![
                    ("backlog_ms", Value::num(ctl.backlog_ms(now_ms))),
                    ("admitted", Value::num(stats.total.admitted)),
                    ("shed", Value::num(stats.total.shed)),
                    ("per_class", Value::Arr(per_class)),
                ]),
            ));
        }
        ApiResponse::ok(obj(fields))
    }
}
