//! End-to-end API-layer tests: the paper's seven endpoint families over
//! a live platform, with JSON-text request bodies.

use std::sync::Arc;

use tvdp_api::{ApiRequest, ApiServer, RateLimitConfig};
use tvdp_core::{PlatformConfig, Role, Tvdp};
use tvdp_storage::codec;
use tvdp_vision::{CnnConfig, Image};

fn fast_platform() -> Arc<Tvdp> {
    Arc::new(Tvdp::new(PlatformConfig {
        cnn: CnnConfig {
            input_size: 16,
            stage_channels: vec![4, 8],
            pool_grid: 2,
            seed: 1,
        },
        min_training_samples: 6,
        ..Default::default()
    }))
}

fn scene(class: usize, seed: usize) -> Image {
    Image::from_fn(24, 24, |x, y| {
        let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
        if class == 0 {
            [200, v, v]
        } else {
            [v, v, 220]
        }
    })
}

fn add_body(class: usize, seed: usize, lat: f64) -> String {
    let img = scene(class, seed);
    format!(
        concat!(
            r#"{{"width":{},"height":{},"pixels":"{}","lat":{},"lon":-118.25,"#,
            r#""fov":{{"heading_deg":90.0,"angle_deg":60.0,"radius_m":80.0}},"#,
            r#""captured_at":{},"uploaded_at":{},"keywords":["street","{}"]}}"#
        ),
        img.width(),
        img.height(),
        codec::hex_encode(img.raw()),
        lat,
        1000 + seed,
        1100 + seed,
        if class == 0 { "red" } else { "blue" },
    )
}

fn call(server: &ApiServer, key: &str, endpoint: &str, body: &str) -> tvdp_api::ApiResponse {
    server.handle(&ApiRequest::new(key, endpoint, body), 0)
}

#[test]
fn full_workflow_through_the_api() {
    let platform = fast_platform();
    let gov = platform.register_user("LASAN", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 1000,
            per_second: 1000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(gov);

    // (paper API 1) Add data: 12 labelled uploads.
    let scheme = {
        let r = call(
            &server,
            &key,
            "schemes/register",
            r#"{"name":"binary","labels":["red","blue"]}"#,
        );
        assert!(r.is_ok(), "{r:?}");
        r.body["scheme"].as_u64().unwrap()
    };
    let mut ids = Vec::new();
    for i in 0..12 {
        let class = i % 2;
        let r = call(
            &server,
            &key,
            "data/add",
            &add_body(class, i, 34.0 + i as f64 * 1e-4),
        );
        assert!(r.is_ok(), "{r:?}");
        let id = r.body["image"].as_u64().unwrap();
        let a = call(
            &server,
            &key,
            "annotations/add",
            &format!(r#"{{"image":{id},"scheme":{scheme},"label":{class}}}"#),
        );
        assert!(a.is_ok(), "{a:?}");
        ids.push(id);
    }

    // (2) Search: textual query finds the red uploads.
    let r = call(
        &server,
        &key,
        "data/search",
        r#"{"query":{"Textual":{"text":"red","mode":"All"}}}"#,
    );
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body["count"].as_u64().unwrap(), 6);

    // A compound query exercises the hand-written decoder's recursion.
    let r = call(
        &server,
        &key,
        "data/search",
        concat!(
            r#"{"query":{"And":[{"Textual":{"text":"red","mode":"All"}},"#,
            r#"{"Spatial":{"Range":{"min_lat":33.9,"min_lon":-119.0,"#,
            r#""max_lat":34.1,"max_lon":-118.0}}}]}}"#
        ),
    );
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body["count"].as_u64().unwrap(), 6);

    // (3) Download: metadata plus pixels round-trip (pixels as hex).
    let r = call(
        &server,
        &key,
        "data/download",
        &format!(r#"{{"ids":[{}],"include_pixels":true}}"#, ids[0]),
    );
    assert!(r.is_ok());
    let item = &r.body["items"][0];
    assert_eq!(item["width"].as_u64().unwrap(), 24);
    let pixels = codec::hex_decode(item["pixels"].as_str().unwrap()).unwrap();
    assert_eq!(pixels.len(), 24 * 24 * 3);
    assert_eq!(item["keywords"][0].as_str().unwrap(), "street");

    // (4) Get visual features for a new image without storing it.
    let img = scene(0, 99);
    let r = call(
        &server,
        &key,
        "features/extract",
        &format!(
            r#"{{"width":{},"height":{},"pixels":"{}"}}"#,
            img.width(),
            img.height(),
            codec::hex_encode(img.raw())
        ),
    );
    assert!(r.is_ok());
    let feats = r.body["features"].as_array().unwrap();
    assert_eq!(feats.len(), 2, "color histogram + CNN");
    let stats_before = call(&server, &key, "stats", "{}");
    assert_eq!(
        stats_before.body["images"].as_u64().unwrap(),
        12,
        "extract does not store"
    );

    // (7) Devise a model.
    let r = call(
        &server,
        &key,
        "models/devise",
        &format!(
            r#"{{"name":"red-vs-blue","scheme":{scheme},"feature_kind":"Cnn","algorithm":"Svm"}}"#
        ),
    );
    assert!(r.is_ok(), "{r:?}");
    let model = r.body["model"].as_u64().unwrap();

    // (6) Download the model's interface.
    let r = call(
        &server,
        &key,
        "models/download",
        &format!(r#"{{"model":{model}}}"#),
    );
    assert!(r.is_ok());
    assert_eq!(r.body["algorithm"].as_str().unwrap(), "SVM");
    assert_eq!(r.body["interface"]["feature_kind"].as_str().unwrap(), "Cnn");

    // (5) Use the model: upload two fresh images and classify them.
    let fresh: Vec<u64> = (0..2)
        .map(|class| {
            let r = call(
                &server,
                &key,
                "data/add",
                &add_body(class, 50 + class, 34.01),
            );
            r.body["image"].as_u64().unwrap()
        })
        .collect();
    let r = call(
        &server,
        &key,
        "models/apply",
        &format!(
            r#"{{"model":{model},"images":[{},{}]}}"#,
            fresh[0], fresh[1]
        ),
    );
    assert!(r.is_ok(), "{r:?}");
    let preds = r.body["predictions"].as_array().unwrap();
    assert_eq!(preds.len(), 2);
    assert_eq!(preds[0]["label"].as_u64().unwrap(), 0);
    assert_eq!(preds[1]["label"].as_u64().unwrap(), 1);

    // Edge dispatch.
    let r = call(
        &server,
        &key,
        "edge/dispatch",
        r#"{"device":"rpi","max_latency_ms":700.0}"#,
    );
    assert!(r.is_ok());
    assert!(r.body["model"].as_str().unwrap().starts_with("MobileNet"));

    // Final stats reflect everything.
    let r = call(&server, &key, "stats", "{}");
    assert_eq!(r.body["images"].as_u64().unwrap(), 14);
    assert_eq!(r.body["models"].as_u64().unwrap(), 1);
    assert!(r.body["annotations"].as_u64().unwrap() >= 14);
}

#[test]
fn idempotent_ingest_replays_the_original_response() {
    let platform = fast_platform();
    let user = platform.register_user("edge-7", Role::CommunityPartner);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 1000,
            per_second: 1000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(user);

    // An edge client uploads with an idempotency key; the ack is lost
    // in transit (simulated: the client never observes `first`), so it
    // retransmits the identical request.
    let request = ApiRequest {
        key: key.clone(),
        endpoint: "data/add".into(),
        body: add_body(0, 3, 34.02),
        idempotency_key: Some("edge7-s3".into()),
        deadline_ms: None,
    };
    let first = server.handle(&request, 0);
    assert!(first.is_ok(), "{first:?}");
    let retry = server.handle(&request, 40);
    assert!(retry.is_ok(), "{retry:?}");

    // The replayed response is byte-identical to the original...
    assert_eq!(retry.render_body(), first.render_body());
    // ...and exactly one image was stored.
    let stats = call(&server, &key, "stats", "{}");
    assert_eq!(stats.body["images"].as_u64().unwrap(), 1);

    // A different idempotency key with the same payload is a new upload.
    let mut second = request.clone();
    second.idempotency_key = Some("edge7-s4".into());
    let r = server.handle(&second, 80);
    assert!(r.is_ok());
    assert_ne!(r.render_body(), first.render_body());
    let stats = call(&server, &key, "stats", "{}");
    assert_eq!(stats.body["images"].as_u64().unwrap(), 2);
}

#[test]
fn auth_and_rate_limits_enforced() {
    let platform = fast_platform();
    let user = platform.register_user("u", Role::Academic);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 2,
            per_second: 1.0,
            ..Default::default()
        },
    );
    // Bad key.
    let r = call(&server, "tvdp_nope", "stats", "{}");
    assert_eq!(r.status, 401);
    // Rate limit after the burst, with a refill hint in the body.
    let key = server.issue_key(user);
    assert!(call(&server, &key, "stats", "{}").is_ok());
    assert!(call(&server, &key, "stats", "{}").is_ok());
    let r = call(&server, &key, "stats", "{}");
    assert_eq!(r.status, 429);
    let hint = r.body["retry_after_ms"].as_u64().unwrap();
    assert_eq!(hint, 1000, "empty bucket at 1 rps refills in one second");
    // Waiting exactly the hinted time succeeds.
    let r = server.handle(&ApiRequest::new(key.clone(), "stats", "{}"), hint as i64);
    assert!(r.is_ok(), "{r:?}");
    // Revoked key stops working.
    assert!(server.revoke_key(&key));
    let r = server.handle(&ApiRequest::new(key, "stats", "{}"), 10_000);
    assert_eq!(r.status, 401);
}

#[test]
fn error_paths_return_proper_statuses() {
    let platform = fast_platform();
    let user = platform.register_user("u", Role::Researcher);
    let server = ApiServer::new(Arc::clone(&platform));
    let key = server.issue_key(user);

    // Unknown endpoint.
    assert_eq!(call(&server, &key, "nope/nope", "{}").status, 404);
    // Unparseable body.
    assert_eq!(call(&server, &key, "data/add", "{not json").status, 400);
    // Malformed body.
    assert_eq!(
        call(&server, &key, "data/add", r#"{"width":4}"#).status,
        400
    );
    // Pixel size mismatch.
    let r = call(
        &server,
        &key,
        "data/add",
        concat!(
            r#"{"width":4,"height":4,"pixels":[0,0],"lat":34.0,"lon":-118.0,"#,
            r#""captured_at":0,"uploaded_at":1}"#
        ),
    );
    assert_eq!(r.status, 400);
    // Bad coordinates.
    let img = scene(0, 0);
    let r = call(
        &server,
        &key,
        "data/add",
        &format!(
            concat!(
                r#"{{"width":{},"height":{},"pixels":"{}","lat":99.0,"lon":0.0,"#,
                r#""captured_at":0,"uploaded_at":1}}"#
            ),
            img.width(),
            img.height(),
            codec::hex_encode(img.raw())
        ),
    );
    assert_eq!(r.status, 400);
    // Unknown model.
    assert_eq!(
        call(&server, &key, "models/download", r#"{"model":77}"#).status,
        404
    );
    // Unknown image download.
    assert_eq!(
        call(&server, &key, "data/download", r#"{"ids":[123]}"#).status,
        404
    );
    // Bad query shape.
    assert_eq!(
        call(&server, &key, "data/search", r#"{"query":{"Bogus":1}}"#).status,
        400
    );
    // Devise with no data.
    let scheme = call(
        &server,
        &key,
        "schemes/register",
        r#"{"name":"s","labels":["a","b"]}"#,
    )
    .body["scheme"]
        .as_u64()
        .unwrap();
    let r = call(
        &server,
        &key,
        "models/devise",
        &format!(
            r#"{{"name":"m","scheme":{scheme},"feature_kind":"Cnn","algorithm":"NaiveBayes"}}"#
        ),
    );
    assert_eq!(r.status, 400);
    // Impossible dispatch.
    let r = call(
        &server,
        &key,
        "edge/dispatch",
        r#"{"device":"rpi","max_latency_ms":0.01}"#,
    );
    assert_eq!(r.status, 409);
    // Unknown device.
    let r = call(
        &server,
        &key,
        "edge/dispatch",
        r#"{"device":"toaster","max_latency_ms":100.0}"#,
    );
    assert_eq!(r.status, 400);
}

#[test]
fn model_weights_download_and_upload_roundtrip() {
    use tvdp_ml::{Classifier, SerializableModel};

    let platform = fast_platform();
    let gov = platform.register_user("LASAN", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 10_000,
            per_second: 10_000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(gov);

    // Train a model through the API.
    let scheme = call(
        &server,
        &key,
        "schemes/register",
        r#"{"name":"binary","labels":["red","blue"]}"#,
    )
    .body["scheme"]
        .as_u64()
        .unwrap();
    for i in 0..12 {
        let class = i % 2;
        let r = call(
            &server,
            &key,
            "data/add",
            &add_body(class, i, 34.0 + i as f64 * 1e-4),
        );
        let id = r.body["image"].as_u64().unwrap();
        call(
            &server,
            &key,
            "annotations/add",
            &format!(r#"{{"image":{id},"scheme":{scheme},"label":{class}}}"#),
        );
    }
    let model = call(
        &server,
        &key,
        "models/devise",
        &format!(r#"{{"name":"m","scheme":{scheme},"feature_kind":"Cnn","algorithm":"Svm"}}"#),
    )
    .body["model"]
        .as_u64()
        .unwrap();

    // Edge device downloads the weights...
    let r = call(
        &server,
        &key,
        "models/download",
        &format!(r#"{{"model":{model},"include_weights":true}}"#),
    );
    assert!(r.is_ok(), "{r:?}");
    let weights = r.body["weights"].clone();
    assert!(!weights.is_null());
    let input_dim = r.body["interface"]["input_dim"].as_u64().unwrap() as usize;

    // ...and runs it locally, off-platform.
    let local: SerializableModel = serde_json::from_str(&weights.render()).unwrap();
    let probe_features = {
        let img = scene(0, 77);
        let r = call(
            &server,
            &key,
            "features/extract",
            &format!(
                r#"{{"width":{},"height":{},"pixels":"{}"}}"#,
                img.width(),
                img.height(),
                codec::hex_encode(img.raw())
            ),
        );
        let feats = r.body["features"].as_array().unwrap();
        let cnn = feats
            .iter()
            .find(|f| f["kind"].as_str() == Some("Cnn"))
            .unwrap();
        cnn["vector"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect::<Vec<f32>>()
    };
    assert_eq!(probe_features.len(), input_dim);
    assert_eq!(
        local.predict_one(&probe_features),
        0,
        "red scene on the edge"
    );

    // A collaborator uploads the same weights as a new shared model.
    let r = call(
        &server,
        &key,
        "models/upload",
        &format!(
            concat!(
                r#"{{"name":"uploaded-copy","scheme":{},"feature_kind":"Cnn","#,
                r#""input_dim":{},"weights":{}}}"#
            ),
            scheme,
            input_dim,
            weights.render()
        ),
    );
    assert!(r.is_ok(), "{r:?}");
    let uploaded = r.body["model"].as_u64().unwrap();
    assert_ne!(uploaded, model);

    // The uploaded copy predicts identically through the API.
    let img_id = call(&server, &key, "data/add", &add_body(1, 88, 34.01)).body["image"]
        .as_u64()
        .unwrap();
    let p1 = call(
        &server,
        &key,
        "models/apply",
        &format!(r#"{{"model":{model},"images":[{img_id}]}}"#),
    );
    let p2 = call(
        &server,
        &key,
        "models/apply",
        &format!(r#"{{"model":{uploaded},"images":[{img_id}]}}"#),
    );
    assert_eq!(
        p1.body["predictions"][0]["label"],
        p2.body["predictions"][0]["label"]
    );

    // Garbage weights are rejected cleanly.
    let r = call(
        &server,
        &key,
        "models/upload",
        &format!(
            concat!(
                r#"{{"name":"x","scheme":{},"feature_kind":"Cnn","#,
                r#""input_dim":4,"weights":{{"Bogus":1}}}}"#
            ),
            scheme
        ),
    );
    assert_eq!(r.status, 400);
}

#[test]
fn batched_uploads_through_the_api() {
    let platform = fast_platform();
    let gov = platform.register_user("LASAN", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 1000,
            per_second: 1000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(gov);

    // A keyless batch lands every upload and replays none.
    let body = format!(
        r#"{{"uploads":[{},{},{}]}}"#,
        add_body(0, 1, 34.01),
        add_body(1, 2, 34.04),
        add_body(0, 3, 34.07),
    );
    let r = call(&server, &key, "data/add_batch", &body);
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body["count"].as_u64(), Some(3));
    let first = r.body["images"][0].as_u64().unwrap();
    assert_eq!(r.body["replayed"][0].as_bool(), Some(false));
    assert_eq!(r.body["replayed"][2].as_bool(), Some(false));
    assert_eq!(platform.stats().images, 3);

    // A keyed batch with a duplicate key replays instead of re-ingesting,
    // both within the batch and across a retry of the whole batch.
    let keyed = |seed: usize, k: &str| {
        let b = add_body(1, seed, 34.10);
        format!(r#"{},"idempotency_key":"{k}"}}"#, &b[..b.len() - 1])
    };
    let body = format!(
        r#"{{"uploads":[{},{},{}]}}"#,
        keyed(10, "cam-a"),
        keyed(11, "cam-b"),
        keyed(10, "cam-a"),
    );
    let r = call(&server, &key, "data/add_batch", &body);
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body["replayed"][0].as_bool(), Some(false));
    assert_eq!(r.body["replayed"][2].as_bool(), Some(true));
    assert_eq!(r.body["images"][0].as_u64(), r.body["images"][2].as_u64());
    assert_eq!(platform.stats().images, 5);

    let retry = call(&server, &key, "data/add_batch", &body);
    assert!(retry.is_ok(), "{retry:?}");
    assert_eq!(retry.body["replayed"][0].as_bool(), Some(true));
    assert_eq!(retry.body["replayed"][1].as_bool(), Some(true));
    assert_eq!(
        retry.body["images"][0].as_u64(),
        r.body["images"][0].as_u64()
    );
    assert_eq!(platform.stats().images, 5);

    // Mixed keyed/keyless batches are rejected whole.
    let body = format!(
        r#"{{"uploads":[{},{}]}}"#,
        add_body(0, 20, 34.01),
        keyed(21, "cam-c"),
    );
    let r = call(&server, &key, "data/add_batch", &body);
    assert_eq!(r.status, 400);
    assert_eq!(platform.stats().images, 5);

    // A malformed element pinpoints its index.
    let r = call(
        &server,
        &key,
        "data/add_batch",
        r#"{"uploads":[{"width":1}]}"#,
    );
    assert_eq!(r.status, 400);

    // The batch ids are real: batched uploads are searchable by keyword.
    let g = call(
        &server,
        &key,
        "data/search",
        r#"{"query":{"Textual":{"text":"street","mode":"Any"}}}"#,
    );
    assert!(g.is_ok(), "{g:?}");
    let hits: Vec<u64> = (0..5)
        .filter_map(|i| g.body["results"][i]["image"].as_u64())
        .collect();
    assert!(hits.contains(&first), "batched upload missing from search");
}
