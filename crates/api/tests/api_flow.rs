//! End-to-end API-layer tests: the paper's seven endpoint families over
//! a live platform.

use std::sync::Arc;

use serde_json::json;

use tvdp_api::{ApiRequest, ApiServer, RateLimitConfig};
use tvdp_core::{PlatformConfig, Role, Tvdp};
use tvdp_vision::{CnnConfig, Image};

fn fast_platform() -> Arc<Tvdp> {
    Arc::new(Tvdp::new(PlatformConfig {
        cnn: CnnConfig {
            input_size: 16,
            stage_channels: vec![4, 8],
            pool_grid: 2,
            seed: 1,
        },
        min_training_samples: 6,
        ..Default::default()
    }))
}

fn scene(class: usize, seed: usize) -> Image {
    Image::from_fn(24, 24, |x, y| {
        let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
        if class == 0 {
            [200, v, v]
        } else {
            [v, v, 220]
        }
    })
}

fn add_body(class: usize, seed: usize, lat: f64) -> serde_json::Value {
    let img = scene(class, seed);
    json!({
        "width": img.width(),
        "height": img.height(),
        "pixels": img.raw().to_vec(),
        "lat": lat,
        "lon": -118.25,
        "fov": { "heading_deg": 90.0, "angle_deg": 60.0, "radius_m": 80.0 },
        "captured_at": 1000 + seed,
        "uploaded_at": 1100 + seed,
        "keywords": ["street", if class == 0 { "red" } else { "blue" }],
    })
}

fn call(
    server: &ApiServer,
    key: &str,
    endpoint: &str,
    body: serde_json::Value,
) -> tvdp_api::ApiResponse {
    server.handle(
        &ApiRequest {
            key: key.into(),
            endpoint: endpoint.into(),
            body,
        },
        0,
    )
}

#[test]
fn full_workflow_through_the_api() {
    let platform = fast_platform();
    let gov = platform.register_user("LASAN", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 1000,
            per_second: 1000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(gov);

    // (paper API 1) Add data: 12 labelled uploads.
    let scheme = {
        let r = call(
            &server,
            &key,
            "schemes/register",
            json!({ "name": "binary", "labels": ["red", "blue"] }),
        );
        assert!(r.is_ok(), "{r:?}");
        r.body["scheme"].as_u64().unwrap()
    };
    let mut ids = Vec::new();
    for i in 0..12 {
        let class = i % 2;
        let r = call(
            &server,
            &key,
            "data/add",
            add_body(class, i, 34.0 + i as f64 * 1e-4),
        );
        assert!(r.is_ok(), "{r:?}");
        let id = r.body["image"].as_u64().unwrap();
        let a = call(
            &server,
            &key,
            "annotations/add",
            json!({ "image": id, "scheme": scheme, "label": class }),
        );
        assert!(a.is_ok(), "{a:?}");
        ids.push(id);
    }

    // (2) Search: textual query finds the red uploads.
    let r = call(
        &server,
        &key,
        "data/search",
        json!({ "query": { "Textual": { "text": "red", "mode": "All" } } }),
    );
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body["count"].as_u64().unwrap(), 6);

    // (3) Download: metadata plus pixels round-trip.
    let r = call(
        &server,
        &key,
        "data/download",
        json!({ "ids": [ids[0]], "include_pixels": true }),
    );
    assert!(r.is_ok());
    let item = &r.body["items"][0];
    assert_eq!(item["width"].as_u64().unwrap(), 24);
    assert_eq!(item["pixels"].as_array().unwrap().len(), 24 * 24 * 3);
    assert_eq!(item["keywords"][0], "street");

    // (4) Get visual features for a new image without storing it.
    let img = scene(0, 99);
    let r = call(
        &server,
        &key,
        "features/extract",
        json!({ "width": img.width(), "height": img.height(), "pixels": img.raw().to_vec() }),
    );
    assert!(r.is_ok());
    let feats = r.body["features"].as_array().unwrap();
    assert_eq!(feats.len(), 2, "color histogram + CNN");
    let stats_before = call(&server, &key, "stats", json!({}));
    assert_eq!(
        stats_before.body["images"].as_u64().unwrap(),
        12,
        "extract does not store"
    );

    // (7) Devise a model.
    let r = call(
        &server,
        &key,
        "models/devise",
        json!({ "name": "red-vs-blue", "scheme": scheme, "feature_kind": "Cnn", "algorithm": "Svm" }),
    );
    assert!(r.is_ok(), "{r:?}");
    let model = r.body["model"].as_u64().unwrap();

    // (6) Download the model's interface.
    let r = call(&server, &key, "models/download", json!({ "model": model }));
    assert!(r.is_ok());
    assert_eq!(r.body["algorithm"], "SVM");
    assert_eq!(r.body["interface"]["feature_kind"], "Cnn");

    // (5) Use the model: upload two fresh images and classify them.
    let fresh: Vec<u64> = (0..2)
        .map(|class| {
            let r = call(
                &server,
                &key,
                "data/add",
                add_body(class, 50 + class, 34.01),
            );
            r.body["image"].as_u64().unwrap()
        })
        .collect();
    let r = call(
        &server,
        &key,
        "models/apply",
        json!({ "model": model, "images": fresh }),
    );
    assert!(r.is_ok(), "{r:?}");
    let preds = r.body["predictions"].as_array().unwrap();
    assert_eq!(preds.len(), 2);
    assert_eq!(preds[0]["label"].as_u64().unwrap(), 0);
    assert_eq!(preds[1]["label"].as_u64().unwrap(), 1);

    // Edge dispatch.
    let r = call(
        &server,
        &key,
        "edge/dispatch",
        json!({ "device": "rpi", "max_latency_ms": 700.0 }),
    );
    assert!(r.is_ok());
    assert!(r.body["model"].as_str().unwrap().starts_with("MobileNet"));

    // Final stats reflect everything.
    let r = call(&server, &key, "stats", json!({}));
    assert_eq!(r.body["images"].as_u64().unwrap(), 14);
    assert_eq!(r.body["models"].as_u64().unwrap(), 1);
    assert!(r.body["annotations"].as_u64().unwrap() >= 14);
}

#[test]
fn auth_and_rate_limits_enforced() {
    let platform = fast_platform();
    let user = platform.register_user("u", Role::Academic);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 2,
            per_second: 1.0,
            ..Default::default()
        },
    );
    // Bad key.
    let r = call(&server, "tvdp_nope", "stats", json!({}));
    assert_eq!(r.status, 401);
    // Rate limit after the burst.
    let key = server.issue_key(user);
    assert!(call(&server, &key, "stats", json!({})).is_ok());
    assert!(call(&server, &key, "stats", json!({})).is_ok());
    let r = call(&server, &key, "stats", json!({}));
    assert_eq!(r.status, 429);
    // Refill after a second.
    let r = server.handle(
        &ApiRequest {
            key: key.clone(),
            endpoint: "stats".into(),
            body: json!({}),
        },
        1_500,
    );
    assert!(r.is_ok());
    // Revoked key stops working.
    assert!(server.revoke_key(&key));
    let r = server.handle(
        &ApiRequest {
            key,
            endpoint: "stats".into(),
            body: json!({}),
        },
        10_000,
    );
    assert_eq!(r.status, 401);
}

#[test]
fn error_paths_return_proper_statuses() {
    let platform = fast_platform();
    let user = platform.register_user("u", Role::Researcher);
    let server = ApiServer::new(Arc::clone(&platform));
    let key = server.issue_key(user);

    // Unknown endpoint.
    assert_eq!(call(&server, &key, "nope/nope", json!({})).status, 404);
    // Malformed body.
    assert_eq!(
        call(&server, &key, "data/add", json!({ "width": 4 })).status,
        400
    );
    // Pixel size mismatch.
    let r = call(
        &server,
        &key,
        "data/add",
        json!({ "width": 4, "height": 4, "pixels": [0, 0], "lat": 34.0, "lon": -118.0,
                 "captured_at": 0, "uploaded_at": 1 }),
    );
    assert_eq!(r.status, 400);
    // Bad coordinates.
    let img = scene(0, 0);
    let r = call(
        &server,
        &key,
        "data/add",
        json!({ "width": img.width(), "height": img.height(), "pixels": img.raw().to_vec(),
                 "lat": 99.0, "lon": 0.0, "captured_at": 0, "uploaded_at": 1 }),
    );
    assert_eq!(r.status, 400);
    // Unknown model.
    assert_eq!(
        call(&server, &key, "models/download", json!({ "model": 77 })).status,
        404
    );
    // Unknown image download.
    assert_eq!(
        call(&server, &key, "data/download", json!({ "ids": [123] })).status,
        404
    );
    // Devise with no data.
    let scheme = call(
        &server,
        &key,
        "schemes/register",
        json!({ "name": "s", "labels": ["a", "b"] }),
    )
    .body["scheme"]
        .as_u64()
        .unwrap();
    let r = call(
        &server,
        &key,
        "models/devise",
        json!({ "name": "m", "scheme": scheme, "feature_kind": "Cnn", "algorithm": "NaiveBayes" }),
    );
    assert_eq!(r.status, 400);
    // Impossible dispatch.
    let r = call(
        &server,
        &key,
        "edge/dispatch",
        json!({ "device": "rpi", "max_latency_ms": 0.01 }),
    );
    assert_eq!(r.status, 409);
    // Unknown device.
    let r = call(
        &server,
        &key,
        "edge/dispatch",
        json!({ "device": "toaster", "max_latency_ms": 100.0 }),
    );
    assert_eq!(r.status, 400);
}

#[test]
fn model_weights_download_and_upload_roundtrip() {
    use tvdp_ml::{Classifier, SerializableModel};

    let platform = fast_platform();
    let gov = platform.register_user("LASAN", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 10_000,
            per_second: 10_000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(gov);

    // Train a model through the API.
    let scheme = call(
        &server,
        &key,
        "schemes/register",
        json!({ "name": "binary", "labels": ["red", "blue"] }),
    )
    .body["scheme"]
        .as_u64()
        .unwrap();
    for i in 0..12 {
        let class = i % 2;
        let r = call(
            &server,
            &key,
            "data/add",
            add_body(class, i, 34.0 + i as f64 * 1e-4),
        );
        let id = r.body["image"].as_u64().unwrap();
        call(
            &server,
            &key,
            "annotations/add",
            json!({ "image": id, "scheme": scheme, "label": class }),
        );
    }
    let model = call(
        &server,
        &key,
        "models/devise",
        json!({ "name": "m", "scheme": scheme, "feature_kind": "Cnn", "algorithm": "Svm" }),
    )
    .body["model"]
        .as_u64()
        .unwrap();

    // Edge device downloads the weights...
    let r = call(
        &server,
        &key,
        "models/download",
        json!({ "model": model, "include_weights": true }),
    );
    assert!(r.is_ok(), "{r:?}");
    let weights = r.body["weights"].clone();
    assert!(!weights.is_null());
    let input_dim = r.body["interface"]["input_dim"].as_u64().unwrap() as usize;

    // ...and runs it locally, off-platform.
    let local: SerializableModel = serde_json::from_value(weights.clone()).unwrap();
    let probe_features = {
        let img = scene(0, 77);
        let r = call(
            &server,
            &key,
            "features/extract",
            json!({ "width": img.width(), "height": img.height(),
                     "pixels": img.raw().to_vec() }),
        );
        let feats = r.body["features"].as_array().unwrap();
        let cnn = feats.iter().find(|f| f["kind"] == "Cnn").unwrap();
        cnn["vector"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect::<Vec<f32>>()
    };
    assert_eq!(probe_features.len(), input_dim);
    assert_eq!(
        local.predict_one(&probe_features),
        0,
        "red scene on the edge"
    );

    // A collaborator uploads the same weights as a new shared model.
    let r = call(
        &server,
        &key,
        "models/upload",
        json!({ "name": "uploaded-copy", "scheme": scheme, "feature_kind": "Cnn",
                 "input_dim": input_dim, "weights": weights }),
    );
    assert!(r.is_ok(), "{r:?}");
    let uploaded = r.body["model"].as_u64().unwrap();
    assert_ne!(uploaded, model);

    // The uploaded copy predicts identically through the API.
    let img_id = call(&server, &key, "data/add", add_body(1, 88, 34.01)).body["image"]
        .as_u64()
        .unwrap();
    let p1 = call(
        &server,
        &key,
        "models/apply",
        json!({ "model": model, "images": [img_id] }),
    );
    let p2 = call(
        &server,
        &key,
        "models/apply",
        json!({ "model": uploaded, "images": [img_id] }),
    );
    assert_eq!(
        p1.body["predictions"][0]["label"],
        p2.body["predictions"][0]["label"]
    );

    // Garbage weights are rejected cleanly.
    let r = server.handle(
        &ApiRequest {
            key: key.clone(),
            endpoint: "models/upload".into(),
            body: json!({ "name": "x", "scheme": scheme, "feature_kind": "Cnn",
                           "input_dim": 4, "weights": {"Bogus": 1} }),
        },
        0,
    );
    assert_eq!(r.status, 400);
}
