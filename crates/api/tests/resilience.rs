//! Overload and degraded-mode behavior of the API surface.
//!
//! Three serving properties under stress, all deterministic on the
//! virtual clock:
//!
//! * malformed queries — including hybrid `And` trees with a bad leg —
//!   come back as structured 400 bodies, never panics;
//! * an admission-controlled server sheds with 503 + `retry_after_ms`
//!   once the modeled backlog passes a class's delay bound, and the
//!   hint is honest: retrying after exactly that long is admitted;
//! * a WAL write fault during live traffic flips the platform
//!   read-only (mutations 503, reads still 200), the `health` endpoint
//!   narrates ReadOnly → Degraded → Ok, and clearing the fault heals
//!   the platform without a restart.

use std::path::PathBuf;
use std::sync::Arc;

use tvdp_api::{ApiRequest, ApiServer, RateLimitConfig};
use tvdp_core::{AdmissionConfig, PlatformConfig, Role, Tvdp};
use tvdp_storage::{codec, WriteFaultPlan};
use tvdp_vision::{CnnConfig, Image};

fn fast_config() -> PlatformConfig {
    PlatformConfig {
        cnn: CnnConfig {
            input_size: 16,
            stage_channels: vec![4, 8],
            pool_grid: 2,
            seed: 1,
        },
        min_training_samples: 6,
        ..Default::default()
    }
}

fn open_limit() -> RateLimitConfig {
    RateLimitConfig {
        burst: 100_000,
        per_second: 100_000.0,
        ..Default::default()
    }
}

fn scene(seed: usize) -> Image {
    Image::from_fn(24, 24, |x, y| {
        let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
        [200, v, v]
    })
}

fn add_body(seed: usize) -> String {
    let img = scene(seed);
    format!(
        concat!(
            r#"{{"width":{},"height":{},"pixels":"{}","lat":34.05,"lon":-118.25,"#,
            r#""captured_at":{},"uploaded_at":{},"keywords":["street"]}}"#
        ),
        img.width(),
        img.height(),
        codec::hex_encode(img.raw()),
        1000 + seed,
        1100 + seed,
    )
}

fn call_at(
    server: &ApiServer,
    key: &str,
    endpoint: &str,
    body: &str,
    now_ms: i64,
) -> tvdp_api::ApiResponse {
    server.handle(&ApiRequest::new(key, endpoint, body), now_ms)
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tvdp-api-resilience-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

// ---------------------------------------------------------------------
// Malformed queries: structured 400s, never panics.
// ---------------------------------------------------------------------

#[test]
fn malformed_hybrid_query_is_a_structured_400_not_a_panic() {
    let platform = Arc::new(Tvdp::new(fast_config()));
    let user = platform.register_user("analyst", Role::Researcher);
    let server = ApiServer::with_rate_limit(Arc::clone(&platform), open_limit());
    let key = server.issue_key(user);

    // Seed one image so the visual index has a feature family to
    // mismatch against.
    let r = call_at(&server, &key, "data/add", &add_body(0), 0);
    assert!(r.is_ok(), "{r:?}");

    // A hybrid query whose visual leg carries a wrong-dimension
    // example: the structured try_execute path reports it as a 400
    // (regression: the panicking execute path would abort the server).
    let bad_hybrid = concat!(
        r#"{"query":{"And":["#,
        r#"{"Spatial":{"Range":{"min_lat":33.0,"min_lon":-119.0,"max_lat":35.0,"max_lon":-118.0}}},"#,
        r#"{"Visual":{"example":[0.25,0.5],"kind":"ColorHistogram","mode":{"TopK":3}}}"#,
        r#"]}}"#,
    );
    let r = call_at(&server, &key, "data/search", bad_hybrid, 0);
    assert_eq!(r.status, 400, "{r:?}");
    let msg = r.body["error"].as_str().unwrap();
    assert!(msg.contains("dimension") || msg.contains("query"), "{msg}");

    // Structurally broken bodies and unknown query heads also land on
    // 400 with an explanatory error.
    for body in [
        r#"{"query":{"And":"not-an-array"}}"#,
        r#"{"query":{"Mystery":{}}}"#,
        r#"{"query"#,
    ] {
        let r = call_at(&server, &key, "data/search", body, 0);
        assert_eq!(r.status, 400, "{body} -> {r:?}");
        assert!(!r.body["error"].is_null(), "{body} -> {r:?}");
    }
}

// ---------------------------------------------------------------------
// Admission control: 503 + honest retry_after_ms, dispatch sheds first.
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_503_with_honest_retry_hint() {
    let platform = Arc::new(Tvdp::new(fast_config()));
    let user = platform.register_user("city", Role::Government);
    // 1k units/s == 1 unit/virtual-ms: a handful of uploads saturates.
    let server = ApiServer::with_admission(
        Arc::clone(&platform),
        open_limit(),
        AdmissionConfig {
            capacity_units_per_sec: 1_000,
            dispatch_max_delay_ms: 4,
            query_max_delay_ms: 20,
            ingest_max_delay_ms: 40,
        },
    );
    let key = server.issue_key(user);

    // Uploads cost 8 units == 8 ms of backlog each; the ingest bound
    // (40 ms) admits the first six and sheds the seventh at delay 48.
    let mut shed_response = None;
    for i in 0..7 {
        let r = call_at(&server, &key, "data/add", &add_body(i), 0);
        if i < 6 {
            assert!(r.is_ok(), "upload {i}: {r:?}");
        } else {
            shed_response = Some(r);
        }
    }
    let shed = shed_response.unwrap();
    assert_eq!(shed.status, 503, "{shed:?}");
    assert!(shed.body["error"].as_str().unwrap().contains("overloaded"));
    let retry_after = shed.body["retry_after_ms"].as_i64().unwrap();
    assert!(retry_after > 0);

    let stats = server.admission().unwrap().stats();
    assert_eq!(stats.total.admitted, 6);
    assert_eq!(stats.total.shed, 1);
    assert_eq!(stats.class(tvdp_core::RequestClass::Ingest).shed, 1);

    // The retry hint is honest: replaying the shed upload exactly
    // retry_after_ms later is admitted.
    let r = call_at(&server, &key, "data/add", &add_body(6), retry_after);
    assert!(r.is_ok(), "{r:?}");

    // Priority shedding: pick a probe time where the remaining backlog
    // is inside the query bound (20 ms) but past the dispatch bound
    // (4 ms) — the interactive query is served while the cheap-to-retry
    // dispatch is shed.
    let backlog = server.admission().unwrap().backlog_ms(0);
    let probe_at = backlog - 10;
    let q = call_at(
        &server,
        &key,
        "data/search",
        r#"{"query":{"Textual":{"text":"street","mode":"All"}}}"#,
        probe_at,
    );
    assert!(q.is_ok(), "{q:?}");
    let d = call_at(
        &server,
        &key,
        "edge/dispatch",
        r#"{"device":"desktop","max_latency_ms":1000.0}"#,
        probe_at,
    );
    assert_eq!(d.status, 503, "{d:?}");
}

#[test]
fn health_endpoint_reports_state_and_admission_counters() {
    let platform = Arc::new(Tvdp::new(fast_config()));
    let user = platform.register_user("ops", Role::Government);
    let server = ApiServer::with_admission(
        Arc::clone(&platform),
        open_limit(),
        AdmissionConfig::default(),
    );
    let key = server.issue_key(user);

    let r = call_at(&server, &key, "data/add", &add_body(0), 0);
    assert!(r.is_ok(), "{r:?}");

    let h = call_at(&server, &key, "health", "", 0);
    assert!(h.is_ok(), "{h:?}");
    assert_eq!(h.body["state"].as_str().unwrap(), "ok");
    assert!(!h.body["durable"].as_bool().unwrap());
    assert!(h.body["last_error"].is_null());
    assert_eq!(h.body["write_faults"].as_u64().unwrap(), 0);
    let adm = &h.body["admission"];
    assert_eq!(adm["admitted"].as_u64().unwrap(), 1);
    assert_eq!(adm["shed"].as_u64().unwrap(), 0);
    // Per-class rows render in shed-first order with stable names.
    let classes: Vec<&str> = (0..3)
        .map(|i| adm["per_class"][i]["class"].as_str().unwrap())
        .collect();
    assert_eq!(classes, ["dispatch", "query", "ingest"]);
}

// ---------------------------------------------------------------------
// Degraded mode: WAL fault under live traffic, observed via the API.
// ---------------------------------------------------------------------

#[test]
fn write_fault_flips_read_only_and_heals_through_the_api() {
    let dir = temp_dir("degrade");
    let (platform, _report) = Tvdp::open(&dir, fast_config()).unwrap();
    let platform = Arc::new(platform);
    let user = platform.register_user("field", Role::Researcher);
    let server = ApiServer::with_rate_limit(Arc::clone(&platform), open_limit());
    let key = server.issue_key(user);

    // Nominal traffic: uploads land, health is Ok.
    for i in 0..3 {
        let r = call_at(&server, &key, "data/add", &add_body(i), i as i64);
        assert!(r.is_ok(), "{r:?}");
    }
    let h = call_at(&server, &key, "health", "", 10);
    assert_eq!(h.body["state"].as_str().unwrap(), "ok");
    assert!(h.body["durable"].as_bool().unwrap());

    // The volume fills mid-append: the next WAL write takes a 3-byte
    // torn prefix and fails with ENOSPC, then stays full.
    let plan = Arc::new(WriteFaultPlan::new());
    platform
        .set_write_fault_plan(Some(Arc::clone(&plan)))
        .unwrap();
    plan.arm_enospc(3);

    // The faulted upload is refused with 503 — not a panic, not a
    // silent drop.
    let refused = call_at(&server, &key, "data/add", &add_body(10), 20);
    assert_eq!(refused.status, 503, "{refused:?}");

    // The store is now read-only: mutations 503, queries still 200.
    let still_refused = call_at(&server, &key, "data/add", &add_body(11), 21);
    assert_eq!(still_refused.status, 503, "{still_refused:?}");
    assert!(still_refused.body["error"]
        .as_str()
        .unwrap()
        .contains("read-only"));
    let q = call_at(
        &server,
        &key,
        "data/search",
        r#"{"query":{"Textual":{"text":"street","mode":"All"}}}"#,
        22,
    );
    assert!(q.is_ok(), "{q:?}");
    assert_eq!(q.body["count"].as_u64().unwrap(), 3);
    let h = call_at(&server, &key, "health", "", 23);
    assert_eq!(h.body["state"].as_str().unwrap(), "read_only");
    assert!(h.body["write_faults"].as_u64().unwrap() >= 1);
    assert!(!h.body["last_error"].is_null());

    // The disk frees up: the next mutation repairs the torn tail and
    // succeeds. A scheme registration journals exactly one commit, so
    // the intermediate Degraded state (healing but not yet proven) is
    // observable through the health endpoint before the next write
    // returns the platform to Ok. No restart involved.
    plan.clear();
    let healed = call_at(
        &server,
        &key,
        "schemes/register",
        r#"{"name":"binary","labels":["clean","dirty"]}"#,
        30,
    );
    assert!(healed.is_ok(), "{healed:?}");
    let h = call_at(&server, &key, "health", "", 31);
    assert_eq!(h.body["state"].as_str().unwrap(), "degraded");
    // An upload journals several commits; the first one proves the
    // write path and the platform is Ok again by the time it returns.
    let confirmed = call_at(&server, &key, "data/add", &add_body(13), 32);
    assert!(confirmed.is_ok(), "{confirmed:?}");
    let h = call_at(&server, &key, "health", "", 33);
    assert_eq!(h.body["state"].as_str().unwrap(), "ok");
    assert!(h.body["last_error"].is_null());

    // Everything acked survived; nothing shed was resurrected. A
    // reopen replays to exactly the four acked images.
    let q = call_at(
        &server,
        &key,
        "data/search",
        r#"{"query":{"Textual":{"text":"street","mode":"All"}}}"#,
        40,
    );
    assert_eq!(q.body["count"].as_u64().unwrap(), 4);
    drop(server);
    drop(platform);
    let (reopened, _r) = Tvdp::open(&dir, fast_config()).unwrap();
    assert_eq!(reopened.stats().images, 4);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Deadlines: a tight virtual-clock budget surfaces as 504.
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_surfaces_as_504() {
    let platform = Arc::new(Tvdp::new(fast_config()));
    let user = platform.register_user("analyst", Role::Researcher);
    let server = ApiServer::with_rate_limit(Arc::clone(&platform), open_limit());
    let key = server.issue_key(user);
    let r = call_at(&server, &key, "data/add", &add_body(0), 0);
    assert!(r.is_ok(), "{r:?}");

    let request = ApiRequest::new(
        &key,
        "data/search",
        r#"{"query":{"Textual":{"text":"street","mode":"All"}}}"#,
    )
    .with_deadline(5);
    // Plenty of budget: identical results to an undeadlined search.
    let ok = server.handle(&request, 0);
    assert!(ok.is_ok(), "{ok:?}");
    assert_eq!(ok.body["count"].as_u64().unwrap(), 1);
    // Already expired on arrival: 504 with the modeled clock in the
    // error, and the decision does not depend on pool width.
    let expired = server.handle(&request, 10);
    assert_eq!(expired.status, 504, "{expired:?}");
    assert!(expired.body["error"]
        .as_str()
        .unwrap()
        .contains("deadline exceeded"));
}
