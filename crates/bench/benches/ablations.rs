//! Design-choice ablations called out in DESIGN.md:
//!
//! * **Oriented R-tree** (direction-augmented nodes) vs plain R-tree with
//!   direction post-filtering,
//! * **Visual R*-tree** (one hybrid traversal) vs the two chained plans:
//!   spatial-first + feature post-filter and visual-first + spatial
//!   post-filter.

use criterion::{criterion_group, criterion_main, Criterion};
use tvdp_bench::index_workload::{build_indexes, build_workload};
use tvdp_kernel::l2;

const N: usize = 20_000;
const DIM: usize = 64;
const QUERIES: usize = 32;
const VISUAL_THRESHOLD: f32 = 1.0;

fn bench_oriented(c: &mut Criterion) {
    let w = build_workload(N, DIM, QUERIES, 11);
    let idx = build_indexes(&w);
    let mut group = c.benchmark_group("directed_query");
    group.bench_function("oriented_rtree", |b| {
        let mut qi = 0;
        b.iter(|| {
            let (q, d) = (&w.query_boxes[qi % QUERIES], &w.query_dirs[qi % QUERIES]);
            qi += 1;
            idx.oriented.range_directed(q, d).len()
        })
    });
    group.bench_function("rtree_plus_postfilter", |b| {
        let mut qi = 0;
        b.iter(|| {
            let (q, d) = (&w.query_boxes[qi % QUERIES], &w.query_dirs[qi % QUERIES]);
            qi += 1;
            // Plain spatial index, then re-resolve the FOV and filter by
            // direction.
            idx.rtree
                .range(q)
                .into_iter()
                .filter(|&&id| w.fovs[id].0.direction_range().overlaps(d))
                .count()
        })
    });
    group.finish();
}

fn bench_hybrid_regime(
    c: &mut Criterion,
    name: &str,
    boxes: fn(&tvdp_bench::index_workload::IndexWorkload) -> &Vec<tvdp_geo::BBox>,
) {
    let w = build_workload(N, DIM, QUERIES, 12);
    let idx = build_indexes(&w);
    let mut group = c.benchmark_group(name);
    let boxes = boxes(&w).clone();
    group.bench_function("visual_rtree_hybrid", |b| {
        let mut qi = 0;
        b.iter(|| {
            let (q, f) = (&boxes[qi % QUERIES], &w.query_features[qi % QUERIES]);
            qi += 1;
            idx.hybrid
                .range_visual(&idx.slab, q, f, VISUAL_THRESHOLD)
                .len()
        })
    });
    group.bench_function("spatial_first_then_visual_filter", |b| {
        let mut qi = 0;
        b.iter(|| {
            let (q, f) = (&boxes[qi % QUERIES], &w.query_features[qi % QUERIES]);
            qi += 1;
            idx.rtree
                .range(q)
                .into_iter()
                .filter(|&&id| l2(&w.features[id], f) <= VISUAL_THRESHOLD)
                .count()
        })
    });
    group.bench_function("visual_first_then_spatial_filter", |b| {
        let mut qi = 0;
        b.iter(|| {
            let (q, f) = (&boxes[qi % QUERIES], &w.query_features[qi % QUERIES]);
            qi += 1;
            idx.lsh
                .within_radius(&idx.slab, f, VISUAL_THRESHOLD)
                .into_iter()
                .filter(|&(_, id)| w.fovs[id].0.scene_location().intersects(q))
                .count()
        })
    });
    group.finish();
}

fn bench_hybrid_selective(c: &mut Criterion) {
    bench_hybrid_regime(c, "spatial_visual_selective", |w| &w.query_boxes);
}

fn bench_hybrid_broad(c: &mut Criterion) {
    bench_hybrid_regime(c, "spatial_visual_broad", |w| &w.query_boxes_broad);
}

criterion_group!(
    benches,
    bench_oriented,
    bench_hybrid_selective,
    bench_hybrid_broad
);
criterion_main!(benches);
