//! Criterion wrapper for the Fig. 6 experiment (scaled down so the
//! benchmark suite stays fast; run the `fig6` binary for full tables).

use criterion::{criterion_group, criterion_main, Criterion};
use tvdp_bench::{run_fig6, ClassificationConfig};

fn bench_fig6(c: &mut Criterion) {
    let config = ClassificationConfig {
        n_images: 150,
        image_size: 32,
        bow_vocabulary: 16,
        head_hidden: 16,
        head_epochs: 10,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("feature_classifier_matrix_150imgs", |b| {
        b.iter(|| {
            let result = run_fig6(&config);
            assert_eq!(result.cells.len(), 15);
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
