//! Criterion wrapper for the Fig. 7 experiment (per-category F1 of the
//! winning SVM + CNN combination).

use criterion::{criterion_group, criterion_main, Criterion};
use tvdp_bench::{run_fig7, ClassificationConfig};

fn bench_fig7(c: &mut Criterion) {
    let config = ClassificationConfig {
        n_images: 150,
        image_size: 32,
        bow_vocabulary: 16,
        head_hidden: 16,
        head_epochs: 10,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("svm_cnn_per_category_150imgs", |b| {
        b.iter(|| {
            let result = run_fig7(&config);
            assert_eq!(result.per_class.len(), 5);
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
