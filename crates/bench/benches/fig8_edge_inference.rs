//! Criterion wrapper for the Fig. 8 experiment: the (model × device)
//! inference-latency grid on the edge simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use tvdp_bench::{run_fig8, Fig8Config};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.bench_function("latency_grid_200runs", |b| {
        b.iter(|| {
            let result = run_fig8(&Fig8Config { runs: 200, seed: 7 });
            assert_eq!(result.cells.len(), 9);
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
