//! Criterion wrapper for the Fig. 9 translational scenario (scaled down;
//! run the `fig9` binary for the full report).

use criterion::{criterion_group, criterion_main, Criterion};
use tvdp_bench::{run_fig9, Fig9Config};

fn bench_fig9(c: &mut Criterion) {
    let config = Fig9Config {
        n_images: 150,
        image_size: 32,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("translational_scenario_150imgs", |b| {
        b.iter(|| {
            let result = run_fig9(&config);
            assert!(result.hotspot_cells > 0);
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
