//! Section IV-C benchmarks: every index against the linear scan it
//! replaces.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tvdp_bench::index_workload::{build_indexes, build_workload};

const N: usize = 20_000;
const DIM: usize = 16;
const QUERIES: usize = 32;

fn bench_spatial(c: &mut Criterion) {
    let w = build_workload(N, DIM, QUERIES, 1);
    let idx = build_indexes(&w);
    let mut group = c.benchmark_group("spatial_range");
    group.bench_function("rtree", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &w.query_boxes[qi % QUERIES];
            qi += 1;
            idx.rtree.range(q).len()
        })
    });
    group.bench_function("linear_scan", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &w.query_boxes[qi % QUERIES];
            qi += 1;
            w.fovs
                .iter()
                .filter(|(f, _)| f.scene_location().intersects(q))
                .count()
        })
    });
    group.finish();
}

fn bench_visual(c: &mut Criterion) {
    let w = build_workload(N, DIM, QUERIES, 2);
    let idx = build_indexes(&w);
    let mut group = c.benchmark_group("visual_knn10");
    group.bench_function("lsh_candidates", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &w.query_features[qi % QUERIES];
            qi += 1;
            idx.lsh.knn(&idx.slab, q, 10).len()
        })
    });
    group.bench_function("exact_scan", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &w.query_features[qi % QUERIES];
            qi += 1;
            idx.lsh.knn_exact(&idx.slab, q, 10).len()
        })
    });
    group.finish();
}

fn bench_temporal_build(c: &mut Criterion) {
    // Ingestion cost: building each index from scratch.
    let w = build_workload(4_000, DIM, 1, 3);
    let mut group = c.benchmark_group("index_build_4k");
    group.sample_size(10);
    group.bench_function("all_indexes", |b| {
        b.iter_batched(|| (), |()| build_indexes(&w), BatchSize::PerIteration)
    });
    group.finish();
}

criterion_group!(benches, bench_spatial, bench_visual, bench_temporal_build);
criterion_main!(benches);
