//! Kernel and work-pool benchmarks backing `BENCH_kernels.json`:
//!
//! * scalar loops vs the chunked `tvdp_kernel` kernels (`l2_sq`, `dot`)
//!   at feature dimensions 64 (color histogram), 512 (CNN embedding),
//!   and 4096 (stacked descriptors),
//! * serial vs pooled k-means fitting,
//! * per-query loop vs `QueryEngine::execute_batch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use tvdp_kernel::{dot, l2_sq, Pool};
use tvdp_ml::KMeans;

const DIMS: [usize; 3] = [64, 512, 4096];

fn scalar_sq_dist(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..a.len().min(b.len()) {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

fn scalar_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..a.len().min(b.len()) {
        acc += a[i] * b[i];
    }
    acc
}

fn random_vec(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_distance_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut group = c.benchmark_group("l2_sq");
    for dim in DIMS {
        let a = random_vec(&mut rng, dim);
        let b = random_vec(&mut rng, dim);
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |bch, _| {
            bch.iter(|| scalar_sq_dist(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("kernel", dim), &dim, |bch, _| {
            bch.iter(|| l2_sq(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dot");
    for dim in DIMS {
        let a = random_vec(&mut rng, dim);
        let b = random_vec(&mut rng, dim);
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |bch, _| {
            bch.iter(|| scalar_dot(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("kernel", dim), &dim, |bch, _| {
            bch.iter(|| dot(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

fn bench_kmeans_pool(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let data: Vec<Vec<f32>> = (0..2048).map(|_| random_vec(&mut rng, 32)).collect();
    let mut group = c.benchmark_group("kmeans_fit");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, _| {
            bch.iter(|| KMeans::fit_with_pool(&data, 16, 10, 3, &pool))
        });
    }
    group.finish();
}

fn bench_query_batch(c: &mut Criterion) {
    use std::sync::Arc;
    use tvdp_bench::index_workload::build_workload;
    use tvdp_query::engine::EngineConfig;
    use tvdp_query::{Query, QueryEngine, VisualMode};
    use tvdp_storage::{ImageMeta, ImageOrigin, VisualStore};
    use tvdp_vision::FeatureKind;

    let w = build_workload(4096, 64, 64, 5);
    let store = Arc::new(VisualStore::new());
    for (i, feature) in w.features.iter().enumerate() {
        let (fov, _) = &w.fovs[i];
        let id = store
            .add_image(
                ImageMeta {
                    uploader: tvdp_storage::UserId(0),
                    gps: fov.camera,
                    fov: Some(*fov),
                    captured_at: i as i64,
                    uploaded_at: i as i64,
                    keywords: Vec::new(),
                },
                ImageOrigin::Original,
                None,
            )
            .expect("insert");
        store
            .put_feature(id, FeatureKind::Cnn, feature.clone())
            .expect("feature");
    }
    let engine = QueryEngine::build(store, EngineConfig::default());
    let queries: Vec<Query> = w
        .query_features
        .iter()
        .map(|f| Query::Visual {
            example: f.clone(),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        })
        .collect();

    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    group.bench_function("per_query_loop", |bch| {
        bch.iter(|| {
            queries
                .iter()
                .map(|q| engine.execute(q).len())
                .sum::<usize>()
        })
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("batch_threads", threads),
            &threads,
            |bch, _| {
                bch.iter(|| {
                    engine
                        .execute_batch_with_pool(&queries, &pool)
                        .iter()
                        .map(Vec::len)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_distance_kernels,
    bench_kmeans_pool,
    bench_query_batch
);
criterion_main!(kernels);
