//! Section III experiment: iterative spatial crowdsourcing driven by the
//! direction-aware coverage model, with the greedy-vs-matching assignment
//! ablation.

use tvdp_bench::{run_coverage, CoverageConfig};

fn main() {
    let config = CoverageConfig::default();
    eprintln!(
        "coverage_campaign: {}m region, {}m cells, goal {} sectors/cell, {} workers",
        config.region_m, config.cell_m, config.min_sectors, config.n_workers
    );
    let result = run_coverage(&config);

    println!("\nIterative Spatial Crowdsourcing — direction coverage per round\n");
    for outcome in &result.outcomes {
        println!(
            "{:<10} issued {:>5}  completed {:>5}  satisfied: {}",
            outcome.strategy, outcome.tasks_issued, outcome.tasks_completed, outcome.satisfied
        );
        let series: Vec<String> = outcome
            .coverage_per_round
            .iter()
            .map(|c| format!("{c:.2}"))
            .collect();
        println!("           coverage: {}", series.join(" -> "));
    }
    println!("\npaper shape: coverage rises monotonically; iteration closes the gaps");
}
