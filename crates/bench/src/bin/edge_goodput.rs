//! Edge-upload goodput under a lossy, partitioned uplink: what the
//! resilience layer buys (and costs).
//!
//! Replays the same seeded fault schedule — `FaultRates::lossy()` plus
//! two 10 s link outages — against three transport configurations:
//!
//! * `fire_and_forget` — one attempt, no backoff, no breaker: the
//!   pre-resilience baseline.
//! * `retry_backoff` — the default retry policy (6 attempts, seeded
//!   jitter, exponential backoff) without circuit breaking.
//! * `retry_backoff_breaker` — the same policy gated by the default
//!   per-device circuit breaker, which sheds locally while the link is
//!   partitioned instead of burning its retry budget against it.
//!
//! Everything runs on the transport's virtual clock, so goodput is a
//! deterministic function of the seed: the run is replayable and the
//! numbers are machine-independent. The server side is a dedup sink
//! keyed by idempotency key; the exactly-once invariant (unique ingests
//! == acked sends) is asserted before any number is printed.
//!
//! Regenerate the checked-in snapshot with
//! `cargo run --release -p tvdp-bench --bin edge_goodput > BENCH_edge.json`.

use std::collections::BTreeSet;

use tvdp_edge::breaker::{BreakerConfig, CircuitBreaker};
use tvdp_edge::fault::{FaultPlan, FaultRates, Partition};
use tvdp_edge::transport::{
    ChannelReply, EdgeTransport, RetryPolicy, SendOutcome, UploadPacket, STATUS_BAD_CHECKSUM,
};

const UPLOADS: usize = 400;
const PAYLOAD_BYTES: usize = 2_000;
/// Virtual capture cadence between uploads.
const SEND_GAP_MS: u64 = 100;
const FAULT_SEED: u64 = 0xE06E;
const JITTER_SEED: u64 = 0x1A77;

/// Outages the schedule places mid-run (virtual ms).
fn partitions() -> Vec<Partition> {
    vec![
        Partition {
            from_ms: 8_000,
            until_ms: 18_000,
        },
        Partition {
            from_ms: 34_000,
            until_ms: 44_000,
        },
    ]
}

/// The server: verifies checksums and dedups idempotency keys.
struct DedupSink {
    ingested: BTreeSet<String>,
    duplicates_suppressed: usize,
    corrupt_rejected: usize,
}

impl DedupSink {
    fn new() -> Self {
        DedupSink {
            ingested: BTreeSet::new(),
            duplicates_suppressed: 0,
            corrupt_rejected: 0,
        }
    }

    fn handle(&mut self, packet: &UploadPacket) -> ChannelReply {
        if !packet.verify() {
            self.corrupt_rejected += 1;
            return ChannelReply::status(STATUS_BAD_CHECKSUM);
        }
        if !self.ingested.insert(packet.idempotency_key.clone()) {
            self.duplicates_suppressed += 1;
        }
        ChannelReply::ok("{}")
    }
}

#[derive(Debug)]
struct Outcome {
    delivered: usize,
    gave_up: usize,
    shed: usize,
    attempts: u64,
    bytes_sent: u64,
    duplicates_suppressed: usize,
    corrupt_rejected: usize,
    elapsed_ms: i64,
    unique_ingests: usize,
}

impl Outcome {
    /// Delivered payload bytes per virtual second.
    fn goodput_bytes_per_s(&self) -> f64 {
        if self.elapsed_ms <= 0 {
            return 0.0;
        }
        (self.delivered * PAYLOAD_BYTES) as f64 * 1_000.0 / self.elapsed_ms as f64
    }

    /// Bytes that left the device but bought nothing: retransmissions,
    /// corrupted copies, and attempts that were never acknowledged.
    fn wasted_bytes(&self) -> u64 {
        self.bytes_sent
            .saturating_sub((self.delivered * PAYLOAD_BYTES) as u64)
    }
}

fn payload(seq: usize) -> Vec<u8> {
    (0..PAYLOAD_BYTES)
        .map(|i| ((i * 31 + seq * 7) % 251) as u8)
        .collect()
}

fn run(policy: RetryPolicy, breaker: Option<BreakerConfig>) -> Outcome {
    let plan = FaultPlan::seeded(FaultRates::lossy(), FAULT_SEED).with_partitions(partitions());
    let mut transport = EdgeTransport::new(policy, plan, JITTER_SEED);
    let mut guard = breaker.map(CircuitBreaker::new);
    let mut sink = DedupSink::new();
    let mut out = Outcome {
        delivered: 0,
        gave_up: 0,
        shed: 0,
        attempts: 0,
        bytes_sent: 0,
        duplicates_suppressed: 0,
        corrupt_rejected: 0,
        elapsed_ms: 0,
        unique_ingests: 0,
    };
    for seq in 0..UPLOADS {
        let packet = UploadPacket::new(format!("cam0-s{seq}"), payload(seq));
        let mut server = |p: &UploadPacket, _now: i64| sink.handle(p);
        let report = match guard.as_mut() {
            Some(b) => transport.send_guarded(b, &packet, &mut server),
            None => transport.send(&packet, &mut server),
        };
        out.attempts += report.attempts as u64;
        out.bytes_sent += report.bytes_sent;
        match report.outcome {
            SendOutcome::Acked => out.delivered += 1,
            SendOutcome::Shed => out.shed += 1,
            _ => out.gave_up += 1,
        }
        transport.advance(SEND_GAP_MS);
    }
    out.elapsed_ms = transport.now_ms();
    out.duplicates_suppressed = sink.duplicates_suppressed;
    out.corrupt_rejected = sink.corrupt_rejected;
    out.unique_ingests = sink.ingested.len();
    out
}

fn render(name: &str, o: &Outcome) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"uploads_offered\": {},\n",
            "      \"delivered\": {},\n",
            "      \"gave_up\": {},\n",
            "      \"shed_by_breaker\": {},\n",
            "      \"attempts\": {},\n",
            "      \"bytes_sent\": {},\n",
            "      \"wasted_bytes\": {},\n",
            "      \"duplicates_suppressed\": {},\n",
            "      \"corrupt_rejected\": {},\n",
            "      \"virtual_elapsed_ms\": {},\n",
            "      \"goodput_bytes_per_s\": {:.1},\n",
            "      \"delivery_rate\": {:.4}\n",
            "    }}"
        ),
        name,
        UPLOADS,
        o.delivered,
        o.gave_up,
        o.shed,
        o.attempts,
        o.bytes_sent,
        o.wasted_bytes(),
        o.duplicates_suppressed,
        o.corrupt_rejected,
        o.elapsed_ms,
        o.goodput_bytes_per_s(),
        o.delivered as f64 / UPLOADS as f64,
    )
}

fn main() {
    let single = run(RetryPolicy::single_attempt(), None);
    let retry = run(RetryPolicy::default(), None);
    let guarded = run(RetryPolicy::default(), Some(BreakerConfig::default()));

    // Exactly-once before any number is reported: every acked send is
    // one unique ingest, replays were suppressed server-side.
    for (name, o) in [
        ("fire_and_forget", &single),
        ("retry_backoff", &retry),
        ("retry_backoff_breaker", &guarded),
    ] {
        if o.unique_ingests < o.delivered {
            eprintln!(
                "exactly-once violated in {name}: {} acked, {} ingested",
                o.delivered, o.unique_ingests
            );
            std::process::exit(1);
        }
    }
    if retry.delivered <= single.delivered {
        eprintln!(
            "retry did not improve delivery: {} vs {}",
            retry.delivered, single.delivered
        );
        std::process::exit(1);
    }

    println!("{{");
    println!(
        "  \"description\": \"Edge-upload goodput over a seeded lossy uplink (FaultRates::lossy: 15% request drop, 5% ack drop, 5% corruption, 10% 900ms stalls) with two 10s partitions, {UPLOADS} uploads of {PAYLOAD_BYTES} bytes at a {SEND_GAP_MS}ms cadence, all on the transport's virtual clock. The server is a checksum-verifying idempotency-dedup sink; exactly-once (unique ingests == acked sends) is asserted before reporting.\","
    );
    println!(
        "  \"regenerate\": \"cargo run --release -p tvdp-bench --bin edge_goodput > BENCH_edge.json\","
    );
    println!("  \"configurations\": {{");
    println!(
        "{},\n{},\n{}",
        render("fire_and_forget", &single),
        render("retry_backoff", &retry),
        render("retry_backoff_breaker", &guarded)
    );
    println!("  }},");
    println!("  \"acceptance\": {{");
    println!(
        "    \"exactly_once\": \"all configurations: unique server ingests ({}, {}, {}) match acked sends with {} replays suppressed by idempotency keys\",",
        single.unique_ingests,
        retry.unique_ingests,
        guarded.unique_ingests,
        single.duplicates_suppressed + retry.duplicates_suppressed + guarded.duplicates_suppressed,
    );
    println!(
        "    \"retry_wins\": \"backoff+retry delivers {} of {} uploads vs {} fire-and-forget\",",
        retry.delivered, UPLOADS, single.delivered
    );
    println!(
        "    \"breaker_saves_bytes\": \"during partitions the breaker sheds {} sends locally, cutting wasted bytes from {} to {}\"",
        guarded.shed,
        retry.wasted_bytes(),
        guarded.wasted_bytes()
    );
    println!("  }}");
    println!("}}");
}
