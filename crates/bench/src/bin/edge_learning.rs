//! Section VI experiment: the crowd-based learning loop — margin-
//! prioritized vs random sample selection at equal bandwidth, and the
//! feature-vs-raw upload saving.

use tvdp_bench::{run_edge_learning, EdgeLearningConfig};

fn main() {
    let config = EdgeLearningConfig::default();
    eprintln!(
        "edge_learning: {} images, {} edges, {} rounds, {} B/edge/round",
        config.n_images, config.n_edges, config.rounds, config.per_edge_budget_bytes
    );
    let t0 = std::time::Instant::now();
    let result = run_edge_learning(&config);
    eprintln!("edge_learning: done in {:.1}s", t0.elapsed().as_secs_f64());

    println!("\nCrowd-Based Learning — test F1 per retraining round\n");
    for outcome in &result.outcomes {
        let series: Vec<String> = outcome
            .f1_per_round
            .iter()
            .map(|f| format!("{f:.3}"))
            .collect();
        println!("{:<8} {}", outcome.strategy, series.join(" -> "));
    }
    println!(
        "\nbandwidth: {} B/feature vs {} B/raw image  (saving {:.1}%)",
        result.feature_bytes,
        result.raw_image_bytes,
        result.outcomes[0].bandwidth_saving * 100.0
    );
    println!("paper shape: retraining from edge data upgrades the model; prioritized");
    println!("selection matches or beats random at equal bandwidth");
}
