//! Regenerates the paper's Fig. 6: F1 of every (image feature, classifier)
//! combination on the street-cleanliness dataset.
//!
//! Usage: `fig6 [--scale N]` where N multiplies the default dataset size
//! (N=15 approaches the paper's 22K images; expect long runtimes).

use tvdp_bench::classification::run_cv_protocol;
use tvdp_bench::{run_fig6, ClassificationConfig};

fn main() {
    let scale: usize = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let config = ClassificationConfig {
        n_images: 3000 * scale,
        ..Default::default()
    };
    eprintln!(
        "fig6: {} images, {}px, BoW vocab {}, seed {:#x}",
        config.n_images, config.image_size, config.bow_vocabulary, config.seed
    );
    let t0 = std::time::Instant::now();
    let result = run_fig6(&config);
    eprintln!("fig6: done in {:.1}s", t0.elapsed().as_secs_f64());

    println!("\nFig. 6 — Various Classifiers and Image Features (macro F1)\n");
    println!(
        "{:<18} {:>8} {:>14} {:>8}",
        "classifier", "Color", "SIFT-BoW", "CNN"
    );
    for clf in [
        "kNN",
        "Decision Tree",
        "Naive Bayes",
        "Random Forest",
        "SVM",
    ] {
        let get = |f: &str| result.f1(f, clf).unwrap_or(f64::NAN);
        println!(
            "{:<18} {:>8.3} {:>14.3} {:>8.3}",
            clf,
            get("Color Histogram"),
            get("SIFT-BoW"),
            get("CNN")
        );
    }
    let best = result.best();
    println!(
        "\nbest: {} + {} (F1 = {:.3}); paper: SVM + CNN (F1 = 0.83), SVM + SIFT-BoW = 0.64",
        best.classifier, best.feature, best.f1
    );
    println!(
        "feature means: Color {:.3} | SIFT-BoW {:.3} | CNN {:.3}",
        result.mean_f1_for_feature("Color Histogram"),
        result.mean_f1_for_feature("SIFT-BoW"),
        result.mean_f1_for_feature("CNN"),
    );

    if std::env::args().any(|a| a == "--cv") {
        // The paper's protocol: 10-fold CV on the 80% training split.
        eprintln!("fig6: running the 10-fold CV protocol (SVM per feature family)...");
        let cv = run_cv_protocol(&config, 10);
        println!(
            "
10-fold CV on the training split (SVM):"
        );
        for (feature, mean, std) in &cv.rows {
            println!("  {feature:<16} F1 = {mean:.3} ± {std:.3}");
        }
    }
}
