//! Regenerates the paper's Fig. 7: per-category F1 of the winning
//! combination (SVM + CNN features) across the five street-cleanliness
//! classes.

use tvdp_bench::{run_fig7, ClassificationConfig};

fn main() {
    let scale: usize = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let config = ClassificationConfig {
        n_images: 3000 * scale,
        ..Default::default()
    };
    eprintln!("fig7: {} images, seed {:#x}", config.n_images, config.seed);
    let result = run_fig7(&config);

    println!("\nFig. 7 — SVM + CNN per cleanliness category\n");
    println!(
        "{:<22} {:>10} {:>8} {:>8}",
        "category", "precision", "recall", "F1"
    );
    for (label, p, r, f1) in &result.per_class {
        println!("{label:<22} {p:>10.3} {r:>8.3} {f1:>8.3}");
    }
    println!("\nmacro F1 = {:.3}", result.macro_f1);
    println!(
        "paper shape: all categories >= ~0.8, Overgrown Vegetation highest, Encampment lowest"
    );
}
