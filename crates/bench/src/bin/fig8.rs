//! Regenerates the paper's Fig. 8: average inference time (ms, log10
//! scale) for the three transfer-learning models on the three device
//! tiers.

use tvdp_bench::{run_fig8, Fig8Config};

fn main() {
    let runs: usize = std::env::args()
        .skip_while(|a| a != "--runs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let result = run_fig8(&Fig8Config {
        runs,
        ..Default::default()
    });

    println!("\nFig. 8 — Inference Time vs Models (mean over {runs} runs)\n");
    println!(
        "{:<14} {:>18} {:>18} {:>18}",
        "model", "Desktop", "Smartphone", "Raspberry PI"
    );
    for model in ["MobileNetV2", "MobileNetV1", "InceptionV3"] {
        let cell = |device: &str| {
            let ms = result.mean_ms(model, device).unwrap_or(f64::NAN);
            format!("{ms:>9.1}ms ({:>4.2})", ms.log10())
        };
        println!(
            "{model:<14} {:>18} {:>18} {:>18}",
            cell("Desktop"),
            cell("Smartphone"),
            cell("Raspberry PI")
        );
    }
    println!("\n(parenthesized: log10 ms — the paper's axis)");
    println!(
        "RPi vs desktop separation: {:.2} orders of magnitude (paper: ~1.5)",
        result.rpi_desktop_orders()
    );
}
