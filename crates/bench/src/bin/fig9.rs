//! Regenerates the paper's Fig. 9 scenario: translational reuse of
//! street-cleanliness annotations for homeless counting, plus the
//! graffiti follow-on study over the same data.

use tvdp_bench::{run_fig9, Fig9Config};

fn main() {
    let scale: usize = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let config = Fig9Config {
        n_images: 900 * scale,
        ..Default::default()
    };
    eprintln!(
        "fig9: {} images, {}% human-labelled, seed {:#x}",
        config.n_images,
        (config.labelled_fraction * 100.0) as u32,
        config.seed
    );
    let t0 = std::time::Instant::now();
    let r = run_fig9(&config);
    eprintln!("fig9: done in {:.1}s", t0.elapsed().as_secs_f64());

    println!("\nFig. 9 — Translational Data Scenario\n");
    println!("LASAN uploads + labels        -> USC trains cleanliness model");
    println!(
        "  cleanliness macro F1 on new images : {:.3}",
        r.cleanliness_f1
    );
    println!("\nHomeless Coordinator reuses 'encampment' annotations (no new learning):");
    println!(
        "  encampment precision               : {:.3}",
        r.encampment_precision
    );
    println!(
        "  encampment recall                  : {:.3}",
        r.encampment_recall
    );
    println!(
        "  tents counted / ground truth       : {} / {}",
        r.tents_counted, r.tents_ground_truth
    );
    println!(
        "  hotspot cells (densest holds {:>3})  : {}",
        r.top_hotspot_count, r.hotspot_cells
    );
    println!(
        "\nGraffiti study over the SAME {} stored images:",
        r.images_reused
    );
    println!(
        "  graffiti macro F1                  : {:.3}",
        r.graffiti_f1
    );
    println!("\npaper shape: one dataset, three studies — zero additional collection");
}
