//! Sustained durable-ingest benchmark: per-op fsync vs group commit.
//!
//! The question this bench answers: with durability *on* (every acked
//! ingest recoverable after a crash), how many ingests per second can
//! the storage engine sustain, and what does group commit buy?
//!
//! * `per_op_fsync` — the pre-group-commit design: every journaled op
//!   is its own framed write + `fdatasync`. One platform ingest is
//!   three ops (image row + color-histogram + CNN feature), so three
//!   syncs per acked upload.
//! * `group_commit` — `DurableStore::apply_batch`: every op pending at
//!   the commit point rides one framed write and **one** sync, then
//!   the whole batch acks. On-disk bytes are identical to the per-op
//!   journal (torture-verified in `crates/storage/tests/durability.rs`),
//!   so crash recovery semantics are unchanged — only the sync count
//!   drops.
//!
//! Shards scale the writer side: `S` independent `DurableStore`
//! directories, one writer thread per shard on a `tvdp-kernel` pool,
//! mirroring the platform's geo-grid sharding. Within a shard the op
//! stream is scripted, so the journal bytes are a pure function of the
//! script — thread count and batch size change wall-clock only, never
//! bytes (held by `crates/core` determinism tests).
//!
//! A second section measures recovery: time to reopen a store whose
//! WAL holds N ops, for N up to 100 000 — and proves the replayed
//! state is *byte-identical* to the no-crash state by compacting both
//! and comparing `snapshot.json` bytes.
//!
//! Prints a JSON document to stdout; regenerate the checked-in
//! snapshot with
//! `cargo run --release -p tvdp-bench --bin ingest_throughput > BENCH_ingest.json`.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use tvdp_geo::GeoPoint;
use tvdp_kernel::Pool;
use tvdp_storage::{DurableStore, ImageId, ImageMeta, ImageOrigin, UserId, WalOp};
use tvdp_vision::FeatureKind;

/// Acked uploads per shard per mode (each upload journals three ops).
const INGESTS_PER_SHARD: usize = 384;
/// Ops coalesced per group commit (the platform batches a whole API
/// `data/add_batch` shard group; 64 uploads is its order of magnitude).
const GROUP_INGESTS: usize = 64;
const SHARD_COUNTS: [usize; 3] = [1, 4, 8];
/// WAL lengths (in ops) for the recovery-time section.
const RECOVERY_WAL_OPS: [usize; 3] = [1_000, 10_000, 100_000];
/// Group size used to lay the recovery WALs down quickly.
const RECOVERY_BATCH: usize = 512;
const WORDS: [&str; 6] = ["street", "tent", "trash", "corner", "downtown", "alley"];

fn ok<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ingest_throughput: {what} failed: {e:?}");
            std::process::exit(1);
        }
    }
}

fn bench_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tvdp-bench-ingest-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    ok(std::fs::create_dir_all(&p), "create bench dir");
    p
}

/// Deterministic upload metadata — no RNG so the journal bytes are a
/// pure function of `(shard, seq)`.
fn upload_meta(shard: usize, seq: usize) -> ImageMeta {
    ImageMeta {
        uploader: UserId((seq % 20) as u64),
        gps: GeoPoint::new(
            34.0 + shard as f64 * 0.01 + (seq % 50) as f64 * 1e-4,
            -118.3 + (seq % 70) as f64 * 1e-4,
        ),
        fov: None,
        captured_at: 1_000 + seq as i64,
        uploaded_at: 1_100 + seq as i64,
        keywords: vec![WORDS[seq % WORDS.len()].into()],
    }
}

/// The three ops one platform ingest journals: image row, color
/// histogram, CNN feature.
fn upload_ops(shard: usize, seq: usize, id: u64) -> [WalOp; 3] {
    let id = ImageId(id);
    let color: Vec<f32> = (0..4).map(|k| ((seq + k) % 7) as f32 * 0.125).collect();
    let cnn: Vec<f32> = (0..8)
        .map(|k| ((seq * 3 + k) % 11) as f32 * 0.25 - 1.0)
        .collect();
    [
        WalOp::AddImage {
            id,
            meta: upload_meta(shard, seq),
            origin: ImageOrigin::Original,
            pixels: None,
        },
        WalOp::PutFeature {
            image: id,
            kind: FeatureKind::ColorHistogram,
            vector: color,
        },
        WalOp::PutFeature {
            image: id,
            kind: FeatureKind::Cnn,
            vector: cnn,
        },
    ]
}

fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    v[((v.len() - 1) as f64 * p) as usize]
}

/// Average `fdatasync` latency on the bench volume — the physical
/// constant both modes are made of.
fn fsync_probe_us() -> f64 {
    let dir = bench_dir("probe");
    let path = dir.join("probe.bin");
    let mut f = ok(std::fs::File::create(&path), "probe create");
    let rounds = 64;
    let t0 = Instant::now();
    for _ in 0..rounds {
        ok(f.write_all(&[0u8; 100]), "probe write");
        ok(f.sync_data(), "probe sync");
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / rounds as f64;
    drop(f);
    std::fs::remove_dir_all(&dir).ok();
    us
}

struct IngestRun {
    shards: usize,
    mode: &'static str,
    ingests: usize,
    wal_ops: usize,
    fsyncs: usize,
    elapsed_s: f64,
    /// Per-upload ack latencies (µs): time from the upload reaching
    /// the journal head to its (group's) sync returning.
    ack_us: Vec<f64>,
}

impl IngestRun {
    fn ingests_per_s(&self) -> f64 {
        self.ingests as f64 / self.elapsed_s
    }
    fn json(&self) -> String {
        format!(
            "    {{ \"shards\": {}, \"mode\": \"{}\", \"ingests\": {}, \"wal_ops\": {}, \"fsyncs\": {}, \"elapsed_s\": {:.3}, \"ingests_per_s\": {:.0}, \"ack_p50_us\": {:.0}, \"ack_p99_us\": {:.0} }}",
            self.shards,
            self.mode,
            self.ingests,
            self.wal_ops,
            self.fsyncs,
            self.elapsed_s,
            self.ingests_per_s(),
            percentile(&self.ack_us, 0.50),
            percentile(&self.ack_us, 0.99),
        )
    }
}

/// Runs `INGESTS_PER_SHARD` scripted uploads on each of `shards`
/// durable stores, one writer thread per shard. `group` picks the
/// commit discipline: `apply_batch` per upload (three ops, three
/// syncs) or per `GROUP_INGESTS`-upload group (one sync).
fn run_ingest(shards: usize, group: bool) -> IngestRun {
    let mode = if group {
        "group_commit"
    } else {
        "per_op_fsync"
    };
    let dirs: Vec<PathBuf> = (0..shards)
        .map(|s| bench_dir(&format!("{mode}-{shards}-{s}")))
        .collect();
    let stores: Vec<DurableStore> = dirs
        .iter()
        .map(|d| ok(DurableStore::open(d), "open").0)
        .collect();
    let pool = Pool::new(shards);
    let t0 = Instant::now();
    let per_shard: Vec<(Vec<f64>, usize)> = pool.scope(|scope| {
        let handles: Vec<_> = stores
            .iter()
            .enumerate()
            .map(|(s, ds)| {
                scope.spawn(move || {
                    let mut acks = Vec::with_capacity(INGESTS_PER_SHARD);
                    let mut fsyncs = 0usize;
                    if group {
                        for chunk in 0..INGESTS_PER_SHARD.div_ceil(GROUP_INGESTS) {
                            let lo = chunk * GROUP_INGESTS;
                            let hi = (lo + GROUP_INGESTS).min(INGESTS_PER_SHARD);
                            let mut ops = Vec::with_capacity((hi - lo) * 3);
                            for seq in lo..hi {
                                ops.extend(upload_ops(s, seq, (s * 1_000_000 + seq) as u64));
                            }
                            let b0 = Instant::now();
                            ok(ds.apply_batch(ops), "apply_batch");
                            fsyncs += 1;
                            let us = b0.elapsed().as_secs_f64() * 1e6;
                            // Every upload in the group acks when its
                            // group's single sync returns.
                            acks.extend(std::iter::repeat(us).take(hi - lo));
                        }
                    } else {
                        for seq in 0..INGESTS_PER_SHARD {
                            let b0 = Instant::now();
                            for op in upload_ops(s, seq, (s * 1_000_000 + seq) as u64) {
                                ok(ds.apply_batch(vec![op]), "apply per-op");
                                fsyncs += 1;
                            }
                            acks.push(b0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    (acks, fsyncs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| ok(h.join().map_err(|_| "writer panicked"), "join"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    for d in &dirs {
        std::fs::remove_dir_all(d).ok();
    }
    let mut ack_us = Vec::new();
    let mut fsyncs = 0;
    for (acks, f) in per_shard {
        ack_us.extend(acks);
        fsyncs += f;
    }
    IngestRun {
        shards,
        mode,
        ingests: shards * INGESTS_PER_SHARD,
        wal_ops: shards * INGESTS_PER_SHARD * 3,
        fsyncs,
        elapsed_s,
        ack_us,
    }
}

struct RecoveryRun {
    wal_ops: usize,
    wal_bytes: u64,
    recover_s: f64,
    replayed_ops: usize,
    byte_identical: bool,
}

impl RecoveryRun {
    fn json(&self) -> String {
        format!(
            "    {{ \"wal_ops\": {}, \"wal_bytes\": {}, \"recover_s\": {:.3}, \"replayed_ops\": {}, \"replay_ops_per_s\": {:.0}, \"byte_identical_to_no_crash\": {} }}",
            self.wal_ops,
            self.wal_bytes,
            self.recover_s,
            self.replayed_ops,
            self.replayed_ops as f64 / self.recover_s.max(1e-9),
            self.byte_identical,
        )
    }
}

/// Journals `n` AddImage ops into `dir` (group commits of
/// `RECOVERY_BATCH`) and returns the WAL's on-disk size.
fn lay_wal(dir: &PathBuf, n: usize) -> u64 {
    let (ds, _) = ok(DurableStore::open(dir), "open for lay");
    let mut seq = 0usize;
    while seq < n {
        let hi = (seq + RECOVERY_BATCH).min(n);
        let ops: Vec<WalOp> = (seq..hi)
            .map(|i| WalOp::AddImage {
                id: ImageId(i as u64),
                meta: upload_meta(0, i),
                origin: ImageOrigin::Original,
                pixels: None,
            })
            .collect();
        ok(ds.apply_batch(ops), "lay apply_batch");
        seq = hi;
    }
    ok(std::fs::metadata(dir.join("wal-0.log")), "wal metadata").len()
}

/// Compacts the store in `dir` and returns the published snapshot's
/// bytes.
fn compacted_snapshot_bytes(dir: &PathBuf) -> Vec<u8> {
    let (ds, _) = ok(DurableStore::open(dir), "open for compact");
    ok(ds.compact(), "compact");
    ok(std::fs::read(dir.join("snapshot.json")), "read snapshot")
}

/// Times a cold `DurableStore::open` over an `n`-op WAL and proves the
/// replayed state byte-identical to a store that applied the same
/// script without crashing.
fn run_recovery(n: usize) -> RecoveryRun {
    // The "crash" store: journal n ops, drop with the WAL intact.
    let crash_dir = bench_dir(&format!("recover-{n}"));
    let wal_bytes = lay_wal(&crash_dir, n);
    let t0 = Instant::now();
    let (ds, report) = ok(DurableStore::open(&crash_dir), "recovery open");
    let recover_s = t0.elapsed().as_secs_f64();
    let replayed_ops = report.replayed_ops;
    drop(ds);
    // The no-crash control: same script, never reopened.
    let control_dir = bench_dir(&format!("recover-{n}-control"));
    lay_wal(&control_dir, n);
    let byte_identical =
        compacted_snapshot_bytes(&crash_dir) == compacted_snapshot_bytes(&control_dir);
    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&control_dir).ok();
    RecoveryRun {
        wal_ops: n,
        wal_bytes,
        recover_s,
        replayed_ops,
        byte_identical,
    }
}

fn main() {
    let fsync_us = fsync_probe_us();
    eprintln!(
        "ingest_throughput: {INGESTS_PER_SHARD} uploads/shard (3 ops each), group {GROUP_INGESTS}, fdatasync ~{fsync_us:.0} us"
    );

    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        for group in [false, true] {
            let run = run_ingest(shards, group);
            eprintln!(
                "  {:<13} x{} shard(s): {:>7.0} ingests/s  ({} fsyncs, ack p99 {:>6.0} us)",
                run.mode,
                run.shards,
                run.ingests_per_s(),
                run.fsyncs,
                percentile(&run.ack_us, 0.99),
            );
            runs.push(run);
        }
    }

    let recoveries: Vec<RecoveryRun> = RECOVERY_WAL_OPS
        .iter()
        .map(|&n| {
            let r = run_recovery(n);
            eprintln!(
                "  recovery {:>7} ops: {:.3}s ({} replayed, byte-identical: {})",
                r.wal_ops, r.recover_s, r.replayed_ops, r.byte_identical
            );
            r
        })
        .collect();

    let speedup_at = |shards: usize| {
        let per_op = runs
            .iter()
            .find(|r| r.shards == shards && r.mode == "per_op_fsync");
        let grouped = runs
            .iter()
            .find(|r| r.shards == shards && r.mode == "group_commit");
        match (per_op, grouped) {
            (Some(p), Some(g)) => g.ingests_per_s() / p.ingests_per_s(),
            _ => 0.0,
        }
    };
    let speedup8 = speedup_at(8);
    let big = match recoveries.iter().find(|r| r.wal_ops == 100_000) {
        Some(r) => r,
        None => {
            eprintln!("ingest_throughput: missing 100k recovery run");
            std::process::exit(1);
        }
    };

    println!("{{");
    println!(
        "  \"description\": \"Sustained durable ingest: {INGESTS_PER_SHARD} scripted uploads per shard (each journaling 3 WAL ops: image + 2 feature vectors), one writer thread per shard over 1/4/8 independent DurableStore shards. per_op_fsync = one framed write + fdatasync per op (3 syncs per acked upload, the pre-group-commit design); group_commit = DurableStore::apply_batch coalescing {GROUP_INGESTS} uploads into one framed write + one sync. On-disk WAL bytes are identical across modes and thread counts (torture- and determinism-verified), so the comparison isolates sync amortization.\","
    );
    println!(
        "  \"methodology\": \"All runs on this host's filesystem (fdatasync probe below); ack latency is the time from an upload reaching the journal head to its group's sync returning — under group commit every upload in a group acks at the group's single sync. Recovery lays an n-op WAL (group commits of {RECOVERY_BATCH}), drops the store without compacting (the crash), then times a cold DurableStore::open; byte_identical_to_no_crash compacts the recovered store and a never-crashed control fed the same script and compares published snapshot.json bytes.\","
    );
    println!("  \"regenerate\": \"cargo run --release -p tvdp-bench --bin ingest_throughput > BENCH_ingest.json\",");
    println!("  \"host\": {{ \"fdatasync_us\": {fsync_us:.0} }},");
    println!("  \"sustained_ingest\": [");
    println!(
        "{}",
        runs.iter()
            .map(IngestRun::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    println!("  ],");
    println!("  \"recovery\": [");
    println!(
        "{}",
        recoveries
            .iter()
            .map(RecoveryRun::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    println!("  ],");
    println!("  \"acceptance\": {{");
    println!(
        "    \"group_commit_5x_at_8_shards\": \"{}: {speedup8:.1}x sustained durable ingests/s over per-op fsync at 8 shards (1 shard: {:.1}x, 4 shards: {:.1}x)\",",
        if speedup8 >= 5.0 { "met" } else { "NOT met" },
        speedup_at(1),
        speedup_at(4),
    );
    println!(
        "    \"recovery_100k_byte_identical\": \"{}: a 100000-op WAL replays in {:.3}s and the recovered store's compacted snapshot is byte-identical to the no-crash control\",",
        if big.replayed_ops == 100_000 && big.byte_identical {
            "met"
        } else {
            "NOT met"
        },
        big.recover_s,
    );
    println!(
        "    \"determinism\": \"journal and snapshot bytes are invariant under thread count and pool width — held by crates/core tests batched_ingest_journals_identical_bytes_at_any_thread_count and flush_snapshot_bytes_are_pool_width_invariant, and crates/storage torture suite group_commit_batch_killed_at_every_offset_is_all_or_prefix\"");
    println!("  }}");
    println!("}}");
}
