//! Deterministic million-user load harness for the overload-resilience
//! stack: admission control, deadline accounting, breaker-guarded edge
//! dispatch.
//!
//! Everything here runs on a virtual clock — arrivals, queueing,
//! service, breaker cooldowns, fault windows. No wall-clock number ever
//! reaches stdout, which is what makes `BENCH_load.json` byte-identical
//! across hosts and pool widths (`TVDP_THREADS=1` and `TVDP_THREADS=8`
//! must produce the same bytes; CI diffs them).
//!
//! Three arrival phases drive two servers over the identical request
//! script:
//!
//! * **admission** — the production [`AdmissionController`] from
//!   `tvdp-core`: priced requests, per-class queueing-delay bounds,
//!   priority shedding (dispatch first, ingest last).
//! * **baseline** — the same virtual-time server with the admission
//!   check deleted: every request queues, nothing sheds.
//!
//! Under nominal load the two behave identically. Under a 4x-capacity
//! overload the admission server keeps admitted latency pinned near the
//! class bounds by shedding with honest `retry_after_ms` hints, while
//! the baseline backlog — and with it every subsequent request's
//! latency — grows without bound and never recovers.
//!
//! Two further legs reuse the production resilience machinery rather
//! than re-modeling it: an edge-dispatch fleet pushes packets through
//! `EdgeTransport` + `CircuitBreaker` across a scripted 20 s partition
//! (FaultPlan), and a verification subsample executes deadline-carrying
//! hybrid queries against a real `ShardedEngine` at two pool widths,
//! asserting byte-identical results before anything is printed.
//!
//! Scale: `TVDP_LOAD_VUS` (default 1,000,000) — one request per virtual
//! user. Pool width for the engine subsample: `TVDP_THREADS` (default 8).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tvdp_core::{AdmissionConfig, AdmissionController, PlatformError, RequestClass};
use tvdp_edge::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use tvdp_edge::fault::{FaultPlan, FaultRates, Partition};
use tvdp_edge::transport::{EdgeTransport, RetryPolicy, SendOutcome, UploadPacket};
use tvdp_geo::{BBox, GeoPoint};
use tvdp_kernel::Pool;
use tvdp_query::{
    EngineConfig, Query, ShardedEngine, SpatialQuery, TemporalField, TextualMode, VisualMode,
};
use tvdp_storage::{ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::FeatureKind;

/// Default virtual users; one request each. Override: `TVDP_LOAD_VUS`.
const DEFAULT_VUS: usize = 1_000_000;

/// Modeled serving capacity. With ceil-ms service times this caps the
/// sustainable rate at under 1,000 requests per virtual second.
const CAPACITY_UNITS_PER_SEC: u64 = 50_000;

/// Per-class queueing-delay bounds (virtual ms), shed-first order.
const DISPATCH_BOUND_MS: i64 = 15;
const QUERY_BOUND_MS: i64 = 40;
const INGEST_BOUND_MS: i64 = 60;

/// Workload split per mille of the request stream.
const INGEST_UNITS: u64 = 8;
const DISPATCH_UNITS: u64 = 1;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exact percentile over virtual-ms samples: sorted, integer index —
/// no floating point anywhere near the published numbers.
fn percentile_ms(samples: &[i64], pct: usize) -> i64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * pct / 100]
}

fn ok<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("load_harness: {what}: {e:?}");
            std::process::exit(1);
        }
    }
}

fn invariant(cond: bool, what: &str) {
    if !cond {
        eprintln!("load_harness: invariant violated: {what}");
        std::process::exit(1);
    }
}

// --- request script --------------------------------------------------

#[derive(Clone, Copy)]
struct Request {
    arrival_ms: i64,
    class: RequestClass,
    cost_units: u64,
    /// Deadline budget (virtual ms) for query-class requests; 0 = none.
    deadline_budget_ms: i64,
    phase: usize,
}

struct PhaseSpec {
    name: &'static str,
    requests: usize,
    /// A burst of `burst` arrivals lands every `every_ms`.
    burst: usize,
    every_ms: i64,
    /// Every `spike_every`-th burst is `spike_mult`x the size — the
    /// heavy-tail spikes that give the nominal phase a realistic p99.
    spike_every: usize,
    spike_mult: usize,
}

fn phase_specs(vus: usize) -> [PhaseSpec; 3] {
    let nominal = vus * 45 / 100;
    let overload = vus * 35 / 100;
    let recovery = vus - nominal - overload;
    [
        PhaseSpec {
            name: "nominal",
            requests: nominal,
            burst: 8,
            every_ms: 13,
            spike_every: 16,
            spike_mult: 5,
        },
        // 4x capacity: 32 arrivals every 9 ms ~ 3,500 req/s against a
        // sub-1,000 req/s server.
        PhaseSpec {
            name: "overload",
            requests: overload,
            burst: 32,
            every_ms: 9,
            spike_every: usize::MAX,
            spike_mult: 1,
        },
        PhaseSpec {
            name: "recovery",
            requests: recovery,
            burst: 8,
            every_ms: 13,
            spike_every: 16,
            spike_mult: 5,
        },
    ]
}

/// The full deterministic request script, arrival-ordered. Class, cost
/// and deadline budget are pure functions of the request index.
fn build_script(vus: usize) -> Vec<Request> {
    let specs = phase_specs(vus);
    let mut script = Vec::with_capacity(vus);
    let mut t = 0i64;
    let mut index = 0u64;
    for (phase, spec) in specs.iter().enumerate() {
        let mut emitted = 0usize;
        let mut burst_no = 0usize;
        while emitted < spec.requests {
            let size =
                if spec.spike_every != usize::MAX && burst_no.is_multiple_of(spec.spike_every) {
                    spec.burst * spec.spike_mult
                } else {
                    spec.burst
                };
            let size = size.min(spec.requests - emitted);
            for _ in 0..size {
                let h = splitmix64(0x10ad ^ index);
                let (class, cost_units, deadline_budget_ms) = match h % 10 {
                    0..=5 => (RequestClass::Ingest, INGEST_UNITS, 0),
                    // Budgets start above the nominal latency tail:
                    // a well-provisioned phase misses no deadlines, and
                    // under overload the admission bound (40 ms + service
                    // for queries) keeps admitted work inside the
                    // tightest budget — late work sheds instead.
                    6..=8 => (
                        RequestClass::Query,
                        4 + (h >> 8) % 61,
                        60 + ((h >> 16) % 4) as i64 * 40,
                    ),
                    _ => (RequestClass::Dispatch, DISPATCH_UNITS, 0),
                };
                script.push(Request {
                    arrival_ms: t,
                    class,
                    cost_units,
                    deadline_budget_ms,
                    phase,
                });
                index += 1;
            }
            emitted += size;
            burst_no += 1;
            t += spec.every_ms;
        }
    }
    script
}

// --- the two servers -------------------------------------------------

fn service_ms(cost_units: u64) -> i64 {
    (cost_units.max(1) * 1_000)
        .div_ceil(CAPACITY_UNITS_PER_SEC)
        .max(1) as i64
}

#[derive(Default, Clone)]
struct PhaseOut {
    requests: u64,
    admitted: u64,
    shed_by_class: [u64; 3],
    deadline_missed: u64,
    latencies_ms: Vec<i64>,
    max_retry_after_ms: i64,
}

impl PhaseOut {
    fn shed(&self) -> u64 {
        self.shed_by_class.iter().sum()
    }
}

fn class_idx(class: RequestClass) -> usize {
    match class {
        RequestClass::Dispatch => 0,
        RequestClass::Query => 1,
        RequestClass::Ingest => 2,
    }
}

/// Replays the script through the production admission controller.
fn run_admission(script: &[Request]) -> (Vec<PhaseOut>, AdmissionController) {
    let ctl = AdmissionController::new(AdmissionConfig {
        capacity_units_per_sec: CAPACITY_UNITS_PER_SEC,
        dispatch_max_delay_ms: DISPATCH_BOUND_MS,
        query_max_delay_ms: QUERY_BOUND_MS,
        ingest_max_delay_ms: INGEST_BOUND_MS,
    });
    let mut phases = vec![PhaseOut::default(); 3];
    for r in script {
        let out = &mut phases[r.phase];
        out.requests += 1;
        match ctl.admit(r.class, r.cost_units, r.arrival_ms) {
            Ok(ticket) => {
                let latency = ticket.queued_delay_ms + service_ms(r.cost_units);
                invariant(
                    ticket.queued_delay_ms
                        <= match r.class {
                            RequestClass::Dispatch => DISPATCH_BOUND_MS,
                            RequestClass::Query => QUERY_BOUND_MS,
                            RequestClass::Ingest => INGEST_BOUND_MS,
                        },
                    "admitted delay exceeded the class bound",
                );
                out.admitted += 1;
                out.latencies_ms.push(latency);
                if r.deadline_budget_ms > 0 && latency > r.deadline_budget_ms {
                    out.deadline_missed += 1;
                }
            }
            Err(PlatformError::Overloaded { retry_after_ms }) => {
                out.shed_by_class[class_idx(r.class)] += 1;
                out.max_retry_after_ms = out.max_retry_after_ms.max(retry_after_ms);
            }
            Err(other) => {
                eprintln!("load_harness: unexpected admission error: {other}");
                std::process::exit(1);
            }
        }
    }
    (phases, ctl)
}

/// The ablation: the same virtual-time server with the admission check
/// deleted. Every request queues behind the full backlog.
fn run_baseline(script: &[Request]) -> Vec<PhaseOut> {
    let mut phases = vec![PhaseOut::default(); 3];
    let mut backlog_done_at_ms = 0i64;
    for r in script {
        let out = &mut phases[r.phase];
        out.requests += 1;
        let start = backlog_done_at_ms.max(r.arrival_ms);
        let svc = service_ms(r.cost_units);
        backlog_done_at_ms = start + svc;
        let latency = start - r.arrival_ms + svc;
        out.admitted += 1;
        out.latencies_ms.push(latency);
        if r.deadline_budget_ms > 0 && latency > r.deadline_budget_ms {
            out.deadline_missed += 1;
        }
    }
    phases
}

// --- edge-dispatch leg: FaultPlan + breaker, all virtual time --------

struct EdgeOut {
    devices: usize,
    sends: u64,
    acked: u64,
    shed_by_breaker: u64,
    failed: u64,
    all_closed_after_heal: bool,
    partition: Partition,
}

/// A small device fleet dispatching through breaker-guarded transports
/// across a scripted link partition. Exercises the paced half-open
/// probing under the exact fault machinery the chaos tests use.
fn run_edge_leg() -> EdgeOut {
    const DEVICES: usize = 8;
    const ROUNDS: usize = 240;
    let partition = Partition {
        from_ms: 20_000,
        until_ms: 40_000,
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 100,
        max_backoff_ms: 800,
        jitter_frac: 0.2,
        attempt_timeout_ms: 400,
        total_budget_ms: 4_000,
    };
    let breaker_config = BreakerConfig {
        failure_threshold: 3,
        cooldown_ms: 5_000,
        probe_successes: 2,
        probe_interval_ms: 500,
    };
    let mut out = EdgeOut {
        devices: DEVICES,
        sends: 0,
        acked: 0,
        shed_by_breaker: 0,
        failed: 0,
        all_closed_after_heal: true,
        partition,
    };
    for device in 0..DEVICES {
        let plan = FaultPlan::seeded(
            FaultRates {
                drop_request: 0.02,
                drop_reply: 0.01,
                corrupt: 0.0,
                stall: 0.02,
                stall_ms: 300,
            },
            0xed6e + device as u64,
        )
        .with_partitions(vec![partition]);
        let mut transport = EdgeTransport::new(policy, plan, 0xbeef + device as u64);
        let mut breaker = CircuitBreaker::new(breaker_config);
        let mut server = |packet: &UploadPacket, _now: i64| {
            if packet.verify() {
                tvdp_edge::transport::ChannelReply::ok("accepted")
            } else {
                tvdp_edge::transport::ChannelReply::status(400)
            }
        };
        for round in 0..ROUNDS {
            let payload = format!("dispatch d{device} r{round}").into_bytes();
            let packet = UploadPacket::new(format!("d{device}-r{round}"), payload);
            let report = transport.send_guarded(&mut breaker, &packet, &mut server);
            out.sends += 1;
            match report.outcome {
                SendOutcome::Acked => out.acked += 1,
                SendOutcome::Shed => out.shed_by_breaker += 1,
                SendOutcome::ExhaustedAttempts | SendOutcome::BudgetExhausted => out.failed += 1,
                SendOutcome::Rejected => {
                    eprintln!("load_harness: edge leg rejected a well-formed packet");
                    std::process::exit(1);
                }
            }
            transport.advance(250);
        }
        if breaker.state() != BreakerState::Closed {
            out.all_closed_after_heal = false;
        }
    }
    invariant(
        out.acked + out.shed_by_breaker + out.failed == out.sends,
        "edge leg outcome counts must partition the sends",
    );
    invariant(out.acked > 0, "edge leg acked nothing");
    invariant(
        out.shed_by_breaker > 0,
        "partition never tripped a breaker into shedding",
    );
    out
}

// --- engine subsample: real queries, two pool widths -----------------

const DIM: usize = 8;

fn build_store(n: usize, seed: u64) -> Arc<VisualStore> {
    let store = VisualStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    const WORDS: [&str; 4] = ["street", "tent", "trash", "corner"];
    for i in 0..n {
        let gps = GeoPoint::new(
            34.0 + rng.gen_range(0.0..0.05),
            -118.3 + rng.gen_range(0.0..0.05),
        );
        let captured = 1_000 + rng.gen_range(0..10_000);
        let meta = ImageMeta {
            uploader: UserId(0),
            gps,
            fov: None,
            captured_at: captured,
            uploaded_at: captured + 10,
            keywords: vec![WORDS[i % WORDS.len()].to_string()],
        };
        let id = ok(
            store.add_image(meta, ImageOrigin::Original, None),
            "subsample add_image",
        );
        let feature: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        ok(
            store.put_feature(id, FeatureKind::Cnn, feature),
            "subsample put_feature",
        );
    }
    Arc::new(store)
}

fn subsample_queries() -> Vec<Query> {
    let example: Vec<f32> = (0..DIM).map(|d| d as f32 * 0.1).collect();
    vec![
        Query::Visual {
            example: example.clone(),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        },
        Query::Textual {
            text: "street trash".into(),
            mode: TextualMode::Ranked(15),
        },
        Query::Temporal {
            field: TemporalField::Captured,
            from: 2_000,
            to: 9_000,
        },
        Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.05, -118.25))),
            Query::Visual {
                example,
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(5),
            },
        ]),
    ]
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

struct SubsampleOut {
    executions: usize,
    deadline_trips: usize,
    digest: u64,
}

/// Executes deadline-carrying hybrid queries against a real sharded
/// engine at `Pool::serial()` and at the `TVDP_THREADS`-wide pool,
/// asserting byte-identical outcomes (results *and* deadline trips)
/// before the digest is published. Any width divergence aborts the run
/// without printing JSON.
fn run_subsample(pool_width: usize) -> SubsampleOut {
    let stores = (0..3).map(|s| build_store(200, 42 + s as u64)).collect();
    let engine = ShardedEngine::with_seal_cap(stores, EngineConfig::default(), 32);
    let serial = Pool::serial();
    let wide = Pool::new(pool_width);
    let mut executions = 0usize;
    let mut deadline_trips = 0usize;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for budget in 0..40i64 {
        for q in subsample_queries() {
            let a = engine.try_execute_with_deadline(&q, &serial, 1_000, 1_000 + budget);
            let b = engine.try_execute_with_deadline(&q, &wide, 1_000, 1_000 + budget);
            invariant(
                a == b,
                "engine subsample diverged between pool widths (result or deadline trip)",
            );
            executions += 2;
            if a.is_err() {
                deadline_trips += 1;
            }
            digest = fnv1a(format!("{a:?}").as_bytes(), digest);
        }
    }
    invariant(deadline_trips > 0, "deadline sweep never tripped");
    invariant(
        deadline_trips < executions / 2,
        "deadline sweep tripped everything",
    );
    SubsampleOut {
        executions,
        deadline_trips,
        digest,
    }
}

// --- output ----------------------------------------------------------

fn phase_json(name: &str, adm: &PhaseOut, base: &PhaseOut) -> String {
    format!(
        "    \"{name}\": {{\n      \"requests\": {}, \"admitted\": {}, \"shed\": {},\n      \"shed_by_class\": {{ \"dispatch\": {}, \"query\": {}, \"ingest\": {} }},\n      \"deadline_missed\": {}, \"max_retry_after_ms\": {},\n      \"latency_ms\": {{ \"p50\": {}, \"p99\": {} }},\n      \"baseline\": {{ \"latency_ms\": {{ \"p50\": {}, \"p99\": {} }}, \"deadline_missed\": {} }}\n    }}",
        adm.requests,
        adm.admitted,
        adm.shed(),
        adm.shed_by_class[0],
        adm.shed_by_class[1],
        adm.shed_by_class[2],
        adm.deadline_missed,
        adm.max_retry_after_ms,
        percentile_ms(&adm.latencies_ms, 50),
        percentile_ms(&adm.latencies_ms, 99),
        percentile_ms(&base.latencies_ms, 50),
        percentile_ms(&base.latencies_ms, 99),
        base.deadline_missed,
    )
}

fn main() {
    let vus = std::env::var("TVDP_LOAD_VUS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_VUS);
    let pool_width = std::env::var("TVDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or(8);

    eprintln!(
        "load_harness: {vus} virtual users, capacity {CAPACITY_UNITS_PER_SEC} units/s, bounds d/q/i = {DISPATCH_BOUND_MS}/{QUERY_BOUND_MS}/{INGEST_BOUND_MS} ms"
    );
    let script = build_script(vus);
    invariant(script.len() == vus, "script length mismatch");
    let horizon_ms = script.last().map(|r| r.arrival_ms).unwrap_or(0);
    eprintln!("  script spans {horizon_ms} virtual ms across 3 phases");

    let (adm_phases, ctl) = run_admission(&script);
    let stats = ctl.stats();
    let admitted: u64 = adm_phases.iter().map(|p| p.admitted).sum();
    let shed: u64 = adm_phases.iter().map(|p| p.shed()).sum();
    invariant(
        admitted + shed == vus as u64,
        "admitted + shed must cover every request",
    );
    invariant(
        stats.total.admitted == admitted && stats.total.shed == shed,
        "controller stats disagree with the replay counts",
    );
    for (spec, p) in phase_specs(vus).iter().zip(&adm_phases) {
        eprintln!(
            "  admission {:<8} admitted {:>7} shed {:>7} p50 {:>4} ms p99 {:>4} ms deadline-missed {}",
            spec.name,
            p.admitted,
            p.shed(),
            percentile_ms(&p.latencies_ms, 50),
            percentile_ms(&p.latencies_ms, 99),
            p.deadline_missed,
        );
    }

    let base_phases = run_baseline(&script);
    invariant(
        base_phases.iter().map(|p| p.admitted).sum::<u64>() == vus as u64,
        "baseline must admit everything",
    );
    for (spec, p) in phase_specs(vus).iter().zip(&base_phases) {
        eprintln!(
            "  baseline  {:<8} p50 {:>8} ms p99 {:>8} ms deadline-missed {}",
            spec.name,
            percentile_ms(&p.latencies_ms, 50),
            percentile_ms(&p.latencies_ms, 99),
            p.deadline_missed,
        );
    }

    let edge = run_edge_leg();
    eprintln!(
        "  edge leg: {} sends, {} acked, {} shed by breakers, {} failed, all closed after heal: {}",
        edge.sends, edge.acked, edge.shed_by_breaker, edge.failed, edge.all_closed_after_heal
    );
    invariant(
        edge.all_closed_after_heal,
        "a breaker never closed after the partition healed",
    );

    let subsample = run_subsample(pool_width);
    eprintln!(
        "  engine subsample: {} executions, {} deadline trips, digest {:#018x}",
        subsample.executions, subsample.deadline_trips, subsample.digest
    );

    let nominal_p99 = percentile_ms(&adm_phases[0].latencies_ms, 99);
    let overload_p99 = percentile_ms(&adm_phases[1].latencies_ms, 99);
    let recovery_p99 = percentile_ms(&adm_phases[2].latencies_ms, 99);
    let baseline_overload_p99 = percentile_ms(&base_phases[1].latencies_ms, 99);
    let overload_shed = adm_phases[1].shed();

    println!("{{");
    println!(
        "  \"description\": \"Deterministic load harness: {vus} virtual users replayed through the production AdmissionController (capacity {CAPACITY_UNITS_PER_SEC} units/s, class delay bounds dispatch/query/ingest = {DISPATCH_BOUND_MS}/{QUERY_BOUND_MS}/{INGEST_BOUND_MS} ms) and through an identical virtual-time server with admission deleted. Three phases: nominal (~0.85x capacity, heavy-tailed bursts), overload (~4x capacity), recovery (back to nominal). Side legs reuse the production resilience stack: an 8-device dispatch fleet through EdgeTransport + CircuitBreaker across a scripted 20 s partition, and a deadline-sweep subsample against a real 3-shard ShardedEngine at two pool widths.\","
    );
    println!(
        "  \"methodology\": \"Pure virtual time end to end: arrivals, service (ceil-ms of cost/capacity, the controller's own formula), breaker cooldowns and fault windows all advance a modeled clock; no wall-clock value is ever printed, so this file is byte-identical across hosts and across TVDP_THREADS settings (CI regenerates it at widths 1 and 8 and diffs the bytes). Latency of an admitted request = modeled queueing delay (AdmissionTicket.queued_delay_ms) + modeled service; percentiles are exact integer-index percentiles over the full per-phase sample, no histogram buckets, no floats. Deadline-missed counts admitted query-class requests whose latency exceeded their per-request budget (60-180 ms). The engine subsample executes every query at Pool::serial() and Pool::new(TVDP_THREADS) and aborts before printing if any result or deadline trip diverges.\","
    );
    println!(
        "  \"regenerate\": \"cargo run --release -p tvdp-bench --bin load_harness > BENCH_load.json\","
    );
    println!("  \"virtual_users\": {vus},");
    println!("  \"capacity_units_per_sec\": {CAPACITY_UNITS_PER_SEC},");
    println!(
        "  \"class_delay_bounds_ms\": {{ \"dispatch\": {DISPATCH_BOUND_MS}, \"query\": {QUERY_BOUND_MS}, \"ingest\": {INGEST_BOUND_MS} }},"
    );
    println!("  \"virtual_horizon_ms\": {horizon_ms},");
    println!("  \"phases\": {{");
    let names = ["nominal", "overload", "recovery"];
    let rendered: Vec<String> = names
        .iter()
        .enumerate()
        .map(|(i, name)| phase_json(name, &adm_phases[i], &base_phases[i]))
        .collect();
    println!("{}", rendered.join(",\n"));
    println!("  }},");
    println!(
        "  \"edge_dispatch\": {{ \"devices\": {}, \"sends\": {}, \"acked\": {}, \"shed_by_breaker\": {}, \"failed\": {}, \"partition_ms\": [{}, {}], \"all_breakers_closed_after_heal\": {} }},",
        edge.devices,
        edge.sends,
        edge.acked,
        edge.shed_by_breaker,
        edge.failed,
        edge.partition.from_ms,
        edge.partition.until_ms,
        edge.all_closed_after_heal
    );
    println!(
        "  \"engine_subsample\": {{ \"executions\": {}, \"deadline_trips\": {}, \"digest\": \"{:#018x}\" }},",
        subsample.executions, subsample.deadline_trips, subsample.digest
    );
    println!("  \"acceptance\": {{");
    println!(
        "    \"workload_at_least_100k_vus\": \"{}: {vus} virtual users, one request each, over {horizon_ms} virtual ms\",",
        if vus >= 100_000 { "met" } else { "NOT met" }
    );
    let nominal_shed_pct = adm_phases[0].shed() * 100 / adm_phases[0].requests.max(1);
    println!(
        "    \"nominal_shed_rate_bounded\": \"{}: the well-provisioned phase shed {} of {} requests ({nominal_shed_pct}%, spike tails only) — admission is not a tax on healthy traffic\",",
        if nominal_shed_pct <= 5 { "met" } else { "NOT met" },
        adm_phases[0].shed(),
        adm_phases[0].requests
    );
    println!(
        "    \"zero_deadline_miss_at_nominal\": \"{}: {} deadline misses among {} admitted nominal requests; under overload the 40 ms query admission bound keeps every admitted query inside the tightest 60 ms budget — late work is shed with a retry hint, not served late ({} overload misses)\",",
        if adm_phases[0].deadline_missed == 0 {
            "met"
        } else {
            "NOT met"
        },
        adm_phases[0].deadline_missed,
        adm_phases[0].admitted,
        adm_phases[1].deadline_missed
    );
    println!(
        "    \"overload_p99_within_2x_nominal\": \"{}: admitted p99 {overload_p99} ms under 4x-capacity overload vs {nominal_p99} ms nominal — shedding {overload_shed} requests held the bound\",",
        if overload_p99 <= 2 * nominal_p99.max(1) {
            "met"
        } else {
            "NOT met"
        }
    );
    println!(
        "    \"baseline_degrades_unboundedly\": \"{}: the no-admission baseline's overload p99 is {baseline_overload_p99} ms ({}x the admission server's {overload_p99} ms) and its backlog never drains\",",
        if baseline_overload_p99 >= 50 * overload_p99.max(1) {
            "met"
        } else {
            "NOT met"
        },
        baseline_overload_p99 / overload_p99.max(1)
    );
    println!(
        "    \"recovery_returns_to_nominal\": \"{}: recovery-phase admitted p99 {recovery_p99} ms vs {nominal_p99} ms nominal — the admission backlog is bounded by the class delay bounds, so overload leaves no residue\",",
        if recovery_p99 <= 2 * nominal_p99.max(1) {
            "met"
        } else {
            "NOT met"
        }
    );
    println!(
        "    \"pool_width_byte_identical\": \"{}: every published number derives from the virtual clock; the engine subsample ran each deadline query serially and at the TVDP_THREADS-wide pool and asserted identical results and trips (digest {:#018x}) before printing\",",
        if subsample.executions > 0 { "met" } else { "NOT met" },
        subsample.digest
    );
    println!(
        "    \"edge_fleet_heals\": \"{}: breakers shed {} dispatches during the scripted partition, paced half-open probes re-closed all {} breakers after it healed, zero panics\"",
        if edge.all_closed_after_heal && edge.shed_by_breaker > 0 {
            "met"
        } else {
            "NOT met"
        },
        edge.shed_by_breaker,
        edge.devices
    );
    println!("  }}");
    println!("}}");
}
