//! Scene-localization experiment (paper ref [23]): localize GPS-less
//! uploads from visually similar geo-tagged corpus images.

use tvdp_bench::{run_localization, LocalizationConfig};

fn main() {
    let config = LocalizationConfig::default();
    eprintln!(
        "localization: corpus {} + {} test images, k={}",
        config.corpus_size, config.test_size, config.k
    );
    let t0 = std::time::Instant::now();
    let r = run_localization(&config);
    eprintln!("localization: done in {:.1}s", t0.elapsed().as_secs_f64());

    println!("\nScene Localization (data-centric, ref [23])\n");
    println!(
        "localized                : {} / {}",
        r.localized, config.test_size
    );
    println!("median error             : {:>7.0} m", r.median_error_m);
    println!("mean error               : {:>7.0} m", r.mean_error_m);
    println!(
        "baseline (centroid guess): {:>7.0} m median",
        r.baseline_median_m
    );
    println!("within 250 m             : {:>6.1}%", r.within_250m * 100.0);
    println!("\npaper shape: visual neighbours localize far better than a blind guess");
}
