//! Before/after benchmark for the selectivity-ordered query planner.
//!
//! Builds a 24K-image store and times the rewritten [`QueryEngine`]
//! against two baselines on identical workloads:
//!
//! * `materialized` — the pre-rewrite conjunction/disjunction plan:
//!   every leaf executed to a full result set, then intersected /
//!   unioned through a `BTreeMap` (reconstructed here from the old
//!   `execute_and`/`execute_or`, using the same leaf executors).
//! * `linear` — the linear-scan reference executor, for the top-k
//!   visual workload.
//!
//! Every timed pair is first checked for result parity, so the numbers
//! compare equal answers. Prints a JSON document to stdout; regenerate
//! the checked-in snapshot with
//! `cargo run --release -p tvdp-bench --bin query_planner > BENCH_query.json`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{BBox, Fov, GeoPoint};
use tvdp_kernel::RowSource;
use tvdp_query::{
    EngineConfig, LinearExecutor, QuantConfig, QuantMode, Query, QueryEngine, QueryResult,
    SpatialQuery, TemporalField, TextualMode, VisualMode,
};
use tvdp_storage::{AnnotationSource, ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::FeatureKind;

const N_IMAGES: usize = 24_000;
const DIM: usize = 16;
const QUERIES: usize = 40;
const ROUNDS: usize = 3;
const WORDS: [&str; 6] = ["street", "tent", "trash", "corner", "downtown", "alley"];

fn build_store(n: usize, seed: u64) -> Arc<VisualStore> {
    let store = VisualStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cls = match store.register_scheme(
        "cleanliness",
        vec!["clean".into(), "dirty".into(), "encampment".into()],
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scheme registration failed: {e:?}");
            std::process::exit(1);
        }
    };
    for i in 0..n {
        let lat = 34.0 + rng.gen_range(0.0..0.08);
        let lon = -118.3 + rng.gen_range(0.0..0.08);
        let gps = GeoPoint::new(lat, lon);
        let fov = Fov::new(
            gps,
            rng.gen_range(0.0..360.0),
            rng.gen_range(40.0..80.0),
            rng.gen_range(50.0..150.0),
        );
        let captured = 1_000 + rng.gen_range(0..100_000);
        let n_words = rng.gen_range(1..4);
        let keywords: Vec<String> = (0..n_words)
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string())
            .collect();
        let meta = ImageMeta {
            uploader: UserId(rng.gen_range(0..20)),
            gps,
            fov: Some(fov),
            captured_at: captured,
            uploaded_at: captured + rng.gen_range(1..500),
            keywords,
        };
        let id = match store.add_image(meta, ImageOrigin::Original, None) {
            Ok(id) => id,
            Err(e) => {
                eprintln!("add_image failed: {e:?}");
                std::process::exit(1);
            }
        };
        let class = i % 3;
        let feature: Vec<f32> = (0..DIM)
            .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
            .collect();
        let _ = store.put_feature(id, FeatureKind::Cnn, feature);
        let _ = store.annotate(
            id,
            cls,
            class,
            rng.gen_range(0.5..1.0),
            AnnotationSource::Human(UserId(0)),
            None,
        );
    }
    Arc::new(store)
}

fn random_example(rng: &mut StdRng) -> Vec<f32> {
    let class = rng.gen_range(0..3usize);
    (0..DIM)
        .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
        .collect()
}

/// `And[Temporal, Textual, Visual Threshold]` — the hybrid "recent
/// images matching a keyword that look like this example" query. No
/// spatial-range leaf, so both planners take the general conjunction
/// plan: the old one materializes a whole-corpus visual threshold scan
/// per query, the new one drives from the selective temporal leaf and
/// pushes the visual predicate down per candidate.
fn and_hybrid(rng: &mut StdRng) -> Query {
    let from = 1_000 + rng.gen_range(0..95_000);
    Query::And(vec![
        Query::Temporal {
            field: TemporalField::Captured,
            from,
            to: from + 5_000,
        },
        Query::Textual {
            text: WORDS[rng.gen_range(0..WORDS.len())].to_string(),
            mode: TextualMode::Any,
        },
        Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(1.5),
        },
    ])
}

/// `And[Or[Textual, Categorical], Temporal, Visual Threshold]` — a
/// nested disjunction inside the conjunction; the `Or` leg must be
/// materialized by both planners, the visual leg only by the old one.
fn and_or_hybrid(rng: &mut StdRng) -> Query {
    let from = 1_000 + rng.gen_range(0..90_000);
    Query::And(vec![
        Query::Or(vec![
            Query::Textual {
                text: WORDS[rng.gen_range(0..WORDS.len())].to_string(),
                mode: TextualMode::Any,
            },
            Query::Categorical {
                scheme: tvdp_storage::ClassificationId(0),
                label: rng.gen_range(0..3),
                min_confidence: 0.8,
            },
        ]),
        Query::Temporal {
            field: TemporalField::Captured,
            from,
            to: from + 8_000,
        },
        Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(1.5),
        },
    ])
}

/// `Or[Textual Any, Categorical, Temporal]` — a wide union.
fn or_mixed(rng: &mut StdRng) -> Query {
    let from = 1_000 + rng.gen_range(0..80_000);
    Query::Or(vec![
        Query::Textual {
            text: WORDS[rng.gen_range(0..WORDS.len())].to_string(),
            mode: TextualMode::Any,
        },
        Query::Categorical {
            scheme: tvdp_storage::ClassificationId(0),
            label: rng.gen_range(0..3),
            min_confidence: 0.7,
        },
        Query::Temporal {
            field: TemporalField::Uploaded,
            from,
            to: from + 15_000,
        },
    ])
}

fn topk_visual(rng: &mut StdRng) -> Query {
    Query::Visual {
        example: random_example(rng),
        kind: FeatureKind::Cnn,
        mode: VisualMode::TopK(10),
    }
}

/// `And[broad spatial range, visual top-10]` — the city-wide hybrid
/// workload the quantized scan targets: the region keeps 40-100% of the
/// corpus, so the exact tree traversal degenerates to scoring most
/// entries through its best-first heap while the quantized scan streams
/// u8 codes.
fn hybrid_topk(rng: &mut StdRng) -> Query {
    let lat = 34.0 + rng.gen_range(0.0..0.02);
    let lon = -118.3 + rng.gen_range(0.0..0.02);
    let side = rng.gen_range(0.05..0.08);
    Query::And(vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(
            lat,
            lon,
            lat + side,
            lon + side,
        ))),
        Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        },
    ])
}

/// An engine whose exact top-k path is pinned to one scan.
fn engine_with_quant(
    store: &Arc<VisualStore>,
    mode: QuantMode,
    rerank_depth: usize,
) -> QueryEngine {
    QueryEngine::build(
        Arc::clone(store),
        EngineConfig {
            quant: QuantConfig { mode, rerank_depth },
            ..EngineConfig::default()
        },
    )
}

/// Top-10 ids of each query result (already distance-ascending).
fn top_ids(results: &[QueryResult], k: usize) -> Vec<u64> {
    results.iter().take(k).map(|r| r.image.raw()).collect()
}

/// Fraction of `truth` recovered, averaged over the batch.
fn recall_at(truth: &[Vec<u64>], got: &[Vec<u64>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (t, g) in truth.iter().zip(got) {
        total += t.len();
        hits += t.iter().filter(|id| g.contains(id)).count();
    }
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// The pre-rewrite conjunction plan: materialize every leg through the
/// engine's leaf executors, intersect through a `BTreeMap`, keep the
/// first leg's score.
fn materialized_and(engine: &QueryEngine, subs: &[Query]) -> Vec<QueryResult> {
    let mut iter = subs.iter();
    let Some(first) = iter.next() else {
        return Vec::new();
    };
    let mut acc: BTreeMap<_, f64> = materialized(engine, first)
        .into_iter()
        .map(|r| (r.image, r.score))
        .collect();
    for sub in iter {
        let keep: std::collections::BTreeSet<_> = materialized(engine, sub)
            .into_iter()
            .map(|r| r.image)
            .collect();
        acc.retain(|id, _| keep.contains(id));
    }
    let mut out: Vec<QueryResult> = acc
        .into_iter()
        .map(|(image, score)| QueryResult::new(image, score))
        .collect();
    out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
    out
}

/// The pre-rewrite disjunction plan: union through a `BTreeMap`,
/// keeping each image's best (lowest) score.
fn materialized_or(engine: &QueryEngine, subs: &[Query]) -> Vec<QueryResult> {
    let mut acc: BTreeMap<_, f64> = BTreeMap::new();
    for sub in subs {
        for r in materialized(engine, sub) {
            acc.entry(r.image)
                .and_modify(|s| *s = s.min(r.score))
                .or_insert(r.score);
        }
    }
    let mut out: Vec<QueryResult> = acc
        .into_iter()
        .map(|(image, score)| QueryResult::new(image, score))
        .collect();
    out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
    out
}

/// Executes one leg the way the old plan did: leaves through the
/// engine's leaf executors, nested booleans recursively materialized.
fn materialized(engine: &QueryEngine, q: &Query) -> Vec<QueryResult> {
    match q {
        Query::And(subs) => materialized_and(engine, subs),
        Query::Or(subs) => materialized_or(engine, subs),
        leaf => engine.execute(leaf),
    }
}

fn canonical(results: &[QueryResult]) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = results
        .iter()
        .map(|r| (r.image.raw(), r.score.to_bits()))
        .collect();
    rows.sort_unstable();
    rows
}

/// Best-of-`ROUNDS` total milliseconds for running `f` over the batch.
fn time_batch(queries: &[Query], mut f: impl FnMut(&Query) -> Vec<QueryResult>) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        let mut n = 0;
        for q in queries {
            n += f(q).len();
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if ms < best {
            best = ms;
        }
        rows = n;
    }
    (best, rows)
}

struct Workload {
    name: &'static str,
    baseline_name: &'static str,
    baseline_ms: f64,
    engine_ms: f64,
    result_rows: usize,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.engine_ms
    }
    fn json(&self) -> String {
        format!(
            "    \"{}\": {{\n      \"queries\": {QUERIES},\n      \"result_rows\": {},\n      \"baseline\": \"{}\",\n      \"baseline_ms\": {:.1},\n      \"engine_ms\": {:.1},\n      \"baseline_qps\": {:.0},\n      \"engine_qps\": {:.0},\n      \"speedup\": {:.2}\n    }}",
            self.name,
            self.result_rows,
            self.baseline_name,
            self.baseline_ms,
            self.engine_ms,
            QUERIES as f64 / (self.baseline_ms / 1e3),
            QUERIES as f64 / (self.engine_ms / 1e3),
            self.speedup()
        )
    }
}

fn main() {
    eprintln!("query_planner: building {N_IMAGES}-image store (dim {DIM})");
    let t0 = Instant::now();
    let store = build_store(N_IMAGES, 0xC0FFEE);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(Arc::clone(&store));
    eprintln!(
        "query_planner: store + engine built in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let and_qs: Vec<Query> = (0..QUERIES).map(|_| and_hybrid(&mut rng)).collect();
    let and_or_qs: Vec<Query> = (0..QUERIES).map(|_| and_or_hybrid(&mut rng)).collect();
    let or_qs: Vec<Query> = (0..QUERIES).map(|_| or_mixed(&mut rng)).collect();
    let topk_qs: Vec<Query> = (0..QUERIES).map(|_| topk_visual(&mut rng)).collect();

    // Parity gate: numbers only count if the answers are equal.
    for q in and_qs.iter().chain(&and_or_qs).chain(&or_qs) {
        let e = canonical(&engine.execute(q));
        let b = canonical(&materialized(&engine, q));
        if e != b {
            eprintln!("parity failure on {q:?}");
            std::process::exit(1);
        }
    }
    for q in &topk_qs {
        let e = canonical(&engine.execute(q));
        let l = canonical(&linear.execute(q));
        if e != l {
            eprintln!("parity failure on {q:?}");
            std::process::exit(1);
        }
    }
    eprintln!("query_planner: parity checks passed");

    let mut workloads = Vec::new();
    for (name, qs) in [("and_hybrid", &and_qs), ("and_or_hybrid", &and_or_qs)] {
        let (baseline_ms, _) = time_batch(qs, |q| materialized(&engine, q));
        let (engine_ms, rows) = time_batch(qs, |q| engine.execute(q));
        workloads.push(Workload {
            name,
            baseline_name: "materialized conjunction (pre-rewrite plan)",
            baseline_ms,
            engine_ms,
            result_rows: rows,
        });
    }
    {
        let (baseline_ms, _) = time_batch(&or_qs, |q| materialized(&engine, q));
        let (engine_ms, rows) = time_batch(&or_qs, |q| engine.execute(q));
        workloads.push(Workload {
            name: "or_mixed",
            baseline_name: "BTreeMap union (pre-rewrite plan)",
            baseline_ms,
            engine_ms,
            result_rows: rows,
        });
    }
    {
        let (baseline_ms, _) = time_batch(&topk_qs, |q| linear.execute(q));
        let (engine_ms, rows) = time_batch(&topk_qs, |q| engine.execute(q));
        workloads.push(Workload {
            name: "topk_visual",
            baseline_name: "linear scan reference",
            baseline_ms,
            engine_ms,
            result_rows: rows,
        });
    }
    for w in &workloads {
        eprintln!(
            "  {:<14} baseline {:>8.1} ms  engine {:>8.1} ms  speedup {:.2}x",
            w.name,
            w.baseline_ms,
            w.engine_ms,
            w.speedup()
        );
    }

    // ------------------------------------------------------------------
    // Quantized-scan curve: city-wide hybrid top-10, exact tree baseline.
    // The quantized path re-ranks within the decode-error margin, so it
    // is exact at every depth; recall is measured anyway rather than
    // asserted.
    // ------------------------------------------------------------------
    let hybrid_qs: Vec<Query> = (0..QUERIES).map(|_| hybrid_topk(&mut rng)).collect();
    let exact_engine = engine_with_quant(&store, QuantMode::Never, 64);
    let truth: Vec<Vec<u64>> = hybrid_qs
        .iter()
        .map(|q| top_ids(&exact_engine.execute(q), 10))
        .collect();
    let (exact_ms, _) = time_batch(&hybrid_qs, |q| exact_engine.execute(q));
    eprintln!("  hybrid_topk    exact tree {exact_ms:>8.1} ms");

    const DEPTHS: [usize; 5] = [10, 16, 32, 64, 128];
    struct CurvePoint {
        depth: usize,
        engine_ms: f64,
        recall: f64,
    }
    let mut curve = Vec::new();
    for depth in DEPTHS {
        let quant_engine = engine_with_quant(&store, QuantMode::Always, depth);
        let got: Vec<Vec<u64>> = hybrid_qs
            .iter()
            .map(|q| top_ids(&quant_engine.execute(q), 10))
            .collect();
        let recall = recall_at(&truth, &got);
        let (engine_ms, _) = time_batch(&hybrid_qs, |q| quant_engine.execute(q));
        eprintln!(
            "  quantized d={depth:<4} {engine_ms:>8.1} ms  recall@10 {recall:.3}  speedup {:.2}x",
            exact_ms / engine_ms
        );
        curve.push(CurvePoint {
            depth,
            engine_ms,
            recall,
        });
    }

    // Resident footprint of the compressed representation vs the floats
    // it mirrors (codes plus per-chunk min/scale/eps sidecar).
    let view = store.slab_view(FeatureKind::Cnn, DIM);
    let quant_rows = view.quant_rows();
    let chunks = quant_rows / tvdp_kernel::ROWS_PER_CHUNK;
    let code_bytes = quant_rows * DIM + chunks * (DIM * 8 + 4);
    let float_bytes = view.rows() * DIM * 4;

    let body: Vec<String> = workloads.iter().map(Workload::json).collect();
    println!("{{");
    println!(
        "  \"description\": \"Selectivity-ordered streaming planner vs the pre-rewrite materialize-every-leaf plan (reconstructed from the old execute_and/execute_or over the same leaf executors) and the linear-scan reference, on a {N_IMAGES}-image corpus (dim {DIM}). Result parity is asserted before timing. Best of {ROUNDS} rounds, {QUERIES} queries per workload.\","
    );
    println!("  \"regenerate\": \"cargo run --release -p tvdp-bench --bin query_planner > BENCH_query.json\",");
    println!("  \"workloads\": {{\n{}\n  }},", body.join(",\n"));
    println!("  \"quantized\": {{");
    println!("    \"workload\": \"And[broad spatial range, visual top-10], {QUERIES} queries over the {N_IMAGES}-image corpus\",");
    println!("    \"baseline\": \"exact f32 hybrid-tree traversal (QuantMode::Never)\",");
    println!(
        "    \"exact_ms\": {exact_ms:.1},\n    \"exact_qps\": {:.0},",
        QUERIES as f64 / (exact_ms / 1e3)
    );
    println!(
        "    \"resident_code_bytes\": {code_bytes},\n    \"resident_float_bytes\": {float_bytes},\n    \"compression\": {:.2},",
        float_bytes as f64 / code_bytes as f64
    );
    let curve_body: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "      {{\"rerank_depth\": {}, \"engine_ms\": {:.1}, \"qps\": {:.0}, \"speedup_vs_exact\": {:.2}, \"recall_at_10\": {:.4}}}",
                p.depth,
                p.engine_ms,
                QUERIES as f64 / (p.engine_ms / 1e3),
                exact_ms / p.engine_ms,
                p.recall
            )
        })
        .collect();
    println!("    \"curve\": [\n{}\n    ]", curve_body.join(",\n"));
    println!("  }},");
    let min_hybrid = workloads
        .iter()
        .filter(|w| w.name.starts_with("and"))
        .map(Workload::speedup)
        .fold(f64::INFINITY, f64::min);
    let topk = workloads
        .iter()
        .find(|w| w.name == "topk_visual")
        .map(Workload::speedup)
        .unwrap_or(0.0);
    println!("  \"acceptance\": {{");
    println!(
        "    \"hybrid_speedup_2x\": \"{}: {min_hybrid:.2}x minimum across hybrid And/Or workloads\",",
        if min_hybrid >= 2.0 { "met" } else { "NOT met" }
    );
    println!(
        "    \"topk_visual_speedup_2x\": \"{}: {topk:.2}x over the linear reference\",",
        if topk >= 2.0 { "met" } else { "NOT met" }
    );
    // Default-depth point of the curve (rerank_depth 64).
    let default_point = curve.iter().find(|p| p.depth == 64).unwrap_or(&curve[0]);
    println!(
        "    \"recall_floor_at_default_depth\": \"{}: recall@10 = {:.3} at rerank depth {} (floor 0.95; the margin re-rank makes the scan exact)\",",
        if default_point.recall >= 0.95 {
            "met"
        } else {
            "NOT met"
        },
        default_point.recall,
        default_point.depth
    );
    let best_speedup = curve
        .iter()
        .filter(|p| p.recall >= 0.95)
        .map(|p| exact_ms / p.engine_ms)
        .fold(0.0f64, f64::max);
    println!(
        "    \"qps_2x_at_recall_095\": \"{}: {best_speedup:.2}x QPS over the exact scan at recall@10 >= 0.95\",",
        if best_speedup >= 2.0 { "met" } else { "NOT met" }
    );
    println!("    \"zero_copy\": \"visual path allocates no per-query feature copies: LSH re-rank and hybrid pruning call tvdp_kernel::l2_sq on arena rows borrowed from the shared FeatureSlab view\"");
    println!("  }}");
    println!("}}");
}
