//! Concurrent mixed-workload benchmark for the sharded platform core.
//!
//! Compares two architectures over the same corpus and scripts:
//!
//! * `single_lock` — the pre-shard design: one [`QueryEngine`] behind a
//!   `parking_lot::RwLock`; every ingest takes the write lock (batched,
//!   as the old `ingest_batch` held it across a whole batch), stalling
//!   every reader on the whole corpus.
//! * `sharded_N` — [`ShardedEngine`]: geo-grid routed shards, writers
//!   contend only with same-shard writers, readers run lock-free
//!   against published generation snapshots.
//!
//! Three sections, clearly separated because they answer different
//! questions on different instruments:
//!
//! 1. `per_op_us` — **measured** single-threaded service times for
//!    every scripted query and ingest, per architecture, at full corpus
//!    size. No locks, no concurrency: the raw cost of each operation.
//! 2. `measured_concurrent_this_host` — **measured** wall-clock mixed
//!    run (4 reader + 4 writer threads, all live at once) on whatever
//!    machine executes the bench. On a machine with fewer cores than
//!    threads this measures the OS scheduler as much as the engine —
//!    the container this snapshot was generated in has ~1 effective
//!    core (see `host`), where lock-freedom cannot buy wall-clock
//!    throughput by construction.
//! 3. `simulated_8_threads` — a **deterministic discrete-event
//!    schedule** of the same 4+4 tasks on 8 hardware threads, replaying
//!    the measured per-op service times from section 1 through each
//!    architecture's real synchronization discipline: a fair
//!    write-preferring RwLock with batched write holds for
//!    `single_lock`, per-shard FIFO mutexes plus zero-wait snapshot
//!    reads for `sharded_N`. Same virtual-time methodology as the
//!    edge-layer benchmarks (`BENCH_edge.json`): every number is a pure
//!    function of measured costs + the synchronization model, so it is
//!    reproducible and does not depend on the bench host's core count.
//!
//! The acceptance ratio (8-shard vs single-lock mixed throughput) comes
//! from section 3; the no-lock-stall claim from the simulated reader
//! lock-wait distribution (structurally zero for sharded reads) —
//! corroborated by section 2's latency tails where the host allows.
//! Prints a JSON document to stdout; regenerate the checked-in snapshot
//! with
//! `cargo run --release -p tvdp-bench --bin shard_scaling > BENCH_shard.json`.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{BBox, Fov, GeoPoint};
use tvdp_kernel::Pool;
use tvdp_query::{
    Query, QueryEngine, ShardedEngine, SpatialQuery, TemporalField, TextualMode, VisualMode,
};
use tvdp_storage::{AnnotationSource, ImageId, ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::FeatureKind;

const N_BASE: usize = 6_000;
const DIM: usize = 16;
const READERS: usize = 4;
const WRITERS: usize = 4;
const QUERIES_PER_READER: usize = 150;
const INGESTS_PER_WRITER: usize = 2_000;
/// Write-lock batching of the old `ingest_batch` (the write lock was
/// held across a whole caller batch; demo-data and the API batch at
/// this order of magnitude).
const WRITE_BATCH: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORDS: [&str; 6] = ["street", "tent", "trash", "corner", "downtown", "alley"];

fn ok<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("shard_scaling: {what} failed: {e:?}");
            std::process::exit(1);
        }
    }
}

/// The same deterministic geo-grid router the platform uses (FNV-1a
/// over 0.01°-pitch cell coordinates), local so the bench doesn't pull
/// in the whole platform facade.
fn shard_for(gps: &GeoPoint, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let cx = (gps.lat / 0.01).floor() as i64;
    let cy = (gps.lon / 0.01).floor() as i64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cx.to_le_bytes().into_iter().chain(cy.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// One pre-generated upload: global id, metadata, CNN feature.
struct Upload {
    id: ImageId,
    meta: ImageMeta,
    feature: Vec<f32>,
    class: usize,
}

fn make_upload(rng: &mut StdRng, id: u64) -> Upload {
    let lat = 34.0 + rng.gen_range(0.0..0.08);
    let lon = -118.3 + rng.gen_range(0.0..0.08);
    let gps = GeoPoint::new(lat, lon);
    let fov = Fov::new(
        gps,
        rng.gen_range(0.0..360.0),
        rng.gen_range(40.0..80.0),
        rng.gen_range(50.0..150.0),
    );
    let captured = 1_000 + rng.gen_range(0..100_000);
    let n_words = rng.gen_range(1..4);
    let keywords: Vec<String> = (0..n_words)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string())
        .collect();
    let class = (id % 3) as usize;
    let feature: Vec<f32> = (0..DIM)
        .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
        .collect();
    Upload {
        id: ImageId(id),
        meta: ImageMeta {
            uploader: UserId(rng.gen_range(0..20)),
            gps,
            fov: Some(fov),
            captured_at: captured,
            uploaded_at: captured + rng.gen_range(1..500),
            keywords,
        },
        feature,
        class,
    }
}

fn random_example(rng: &mut StdRng) -> Vec<f32> {
    let class = rng.gen_range(0..3usize);
    (0..DIM)
        .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
        .collect()
}

/// The mixed read workload: spatial, textual (boolean + ranked),
/// temporal, categorical, visual top-k, and the hybrid conjunction.
fn random_query(rng: &mut StdRng) -> Query {
    match rng.gen_range(0..7u32) {
        0 => {
            let lat = 34.0 + rng.gen_range(0.0..0.06);
            let lon = -118.3 + rng.gen_range(0.0..0.06);
            Query::Spatial(SpatialQuery::Range(BBox::new(
                lat,
                lon,
                lat + 0.02,
                lon + 0.02,
            )))
        }
        1 => Query::Textual {
            text: WORDS[rng.gen_range(0..WORDS.len())].to_string(),
            mode: TextualMode::Any,
        },
        2 => Query::Textual {
            text: format!(
                "{} {}",
                WORDS[rng.gen_range(0..WORDS.len())],
                WORDS[rng.gen_range(0..WORDS.len())]
            ),
            mode: TextualMode::Ranked(10),
        },
        3 => {
            let from = 1_000 + rng.gen_range(0..90_000);
            Query::Temporal {
                field: TemporalField::Captured,
                from,
                to: from + 10_000,
            }
        }
        4 => Query::Categorical {
            scheme: tvdp_storage::ClassificationId(0),
            label: rng.gen_range(0..3),
            min_confidence: 0.6,
        },
        5 => Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        },
        _ => {
            let lat = 34.0 + rng.gen_range(0.0..0.05);
            let lon = -118.3 + rng.gen_range(0.0..0.05);
            Query::And(vec![
                Query::Spatial(SpatialQuery::Range(BBox::new(
                    lat,
                    lon,
                    lat + 0.03,
                    lon + 0.03,
                ))),
                Query::Visual {
                    example: random_example(rng),
                    kind: FeatureKind::Cnn,
                    mode: VisualMode::TopK(10),
                },
            ])
        }
    }
}

/// Applies one upload to the store owning its shard (annotation
/// included, so categorical queries see fresh rows too).
fn apply_upload(store: &VisualStore, up: &Upload) {
    ok(
        store.add_image_at(up.id, up.meta.clone(), ImageOrigin::Original, None),
        "add_image_at",
    );
    ok(
        store.put_feature(up.id, FeatureKind::Cnn, up.feature.clone()),
        "put_feature",
    );
    ok(
        store.annotate(
            up.id,
            tvdp_storage::ClassificationId(0),
            up.class,
            0.9,
            AnnotationSource::Human(UserId(0)),
            None,
        ),
        "annotate",
    );
}

/// Builds `shards` stores, routes the preload corpus into them, and
/// returns the stores plus the per-writer upload scripts (ids above the
/// preload range, routed at apply time).
fn build_corpus(shards: usize) -> (Vec<Arc<VisualStore>>, Vec<Vec<Upload>>) {
    let stores: Vec<Arc<VisualStore>> = (0..shards).map(|_| Arc::new(VisualStore::new())).collect();
    for s in &stores {
        ok(
            s.register_scheme(
                "cleanliness",
                vec!["clean".into(), "dirty".into(), "encampment".into()],
            ),
            "register_scheme",
        );
    }
    let mut rng = StdRng::seed_from_u64(0x5A4D);
    for i in 0..N_BASE {
        let up = make_upload(&mut rng, i as u64);
        apply_upload(&stores[shard_for(&up.meta.gps, shards)], &up);
    }
    let scripts: Vec<Vec<Upload>> = (0..WRITERS)
        .map(|w| {
            let mut wrng = StdRng::seed_from_u64(0xBEEF + w as u64);
            (0..INGESTS_PER_WRITER)
                .map(|j| {
                    let id = (N_BASE + w * INGESTS_PER_WRITER + j) as u64;
                    make_upload(&mut wrng, id)
                })
                .collect()
        })
        .collect();
    (stores, scripts)
}

fn reader_scripts() -> Vec<Vec<Query>> {
    (0..READERS)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(0xACE + r as u64);
            (0..QUERIES_PER_READER)
                .map(|_| random_query(&mut rng))
                .collect()
        })
        .collect()
}

fn total_ops() -> usize {
    READERS * QUERIES_PER_READER + WRITERS * INGESTS_PER_WRITER
}

fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    v[((v.len() - 1) as f64 * p) as usize]
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

// ---------------------------------------------------------------------
// Section 1: measured per-op service times.
// ---------------------------------------------------------------------

/// Single-threaded service-time profile of one architecture: the cost
/// of every scripted operation with zero lock contention.
struct PerOp {
    name: String,
    /// Per reader script: per-query service times (µs), measured at
    /// full corpus size (preload + every scripted ingest applied).
    query_us: Vec<Vec<f64>>,
    /// Per writer script: per-ingest `(service µs, target shard)`.
    ingest_us: Vec<Vec<(f64, usize)>>,
    shards: usize,
}

impl PerOp {
    fn flat_queries(&self) -> Vec<f64> {
        self.query_us.iter().flatten().copied().collect()
    }
    fn flat_ingests(&self) -> Vec<f64> {
        self.ingest_us.iter().flatten().map(|&(t, _)| t).collect()
    }
    fn json(&self) -> String {
        let q = self.flat_queries();
        let w = self.flat_ingests();
        format!(
            "    {{ \"config\": \"{}\", \"query_mean_us\": {:.1}, \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \"ingest_mean_us\": {:.1}, \"ingest_p50_us\": {:.1}, \"ingest_p99_us\": {:.1} }}",
            self.name,
            mean(&q),
            percentile(&q, 0.50),
            percentile(&q, 0.99),
            mean(&w),
            percentile(&w, 0.50),
            percentile(&w, 0.99),
        )
    }
}

fn measure_single_lock(query_scripts: &[Vec<Query>]) -> PerOp {
    let (stores, write_scripts) = build_corpus(1);
    let store = Arc::clone(&stores[0]);
    let mut engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let ingest_us = write_scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|up| {
                    let t0 = Instant::now();
                    apply_upload(&store, up);
                    engine.index_image(up.id);
                    (t0.elapsed().as_secs_f64() * 1e6, 0usize)
                })
                .collect()
        })
        .collect();
    let query_us = query_scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|q| {
                    let t0 = Instant::now();
                    black_box(engine.execute(q).len());
                    t0.elapsed().as_secs_f64() * 1e6
                })
                .collect()
        })
        .collect();
    PerOp {
        name: "single_lock".into(),
        query_us,
        ingest_us,
        shards: 1,
    }
}

fn measure_sharded(shards: usize, query_scripts: &[Vec<Query>]) -> PerOp {
    let (stores, write_scripts) = build_corpus(shards);
    let engine = ShardedEngine::build(stores.clone(), Default::default());
    let serial = Pool::serial();
    let ingest_us = write_scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|up| {
                    let shard = shard_for(&up.meta.gps, shards);
                    let t0 = Instant::now();
                    apply_upload(&stores[shard], up);
                    engine.index_image(shard, up.id);
                    (t0.elapsed().as_secs_f64() * 1e6, shard)
                })
                .collect()
        })
        .collect();
    let query_us = query_scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|q| {
                    let t0 = Instant::now();
                    black_box(ok(engine.try_execute_with_pool(q, &serial), "query").len());
                    t0.elapsed().as_secs_f64() * 1e6
                })
                .collect()
        })
        .collect();
    PerOp {
        name: format!("sharded_{shards}"),
        query_us,
        ingest_us,
        shards,
    }
}

// ---------------------------------------------------------------------
// Section 2: measured concurrent run on this host.
// ---------------------------------------------------------------------

struct Measurement {
    name: String,
    elapsed_s: f64,
    read_latencies_us: Vec<f64>,
    result_rows: usize,
}

impl Measurement {
    fn throughput(&self) -> f64 {
        total_ops() as f64 / self.elapsed_s
    }
    fn json(&self) -> String {
        format!(
            "    {{ \"config\": \"{}\", \"elapsed_s\": {:.3}, \"ops\": {}, \"ops_per_s\": {:.0}, \"read_p50_us\": {:.0}, \"read_p99_us\": {:.0}, \"result_rows\": {} }}",
            self.name,
            self.elapsed_s,
            total_ops(),
            self.throughput(),
            percentile(&self.read_latencies_us, 0.50),
            percentile(&self.read_latencies_us, 0.99),
            self.result_rows
        )
    }
}

/// Runs the concurrent phase: `READERS` query threads and `WRITERS`
/// ingest threads, all live at once on scoped threads.
fn run_mixed(
    name: String,
    query_scripts: &[Vec<Query>],
    write_scripts: &[Vec<Upload>],
    run_query: impl Fn(&Query) -> usize + Sync,
    run_ingest: impl Fn(&Upload) + Sync,
) -> Measurement {
    let pool = Pool::new(READERS + WRITERS);
    let run_query = &run_query;
    let run_ingest = &run_ingest;
    let t0 = Instant::now();
    let (read_latencies_us, result_rows) = pool.scope(|s| {
        let mut readers = Vec::new();
        for script in query_scripts {
            readers.push(s.spawn(move || {
                let mut lat = Vec::with_capacity(script.len());
                let mut rows = 0usize;
                for q in script {
                    let q0 = Instant::now();
                    rows += run_query(q);
                    lat.push(q0.elapsed().as_secs_f64() * 1e6);
                }
                (lat, rows)
            }));
        }
        let mut writers = Vec::new();
        for script in write_scripts {
            writers.push(s.spawn(move || {
                for up in script {
                    run_ingest(up);
                }
            }));
        }
        let mut all_lat = Vec::new();
        let mut all_rows = 0usize;
        for r in readers {
            let (lat, rows) = ok(r.join().map_err(|_| "reader panicked"), "join");
            all_lat.extend(lat);
            all_rows += rows;
        }
        for w in writers {
            ok(w.join().map_err(|_| "writer panicked"), "join");
        }
        (all_lat, all_rows)
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    Measurement {
        name,
        elapsed_s,
        read_latencies_us,
        result_rows,
    }
}

fn run_single_lock(query_scripts: &[Vec<Query>]) -> Measurement {
    let (stores, write_scripts) = build_corpus(1);
    let store = Arc::clone(&stores[0]);
    let engine = RwLock::new(QueryEngine::build(Arc::clone(&store), Default::default()));
    run_mixed(
        "single_lock".into(),
        query_scripts,
        &write_scripts,
        |q| engine.read().execute(q).len(),
        |up| {
            apply_upload(&store, up);
            engine.write().index_image(up.id);
        },
    )
}

fn run_sharded(shards: usize, query_scripts: &[Vec<Query>]) -> Measurement {
    let (stores, write_scripts) = build_corpus(shards);
    let engine = ShardedEngine::build(stores.clone(), Default::default());
    let serial = Pool::serial();
    run_mixed(
        format!("sharded_{shards}"),
        query_scripts,
        &write_scripts,
        |q| ok(engine.try_execute_with_pool(q, &serial), "query").len(),
        |up| {
            let shard = shard_for(&up.meta.gps, shards);
            apply_upload(&stores[shard], up);
            engine.index_image(shard, up.id);
        },
    )
}

/// Estimates how much CPU parallelism this host actually delivers:
/// 8 fixed spin-work units run serially vs 8-way on scoped threads.
/// ~1.0 means threads only time-slice; ~8.0 means 8 real cores.
fn effective_cores() -> f64 {
    fn burn() -> f64 {
        let mut acc = 0.0f64;
        for i in 0..4_000_000u64 {
            acc += f64::from((i as u32).wrapping_mul(2_654_435_761) >> 16);
        }
        acc
    }
    let t0 = Instant::now();
    for _ in 0..8 {
        black_box(burn());
    }
    let serial = t0.elapsed().as_secs_f64();
    let pool = Pool::new(8);
    let t0 = Instant::now();
    pool.scope(|s| {
        let handles: Vec<_> = (0..8).map(|_| s.spawn(|| black_box(burn()))).collect();
        for h in handles {
            ok(h.join().map_err(|_| "burn thread panicked"), "join");
        }
    });
    serial / t0.elapsed().as_secs_f64().max(1e-9)
}

// ---------------------------------------------------------------------
// Section 3: deterministic discrete-event schedule on 8 threads.
// ---------------------------------------------------------------------

struct SimOut {
    name: String,
    makespan_us: f64,
    reader_wait_us: Vec<f64>,
    reader_latency_us: Vec<f64>,
}

impl SimOut {
    fn throughput(&self) -> f64 {
        total_ops() as f64 / (self.makespan_us * 1e-6)
    }
    fn json(&self) -> String {
        format!(
            "    {{ \"config\": \"{}\", \"makespan_s\": {:.3}, \"ops_per_s\": {:.0}, \"reader_lock_wait_p50_us\": {:.0}, \"reader_lock_wait_p99_us\": {:.0}, \"reader_latency_p99_us\": {:.0} }}",
            self.name,
            self.makespan_us * 1e-6,
            self.throughput(),
            percentile(&self.reader_wait_us, 0.50),
            percentile(&self.reader_wait_us, 0.99),
            percentile(&self.reader_latency_us, 0.99),
        )
    }
}

/// Schedules the 4+4 tasks through one fair write-preferring RwLock
/// (parking_lot semantics, the seed design). Writers hold the write
/// lock across a `WRITE_BATCH`-upload batch, exactly as the old
/// `Tvdp::ingest_batch` held it across the whole batch loop. Under
/// sustained ingest a fair lock alternates: one writer batch, then the
/// queued readers as one shared group (each runs the query it was
/// blocked on), then the next writer. When writers finish, readers
/// drain freely — 8 threads on 8 cores, so the lock is the only queue.
fn simulate_single_lock(per: &PerOp) -> SimOut {
    let batches: Vec<Vec<f64>> = per
        .ingest_us
        .iter()
        .map(|script| {
            script
                .chunks(WRITE_BATCH)
                .map(|c| c.iter().map(|&(t, _)| t).sum())
                .collect()
        })
        .collect();
    let mut w_idx = vec![0usize; batches.len()];
    let mut w_ready = vec![0.0f64; batches.len()];
    let mut r_idx = vec![0usize; per.query_us.len()];
    let mut r_ready = vec![0.0f64; per.query_us.len()];
    let mut lock_free = 0.0f64;
    let mut waits = Vec::new();
    let mut lats = Vec::new();
    loop {
        // Earliest-ready writer with a batch left takes the write lock.
        let next_writer = (0..batches.len())
            .filter(|&w| w_idx[w] < batches[w].len())
            .min_by(|&a, &b| w_ready[a].total_cmp(&w_ready[b]).then(a.cmp(&b)));
        let Some(w) = next_writer else { break };
        let start = lock_free.max(w_ready[w]);
        lock_free = start + batches[w][w_idx[w]];
        w_idx[w] += 1;
        w_ready[w] = lock_free;
        // Readers that queued behind that hold are admitted as one
        // shared group; the next writer waits for the group to drain
        // (fair FIFO — it queued after them).
        let mut group_end = lock_free;
        for r in 0..per.query_us.len() {
            if r_idx[r] < per.query_us[r].len() && r_ready[r] <= lock_free {
                let service = per.query_us[r][r_idx[r]];
                let wait = lock_free - r_ready[r];
                waits.push(wait);
                lats.push(wait + service);
                r_idx[r] += 1;
                r_ready[r] = lock_free + service;
                group_end = group_end.max(r_ready[r]);
            }
        }
        lock_free = group_end;
    }
    // Writers done: remaining queries run lock-free in parallel.
    for r in 0..per.query_us.len() {
        while r_idx[r] < per.query_us[r].len() {
            let service = per.query_us[r][r_idx[r]];
            waits.push(0.0);
            lats.push(service);
            r_idx[r] += 1;
            r_ready[r] += service;
        }
    }
    let makespan = w_ready
        .iter()
        .chain(r_ready.iter())
        .fold(0.0f64, |m, &t| m.max(t));
    SimOut {
        name: per.name.clone(),
        makespan_us: makespan,
        reader_wait_us: waits,
        reader_latency_us: lats,
    }
}

/// Schedules the same tasks against the sharded engine: readers take no
/// lock at all (generation snapshots), so each runs back-to-back;
/// writers serialize only through their target shard's FIFO mutex.
fn simulate_sharded(per: &PerOp) -> SimOut {
    let reader_span = per
        .query_us
        .iter()
        .map(|s| s.iter().sum::<f64>())
        .fold(0.0f64, f64::max);
    let waits = vec![0.0; per.query_us.iter().map(Vec::len).sum()];
    let lats: Vec<f64> = per.query_us.iter().flatten().copied().collect();
    let mut shard_free = vec![0.0f64; per.shards];
    let mut w_t = vec![0.0f64; per.ingest_us.len()];
    let mut w_idx = vec![0usize; per.ingest_us.len()];
    // Advancing the earliest-in-time writer first reproduces FIFO
    // arrival order at every shard mutex.
    loop {
        let next = (0..per.ingest_us.len())
            .filter(|&w| w_idx[w] < per.ingest_us[w].len())
            .min_by(|&a, &b| w_t[a].total_cmp(&w_t[b]).then(a.cmp(&b)));
        let Some(w) = next else { break };
        let (service, shard) = per.ingest_us[w][w_idx[w]];
        let start = w_t[w].max(shard_free[shard]);
        w_t[w] = start + service;
        shard_free[shard] = w_t[w];
        w_idx[w] += 1;
    }
    let write_span = w_t.iter().fold(0.0f64, |m, &t| m.max(t));
    SimOut {
        name: per.name.clone(),
        makespan_us: reader_span.max(write_span),
        reader_wait_us: waits,
        reader_latency_us: lats,
    }
}

fn main() {
    eprintln!(
        "shard_scaling: corpus {N_BASE} (dim {DIM}), {READERS} readers x {QUERIES_PER_READER} queries, {WRITERS} writers x {INGESTS_PER_WRITER} ingests (write batch {WRITE_BATCH})"
    );
    let cores = effective_cores();
    eprintln!("  host effective cores: {cores:.1}");
    let query_scripts = reader_scripts();

    // Section 1: per-op service times.
    let mut per_ops = vec![measure_single_lock(&query_scripts)];
    for shards in SHARD_COUNTS {
        per_ops.push(measure_sharded(shards, &query_scripts));
    }
    for p in &per_ops {
        let q = p.flat_queries();
        let w = p.flat_ingests();
        eprintln!(
            "  per-op {:<12} query mean {:>6.0} us  ingest mean {:>5.1} us",
            p.name,
            mean(&q),
            mean(&w)
        );
    }

    // Section 3 (computed before the noisy section-2 runs): the
    // discrete-event schedule over measured service times.
    let sims: Vec<SimOut> = per_ops
        .iter()
        .map(|p| {
            if p.name == "single_lock" {
                simulate_single_lock(p)
            } else {
                simulate_sharded(p)
            }
        })
        .collect();
    for s in &sims {
        eprintln!(
            "  sim    {:<12} {:>8.0} ops/s  reader lock-wait p99 {:>7.0} us",
            s.name,
            s.throughput(),
            percentile(&s.reader_wait_us, 0.99)
        );
    }

    // Section 2: real concurrent runs on this host.
    let mut measured = vec![run_single_lock(&query_scripts)];
    for shards in SHARD_COUNTS {
        measured.push(run_sharded(shards, &query_scripts));
    }
    for m in &measured {
        eprintln!(
            "  host   {:<12} {:>8.0} ops/s  read p50 {:>6.0} us  p99 {:>8.0} us",
            m.name,
            m.throughput(),
            percentile(&m.read_latencies_us, 0.5),
            percentile(&m.read_latencies_us, 0.99)
        );
    }

    let sim_base = &sims[0];
    let sim_at8 = match sims.iter().find(|s| s.name == "sharded_8") {
        Some(s) => s,
        None => {
            eprintln!("shard_scaling: missing 8-shard sim");
            std::process::exit(1);
        }
    };
    let speedup = sim_at8.throughput() / sim_base.throughput();
    let base_wait_p99 = percentile(&sim_base.reader_wait_us, 0.99);

    println!("{{");
    println!(
        "  \"description\": \"Concurrent mixed workload: {READERS} readers x {QUERIES_PER_READER} queries + {WRITERS} writers x {INGESTS_PER_WRITER} ingests over a {N_BASE}-image preloaded corpus (dim {DIM}). single_lock = pre-shard design (one QueryEngine behind a RwLock, write lock held across {WRITE_BATCH}-upload batches as the old ingest_batch did); sharded_N = ShardedEngine (geo-grid shards, per-shard writer mutexes, lock-free generation-snapshot reads).\","
    );
    println!(
        "  \"methodology\": \"per_op_us: measured single-threaded service time of every scripted op at full corpus size. measured_concurrent_this_host: real 8-thread wall-clock run on the bench host — the checked-in snapshot was generated in a container with ~1 effective core (see host.effective_cores), where any architecture's threads merely time-slice and lock-freedom cannot show a wall-clock win. simulated_8_threads: deterministic discrete-event schedule of the same tasks on 8 hardware threads replaying the measured per-op costs through each design's synchronization discipline (fair write-preferring RwLock with batched write holds vs per-shard FIFO mutex + zero-wait snapshot reads) — the same virtual-time methodology as BENCH_edge.json, reproducible on any host. The acceptance ratio is computed from the simulated section; reader_lock_wait is time blocked on the engine lock, which is structurally zero for sharded reads (GenCell Arc-swap load).\","
    );
    println!("  \"regenerate\": \"cargo run --release -p tvdp-bench --bin shard_scaling > BENCH_shard.json\",");
    println!("  \"host\": {{ \"effective_cores\": {cores:.1} }},");
    println!("  \"per_op_us\": [");
    println!(
        "{}",
        per_ops
            .iter()
            .map(PerOp::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    println!("  ],");
    println!("  \"measured_concurrent_this_host\": [");
    println!(
        "{}",
        measured
            .iter()
            .map(Measurement::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    println!("  ],");
    println!("  \"simulated_8_threads\": [");
    println!(
        "{}",
        sims.iter()
            .map(SimOut::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    println!("  ],");
    println!("  \"acceptance\": {{");
    println!(
        "    \"mixed_throughput_3x_at_8_shards\": \"{}: {speedup:.2}x over the single-lock engine (simulated 8-thread schedule over measured per-op costs)\",",
        if speedup >= 3.0 { "met" } else { "NOT met" }
    );
    println!(
        "    \"no_lock_stalls_during_sustained_ingest\": \"single-lock readers wait up to {:.0} us (p99) behind batched write holds; sharded readers wait 0 us — the read path takes no lock (generation snapshot load), so queries never stall on ingest\",",
        base_wait_p99
    );
    println!(
        "    \"parity\": \"shard/thread parity suites (crates/query/tests/parity.rs, determinism.rs) hold byte-identical results across 1/3/8 shards x 1/8 threads\""
    );
    println!("  }}");
    println!("}}");
}
