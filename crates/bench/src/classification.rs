//! Figures 6 and 7: street-cleanliness classification.
//!
//! Reproduces the paper's protocol: 80/20 stratified split, feature
//! extraction per family (HSV color histogram 20/20/10, SIFT-BoW with a
//! k-means dictionary built on the training split, CNN embedding),
//! standard scaling fitted on train only, then one classifier per cell of
//! the (feature × classifier) matrix, scored by macro F1 on the held-out
//! 20% (Fig. 6). Fig. 7 reports per-category F1 for the winning
//! combination (SVM + CNN in the paper).

use serde::{Deserialize, Serialize};

use tvdp_datagen::{generate, CleanlinessClass, DatasetConfig};
use tvdp_ml::data::stratified_split;
use tvdp_ml::{cross_validate, Dataset};
use tvdp_ml::{
    Classifier, ConfusionMatrix, DecisionTree, GaussianNb, KnnClassifier, LinearSvm, Mlp,
    MlpParams, RandomForest, StandardScaler,
};
use tvdp_vision::{
    BowEncoder, CnnExtractor, ColorHistogramExtractor, FeatureExtractor, FeatureKind, SiftExtractor,
};

/// Configuration shared by the Fig. 6 and Fig. 7 experiments.
#[derive(Debug, Clone)]
pub struct ClassificationConfig {
    /// Dataset size (paper: 22_000; default scaled down for speed).
    pub n_images: usize,
    /// Image edge length in pixels.
    pub image_size: usize,
    /// SIFT-BoW vocabulary size (paper: 1000).
    pub bow_vocabulary: usize,
    /// Train fraction (paper: 0.8).
    pub train_fraction: f64,
    /// Hidden width of the CNN fine-tuning head.
    pub head_hidden: usize,
    /// Training epochs of the CNN fine-tuning head.
    pub head_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClassificationConfig {
    fn default() -> Self {
        Self {
            n_images: 3000,
            image_size: 64,
            bow_vocabulary: 128,
            train_fraction: 0.8,
            head_hidden: 96,
            head_epochs: 100,
            seed: 0xF166,
        }
    }
}

/// One cell of the Fig. 6 matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Cell {
    /// Feature family label (paper x-axis grouping).
    pub feature: String,
    /// Classifier label.
    pub classifier: String,
    /// Macro F1 on the held-out split.
    pub f1: f64,
    /// Accuracy on the held-out split.
    pub accuracy: f64,
}

/// The full Fig. 6 matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// All (feature, classifier) cells.
    pub cells: Vec<Fig6Cell>,
}

impl Fig6Result {
    /// F1 for one (feature, classifier) pair.
    pub fn f1(&self, feature: &str, classifier: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.feature == feature && c.classifier == classifier)
            .map(|c| c.f1)
    }

    /// The best cell overall.
    pub fn best(&self) -> &Fig6Cell {
        self.cells
            .iter()
            .max_by(|a, b| a.f1.total_cmp(&b.f1))
            // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
            .expect("non-empty result")
    }

    /// Mean F1 across classifiers for one feature family.
    pub fn mean_f1_for_feature(&self, feature: &str) -> f64 {
        let xs: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.feature == feature)
            .map(|c| c.f1)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    }
}

/// Per-category F1 for the winning combination (Fig. 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// `(class label, precision, recall, f1)` per cleanliness category.
    pub per_class: Vec<(String, f64, f64, f64)>,
    /// Macro F1 of the winning combination.
    pub macro_f1: f64,
}

/// The paper's model-selection protocol: "all classifiers were trained on
/// 80% of the dataset using 10-fold cross-validation". This runs k-fold
/// CV of the SVM on the training split per feature family, the numbers a
/// practitioner would use to pick the winning combination before the
/// Fig. 6 held-out evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvProtocolResult {
    /// Per feature family: `(label, mean F1 across folds, std of F1)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Folds used.
    pub folds: usize,
}

/// Runs the k-fold cross-validation protocol on the training split.
pub fn run_cv_protocol(config: &ClassificationConfig, folds: usize) -> CvProtocolResult {
    let (splits, train_y, _) = prepare(config);
    let mut rows = Vec::new();
    for split in &splits {
        let scaler = StandardScaler::fit(&split.train_x);
        let train_x = scaler.transform(&split.train_x);
        let data = Dataset::new(train_x, train_y.clone(), 5);
        let result = cross_validate(&data, folds, config.seed, LinearSvm::new);
        rows.push((
            split.kind.label().to_string(),
            result.mean_f1(),
            result.std_f1(),
        ));
    }
    CvProtocolResult { rows, folds }
}

/// Extracted features for train/test splits of one feature family.
struct FeatureSplit {
    kind: FeatureKind,
    train_x: Vec<Vec<f32>>,
    test_x: Vec<Vec<f32>>,
}

/// Shared pipeline: generate data, split, extract all three feature
/// families.
fn prepare(config: &ClassificationConfig) -> (Vec<FeatureSplit>, Vec<usize>, Vec<usize>) {
    let data = generate(&DatasetConfig {
        n_images: config.n_images,
        image_size: config.image_size,
        seed: config.seed,
        ..Default::default()
    });
    let labels: Vec<usize> = data.iter().map(|d| d.cleanliness.index()).collect();
    let (train_idx, test_idx) = stratified_split(&labels, 5, config.train_fraction, config.seed);

    let mut splits = Vec::new();

    // Color histogram (paper: HSV 20/20/10).
    let color = ColorHistogramExtractor::paper_default();
    splits.push(extract_split(&data, &train_idx, &test_idx, &color));

    // SIFT-BoW: dictionary from the training split only, as in the paper.
    let train_images: Vec<tvdp_vision::Image> =
        train_idx.iter().map(|&i| data[i].image.clone()).collect();
    let bow = BowEncoder::train(
        &train_images,
        SiftExtractor::new(),
        config.bow_vocabulary,
        config.seed,
    );
    splits.push(extract_split(&data, &train_idx, &test_idx, &bow));

    // CNN embedding, fine-tuned on the training split: the paper
    // fine-tunes its Caffe network on 80% of the data before extracting
    // features. We reproduce that by training an MLP head on the
    // random-convolution embedding (train split only) and using its
    // hidden activations as the CNN feature vector.
    let cnn = CnnExtractor::new();
    let raw = extract_split(&data, &train_idx, &test_idx, &cnn);
    let scaler = StandardScaler::fit(&raw.train_x);
    let train_scaled = scaler.transform(&raw.train_x);
    let test_scaled = scaler.transform(&raw.test_x);
    let train_y_tmp: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let mut head = Mlp::with_params(MlpParams {
        hidden: config.head_hidden,
        epochs: config.head_epochs,
        seed: config.seed,
        ..Default::default()
    });
    head.fit(&train_scaled, &train_y_tmp, 5);
    splits.push(FeatureSplit {
        kind: FeatureKind::Cnn,
        train_x: train_scaled
            .iter()
            .map(|r| head.hidden_activations(r))
            .collect(),
        test_x: test_scaled
            .iter()
            .map(|r| head.hidden_activations(r))
            .collect(),
    });

    let train_y: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let test_y: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
    (splits, train_y, test_y)
}

fn extract_split(
    data: &[tvdp_datagen::SyntheticImage],
    train_idx: &[usize],
    test_idx: &[usize],
    extractor: &dyn FeatureExtractor,
) -> FeatureSplit {
    let train_x: Vec<Vec<f32>> = train_idx
        .iter()
        .map(|&i| extractor.extract(&data[i].image))
        .collect();
    let test_x: Vec<Vec<f32>> = test_idx
        .iter()
        .map(|&i| extractor.extract(&data[i].image))
        .collect();
    FeatureSplit {
        kind: extractor.kind(),
        train_x,
        test_x,
    }
}

fn classifier_roster(seed: u64) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(KnnClassifier::new(5).weighted()),
        Box::new(DecisionTree::new()),
        Box::new(GaussianNb::new()),
        Box::new(RandomForest::new(25, seed)),
        Box::new(LinearSvm::new()),
    ]
}

/// Runs the Fig. 6 experiment: the (feature × classifier) F1 matrix.
pub fn run_fig6(config: &ClassificationConfig) -> Fig6Result {
    let (splits, train_y, test_y) = prepare(config);
    let mut cells = Vec::new();
    for split in &splits {
        let scaler = StandardScaler::fit(&split.train_x);
        let train_x = scaler.transform(&split.train_x);
        let test_x = scaler.transform(&split.test_x);
        for mut model in classifier_roster(config.seed) {
            model.fit(&train_x, &train_y, 5);
            let preds = model.predict(&test_x);
            let cm = ConfusionMatrix::from_predictions(&test_y, &preds, 5);
            cells.push(Fig6Cell {
                feature: split.kind.label().to_string(),
                classifier: model.name().to_string(),
                f1: cm.macro_f1(),
                accuracy: cm.accuracy(),
            });
        }
    }
    Fig6Result { cells }
}

/// Runs the Fig. 7 experiment: per-category F1 of SVM + CNN.
pub fn run_fig7(config: &ClassificationConfig) -> Fig7Result {
    let (splits, train_y, test_y) = prepare(config);
    let cnn = splits
        .iter()
        .find(|s| s.kind == FeatureKind::Cnn)
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("CNN split present");
    let scaler = StandardScaler::fit(&cnn.train_x);
    let train_x = scaler.transform(&cnn.train_x);
    let test_x = scaler.transform(&cnn.test_x);
    let mut svm = LinearSvm::new();
    svm.fit(&train_x, &train_y, 5);
    let preds = svm.predict(&test_x);
    let cm = ConfusionMatrix::from_predictions(&test_y, &preds, 5);
    let per_class = CleanlinessClass::ALL
        .iter()
        .map(|c| {
            let i = c.index();
            (
                c.label().to_string(),
                cm.precision(i),
                cm.recall(i),
                cm.f1(i),
            )
        })
        .collect();
    Fig7Result {
        per_class,
        macro_f1: cm.macro_f1(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ClassificationConfig {
        ClassificationConfig {
            n_images: 80,
            image_size: 32,
            bow_vocabulary: 12,
            head_hidden: 16,
            head_epochs: 10,
            ..Default::default()
        }
    }

    #[test]
    fn fig6_produces_full_matrix() {
        let result = run_fig6(&tiny_config());
        assert_eq!(result.cells.len(), 15, "3 features x 5 classifiers");
        for cell in &result.cells {
            assert!((0.0..=1.0).contains(&cell.f1), "{cell:?}");
            assert!((0.0..=1.0).contains(&cell.accuracy));
        }
        // All three feature families present.
        for f in ["Color Histogram", "SIFT-BoW", "CNN"] {
            assert!(result.cells.iter().any(|c| c.feature == f));
        }
    }

    #[test]
    fn fig7_reports_all_five_categories() {
        let result = run_fig7(&tiny_config());
        assert_eq!(result.per_class.len(), 5);
        assert!((0.0..=1.0).contains(&result.macro_f1));
    }
}

#[cfg(test)]
mod cv_tests {
    use super::*;

    #[test]
    fn cv_protocol_reports_all_families() {
        let config = ClassificationConfig {
            n_images: 80,
            image_size: 32,
            bow_vocabulary: 12,
            head_hidden: 16,
            head_epochs: 10,
            ..Default::default()
        };
        let cv = run_cv_protocol(&config, 3);
        assert_eq!(cv.folds, 3);
        assert_eq!(cv.rows.len(), 3);
        for (feature, mean, std) in &cv.rows {
            assert!(!feature.is_empty());
            assert!((0.0..=1.0).contains(mean), "{feature}: mean {mean}");
            assert!(*std >= 0.0);
        }
    }
}
