//! Section III experiment: iterative spatial crowdsourcing until the
//! coverage goal is met, with the greedy-vs-matching assignment ablation.

use serde::{Deserialize, Serialize};

use tvdp_crowd::simulate::AssignStrategy;
use tvdp_crowd::{simulate_campaign, Campaign, SimulationConfig};
use tvdp_geo::{BBox, CoverageSpec, GeoPoint};

/// Configuration for the campaign experiment.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// Region edge length in metres.
    pub region_m: f64,
    /// Coverage cell size in metres.
    pub cell_m: f64,
    /// Required distinct direction sectors per cell.
    pub min_sectors: usize,
    /// Simulated workers.
    pub n_workers: usize,
    /// Worker travel range in metres (small ranges make assignment
    /// quality matter).
    pub worker_range_m: f64,
    /// Task budget per round.
    pub round_budget: usize,
    /// Maximum rounds.
    pub max_rounds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        Self {
            region_m: 600.0,
            cell_m: 100.0,
            min_sectors: 4,
            n_workers: 25,
            worker_range_m: 160.0,
            round_budget: 250,
            max_rounds: 15,
            seed: 0xC0F,
        }
    }
}

/// One strategy's trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy label.
    pub strategy: String,
    /// Direction coverage after each round.
    pub coverage_per_round: Vec<f64>,
    /// Tasks issued in total.
    pub tasks_issued: usize,
    /// Tasks completed in total.
    pub tasks_completed: usize,
    /// Whether the goal was met within the round budget.
    pub satisfied: bool,
}

/// The experiment result: one outcome per assignment strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageResult {
    /// Greedy and matching outcomes.
    pub outcomes: Vec<StrategyOutcome>,
}

fn build_campaign(config: &CoverageConfig) -> Campaign {
    let sw = GeoPoint::new(34.02, -118.29);
    let ne = sw.destination(0.0, config.region_m);
    let e = sw.destination(90.0, config.region_m);
    let spec = CoverageSpec::new(BBox::new(sw.lat, sw.lon, ne.lat, e.lon), config.cell_m, 8);
    Campaign::new("coverage-experiment", spec, config.min_sectors, 1)
}

/// Runs both assignment strategies on the same campaign.
pub fn run_coverage(config: &CoverageConfig) -> CoverageResult {
    let campaign = build_campaign(config);
    let outcomes = [AssignStrategy::Greedy, AssignStrategy::Matching]
        .into_iter()
        .map(|strategy| {
            let sim = SimulationConfig {
                n_workers: config.n_workers,
                worker_range_m: config.worker_range_m,
                round_budget: config.round_budget,
                max_rounds: config.max_rounds,
                strategy,
                seed: config.seed,
                ..Default::default()
            };
            let (report, _) = simulate_campaign(&campaign, &sim);
            StrategyOutcome {
                strategy: format!("{strategy:?}"),
                coverage_per_round: report.rounds.iter().map(|r| r.direction_coverage).collect(),
                tasks_issued: report.tasks_issued,
                tasks_completed: report.tasks_completed,
                satisfied: report.satisfied,
            }
        })
        .collect();
    CoverageResult { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_make_progress() {
        let result = run_coverage(&CoverageConfig {
            region_m: 300.0,
            max_rounds: 8,
            ..Default::default()
        });
        assert_eq!(result.outcomes.len(), 2);
        for o in &result.outcomes {
            assert!(!o.coverage_per_round.is_empty());
            let last = *o.coverage_per_round.last().unwrap();
            assert!(last > 0.2, "{} stalled at {last}", o.strategy);
            assert!(o.tasks_completed <= o.tasks_issued);
        }
    }

    #[test]
    fn matching_completes_at_least_as_many_tasks() {
        let result = run_coverage(&CoverageConfig {
            region_m: 400.0,
            n_workers: 8,
            round_budget: 120,
            max_rounds: 4,
            ..Default::default()
        });
        let greedy = &result.outcomes[0];
        let matching = &result.outcomes[1];
        // Same seed, same workers: matching assigns a superset count per
        // round, so over the run it cannot complete fewer tasks by more
        // than stochastic completion noise; allow a small slack.
        assert!(
            matching.tasks_completed + 10 >= greedy.tasks_completed,
            "matching {} vs greedy {}",
            matching.tasks_completed,
            greedy.tasks_completed
        );
    }
}
