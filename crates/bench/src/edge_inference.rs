//! Figure 8: average inference time per (model, device) pair.
//!
//! The paper transfers street-cleanliness models built on MobileNetV1,
//! MobileNetV2, and InceptionV3 to a desktop, a Raspberry Pi 3 B+, and a
//! smartphone, and reports mean inference latency on a log10 scale. This
//! experiment replays that grid on the analytical device simulator.

use serde::{Deserialize, Serialize};

use tvdp_edge::{simulate_inference, DeviceClass, MODEL_ZOO};

/// Configuration for the Fig. 8 replay.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Inferences simulated per (model, device) cell (paper averages over
    /// its test set).
    pub runs: usize,
    /// Seed for latency jitter.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Self {
            runs: 200,
            seed: 0xF18,
        }
    }
}

/// One cell of the latency grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Cell {
    /// Model name.
    pub model: String,
    /// Device label.
    pub device: String,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// `log10(mean_ms)` — the paper's axis.
    pub log10_ms: f64,
}

/// The full latency grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// All (model, device) cells.
    pub cells: Vec<Fig8Cell>,
}

impl Fig8Result {
    /// Mean latency for one (model, device) pair.
    pub fn mean_ms(&self, model: &str, device: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.device == device)
            .map(|c| c.mean_ms)
    }

    /// Orders of magnitude between the RPi and the desktop, averaged over
    /// models (the paper reports ≈1.5).
    pub fn rpi_desktop_orders(&self) -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for m in MODEL_ZOO {
            let rpi = self.mean_ms(m.name, DeviceClass::RaspberryPi.label());
            let desk = self.mean_ms(m.name, DeviceClass::Desktop.label());
            if let (Some(r), Some(d)) = (rpi, desk) {
                acc += (r / d).log10();
                n += 1;
            }
        }
        acc / n.max(1) as f64
    }
}

/// Runs the Fig. 8 grid.
pub fn run_fig8(config: &Fig8Config) -> Fig8Result {
    let mut cells = Vec::new();
    for model in MODEL_ZOO {
        for class in DeviceClass::ALL {
            let stats = simulate_inference(&model, &class.profile(), config.runs, config.seed);
            cells.push(Fig8Cell {
                model: model.name.to_string(),
                device: class.label().to_string(),
                mean_ms: stats.mean_ms,
                log10_ms: stats.log10_mean(),
            });
        }
    }
    Fig8Result { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_complete_and_shaped_like_the_paper() {
        let result = run_fig8(&Fig8Config { runs: 50, seed: 1 });
        assert_eq!(result.cells.len(), 9, "3 models x 3 devices");
        // Desktop in tens of ms for the mobile nets.
        let desk_mnv1 = result.mean_ms("MobileNetV1", "Desktop").unwrap();
        assert!((5.0..100.0).contains(&desk_mnv1), "{desk_mnv1}");
        // RPi in the thousands for Inception.
        let rpi_inc = result.mean_ms("InceptionV3", "Raspberry PI").unwrap();
        assert!(rpi_inc > 1_000.0, "{rpi_inc}");
        // ~1.5 orders between RPi and desktop.
        let orders = result.rpi_desktop_orders();
        assert!((1.0..2.3).contains(&orders), "{orders}");
        // Smartphone strictly between.
        for m in MODEL_ZOO {
            let d = result.mean_ms(m.name, "Desktop").unwrap();
            let p = result.mean_ms(m.name, "Smartphone").unwrap();
            let r = result.mean_ms(m.name, "Raspberry PI").unwrap();
            assert!(d < p && p < r, "{}: {d} {p} {r}", m.name);
        }
    }
}
