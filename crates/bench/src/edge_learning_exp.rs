//! Section VI experiment: crowd-based learning — margin-prioritized vs
//! random sample selection at equal bandwidth, plus the feature-vs-raw
//! upload saving.

use serde::{Deserialize, Serialize};

use tvdp_datagen::{generate, DatasetConfig};
use tvdp_edge::{learning::run_crowd_learning, CrowdLearningConfig, EdgeNode, SelectionStrategy};
use tvdp_ml::data::stratified_split;
use tvdp_ml::{Dataset, LinearSvm, StandardScaler};
use tvdp_vision::{CnnExtractor, FeatureExtractor};

/// Configuration for the crowd-learning experiment.
#[derive(Debug, Clone)]
pub struct EdgeLearningConfig {
    /// Total images (server seed + edge pools + test).
    pub n_images: usize,
    /// Image edge length in pixels.
    pub image_size: usize,
    /// Images in the server's initial labelled set.
    pub server_seed_size: usize,
    /// Held-out test images.
    pub test_size: usize,
    /// Number of edge devices splitting the remaining pool.
    pub n_edges: usize,
    /// Learning rounds.
    pub rounds: usize,
    /// Upload budget per edge per round, bytes.
    pub per_edge_budget_bytes: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for EdgeLearningConfig {
    fn default() -> Self {
        Self {
            n_images: 1400,
            image_size: 48,
            server_seed_size: 100,
            test_size: 300,
            n_edges: 8,
            rounds: 5,
            per_edge_budget_bytes: 40_000, // ~20 CNN vectors of 480 f32s
            seed: 0xED6E,
        }
    }
}

/// One strategy's learning trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeLearningOutcome {
    /// Strategy label.
    pub strategy: String,
    /// Test macro F1 per round (index 0 = before edge data).
    pub f1_per_round: Vec<f64>,
    /// Fraction of bandwidth saved by shipping features, `[0, 1]`.
    pub bandwidth_saving: f64,
}

/// The experiment result: margin vs random at equal budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeLearningResult {
    /// Both outcomes.
    pub outcomes: Vec<EdgeLearningOutcome>,
    /// Raw bytes one image upload would cost.
    pub raw_image_bytes: u64,
    /// Bytes one feature upload costs.
    pub feature_bytes: u64,
}

/// Runs the experiment.
pub fn run_edge_learning(config: &EdgeLearningConfig) -> EdgeLearningResult {
    assert!(
        config.server_seed_size + config.test_size < config.n_images,
        "no samples left for the edges"
    );
    let data = generate(&DatasetConfig {
        n_images: config.n_images,
        image_size: config.image_size,
        seed: config.seed,
        ..Default::default()
    });
    let labels: Vec<usize> = data.iter().map(|d| d.cleanliness.index()).collect();
    // Extract CNN features once (the edges extract locally in the story).
    let cnn = CnnExtractor::new();
    let features: Vec<Vec<f32>> = data.iter().map(|d| cnn.extract(&d.image)).collect();
    let scaler = StandardScaler::fit(&features);
    let features = scaler.transform(&features);
    let feature_bytes = (features[0].len() * 4) as u64;
    let raw_image_bytes = (config.image_size * config.image_size * 3) as u64;

    // Stratified three-way split: server seed, test, edge pools.
    let (mut rest, test_idx) = stratified_split(
        &labels,
        5,
        1.0 - config.test_size as f64 / config.n_images as f64,
        config.seed,
    );
    let seed_idx: Vec<usize> = rest
        .drain(..config.server_seed_size.min(rest.len()))
        .collect();

    let pick = |idx: &[usize]| -> Dataset {
        Dataset::new(
            idx.iter().map(|&i| features[i].clone()).collect(),
            idx.iter().map(|&i| labels[i]).collect(),
            5,
        )
    };
    let train = pick(&seed_idx);
    let test = pick(&test_idx);

    let outcomes = [SelectionStrategy::Margin, SelectionStrategy::Random]
        .into_iter()
        .map(|strategy| {
            // Fresh edge pools per strategy (identical contents).
            let mut edges: Vec<EdgeNode> = (0..config.n_edges)
                .map(|e| EdgeNode {
                    id: e as u64,
                    pool: rest
                        .iter()
                        .skip(e)
                        .step_by(config.n_edges)
                        .map(|&i| (features[i].clone(), labels[i]))
                        .collect(),
                })
                .collect();
            let report = run_crowd_learning(
                &train,
                &test,
                &mut edges,
                &CrowdLearningConfig {
                    rounds: config.rounds,
                    per_edge_budget_bytes: config.per_edge_budget_bytes,
                    feature_bytes,
                    raw_image_bytes,
                    strategy,
                    seed: config.seed,
                },
                LinearSvm::new,
            );
            EdgeLearningOutcome {
                strategy: format!("{strategy:?}"),
                f1_per_round: report.rounds.iter().map(|r| r.test_f1).collect(),
                bandwidth_saving: report.bandwidth_saving,
            }
        })
        .collect();

    EdgeLearningResult {
        outcomes,
        raw_image_bytes,
        feature_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_improves_under_both_strategies() {
        let result = run_edge_learning(&EdgeLearningConfig {
            n_images: 300,
            image_size: 32,
            server_seed_size: 40,
            test_size: 80,
            n_edges: 4,
            rounds: 3,
            per_edge_budget_bytes: 20_000,
            ..Default::default()
        });
        assert_eq!(result.outcomes.len(), 2);
        for o in &result.outcomes {
            assert_eq!(o.f1_per_round.len(), 4);
            let first = o.f1_per_round[0];
            let last = *o.f1_per_round.last().unwrap();
            assert!(
                last > first - 0.02,
                "{}: learning regressed {first} -> {last}",
                o.strategy
            );
        }
        assert!(result.raw_image_bytes > result.feature_bytes / 2);
    }
}
