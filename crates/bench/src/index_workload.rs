//! Workload builders for the index benchmarks (Section IV-C): data and
//! queries shared by the Criterion benches so index-vs-linear and
//! hybrid-vs-chained comparisons run on identical inputs.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{AngularRange, BBox, Fov, GeoPoint};
use tvdp_index::{LshConfig, LshIndex, OrientedRTree, RTree, VisualRTree};
use tvdp_kernel::FeatureSlab;

/// A synthetic geo-visual corpus.
pub struct IndexWorkload {
    /// FOVs with payload ids.
    pub fovs: Vec<(Fov, usize)>,
    /// Feature vectors, aligned with `fovs`.
    pub features: Vec<Vec<f32>>,
    /// Selective query boxes (~0.1–2% of the region).
    pub query_boxes: Vec<BBox>,
    /// Broad query boxes (~25% of the region) — the low-spatial-
    /// selectivity regime where hybrid pruning pays off.
    pub query_boxes_broad: Vec<BBox>,
    /// Query direction arcs.
    pub query_dirs: Vec<AngularRange>,
    /// Visual query examples.
    pub query_features: Vec<Vec<f32>>,
}

/// Builds a corpus of `n` geo-tagged objects with `dim`-dimensional
/// clustered features and `q` queries.
pub fn build_workload(n: usize, dim: usize, q: usize, seed: u64) -> IndexWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fovs = Vec::with_capacity(n);
    let mut features = Vec::with_capacity(n);
    for i in 0..n {
        let lat = 34.0 + rng.gen_range(0.0..0.08);
        let lon = -118.3 + rng.gen_range(0.0..0.08);
        // Headings follow the street axis of the block (trucks drive
        // along streets), with per-capture jitter — the correlation the
        // oriented R-tree's per-node direction summaries exploit.
        let street_axis = if location_cluster(lat, lon).is_multiple_of(2) {
            0.0
        } else {
            90.0
        };
        let heading =
            street_axis + if rng.gen_bool(0.5) { 180.0 } else { 0.0 } + rng.gen_range(-15.0..15.0);
        let fov = Fov::new(
            GeoPoint::new(lat, lon),
            heading,
            rng.gen_range(40.0..80.0),
            rng.gen_range(50.0..150.0),
        );
        fovs.push((fov, i));
        // Visual appearance correlates with location (adjacent blocks look
        // alike), as in real streetscapes — the structure hybrid
        // spatial-visual indexes exploit.
        let cluster = location_cluster(lat, lon);
        features.push(
            (0..dim)
                .map(|d| ((cluster * 5 + d) % 7) as f32 + rng.gen_range(-0.2..0.2))
                .collect(),
        );
    }
    let mut query_boxes = Vec::with_capacity(q);
    let mut query_boxes_broad = Vec::with_capacity(q);
    let mut query_dirs = Vec::with_capacity(q);
    let mut query_features = Vec::with_capacity(q);
    for _ in 0..q {
        let lat = 34.0 + rng.gen_range(0.0..0.07);
        let lon = -118.3 + rng.gen_range(0.0..0.07);
        let side = rng.gen_range(0.002..0.012);
        query_boxes.push(BBox::new(lat, lon, lat + side, lon + side));
        let blat = 34.0 + rng.gen_range(0.0..0.04);
        let blon = -118.3 + rng.gen_range(0.0..0.04);
        query_boxes_broad.push(BBox::new(blat, blon, blat + 0.04, blon + 0.04));
        query_dirs.push(AngularRange::centered(rng.gen_range(0.0..360.0), 60.0));
        // Query examples look like some location's imagery.
        let cluster = location_cluster(
            34.0 + rng.gen_range(0.0..0.08),
            -118.3 + rng.gen_range(0.0..0.08),
        );
        query_features.push(
            (0..dim)
                .map(|d| ((cluster * 5 + d) % 7) as f32 + rng.gen_range(-0.2..0.2))
                .collect(),
        );
    }
    IndexWorkload {
        fovs,
        features,
        query_boxes,
        query_boxes_broad,
        query_dirs,
        query_features,
    }
}

/// Maps a position to its visual-appearance cluster: a ~1 km block grid,
/// eight appearance types.
fn location_cluster(lat: f64, lon: f64) -> usize {
    let row = ((lat - 34.0) / 0.01) as usize;
    let col = ((lon + 118.3) / 0.01) as usize;
    (row * 3 + col) % 8
}

/// All indexes built over one workload.
pub struct BuiltIndexes {
    /// Scene-location R-tree.
    pub rtree: RTree<usize>,
    /// Direction-augmented tree.
    pub oriented: OrientedRTree<usize>,
    /// Hybrid spatial-visual tree.
    pub hybrid: VisualRTree<usize>,
    /// p-stable LSH over the features.
    pub lsh: LshIndex,
    /// Shared feature arena the visual indexes reference rows of.
    pub slab: FeatureSlab,
}

/// Builds every index over the workload. Feature vectors go into one
/// shared arena slab; the visual indexes hold only `u32` row handles.
pub fn build_indexes(w: &IndexWorkload) -> BuiltIndexes {
    let dim = w.features[0].len();
    let mut rtree = RTree::new();
    let mut oriented = OrientedRTree::new();
    let mut hybrid = VisualRTree::new(dim);
    let mut lsh = LshIndex::new(dim, LshConfig::default());
    let mut slab = FeatureSlab::new(dim);
    for ((fov, id), feat) in w.fovs.iter().zip(&w.features) {
        let scene = fov.scene_location();
        rtree.insert(scene, *id);
        oriented.insert(*fov, *id);
        let row = slab.push(feat);
        hybrid.insert(&slab, scene, row, *id);
        lsh.insert(feat, row);
    }
    BuiltIndexes {
        rtree,
        oriented,
        hybrid,
        lsh,
        slab,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_and_indexes_consistent() {
        let w = build_workload(200, 8, 10, 1);
        assert_eq!(w.fovs.len(), 200);
        assert_eq!(w.features.len(), 200);
        assert_eq!(w.query_boxes.len(), 10);
        assert_eq!(w.query_boxes_broad.len(), 10);
        let idx = build_indexes(&w);
        assert_eq!(idx.rtree.len(), 200);
        assert_eq!(idx.oriented.len(), 200);
        assert_eq!(idx.hybrid.len(), 200);
        assert_eq!(idx.lsh.len(), 200);
        // A spatial query through the index equals the linear scan.
        let q = &w.query_boxes[0];
        let mut from_tree: Vec<usize> = idx.rtree.range(q).into_iter().copied().collect();
        from_tree.sort_unstable();
        let mut linear: Vec<usize> = w
            .fovs
            .iter()
            .filter(|(f, _)| f.scene_location().intersects(q))
            .map(|(_, id)| *id)
            .collect();
        linear.sort_unstable();
        assert_eq!(from_tree, linear);
    }
}
