//! Experiment harness regenerating the paper's evaluation figures.
//!
//! Each module implements one experiment as a pure function from a config
//! to a structured result; the `src/bin/*` binaries print the paper-style
//! tables and `benches/*` wrap the same runners under Criterion. See
//! `EXPERIMENTS.md` at the repository root for paper-vs-measured records.
//!
//! | experiment | module | binary |
//! |---|---|---|
//! | Fig. 6 — classifier × feature F1 matrix | [`classification`] | `fig6` |
//! | Fig. 7 — per-category F1 of SVM + CNN | [`classification`] | `fig7` |
//! | Fig. 8 — edge inference latency grid | [`edge_inference`] | `fig8` |
//! | Fig. 9 — translational scenario | [`translational_exp`] | `fig9` |
//! | §III — iterative coverage campaign | [`coverage_exp`] | `coverage_campaign` |
//! | §VI — crowd-based learning ablation | [`edge_learning_exp`] | `edge_learning` |
//! | §IV-C — index workloads | [`index_workload`] | (Criterion only) |
//! | ref [23] — scene localization | [`localization_exp`] | `localization` |

pub mod classification;
pub mod coverage_exp;
pub mod edge_inference;
pub mod edge_learning_exp;
pub mod index_workload;
pub mod localization_exp;
pub mod translational_exp;

pub use classification::{run_fig6, run_fig7, ClassificationConfig, Fig6Result, Fig7Result};
pub use coverage_exp::{run_coverage, CoverageConfig, CoverageResult};
pub use edge_inference::{run_fig8, Fig8Config, Fig8Result};
pub use edge_learning_exp::{run_edge_learning, EdgeLearningConfig, EdgeLearningResult};
pub use localization_exp::{run_localization, LocalizationConfig, LocalizationResult};
pub use translational_exp::{run_fig9, Fig9Config, Fig9Result};
