//! Scene-localization experiment (paper ref [23], Section IV-A).
//!
//! Some uploads arrive without usable GPS (broken sensors, stripped
//! EXIF). The data-centric approach localizes them from the platform's
//! geo-tagged corpus: visually similar stored images vote on the scene
//! location. This experiment holds out a test set, strips its GPS,
//! localizes each image by its color-appearance features, and reports
//! the error distribution against a naive baseline (guessing the corpus
//! centroid). District-level appearance carries the signal, so expect
//! district-scale (hundreds of metres) accuracy, well under the baseline.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use tvdp_datagen::{generate, DatasetConfig};
use tvdp_geo::GeoPoint;
use tvdp_query::engine::EngineConfig;
use tvdp_query::{localize, QueryEngine};
use tvdp_storage::{ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::{ColorHistogramExtractor, FeatureExtractor, FeatureKind};

/// Configuration for the localization experiment.
#[derive(Debug, Clone)]
pub struct LocalizationConfig {
    /// Geo-tagged corpus size.
    pub corpus_size: usize,
    /// Held-out images to localize.
    pub test_size: usize,
    /// Image edge length in pixels.
    pub image_size: usize,
    /// Neighbour-committee size.
    pub k: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for LocalizationConfig {
    fn default() -> Self {
        Self {
            corpus_size: 900,
            test_size: 80,
            image_size: 48,
            k: 9,
            seed: 0x10C,
        }
    }
}

/// Result of the experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizationResult {
    /// Median localization error in metres.
    pub median_error_m: f64,
    /// Mean localization error in metres.
    pub mean_error_m: f64,
    /// Median error of the centroid-guess baseline, metres.
    pub baseline_median_m: f64,
    /// Fraction of test images localized within 250 m.
    pub within_250m: f64,
    /// Test images that could be localized (enough neighbours).
    pub localized: usize,
}

/// Runs the experiment.
pub fn run_localization(config: &LocalizationConfig) -> LocalizationResult {
    let data = generate(&DatasetConfig {
        n_images: config.corpus_size + config.test_size,
        image_size: config.image_size,
        seed: config.seed,
        appearance_by_block: true,
        ..Default::default()
    });
    // Color statistics carry neighbourhood appearance (building palettes)
    // best, so the localization index runs over color histograms.
    let extractor = ColorHistogramExtractor::paper_default();

    // Corpus: geo-tagged store with stored CNN features.
    let store = Arc::new(VisualStore::new());
    for d in &data[..config.corpus_size] {
        let id = store
            .add_image(
                ImageMeta {
                    uploader: UserId(0),
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: vec![],
                },
                ImageOrigin::Original,
                None,
            )
            // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
            .expect("corpus ingest");
        store
            .put_feature(id, FeatureKind::ColorHistogram, extractor.extract(&d.image))
            // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
            .expect("store feature");
    }
    let engine = QueryEngine::build(
        Arc::clone(&store),
        EngineConfig {
            visual_kind: FeatureKind::ColorHistogram,
            ..Default::default()
        },
    );

    // Baseline: guess the corpus centroid for everything.
    let centroid = {
        let mut lat = 0.0;
        let mut lon = 0.0;
        for d in &data[..config.corpus_size] {
            lat += d.fov.camera.lat;
            lon += d.fov.camera.lon;
        }
        GeoPoint::new(
            lat / config.corpus_size as f64,
            lon / config.corpus_size as f64,
        )
    };

    let mut errors = Vec::new();
    let mut baseline = Vec::new();
    let mut localized = 0;
    for d in &data[config.corpus_size..] {
        let truth = d.fov.camera;
        baseline.push(centroid.fast_distance_m(&truth));
        let features = extractor.extract(&d.image);
        if let Some(est) = localize(
            &engine,
            &store,
            &features,
            FeatureKind::ColorHistogram,
            config.k,
        ) {
            errors.push(est.center.fast_distance_m(&truth));
            localized += 1;
        }
    }
    errors.sort_by(f64::total_cmp);
    baseline.sort_by(f64::total_cmp);
    let median = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    LocalizationResult {
        median_error_m: median(&errors),
        mean_error_m: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
        baseline_median_m: median(&baseline),
        within_250m: errors.iter().filter(|&&e| e <= 250.0).count() as f64
            / errors.len().max(1) as f64,
        localized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localization_beats_the_centroid_baseline() {
        let result = run_localization(&LocalizationConfig {
            corpus_size: 300,
            test_size: 40,
            image_size: 32,
            ..Default::default()
        });
        assert_eq!(result.localized, 40);
        assert!(
            result.median_error_m < result.baseline_median_m,
            "localization {} m not better than baseline {} m",
            result.median_error_m,
            result.baseline_median_m
        );
        assert!(result.within_250m >= 0.0); // district-level: see range checks above
    }
}
