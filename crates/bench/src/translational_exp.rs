//! Figure 9: the translational-data scenario.
//!
//! Replays the paper's end-to-end collaboration on the full platform:
//!
//! 1. **LASAN** (government) uploads street imagery captured by its
//!    trucks and labels a training portion for street cleanliness,
//! 2. **USC** (researcher) trains a cleanliness model and applies it to
//!    the unlabelled remainder — machine annotations are written back,
//! 3. **the Homeless Coordinator** (another government user) reuses the
//!    *encampment* annotations directly — no new learning, no new data —
//!    to count tents and find hotspots (Fig. 9's translation),
//! 4. a **graffiti** study re-annotates the *same* stored images under a
//!    second scheme, again without collecting anything new.

use serde::{Deserialize, Serialize};

use tvdp_core::platform::{Algorithm, IngestRequest};
use tvdp_core::{count_by_cell, hotspots, PlatformConfig, Role, Tvdp};
use tvdp_datagen::{generate, CleanlinessClass, DatasetConfig, StreetGrid};
use tvdp_ml::ConfusionMatrix;
use tvdp_storage::ImageId;
use tvdp_vision::FeatureKind;

/// Configuration for the scenario.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Total images LASAN uploads.
    pub n_images: usize,
    /// Image edge length in pixels.
    pub image_size: usize,
    /// Fraction human-labelled by LASAN.
    pub labelled_fraction: f64,
    /// Hotspot grid cell size in metres.
    pub cell_size_m: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Self {
            n_images: 900,
            image_size: 48,
            labelled_fraction: 0.7,
            cell_size_m: 200.0,
            seed: 0xF19,
        }
    }
}

/// Scenario outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Precision of encampment retrieval on machine-annotated images.
    pub encampment_precision: f64,
    /// Recall of encampment retrieval on machine-annotated images.
    pub encampment_recall: f64,
    /// Macro F1 of the cleanliness model on the machine-annotated split.
    pub cleanliness_f1: f64,
    /// Tents counted by the Homeless Coordinator (machine annotations).
    pub tents_counted: usize,
    /// Ground-truth encampment images in the unlabelled split.
    pub tents_ground_truth: usize,
    /// Non-empty hotspot cells found.
    pub hotspot_cells: usize,
    /// Count in the densest hotspot cell.
    pub top_hotspot_count: usize,
    /// Macro F1 of the follow-on graffiti model (same images, no new
    /// collection).
    pub graffiti_f1: f64,
    /// Images reused across all three studies.
    pub images_reused: usize,
}

/// Runs the scenario.
pub fn run_fig9(config: &Fig9Config) -> Fig9Result {
    let platform = Tvdp::new(PlatformConfig::default());
    let lasan = platform.register_user("LASAN", Role::Government);
    let usc = platform.register_user("USC IMSC", Role::Researcher);
    let _coordinator = platform.register_user("Homeless Coordinator", Role::Government);

    let cleanliness = platform
        .register_scheme(
            "street-cleanliness",
            CleanlinessClass::ALL
                .iter()
                .map(|c| c.label().to_string())
                .collect(),
        )
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("fresh scheme");
    let graffiti = platform
        .register_scheme("graffiti", vec!["absent".into(), "present".into()])
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("fresh scheme");

    // 1. LASAN's trucks collect and upload.
    let data = generate(&DatasetConfig {
        n_images: config.n_images,
        image_size: config.image_size,
        seed: config.seed,
        ..Default::default()
    });
    let batch: Vec<_> = data
        .iter()
        .map(|d| {
            (
                d.image.clone(),
                IngestRequest {
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: d.keywords.clone(),
                },
            )
        })
        .collect();
    let ids: Vec<ImageId> = platform
        .ingest_batch(lasan, batch, 8)
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("ingest succeeds");

    // 2. LASAN labels the first portion; USC trains and applies.
    let cut = ((data.len() as f64) * config.labelled_fraction) as usize;
    for (d, &id) in data[..cut].iter().zip(&ids[..cut]) {
        platform
            .annotate_human(lasan, id, cleanliness, d.cleanliness.index())
            // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
            .expect("annotate succeeds");
    }
    let model = platform
        .train_model(
            usc,
            "cleanliness-mlp",
            cleanliness,
            FeatureKind::Cnn,
            Algorithm::Mlp,
        )
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("training succeeds");
    let predictions = platform
        .apply_model(model, &ids[cut..])
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("apply succeeds");

    // Quality of the machine annotations against hidden ground truth.
    let truth: Vec<usize> = data[cut..].iter().map(|d| d.cleanliness.index()).collect();
    let predicted: Vec<usize> = predictions.iter().map(|(_, label, _)| *label).collect();
    let cm = ConfusionMatrix::from_predictions(&truth, &predicted, 5);
    let enc = CleanlinessClass::Encampment.index();

    // 3. The Homeless Coordinator reuses encampment annotations directly.
    let region = *StreetGrid::downtown_la().region();
    let cells = count_by_cell(
        platform.store(),
        cleanliness,
        enc,
        &region,
        config.cell_size_m,
        0.0,
    );
    let top = hotspots(
        platform.store(),
        cleanliness,
        enc,
        &region,
        config.cell_size_m,
        0.0,
        1,
    );
    // Counting only machine annotations (the new knowledge): human labels
    // came from LASAN's own study.
    let tents_counted = predictions
        .iter()
        .filter(|(_, label, _)| *label == enc)
        .count();
    let tents_ground_truth = data[cut..]
        .iter()
        .filter(|d| d.cleanliness == CleanlinessClass::Encampment)
        .count();

    // 4. Graffiti study over the same images: label the training portion
    //    with graffiti ground truth, train, apply — zero new collection.
    for (d, &id) in data[..cut].iter().zip(&ids[..cut]) {
        platform
            .annotate_human(lasan, id, graffiti, usize::from(d.graffiti))
            // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
            .expect("annotate succeeds");
    }
    let graffiti_model = platform
        .train_model(
            usc,
            "graffiti-mlp",
            graffiti,
            FeatureKind::Cnn,
            Algorithm::Mlp,
        )
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("training succeeds");
    let gpred = platform
        .apply_model(graffiti_model, &ids[cut..])
        // tvdp-lint: allow(no_panic, reason = "experiment driver: aborting on a malformed setup is intended")
        .expect("apply succeeds");
    let gtruth: Vec<usize> = data[cut..]
        .iter()
        .map(|d| usize::from(d.graffiti))
        .collect();
    let gpredicted: Vec<usize> = gpred.iter().map(|(_, label, _)| *label).collect();
    let gcm = ConfusionMatrix::from_predictions(&gtruth, &gpredicted, 2);

    Fig9Result {
        encampment_precision: cm.precision(enc),
        encampment_recall: cm.recall(enc),
        cleanliness_f1: cm.macro_f1(),
        tents_counted,
        tents_ground_truth,
        hotspot_cells: cells.len(),
        top_hotspot_count: top.first().map_or(0, |c| c.count),
        graffiti_f1: gcm.macro_f1(),
        images_reused: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_and_translates() {
        // Tiny but real end-to-end run (debug-build friendly).
        let result = run_fig9(&Fig9Config {
            n_images: 160,
            image_size: 32,
            ..Default::default()
        });
        assert!(result.tents_ground_truth > 0);
        assert!(result.hotspot_cells > 0);
        assert!((0.0..=1.0).contains(&result.cleanliness_f1));
        assert!((0.0..=1.0).contains(&result.graffiti_f1));
        assert_eq!(result.images_reused, 160);
        assert!(result.top_hotspot_count >= 1);
    }
}
