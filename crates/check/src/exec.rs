//! The deterministic DFS scheduler behind the model checker.
//!
//! One *execution* runs a model program — a setup closure that creates
//! [`crate::shim`] objects and [`spawn`]s threads — under one explicit
//! schedule. Model threads are real OS threads, but they never run
//! freely: every shim operation first *announces* itself and parks
//! until the controller grants it the baton, so exactly one model
//! thread makes progress at any instant and the interleaving is fully
//! determined by the controller's sequence of choices.
//!
//! The controller explores the choice tree depth-first: each execution
//! replays a recorded prefix of decisions and extends it with
//! first-available choices; backtracking flips the last decision that
//! still has an untried alternative. Two knobs bound the walk:
//!
//! * **preemption bounding** — [`CheckerConfig::preemption_bound`]
//!   caps how many times a schedule may switch away from a thread that
//!   could have kept running (context switches forced by blocking are
//!   free). Most protocol bugs show up within two preemptions.
//! * **state-hash pruning** — [`CheckerConfig::prune_states`] hashes
//!   the scheduler-visible state (per-thread progress and observation
//!   history, every shim object's value, remaining preemption budget)
//!   at each new decision point; a revisited state's subtree is
//!   identical to the first visit's, so no alternatives are enqueued.
//!   Sound for deterministic model bodies, which the checker requires.
//!
//! A *violation* is an assertion failure inside a model thread or the
//! `finally` closure, a deadlock (threads alive, none enabled), or a
//! runaway execution (step cap). The first violation stops exploration
//! and is reported with the full per-step trace of its schedule — the
//! counterexample.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Exploration bounds and toggles.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Maximum number of *preemptive* context switches per schedule
    /// (`None` = unbounded, fully exhaustive). A switch away from a
    /// blocked or finished thread never counts.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; hitting it marks the report
    /// incomplete rather than running forever.
    pub max_schedules: usize,
    /// Per-execution step cap; exceeding it is reported as a violation
    /// (a model spinning on shared state cannot terminate under an
    /// adversarial schedule).
    pub max_steps: usize,
    /// Collapse decision points whose system state was already visited.
    pub prune_states: bool,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            preemption_bound: None,
            max_schedules: 500_000,
            max_steps: 10_000,
            prune_states: true,
        }
    }
}

/// A counterexample: what went wrong and the schedule that got there.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Assertion message, deadlock description, or step-cap notice.
    pub message: String,
    /// One line per scheduling step of the failing execution, in
    /// order: `t<id>: <operation>(<object>)`.
    pub trace: Vec<String>,
}

/// The outcome of exploring one model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules (executions) actually run.
    pub schedules: usize,
    /// Decision points collapsed by state-hash pruning.
    pub pruned: usize,
    /// `true` when the bounded choice tree was explored to exhaustion
    /// (no violation, no schedule-cap stop).
    pub complete: bool,
    /// The first counterexample found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// `true` when exploration finished with no counterexample.
    pub fn passed(&self) -> bool {
        self.complete && self.violation.is_none()
    }
}

/// Index of a registered shim object within one execution.
pub(crate) type ObjId = usize;

/// What a parked thread is asking to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// Thread start (the first schedulable point of every thread).
    Begin,
    /// `shim::Atomic` load.
    AtomicLoad,
    /// `shim::Atomic` store.
    AtomicStore,
    /// `shim::Atomic` read-modify-write.
    AtomicRmw,
    /// `shim::Mutex` acquire (enabled only while free).
    MutexLock,
    /// `shim::Mutex` release.
    MutexUnlock,
    /// `shim::RwLock` shared acquire (enabled while no writer).
    RwRead,
    /// `shim::RwLock` exclusive acquire (enabled while free).
    RwWrite,
    /// `shim::RwLock` shared release.
    RwUnlockRead,
    /// `shim::RwLock` exclusive release.
    RwUnlockWrite,
}

/// An announced operation: the kind plus its target object.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub kind: OpKind,
    pub obj: Option<ObjId>,
}

/// Kinds of registered shim objects (drives enabledness rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Atomic,
    Mutex,
    RwLock,
}

/// Scheduler-visible state of one shim object.
#[derive(Debug)]
pub(crate) struct ObjState {
    pub name: &'static str,
    /// Mutex held / RwLock writer present.
    pub locked: bool,
    /// RwLock shared holders.
    pub readers: usize,
    /// Hash of the current value (updated by mutating ops).
    pub value_hash: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    /// Announced an op, parked until granted.
    Waiting,
    /// Granted the baton; executing up to its next announce.
    Running,
    /// Body returned (or unwound).
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: ThreadStatus,
    op: Option<Op>,
    ops_done: usize,
    /// Running hash of everything this thread has observed through
    /// shim operations; together with `ops_done` it pins down the
    /// thread's local state (bodies are deterministic).
    obs_hash: u64,
}

/// Which phase of an execution we are in; shim ops only schedule
/// during `Running` (setup and `finally` are single-threaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Setup,
    Running,
    Final,
}

type Body = Box<dyn FnOnce() + Send + 'static>;

/// Everything the controller and the model threads share.
pub(crate) struct Sched {
    pub(crate) phase: Phase,
    threads: Vec<ThreadState>,
    pub(crate) objects: Vec<ObjState>,
    /// Thread currently granted the baton.
    grant: Option<usize>,
    /// Execution is being torn down; parked threads must unwind.
    abort: bool,
    violation: Option<Violation>,
    trace: Vec<String>,
    steps: usize,
    bodies: Vec<Body>,
    finals: Vec<Body>,
}

/// One execution's shared core: the schedule state plus its condvar.
pub(crate) struct Inner {
    pub(crate) m: Mutex<Sched>,
    pub(crate) cv: Condvar,
}

impl Inner {
    /// Locks the schedule state, recovering from poison: model threads
    /// panic *by design* (assertion = counterexample), and the
    /// scheduler state is kept consistent by construction, not by
    /// poisoning.
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Condvar wait with the same poison recovery.
    fn wait<'a>(&self, g: MutexGuard<'a, Sched>) -> MutexGuard<'a, Sched> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }
}

/// Sentinel panic payload used to unwind parked model threads when an
/// execution aborts; never reported as a violation.
struct AbortExecution;

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

#[derive(Clone)]
struct Ctx {
    inner: Arc<Inner>,
    tid: Option<usize>,
}

/// Install (once per process) a panic hook that keeps intentional
/// model-thread panics — the checker's bread and butter — off stderr.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Hash any value with the std hasher (fixed-key SipHash: stable
/// within a process, which is all pruning needs).
pub(crate) fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

fn fnv_fold(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The current execution context, if this thread is inside a checker
/// run (model threads and the controller during setup/finally).
fn current() -> Option<Ctx> {
    CURRENT.with_borrow(Clone::clone)
}

/// Registers a model thread. Only valid inside the setup closure of
/// [`Checker::check`]; the thread starts running once exploration of
/// the execution begins, under the explored schedule.
///
/// # Panics
///
/// Panics when called outside a checker setup closure.
pub fn spawn<F: FnOnce() + Send + 'static>(body: F) {
    let Some(ctx) = current() else {
        // tvdp-lint: allow(no_panic, reason = "documented API misuse panic: spawn outside setup is a programmer error")
        panic!("tvdp_check::spawn used outside Checker::check setup");
    };
    let mut s = ctx.inner.lock();
    assert!(
        s.phase == Phase::Setup,
        "spawn is only valid during model setup (before threads run)"
    );
    s.bodies.push(Box::new(body));
}

/// Registers a postcondition closure, run single-threaded after every
/// model thread of the execution has finished. Assertion failures in
/// it are reported as violations with the schedule's trace.
///
/// # Panics
///
/// Panics when called outside a checker setup closure.
pub fn finally<F: FnOnce() + Send + 'static>(check: F) {
    let Some(ctx) = current() else {
        // tvdp-lint: allow(no_panic, reason = "documented API misuse panic: finally outside setup is a programmer error")
        panic!("tvdp_check::finally used outside Checker::check setup");
    };
    let mut s = ctx.inner.lock();
    assert!(
        s.phase == Phase::Setup,
        "finally is only valid during model setup"
    );
    s.finals.push(Box::new(check));
}

/// Shim-side hooks into the current execution. All return quickly when
/// the calling code runs outside a checker (direct mode), so shim-built
/// types stay usable in plain unit tests.
pub(crate) struct Hooks;

impl Hooks {
    /// Registers a shim object, returning its id, or `None` in direct
    /// mode. Objects must be created during setup so ids (and state
    /// hashes) are schedule-independent.
    pub(crate) fn register(
        name: &'static str,
        _kind: ObjKind,
        value_hash: u64,
    ) -> Option<(Arc<Inner>, ObjId)> {
        let ctx = current()?;
        let mut s = ctx.inner.lock();
        assert!(
            s.phase == Phase::Setup,
            "shim objects must be created during model setup, \
             not from running model threads"
        );
        s.objects.push(ObjState {
            name,
            locked: false,
            readers: 0,
            value_hash,
        });
        let id = s.objects.len() - 1;
        Some((Arc::clone(&ctx.inner), id))
    }

    /// Whether the calling thread is a scheduled model thread (as
    /// opposed to the controller in setup/finally or plain test code).
    fn scheduled_tid(inner: &Arc<Inner>) -> Option<usize> {
        let ctx = current()?;
        let tid = ctx.tid?;
        if !Arc::ptr_eq(&ctx.inner, inner) {
            return None;
        }
        Some(tid)
    }

    /// Announces `op` and parks until the scheduler grants it. Returns
    /// after the grant: the caller then performs the operation's data
    /// access exclusively (every other model thread is parked until
    /// this thread's next announce).
    pub(crate) fn schedule(inner: &Arc<Inner>, op: Op, desc: &str) {
        let Some(tid) = Self::scheduled_tid(inner) else {
            return; // direct mode: setup, finally, or plain tests
        };
        if std::thread::panicking() {
            // Guard drops during an unwind must not re-enter the
            // scheduler (a parked thread cannot be unparked by a
            // panicking sibling); perform the op silently.
            return;
        }
        let mut s = inner.lock();
        if s.abort {
            drop(s);
            panic::panic_any(AbortExecution);
        }
        s.threads[tid].status = ThreadStatus::Waiting;
        s.threads[tid].op = Some(op);
        inner.cv.notify_all();
        while s.grant != Some(tid) {
            if s.abort {
                drop(s);
                panic::panic_any(AbortExecution);
            }
            s = inner.wait(s);
        }
        // Granted. Do the bookkeeping the scheduler needs for
        // enabledness, then run the data access outside the lock.
        s.grant = None;
        s.threads[tid].op = None;
        s.threads[tid].ops_done += 1;
        s.steps += 1;
        let line = format!("t{tid}: {desc}");
        s.trace.push(line);
        if let Some(oid) = op.obj {
            let o = &mut s.objects[oid];
            match op.kind {
                OpKind::MutexLock | OpKind::RwWrite => o.locked = true,
                OpKind::MutexUnlock | OpKind::RwUnlockWrite => o.locked = false,
                OpKind::RwRead => o.readers += 1,
                OpKind::RwUnlockRead => o.readers = o.readers.saturating_sub(1),
                _ => {}
            }
        }
    }

    /// Records the data outcome of the op just performed: what this
    /// thread observed (folded into its observation hash) and the
    /// object's new value hash.
    pub(crate) fn record(inner: &Arc<Inner>, obj: Option<ObjId>, observed: u64, new_value: u64) {
        let Some(tid) = Self::scheduled_tid(inner) else {
            return;
        };
        if std::thread::panicking() {
            return;
        }
        let mut s = inner.lock();
        let prior = s.threads[tid].obs_hash;
        s.threads[tid].obs_hash = fnv_fold(fnv_fold(prior, observed), 0x9e37);
        if let Some(oid) = obj {
            s.objects[oid].value_hash = new_value;
        }
    }
}

/// One recorded scheduling decision in the DFS trail.
#[derive(Debug, Clone)]
struct Decision {
    /// Candidate thread ids, in the order DFS tries them.
    candidates: Vec<usize>,
    /// Index into `candidates` taken by the current execution.
    chosen: usize,
}

/// Outcome of a single execution.
struct ExecOutcome {
    violation: Option<Violation>,
}

/// The model checker: owns the DFS trail, the seen-state set, and the
/// exploration counters across executions of one model.
pub struct Checker {
    config: CheckerConfig,
    seen: BTreeSet<u64>,
    pruned: usize,
}

impl Checker {
    /// A fresh checker with the given bounds.
    pub fn new(config: CheckerConfig) -> Self {
        install_quiet_hook();
        Checker {
            config,
            seen: BTreeSet::new(),
            pruned: 0,
        }
    }

    /// Explores every (bounded) interleaving of `model`. The closure
    /// runs once per execution: it creates shim state, [`spawn`]s the
    /// model threads, and may register a [`finally`] postcondition.
    /// Returns at the first violation or when the choice tree is
    /// exhausted.
    pub fn check<F: Fn()>(&mut self, model: F) -> Report {
        let mut trail: Vec<Decision> = Vec::new();
        let mut replay_len = 0usize;
        let mut schedules = 0usize;
        loop {
            if schedules >= self.config.max_schedules {
                return Report {
                    schedules,
                    pruned: self.pruned,
                    complete: false,
                    violation: None,
                };
            }
            schedules += 1;
            let outcome = self.run_one(&model, &mut trail, replay_len);
            if let Some(v) = outcome.violation {
                return Report {
                    schedules,
                    pruned: self.pruned,
                    complete: false,
                    violation: Some(v),
                };
            }
            // Backtrack: flip the deepest decision with an untried
            // alternative, drop everything after it.
            let next = trail
                .iter()
                .rposition(|d| d.chosen + 1 < d.candidates.len());
            match next {
                None => {
                    return Report {
                        schedules,
                        pruned: self.pruned,
                        complete: true,
                        violation: None,
                    };
                }
                Some(i) => {
                    trail.truncate(i + 1);
                    trail[i].chosen += 1;
                    replay_len = i + 1;
                }
            }
        }
    }

    /// Runs one execution: setup, scheduled run, teardown, finally.
    fn run_one<F: Fn()>(
        &mut self,
        model: &F,
        trail: &mut Vec<Decision>,
        replay_len: usize,
    ) -> ExecOutcome {
        let inner = Arc::new(Inner {
            m: Mutex::new(Sched {
                phase: Phase::Setup,
                threads: Vec::new(),
                objects: Vec::new(),
                grant: None,
                abort: false,
                violation: None,
                trace: Vec::new(),
                steps: 0,
                bodies: Vec::new(),
                finals: Vec::new(),
            }),
            cv: Condvar::new(),
        });

        // --- Setup (single-threaded, shim ops run direct). ---
        CURRENT.with_borrow_mut(|c| {
            *c = Some(Ctx {
                inner: Arc::clone(&inner),
                tid: None,
            })
        });
        IN_MODEL.set(true);
        let setup = panic::catch_unwind(AssertUnwindSafe(&model));
        IN_MODEL.set(false);
        if let Err(p) = setup {
            CURRENT.with_borrow_mut(|c| *c = None);
            return ExecOutcome {
                violation: Some(Violation {
                    message: format!("setup panicked: {}", payload_msg(p.as_ref())),
                    trace: Vec::new(),
                }),
            };
        }

        // --- Spawn the model threads; they park at their Begin op. ---
        let (bodies, n) = {
            let mut s = inner.lock();
            let bodies = std::mem::take(&mut s.bodies);
            let n = bodies.len();
            s.threads = (0..n)
                .map(|_| ThreadState {
                    status: ThreadStatus::Running, // until Begin announced
                    op: None,
                    ops_done: 0,
                    obs_hash: 0xcbf2_9ce4_8422_2325,
                })
                .collect();
            s.phase = Phase::Running;
            (bodies, n)
        };
        let mut handles = Vec::with_capacity(n);
        for (tid, body) in bodies.into_iter().enumerate() {
            let inner2 = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || worker_main(inner2, tid, body)));
        }

        // --- Drive the schedule. ---
        self.drive(&inner, trail, replay_len);
        for h in handles {
            let _ = h.join();
        }

        // --- Finally (single-threaded again). ---
        let finals = {
            let mut s = inner.lock();
            s.phase = Phase::Final;
            std::mem::take(&mut s.finals)
        };
        let had_violation = inner.lock().violation.is_some();
        if !had_violation {
            for f in finals {
                IN_MODEL.set(true);
                let r = panic::catch_unwind(AssertUnwindSafe(f));
                IN_MODEL.set(false);
                if let Err(p) = r {
                    let mut s = inner.lock();
                    let trace = s.trace.clone();
                    s.violation = Some(Violation {
                        message: format!("postcondition failed: {}", payload_msg(p.as_ref())),
                        trace,
                    });
                    break;
                }
            }
        }
        CURRENT.with_borrow_mut(|c| *c = None);
        let v = inner.lock().violation.clone();
        ExecOutcome { violation: v }
    }

    /// The controller loop: wait for quiescence, decide, grant.
    fn drive(&mut self, inner: &Arc<Inner>, trail: &mut Vec<Decision>, replay_len: usize) {
        let mut pos = 0usize;
        let mut preemptions = 0usize;
        let mut prev: Option<usize> = None;
        let mut s = inner.lock();
        loop {
            while s.threads.iter().any(|t| t.status == ThreadStatus::Running)
                && s.violation.is_none()
            {
                s = inner.wait(s);
            }
            if s.violation.is_some() {
                Self::tear_down(inner, s);
                return;
            }
            if s.threads.iter().all(|t| t.status == ThreadStatus::Finished) {
                return;
            }
            if s.steps > self.config.max_steps {
                let trace = s.trace.clone();
                s.violation = Some(Violation {
                    message: format!(
                        "step cap exceeded ({} ops): model cannot terminate under an \
                         adversarial schedule (unbounded spin on shared state?)",
                        self.config.max_steps
                    ),
                    trace,
                });
                Self::tear_down(inner, s);
                return;
            }
            let enabled = enabled_threads(&s);
            if enabled.is_empty() {
                let trace = s.trace.clone();
                let stuck = blocked_summary(&s);
                s.violation = Some(Violation {
                    message: format!("deadlock: no runnable thread ({stuck})"),
                    trace,
                });
                Self::tear_down(inner, s);
                return;
            }

            let chosen_tid = if pos < replay_len.min(trail.len()) {
                let d = &trail[pos];
                let tid = d.candidates[d.chosen];
                if !enabled.contains(&tid) {
                    let trace = s.trace.clone();
                    s.violation = Some(Violation {
                        message: "replay diverged: recorded thread no longer enabled \
                                  (model body is nondeterministic)"
                            .to_string(),
                        trace,
                    });
                    Self::tear_down(inner, s);
                    return;
                }
                tid
            } else {
                let mut candidates = enabled.clone();
                // Preemption bounding: out of budget, stick with the
                // previous thread while it can still run.
                if let Some(bound) = self.config.preemption_bound {
                    if preemptions >= bound {
                        if let Some(p) = prev {
                            if enabled.contains(&p) {
                                candidates = vec![p];
                            }
                        }
                    }
                }
                if self.config.prune_states {
                    let key = state_key(&s, preemptions);
                    if !self.seen.insert(key) {
                        // Subtree already explored from this state:
                        // follow one path through, register no
                        // alternatives.
                        if candidates.len() > 1 {
                            candidates.truncate(1);
                            self.pruned += 1;
                        }
                    }
                }
                trail.push(Decision {
                    candidates: candidates.clone(),
                    chosen: 0,
                });
                candidates[0]
            };
            if let Some(p) = prev {
                if p != chosen_tid && enabled.contains(&p) {
                    preemptions += 1;
                }
            }
            prev = Some(chosen_tid);
            pos += 1;
            s.threads[chosen_tid].status = ThreadStatus::Running;
            s.grant = Some(chosen_tid);
            inner.cv.notify_all();
        }
    }

    /// Unwinds every still-parked thread after a violation/deadlock.
    fn tear_down(inner: &Inner, mut s: MutexGuard<'_, Sched>) {
        s.abort = true;
        inner.cv.notify_all();
        while !s.threads.iter().all(|t| t.status == ThreadStatus::Finished) {
            s = inner.wait(s);
        }
    }
}

fn enabled_threads(s: &Sched) -> Vec<usize> {
    let mut out = Vec::new();
    for (tid, t) in s.threads.iter().enumerate() {
        if t.status != ThreadStatus::Waiting {
            continue;
        }
        let Some(op) = t.op else { continue };
        let ok = match (op.kind, op.obj) {
            (OpKind::MutexLock | OpKind::RwWrite, Some(o)) => {
                let obj = &s.objects[o];
                !obj.locked && (op.kind == OpKind::MutexLock || obj.readers == 0)
            }
            (OpKind::RwRead, Some(o)) => !s.objects[o].locked,
            _ => true,
        };
        if ok {
            out.push(tid);
        }
    }
    out
}

fn blocked_summary(s: &Sched) -> String {
    let mut parts = Vec::new();
    for (tid, t) in s.threads.iter().enumerate() {
        if t.status == ThreadStatus::Waiting {
            if let Some(op) = t.op {
                let name = op.obj.map_or("?", |o| s.objects[o].name);
                parts.push(format!("t{tid} blocked on {:?}({name})", op.kind));
            }
        }
    }
    parts.join(", ")
}

fn state_key(s: &Sched, preemptions: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv_fold(h, preemptions as u64);
    for t in &s.threads {
        h = fnv_fold(h, t.status as u64);
        h = fnv_fold(h, t.ops_done as u64);
        h = fnv_fold(h, t.obs_hash);
        if let Some(op) = t.op {
            h = fnv_fold(h, op.kind as u64);
            h = fnv_fold(h, op.obj.map_or(u64::MAX, |o| o as u64));
        }
    }
    for o in &s.objects {
        h = fnv_fold(h, u64::from(o.locked));
        h = fnv_fold(h, o.readers as u64);
        h = fnv_fold(h, o.value_hash);
    }
    h
}

fn worker_main(inner: Arc<Inner>, tid: usize, body: Body) {
    CURRENT.with_borrow_mut(|c| {
        *c = Some(Ctx {
            inner: Arc::clone(&inner),
            tid: Some(tid),
        })
    });
    IN_MODEL.set(true);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        Hooks::schedule(
            &inner,
            Op {
                kind: OpKind::Begin,
                obj: None,
            },
            "begin",
        );
        body();
    }));
    let mut s = inner.lock();
    s.threads[tid].status = ThreadStatus::Finished;
    s.threads[tid].op = None;
    if let Err(p) = result {
        if p.downcast_ref::<AbortExecution>().is_none() && s.violation.is_none() {
            let trace = s.trace.clone();
            s.violation = Some(Violation {
                message: payload_msg(p.as_ref()),
                trace,
            });
            s.abort = true;
        }
    }
    inner.cv.notify_all();
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(m) = p.downcast_ref::<&'static str>() {
        (*m).to_string()
    } else if let Some(m) = p.downcast_ref::<String>() {
        m.clone()
    } else {
        "model thread panicked".to_string()
    }
}
