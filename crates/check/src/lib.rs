//! `tvdp-check`: a deterministic, exhaustive-interleaving model
//! checker for TVDP's concurrency protocols.
//!
//! Loom-in-spirit but hand-rolled to honor the workspace invariants
//! (no wall-clock, no ambient randomness, no extra dependencies): a
//! model is a plain closure that builds [`shim`] primitives, spawns
//! model threads with [`spawn`], and asserts its invariants inline or
//! in a [`finally`] postcondition. [`Checker::check`] then runs the
//! model under *every* interleaving of its primitive operations
//! (optionally bounded by preemption count), pruning revisited states
//! by hash, and reports either exhaustion or a counterexample trace.
//!
//! The four protocol models under [`models`] are the reason this crate
//! exists: GenCell publish/read, shard append/seal vs scatter/gather
//! readers, WAL journal-before-apply, and the edge circuit breaker.
//! Each ships with deliberately broken mutant variants proving the
//! checker actually distinguishes correct protocols from subtly wrong
//! ones — see `tests/protocols.rs`.

mod exec;
pub mod models;
pub mod shim;

pub use exec::{finally, spawn, Checker, CheckerConfig, Report, Violation};

#[cfg(test)]
mod tests {
    use super::*;

    /// Two unsynchronized read-modify-write-as-two-ops increments on a
    /// counter: the textbook lost update. The checker must find it.
    fn lost_update_model() {
        let c = shim::Atomic::new("counter", 0u32);
        for _ in 0..2 {
            let c = c.clone();
            spawn(move || {
                let v = c.load();
                c.store(v + 1);
            });
        }
        let c2 = c.clone();
        finally(move || {
            assert_eq!(c2.load(), 2, "increment lost");
        });
    }

    /// Same counter, but incremented with an indivisible rmw: correct
    /// under every schedule.
    fn rmw_model() {
        let c = shim::Atomic::new("counter", 0u32);
        for _ in 0..2 {
            let c = c.clone();
            spawn(move || {
                c.rmw(|v| v + 1);
            });
        }
        let c2 = c.clone();
        finally(move || {
            assert_eq!(c2.load(), 2, "increment lost");
        });
    }

    #[test]
    fn finds_lost_update() {
        let mut ck = Checker::new(CheckerConfig::default());
        let report = ck.check(lost_update_model);
        let v = report.violation.expect("lost update must be found");
        assert!(v.message.contains("increment lost"), "got: {}", v.message);
        assert!(!v.trace.is_empty(), "counterexample must carry a trace");
    }

    #[test]
    fn rmw_increment_is_correct_under_all_schedules() {
        let mut ck = Checker::new(CheckerConfig::default());
        let report = ck.check(rmw_model);
        assert!(report.passed(), "violation: {:?}", report.violation);
        assert!(report.schedules > 1, "must explore multiple schedules");
    }

    #[test]
    fn zero_preemption_bound_misses_the_race() {
        // With no preemptions allowed, each thread runs to completion
        // once started — the lost update needs one preemption between
        // load and store, so the bounded search must come up empty.
        let mut ck = Checker::new(CheckerConfig {
            preemption_bound: Some(0),
            ..CheckerConfig::default()
        });
        let report = ck.check(lost_update_model);
        assert!(
            report.passed(),
            "bound 0 cannot interleave mid-thread: {:?}",
            report.violation
        );
    }

    #[test]
    fn one_preemption_suffices_for_lost_update() {
        let mut ck = Checker::new(CheckerConfig {
            preemption_bound: Some(1),
            ..CheckerConfig::default()
        });
        let report = ck.check(lost_update_model);
        assert!(report.violation.is_some(), "bound 1 must expose the race");
    }

    #[test]
    fn pruning_reduces_schedules_with_same_verdict() {
        let mut full = Checker::new(CheckerConfig {
            prune_states: false,
            ..CheckerConfig::default()
        });
        let unpruned = full.check(rmw_model);
        let mut pruned = Checker::new(CheckerConfig::default());
        let with_pruning = pruned.check(rmw_model);
        assert!(unpruned.passed() && with_pruning.passed());
        assert!(
            with_pruning.schedules <= unpruned.schedules,
            "pruning must not expand the search: {} > {}",
            with_pruning.schedules,
            unpruned.schedules
        );
        assert!(
            with_pruning.pruned > 0,
            "model revisits states; some must prune"
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            let mut ck = Checker::new(CheckerConfig::default());
            let r = ck.check(lost_update_model);
            (r.schedules, r.violation.map(|v| (v.message, v.trace)))
        };
        assert_eq!(run(), run(), "same model, same config => same exploration");
    }

    #[test]
    fn deadlock_is_reported() {
        // Classic ABBA deadlock across two mutexes.
        let model = || {
            let a = shim::Mutex::new("a", 0u8);
            let b = shim::Mutex::new("b", 0u8);
            {
                let (a, b) = (a.clone(), b.clone());
                spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                });
            }
            spawn(move || {
                let _gb = b.lock();
                let _ga = a.lock();
            });
        };
        let mut ck = Checker::new(CheckerConfig::default());
        let report = ck.check(model);
        let v = report.violation.expect("ABBA deadlock must be found");
        assert!(v.message.contains("deadlock"), "got: {}", v.message);
    }

    #[test]
    fn rwlock_writer_excludes_readers() {
        // A writer publishes two fields together under the write lock;
        // readers must never see them out of sync.
        let model = || {
            let cell = shim::RwLock::new("cell", (0u32, 0u32));
            {
                let cell = cell.clone();
                spawn(move || {
                    let mut g = cell.write();
                    g.0 = 7;
                    g.1 = 7;
                });
            }
            let cell2 = cell.clone();
            spawn(move || {
                let g = cell2.read();
                assert_eq!(g.0, g.1, "torn read through RwLock");
            });
        };
        let mut ck = Checker::new(CheckerConfig::default());
        let report = ck.check(model);
        assert!(report.passed(), "violation: {:?}", report.violation);
    }
}
