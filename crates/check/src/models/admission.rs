//! Admission control: a shed request is never acked.
//!
//! The production controller (`tvdp-core`'s `AdmissionController`)
//! prices a request, compares the modeled queueing delay against the
//! class bound, and either admits (advancing the virtual-time backlog)
//! or sheds with `Overloaded` — all inside one critical section, and
//! the caller does the work *only* on an admitted ticket. The protocol
//! invariant is `acked ⊆ admitted` at every instant: no side effect of
//! a request the controller refused may ever become observable.
//!
//! The model is a down-scaled transcription: a one-unit-per-ms server
//! whose bound admits exactly one of two concurrent 30-unit requests
//! (the second would queue 30 ms against a 20 ms bound). Two workers
//! race their requests past the gate while an observer snapshots
//! `acked` and then `admitted` (sound: `admitted` only grows, so a
//! request acked at the first read but missing from the later admitted
//! read was really acked without admission).
//!
//! The mutant acks optimistically *before* consulting the controller
//! and rolls the ack back when the verdict is shed — the
//! ack-after-shed window a bounded exploration catches within two
//! preemptions.

use crate::shim;
use crate::{finally, spawn};

/// Request ids the two workers submit.
const REQS: [u32; 2] = [7, 8];
/// Work units per request; the capacity is 1 unit == 1 virtual ms.
const COST_MS: i64 = 30;
/// Class queueing-delay bound: admits an empty backlog (delay 0),
/// sheds behind one admitted request (delay 30).
const BOUND_MS: i64 = 20;

/// The controller's mutable core, guarded by one model mutex exactly
/// as the production `Mutex<AdmState>` guards decision + backlog.
#[derive(Clone, Debug, Hash)]
struct Gate {
    backlog_ms: i64,
    admitted: Vec<u32>,
    shed: Vec<u32>,
}

impl Gate {
    fn new() -> Self {
        Gate {
            backlog_ms: 0,
            admitted: Vec::new(),
            shed: Vec::new(),
        }
    }

    /// One admission decision at virtual time 0: pure function of the
    /// backlog, mutating it only on admit.
    fn admit(&mut self, id: u32) -> bool {
        let delay = self.backlog_ms;
        if delay > BOUND_MS {
            self.shed.push(id);
            false
        } else {
            self.backlog_ms += COST_MS;
            self.admitted.push(id);
            true
        }
    }
}

fn observer_body(acked: shim::Atomic<Vec<u32>>, gate: shim::Mutex<Gate>) {
    let acked_snapshot = acked.load();
    let admitted_snapshot = gate.lock().admitted.clone();
    for id in &acked_snapshot {
        assert!(
            admitted_snapshot.contains(id),
            "request {id} acked without admission: acked {acked_snapshot:?}, \
             admitted {admitted_snapshot:?}"
        );
    }
}

fn build(ack_after_decision: bool) {
    let gate = shim::Mutex::new("gate", Gate::new());
    let acked = shim::Atomic::new("acked", Vec::<u32>::new());
    for id in REQS {
        let (gate, acked) = (gate.clone(), acked.clone());
        spawn(move || {
            if ack_after_decision {
                // Correct protocol: decision first, side effects only
                // on an admitted ticket.
                let ok = gate.lock().admit(id);
                if ok {
                    acked.rmw(|v| {
                        let mut v = v.clone();
                        v.push(id);
                        v
                    });
                }
            } else {
                // BUG: the handler acks optimistically, then asks the
                // controller and rolls back on shed. Between ack and
                // rollback the shed request is observably acked.
                acked.rmw(|v| {
                    let mut v = v.clone();
                    v.push(id);
                    v
                });
                let ok = gate.lock().admit(id);
                if !ok {
                    acked.rmw(|v| v.iter().copied().filter(|&x| x != id).collect());
                }
            }
        });
    }
    {
        let (acked, gate) = (acked.clone(), gate.clone());
        spawn(move || observer_body(acked, gate));
    }
    let (gate, acked) = (gate.clone(), acked.clone());
    finally(move || {
        let g = gate.lock().clone();
        let a = acked.load();
        // The 20 ms bound admits exactly one 30-unit request; the other
        // sheds — in every schedule.
        assert_eq!(
            g.admitted.len(),
            1,
            "exactly one request fits the delay bound, admitted {:?}",
            g.admitted
        );
        assert_eq!(
            g.shed.len(),
            1,
            "the queued request must shed, shed {:?}",
            g.shed
        );
        assert_eq!(
            a, g.admitted,
            "once quiescent, acked and admitted must agree"
        );
        for id in &g.shed {
            assert!(
                !a.contains(id),
                "shed request {id} left an ack behind: {a:?}"
            );
        }
    });
}

/// Correct protocol: admission decision inside one critical section,
/// acks only on admitted tickets.
pub fn correct() {
    build(true);
}

/// Mutant: ack first, consult the controller second, roll back on
/// shed. An observer between the ack and the rollback sees a shed
/// request acked — caught within a preemption bound of 2.
pub fn mutant_ack_after_shed() {
    build(false);
}
