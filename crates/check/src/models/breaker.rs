//! Circuit-breaker state machine: no lost transitions under
//! concurrent probes.
//!
//! Unlike the other models, this one checks the *real* production type
//! — `tvdp_edge::CircuitBreaker` — by placing it behind a model mutex
//! and letting the checker drive concurrent probe outcomes against it.
//! The invariant: every recorded failure reaches the state machine, so
//! once `failure_threshold` failures have been recorded the breaker is
//! open (the dispatcher's shedding decision depends on it).
//!
//! The mutant performs the update the way a careless caller would:
//! clone the breaker out of the lock, mutate the clone, write it back.
//! Two concurrent probes then both start from the same snapshot and
//! one failure is lost — the breaker stays closed past its threshold.

use tvdp_edge::{BreakerConfig, BreakerState, CircuitBreaker};

use crate::shim;
use crate::{finally, spawn};

/// Two concurrent failing probes against a threshold of two: every
/// schedule must leave the breaker open.
const CONFIG: BreakerConfig = BreakerConfig {
    failure_threshold: 2,
    cooldown_ms: 1_000,
    probe_successes: 1,
    probe_interval_ms: 0,
};

/// Correct protocol: each probe records its outcome *inside* the
/// breaker's critical section (as `FleetHealth::breaker` callers do,
/// holding `&mut` access for the whole read-modify-write).
pub fn correct() {
    let breaker = shim::Mutex::new("breaker", CircuitBreaker::new(CONFIG));
    for t in 0..2i64 {
        let breaker = breaker.clone();
        spawn(move || {
            let mut b = breaker.lock();
            b.record_failure(t);
        });
    }
    let breaker = breaker.clone();
    finally(move || {
        let b = breaker.lock();
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "two failures at threshold two must open the breaker \
             (a transition was lost)"
        );
    });
}

/// Mutant: clone-mutate-writeback outside a single critical section.
/// Two probes race, one failure is lost, the breaker never opens.
pub fn mutant_racy_read_modify_write() {
    let breaker = shim::Mutex::new("breaker", CircuitBreaker::new(CONFIG));
    for t in 0..2i64 {
        let breaker = breaker.clone();
        spawn(move || {
            let snapshot = breaker.lock().clone(); // BUG: lock dropped here
            let mut local = snapshot;
            local.record_failure(t);
            *breaker.lock() = local; // last write wins, races lose counts
        });
    }
    let breaker = breaker.clone();
    finally(move || {
        let b = breaker.lock();
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "two failures at threshold two must open the breaker \
             (a transition was lost)"
        );
    });
}

/// Half-open probing under the correct protocol: an open breaker whose
/// cooldown elapsed admits one probe; a concurrent success and failure
/// must leave it in a legal state (open again or closed), never a
/// corrupted in-between — and with lock-held updates the half-open
/// transition itself is never lost.
pub fn correct_half_open_probe() {
    let mut start = CircuitBreaker::new(CONFIG);
    start.record_failure(0);
    start.record_failure(1); // open until 1_001 virtual ms
    let breaker = shim::Mutex::new("breaker", start);
    {
        let breaker = breaker.clone();
        spawn(move || {
            let mut b = breaker.lock();
            if b.allow(2_000) {
                b.record_success(2_000);
            }
        });
    }
    {
        let breaker = breaker.clone();
        spawn(move || {
            let mut b = breaker.lock();
            if b.allow(2_000) {
                b.record_failure(2_000);
            }
        });
    }
    let breaker = breaker.clone();
    finally(move || {
        let b = breaker.lock();
        assert!(
            matches!(b.state(), BreakerState::Open | BreakerState::Closed),
            "after a success probe and a failure probe the breaker must \
             have resolved to open or closed, got {:?}",
            b.state()
        );
    });
}
