//! GenCell publish/read: readers must never observe a torn
//! generation.
//!
//! The production `tvdp_kernel::GenCell<T>` publishes a whole
//! generation — for the sharded engine, the pair `{segments, tail}` —
//! by swapping one `Arc<T>` under an `RwLock`. The invariant is that
//! the two halves of a generation are always observed *together*:
//! a reader sees generation N's segments with generation N's tail,
//! never a mix.
//!
//! The model publishes a `(segments_gen, tail_gen)` pair. The correct
//! variant swaps the pair as one unit through a [`crate::shim::RwLock`]
//! (as `GenCell` does); the mutant publishes the two halves through
//! two independent atomics — the exact bug `GenCell` exists to
//! prevent — and the checker finds the torn read.

use crate::shim;
use crate::{finally, spawn};

/// Generations the writer publishes (generation 0 is the initial
/// state).
const GENERATIONS: u32 = 2;

/// Correct protocol: the `{segments, tail}` pair is swapped as one
/// value under a reader-writer lock. Readers additionally check
/// monotonicity: generations never appear to go backwards within one
/// reader.
pub fn correct() {
    let cell = shim::RwLock::new("gencell", (0u32, 0u32));
    {
        let cell = cell.clone();
        spawn(move || {
            for g in 1..=GENERATIONS {
                let mut w = cell.write();
                w.0 = g;
                w.1 = g;
            }
        });
    }
    {
        let cell = cell.clone();
        spawn(move || {
            let mut last = 0u32;
            for _ in 0..2 {
                let r = cell.read();
                let (seg, tail) = *r;
                drop(r);
                assert_eq!(seg, tail, "torn generation: segments {seg} vs tail {tail}");
                assert!(seg >= last, "generation went backwards: {seg} after {last}");
                last = seg;
            }
        });
    }
    let cell = cell.clone();
    finally(move || {
        let r = cell.read();
        assert_eq!(
            *r,
            (GENERATIONS, GENERATIONS),
            "final generation incomplete"
        );
    });
}

/// Mutant: segments and tail are published through two separate
/// atomics (no common lock, no single swap). A reader scheduled
/// between the two stores observes a torn generation.
pub fn mutant_torn_publish() {
    let segments = shim::Atomic::new("segments", 0u32);
    let tail = shim::Atomic::new("tail", 0u32);
    {
        let (segments, tail) = (segments.clone(), tail.clone());
        spawn(move || {
            for g in 1..=GENERATIONS {
                segments.store(g);
                tail.store(g);
            }
        });
    }
    spawn(move || {
        for _ in 0..2 {
            let seg = segments.load();
            let t = tail.load();
            assert_eq!(seg, t, "torn generation: segments {seg} vs tail {t}");
        }
    });
}
