//! Group commit: many enqueued ops, one fsync, then — and only then —
//! the acks.
//!
//! The production storage engine (`tvdp-storage`'s `Wal::append_batch`
//! / `CommitQueue`) coalesces every op pending at the commit point
//! into one framed write followed by a single `fsync`, and acks the
//! whole batch only after that sync returns. The protocol invariant
//! is `acked ⊆ durable` at *every* instant: a crash between any two
//! steps must still find every acked op in the synced journal. Group
//! commit makes the window subtle — a whole batch is acked at once,
//! so acking even a moment before the (single) fsync exposes N ops,
//! not one.
//!
//! The model runs a producer enqueueing one op next to a committer
//! that enqueues a second op and then drains the queue in up to two
//! commit rounds (drain → fsync → ack). An observer snapshots `acked`
//! and *then* `durable` (sound: `durable` only grows, so an op acked
//! at the first read but missing from the later durable read was
//! really unsynced when acked). The mutant acks the drained batch
//! before the fsync — the crash-window bug a bounded exploration
//! catches within two preemptions.

use crate::shim;
use crate::{finally, spawn};

/// Ops the two threads enqueue (producer: 7, committer: 8).
const OPS: [u32; 2] = [7, 8];

/// Drains the pending queue and commits it as one group: a single
/// fsync marks the whole batch durable atomically, then every op in
/// the batch is acked. The mutant flips the last two steps.
fn commit_round(
    pending: &shim::Mutex<Vec<u32>>,
    durable: &shim::Atomic<Vec<u32>>,
    acked: &shim::Atomic<Vec<u32>>,
    fsyncs: &shim::Atomic<u32>,
    fsync_first: bool,
) {
    let batch = std::mem::take(&mut *pending.lock());
    if batch.is_empty() {
        return;
    }
    let extend = |v: &Vec<u32>| {
        let mut v = v.clone();
        v.extend_from_slice(&batch);
        v
    };
    if fsync_first {
        // One write + one fsync covers the whole batch...
        durable.rmw(extend);
        fsyncs.rmw(|n| n + 1);
        // ...and only then does the ack fan out.
        acked.rmw(extend);
    } else {
        // BUG: the batch is acked while the fsync is still in flight —
        // a crash here loses every op in the group, all acked.
        acked.rmw(extend);
        durable.rmw(extend);
        fsyncs.rmw(|n| n + 1);
    }
}

fn observer_body(acked: shim::Atomic<Vec<u32>>, durable: shim::Atomic<Vec<u32>>) {
    let acked_snapshot = acked.load();
    let durable_snapshot = durable.load();
    for op in &acked_snapshot {
        assert!(
            durable_snapshot.contains(op),
            "op {op} acked before its group fsync: acked {acked_snapshot:?}, \
             durable {durable_snapshot:?}"
        );
    }
}

fn build(fsync_first: bool) {
    let pending = shim::Mutex::new("pending", Vec::<u32>::new());
    let durable = shim::Atomic::new("durable", Vec::<u32>::new());
    let acked = shim::Atomic::new("acked", Vec::<u32>::new());
    let fsyncs = shim::Atomic::new("fsyncs", 0u32);
    {
        let pending = pending.clone();
        spawn(move || pending.lock().push(OPS[0]));
    }
    {
        let (pending, durable, acked, fsyncs) = (
            pending.clone(),
            durable.clone(),
            acked.clone(),
            fsyncs.clone(),
        );
        spawn(move || {
            pending.lock().push(OPS[1]);
            // Round 1 commits whatever has been enqueued by now as one
            // group; round 2 sweeps up a late-arriving producer op.
            commit_round(&pending, &durable, &acked, &fsyncs, fsync_first);
            commit_round(&pending, &durable, &acked, &fsyncs, fsync_first);
        });
    }
    {
        let (acked, durable) = (acked.clone(), durable.clone());
        spawn(move || observer_body(acked, durable));
    }
    let (pending, durable, acked, fsyncs) = (
        pending.clone(),
        durable.clone(),
        acked.clone(),
        fsyncs.clone(),
    );
    finally(move || {
        let p = pending.lock().clone();
        let d = durable.load();
        let a = acked.load();
        let n = fsyncs.load();
        // The producer's op may still be pending if it enqueued after
        // both commit rounds; everything drained must be durable+acked.
        for op in OPS {
            if p.contains(&op) {
                continue;
            }
            assert!(
                d.contains(&op),
                "drained op {op} missing from durable {d:?}"
            );
            assert!(a.contains(&op), "drained op {op} missing from acked {a:?}");
        }
        assert_eq!(a, d, "acked and durable must agree once quiescent");
        assert!(
            n as usize <= a.len(),
            "{n} fsync(s) for {} committed op(s): group commit must \
             never sync more than once per op",
            a.len()
        );
    });
}

/// Correct protocol: drain the pending group, fsync once, then ack.
pub fn correct() {
    build(true);
}

/// Mutant: the batch is acked before its single fsync lands, opening
/// a crash window where every op in an acked group is unrecoverable.
/// The observer catches the window within a preemption bound of 2.
pub fn mutant_ack_before_fsync() {
    build(false);
}
