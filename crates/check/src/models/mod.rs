//! Model-checked specifications of TVDP's six load-bearing
//! concurrency protocols.
//!
//! Each submodule exposes a `correct()` model — a faithful,
//! down-scaled transcription of the production protocol — plus one or
//! more `mutant_*()` variants that reintroduce a specific bug the real
//! implementation avoids. The test suite (`tests/protocols.rs`)
//! asserts the checker passes every correct model *exhaustively* and
//! produces a counterexample trace for every mutant: evidence the
//! models have teeth, not just that the checker says "ok".
//!
//! Models are deliberately tiny (2–3 threads, 1–2 operations each):
//! the state spaces stay exhaustively explorable in CI while still
//! containing every ordering the protocol's correctness argument has
//! to survive.

pub mod admission;
pub mod breaker;
pub mod gencell;
pub mod group_commit;
pub mod shard;
pub mod wal;
