//! Shard writer append+seal vs concurrent scatter/gather readers.
//!
//! The production `ShardedEngine` appends rows into a per-shard
//! `pending` buffer under the shard's writer mutex, seals `pending`
//! into an immutable segment when it reaches `seal_cap`, and publishes
//! the `{segments, tail}` snapshot — *while still holding the lock* —
//! through the shard's `GenCell`. Readers never touch the writer
//! state; they only load published snapshots.
//!
//! The linearizability obligations modeled here:
//!
//! * **No lost rows**: every appended row is in the published snapshot
//!   once the append's critical section has published (and sealing
//!   moves rows, never drops them).
//! * **No duplicated rows**: a row appears exactly once across
//!   `segments ∪ tail`.
//! * **Snapshot monotonicity**: a reader that saw row r keeps seeing
//!   it in every later snapshot (published snapshots only grow).
//!
//! Two mutants reintroduce real bugs: publishing *after* releasing
//! the writer lock (two writers can publish out of order, un-publishing
//! a row), and a seal that clears `pending` before copying it into the
//! sealed segment (rows vanish at exactly `seal_cap`).

use crate::shim;
use crate::{finally, spawn};

/// Writer state behind the shard mutex: the mutable tail plus sealed
/// segments.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct Writer {
    pending: Vec<u32>,
    segments: Vec<Vec<u32>>,
}

/// Published snapshot: what scatter/gather readers see.
#[derive(Clone, Debug, Hash, PartialEq, Eq, Default)]
struct Snapshot {
    segments: Vec<Vec<u32>>,
    tail: Vec<u32>,
}

impl Snapshot {
    fn rows(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.segments.iter().flatten().copied().collect();
        out.extend_from_slice(&self.tail);
        out
    }
}

/// Seal cap used by the models: two writers × one row each means the
/// second append seals, exercising the move-to-segment path in every
/// schedule where both writers run.
const SEAL_CAP: usize = 2;

fn assert_rows_valid(rows: &[u32], context: &str) {
    let mut seen = rows.to_vec();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len(),
        rows.len(),
        "{context}: duplicated row in snapshot {rows:?}"
    );
    for r in rows {
        assert!(
            (1..=2).contains(r),
            "{context}: unknown row {r} in snapshot {rows:?}"
        );
    }
}

fn reader_body(published: shim::Atomic<Snapshot>) {
    let first = published.load().rows();
    assert_rows_valid(&first, "first load");
    let second = published.load().rows();
    assert_rows_valid(&second, "second load");
    for r in &first {
        assert!(
            second.contains(r),
            "row {r} un-published: saw {first:?} then {second:?}"
        );
    }
}

/// Correct protocol: append, seal at cap, and publish all happen
/// inside the writer critical section; the snapshot swap is the
/// linearization point.
pub fn correct() {
    let writer = shim::Mutex::new(
        "writer",
        Writer {
            pending: Vec::new(),
            segments: Vec::new(),
        },
    );
    let published = shim::Atomic::new("published", Snapshot::default());
    for row in 1..=2u32 {
        let writer = writer.clone();
        let published = published.clone();
        spawn(move || {
            let mut w = writer.lock();
            w.pending.push(row);
            if w.pending.len() >= SEAL_CAP {
                let sealed = std::mem::take(&mut w.pending);
                w.segments.push(sealed);
            }
            published.store(Snapshot {
                segments: w.segments.clone(),
                tail: w.pending.clone(),
            });
            drop(w);
        });
    }
    {
        let published = published.clone();
        spawn(move || reader_body(published));
    }
    let published = published.clone();
    finally(move || {
        let mut rows = published.load().rows();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2], "final snapshot must hold both rows");
    });
}

/// Mutant: the snapshot is computed under the lock but *stored after
/// releasing it*. Two writers can then publish in the wrong order,
/// overwriting the newer snapshot with the older one — a reader sees a
/// row appear and then vanish, and the final snapshot can be missing a
/// row entirely.
pub fn mutant_publish_outside_lock() {
    let writer = shim::Mutex::new(
        "writer",
        Writer {
            pending: Vec::new(),
            segments: Vec::new(),
        },
    );
    let published = shim::Atomic::new("published", Snapshot::default());
    for row in 1..=2u32 {
        let writer = writer.clone();
        let published = published.clone();
        spawn(move || {
            let mut w = writer.lock();
            w.pending.push(row);
            if w.pending.len() >= SEAL_CAP {
                let sealed = std::mem::take(&mut w.pending);
                w.segments.push(sealed);
            }
            let snap = Snapshot {
                segments: w.segments.clone(),
                tail: w.pending.clone(),
            };
            drop(w); // BUG: lock released before the publish
            published.store(snap);
        });
    }
    let published = published.clone();
    finally(move || {
        let mut rows = published.load().rows();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2], "final snapshot must hold both rows");
    });
}

/// Mutant: sealing clears `pending` *before* copying it into the
/// sealed segment, so the rows that triggered the seal are dropped on
/// the floor. Every schedule in which both appends land loses data.
pub fn mutant_seal_loses_tail() {
    let writer = shim::Mutex::new(
        "writer",
        Writer {
            pending: Vec::new(),
            segments: Vec::new(),
        },
    );
    let published = shim::Atomic::new("published", Snapshot::default());
    for row in 1..=2u32 {
        let writer = writer.clone();
        let published = published.clone();
        spawn(move || {
            let mut w = writer.lock();
            w.pending.push(row);
            if w.pending.len() >= SEAL_CAP {
                w.pending.clear(); // BUG: rows gone before the copy
                let sealed = std::mem::take(&mut w.pending);
                w.segments.push(sealed);
            }
            published.store(Snapshot {
                segments: w.segments.clone(),
                tail: w.pending.clone(),
            });
            drop(w);
        });
    }
    let published = published.clone();
    finally(move || {
        let mut rows = published.load().rows();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2], "final snapshot must hold both rows");
    });
}
