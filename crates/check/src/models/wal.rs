//! WAL journal-before-apply: an acked record is recoverable at every
//! commit point.
//!
//! The production storage engine (`tvdp-storage`) journals a record to
//! the WAL, then applies it to the in-memory store, and only then acks
//! the client. Recovery replays the journal; therefore the protocol
//! invariant is `acked ⊆ journaled` at *every* instant — a crash
//! between any two operations must still find every acked record in
//! the journal.
//!
//! The model runs one writer committing two records next to an
//! observer that snapshots `acked` and *then* `journal` (that read
//! order is sound: the journal only grows, so a record acked at the
//! first read that is missing from the later journal read was really
//! unjournaled when acked). The mutant acks before journaling — the
//! crash-window bug recovery cannot paper over.

use crate::shim;
use crate::{finally, spawn};

/// Records the writer commits.
const RECORDS: [u32; 2] = [7, 8];

fn observer_body(acked: shim::Atomic<Vec<u32>>, journal: shim::Mutex<Vec<u32>>) {
    let acked_snapshot = acked.load();
    let journal_snapshot = journal.lock().clone();
    for r in &acked_snapshot {
        assert!(
            journal_snapshot.contains(r),
            "record {r} acked but not journaled: acked {acked_snapshot:?}, \
             journal {journal_snapshot:?}"
        );
    }
}

fn build(journal_first: bool) {
    let journal = shim::Mutex::new("journal", Vec::<u32>::new());
    let store = shim::Mutex::new("store", Vec::<u32>::new());
    let acked = shim::Atomic::new("acked", Vec::<u32>::new());
    {
        let (journal, store, acked) = (journal.clone(), store.clone(), acked.clone());
        spawn(move || {
            for r in RECORDS {
                if journal_first {
                    journal.lock().push(r);
                    store.lock().push(r);
                } else {
                    // BUG: apply + ack reach the client before the
                    // journal write lands.
                    store.lock().push(r);
                }
                acked.rmw(|a| {
                    let mut a = a.clone();
                    a.push(r);
                    a
                });
                if !journal_first {
                    journal.lock().push(r);
                }
            }
        });
    }
    {
        let (acked, journal) = (acked.clone(), journal.clone());
        spawn(move || observer_body(acked, journal));
    }
    let (journal, store, acked) = (journal.clone(), store.clone(), acked.clone());
    finally(move || {
        let j = journal.lock().clone();
        let s = store.lock().clone();
        let a = acked.load();
        assert_eq!(a, RECORDS.to_vec(), "both commits must be acked");
        for r in &a {
            assert!(j.contains(r), "acked record {r} missing from journal {j:?}");
            assert!(s.contains(r), "acked record {r} missing from store {s:?}");
        }
    });
}

/// Correct protocol: journal, apply, ack — in that order.
pub fn correct() {
    build(true);
}

/// Mutant: apply and ack land before the journal write, opening a
/// crash window where an acked record is unrecoverable. The observer
/// thread catches the window in some interleaving.
pub fn mutant_apply_before_journal() {
    build(false);
}
