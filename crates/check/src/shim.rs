//! Schedulable stand-ins for the synchronization primitives the
//! workspace builds on.
//!
//! Each shim wraps its value in an `Arc<Mutex<T>>` so the
//! *data* access is always race-free; what the model checker explores
//! is the *ordering* of accesses. Every operation announces itself to
//! the scheduler ([`crate::exec`]) and parks until granted, so a model
//! built from these types has exactly one schedulable point per
//! primitive operation — the granularity at which real-world atomics
//! and lock acquisitions interleave.
//!
//! Lock guards hold a **local clone** of the protected value and write
//! it back on release. Between acquire and release the scheduler marks
//! the object held, so no other model thread can observe the stale
//! shared copy — the clone is invisible to the model. This sidesteps
//! self-referential guard lifetimes without any `unsafe`.
//!
//! Outside a checker run (plain unit tests, setup/`finally` closures)
//! every operation degrades to a direct, unscheduled access, so model
//! fixtures stay debuggable with ordinary `cargo test` tooling.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Shared storage for a shim value. Poisoning is recovered: model
/// threads panic by design (assertion = counterexample) and the data
/// mutex is only ever held for a clone or a write-back.
#[derive(Debug)]
struct Cell<T>(std::sync::Mutex<T>);

impl<T> Cell<T> {
    fn new(value: T) -> Cell<T> {
        Cell(std::sync::Mutex::new(value))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

use crate::exec::{hash_of, Hooks, Inner, ObjId, ObjKind, Op, OpKind};

/// Bounds every shim-wrapped value must satisfy: clonable (guards copy
/// in/out), hashable (state pruning), and sendable across the model's
/// threads.
pub trait Value: Clone + Hash + Debug + Send + 'static {}
impl<T: Clone + Hash + Debug + Send + 'static> Value for T {}

/// Registration handle shared by all shim types.
#[derive(Clone)]
struct Reg {
    inner: Option<(Arc<Inner>, ObjId)>,
    name: &'static str,
}

impl Reg {
    fn new(name: &'static str, kind: ObjKind, value_hash: u64) -> Reg {
        Reg {
            inner: Hooks::register(name, kind, value_hash),
            name,
        }
    }

    fn schedule(&self, kind: OpKind, verb: &str) {
        if let Some((inner, id)) = &self.inner {
            let desc = format!("{verb}({})", self.name);
            Hooks::schedule(
                inner,
                Op {
                    kind,
                    obj: Some(*id),
                },
                &desc,
            );
        }
    }

    fn record(&self, observed: u64, new_value: u64) {
        if let Some((inner, id)) = &self.inner {
            Hooks::record(inner, Some(*id), observed, new_value);
        }
    }
}

/// A model atomic cell: every `load`/`store`/`rmw` is one schedulable
/// point, and read-modify-write is indivisible (matching the hardware
/// primitive the real code's `AtomicUsize`/`GenCell` swaps rely on).
#[derive(Clone)]
pub struct Atomic<T: Value> {
    data: Arc<Cell<T>>,
    reg: Reg,
}

impl<T: Value> Atomic<T> {
    /// Creates (and, inside a checker run, registers) an atomic cell.
    /// Must be called during model setup, never from a model thread.
    pub fn new(name: &'static str, value: T) -> Atomic<T> {
        let h = hash_of(&value);
        Atomic {
            data: Arc::new(Cell::new(value)),
            reg: Reg::new(name, ObjKind::Atomic, h),
        }
    }

    /// Atomic read.
    pub fn load(&self) -> T {
        self.reg.schedule(OpKind::AtomicLoad, "load");
        let v = self.data.lock().clone();
        let h = hash_of(&v);
        self.reg.record(h, h);
        v
    }

    /// Atomic overwrite.
    pub fn store(&self, value: T) {
        self.reg.schedule(OpKind::AtomicStore, "store");
        let h = hash_of(&value);
        *self.data.lock() = value;
        self.reg.record(0, h);
    }

    /// Indivisible read-modify-write; returns the previous value.
    pub fn rmw<F: FnOnce(&T) -> T>(&self, f: F) -> T {
        self.reg.schedule(OpKind::AtomicRmw, "rmw");
        let mut d = self.data.lock();
        let old = d.clone();
        let new = f(&old);
        let hn = hash_of(&new);
        *d = new;
        drop(d);
        self.reg.record(hash_of(&old), hn);
        old
    }
}

/// A model mutex. `lock` is a schedulable point that blocks while the
/// mutex is held elsewhere; releasing (guard drop) is a second
/// schedulable point, mirroring the two ordering edges of a real lock.
#[derive(Clone)]
pub struct Mutex<T: Value> {
    data: Arc<Cell<T>>,
    reg: Reg,
}

impl<T: Value> Mutex<T> {
    /// Creates (and registers) a model mutex during setup.
    pub fn new(name: &'static str, value: T) -> Mutex<T> {
        let h = hash_of(&value);
        Mutex {
            data: Arc::new(Cell::new(value)),
            reg: Reg::new(name, ObjKind::Mutex, h),
        }
    }

    /// Acquires the mutex, parking this model thread until the
    /// scheduler finds a schedule where it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.reg.schedule(OpKind::MutexLock, "lock");
        let local = self.data.lock().clone();
        let h = hash_of(&local);
        self.reg.record(h, h);
        MutexGuard {
            owner: self,
            local: Some(local),
        }
    }
}

/// Exclusive guard for [`Mutex`]; writes the (possibly mutated) local
/// copy back at release.
pub struct MutexGuard<'a, T: Value> {
    owner: &'a Mutex<T>,
    local: Option<T>,
}

impl<T: Value> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // tvdp-lint: allow(no_panic, reason = "local is Some from lock() until drop(); Deref after drop is unreachable")
        self.local.as_ref().expect("guard value present until drop")
    }
}

impl<T: Value> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // tvdp-lint: allow(no_panic, reason = "local is Some from lock() until drop(); Deref after drop is unreachable")
        self.local.as_mut().expect("guard value present until drop")
    }
}

impl<T: Value> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(local) = self.local.take() else {
            return;
        };
        let h = hash_of(&local);
        *self.owner.data.lock() = local;
        // During a panic unwind `schedule` is a no-op (the scheduler
        // observes the thread finishing instead), so the write-back
        // above is best-effort and the abort path stays deadlock-free.
        self.owner.reg.schedule(OpKind::MutexUnlock, "unlock");
        self.owner.reg.record(0, h);
    }
}

/// A model reader-writer lock with writer-exclusion semantics matching
/// `std::sync::RwLock` as `GenCell` uses it: readers share, a writer
/// waits for exclusivity.
#[derive(Clone)]
pub struct RwLock<T: Value> {
    data: Arc<Cell<T>>,
    reg: Reg,
}

impl<T: Value> RwLock<T> {
    /// Creates (and registers) a model rwlock during setup.
    pub fn new(name: &'static str, value: T) -> RwLock<T> {
        let h = hash_of(&value);
        RwLock {
            data: Arc::new(Cell::new(value)),
            reg: Reg::new(name, ObjKind::RwLock, h),
        }
    }

    /// Acquires a shared read guard (blocks while a writer holds the
    /// lock).
    pub fn read(&self) -> RwReadGuard<'_, T> {
        self.reg.schedule(OpKind::RwRead, "read");
        let local = self.data.lock().clone();
        let h = hash_of(&local);
        self.reg.record(h, h);
        RwReadGuard {
            owner: self,
            local,
            released: false,
        }
    }

    /// Acquires the exclusive write guard (blocks while any reader or
    /// writer holds the lock).
    pub fn write(&self) -> RwWriteGuard<'_, T> {
        self.reg.schedule(OpKind::RwWrite, "write");
        let local = self.data.lock().clone();
        let h = hash_of(&local);
        self.reg.record(h, h);
        RwWriteGuard {
            owner: self,
            local: Some(local),
        }
    }
}

/// Shared guard for [`RwLock`]; read-only view of the value as of
/// acquisition.
pub struct RwReadGuard<'a, T: Value> {
    owner: &'a RwLock<T>,
    local: T,
    released: bool,
}

impl<T: Value> Deref for RwReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.local
    }
}

impl<T: Value> Drop for RwReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        self.owner.reg.schedule(OpKind::RwUnlockRead, "unread");
    }
}

/// Exclusive guard for [`RwLock`]; writes the local copy back at
/// release.
pub struct RwWriteGuard<'a, T: Value> {
    owner: &'a RwLock<T>,
    local: Option<T>,
}

impl<T: Value> Deref for RwWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // tvdp-lint: allow(no_panic, reason = "local is Some from write() until drop(); Deref after drop is unreachable")
        self.local.as_ref().expect("guard value present until drop")
    }
}

impl<T: Value> DerefMut for RwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // tvdp-lint: allow(no_panic, reason = "local is Some from write() until drop(); Deref after drop is unreachable")
        self.local.as_mut().expect("guard value present until drop")
    }
}

impl<T: Value> Drop for RwWriteGuard<'_, T> {
    fn drop(&mut self) {
        let Some(local) = self.local.take() else {
            return;
        };
        let h = hash_of(&local);
        *self.owner.data.lock() = local;
        self.owner.reg.schedule(OpKind::RwUnlockWrite, "unwrite");
        self.owner.reg.record(0, h);
    }
}
