//! Model-check TVDP's six load-bearing concurrency protocols, and
//! prove the checker has teeth by asserting it catches a deliberately
//! broken mutant of each.
//!
//! Correct models must pass with `complete == true` — the (bounded)
//! interleaving space was explored to exhaustion, not sampled. Mutant
//! models must produce a counterexample carrying a non-empty schedule
//! trace.

use tvdp_check::{models, Checker, CheckerConfig, Report};

fn explore(model: fn(), preemption_bound: Option<usize>) -> Report {
    let mut checker = Checker::new(CheckerConfig {
        preemption_bound,
        ..CheckerConfig::default()
    });
    checker.check(model)
}

fn assert_exhaustively_correct(report: &Report, what: &str) {
    assert!(
        report.complete,
        "{what}: exploration did not finish (schedules: {})",
        report.schedules
    );
    if let Some(v) = &report.violation {
        panic!(
            "{what}: unexpected counterexample: {}\ntrace:\n  {}",
            v.message,
            v.trace.join("\n  ")
        );
    }
    assert!(
        report.schedules > 1,
        "{what}: a one-schedule exploration checked nothing concurrent"
    );
}

fn assert_mutant_caught(report: &Report, what: &str, expect_in_message: &str) {
    let v = report.violation.as_ref().unwrap_or_else(|| {
        panic!(
            "{what}: mutant not caught in {} schedules",
            report.schedules
        )
    });
    assert!(
        v.message.contains(expect_in_message),
        "{what}: wrong violation; expected {expect_in_message:?} in message, got: {}",
        v.message
    );
    assert!(
        !v.trace.is_empty(),
        "{what}: counterexample must carry the failing schedule trace"
    );
}

// --- Protocol 1: GenCell publish/read -------------------------------

#[test]
fn gencell_publish_read_has_no_torn_generations() {
    let report = explore(models::gencell::correct, None);
    assert_exhaustively_correct(&report, "gencell correct (unbounded)");
}

#[test]
fn gencell_mutant_two_atomic_publish_is_caught() {
    let report = explore(models::gencell::mutant_torn_publish, None);
    assert_mutant_caught(&report, "gencell torn-publish mutant", "torn generation");
}

// --- Protocol 2: shard append+seal vs scatter/gather readers --------

#[test]
fn shard_seal_publish_is_linearizable() {
    let report = explore(models::shard::correct, None);
    assert_exhaustively_correct(&report, "shard correct (unbounded)");
}

#[test]
fn shard_mutant_publish_outside_lock_is_caught() {
    let report = explore(models::shard::mutant_publish_outside_lock, None);
    assert_mutant_caught(
        &report,
        "shard publish-outside-lock mutant",
        "final snapshot must hold both rows",
    );
}

#[test]
fn shard_mutant_seal_losing_tail_is_caught() {
    let report = explore(models::shard::mutant_seal_loses_tail, None);
    assert_mutant_caught(
        &report,
        "shard seal-loses-tail mutant",
        "final snapshot must hold both rows",
    );
}

// --- Protocol 3: WAL journal-before-apply ---------------------------

#[test]
fn wal_acked_records_are_always_recoverable() {
    let report = explore(models::wal::correct, None);
    assert_exhaustively_correct(&report, "wal correct (unbounded)");
}

#[test]
fn wal_mutant_apply_before_journal_is_caught() {
    let report = explore(models::wal::mutant_apply_before_journal, None);
    assert_mutant_caught(
        &report,
        "wal apply-before-journal mutant",
        "acked but not journaled",
    );
}

// --- Protocol 4: group commit (enqueue -> single fsync -> ack) ------

#[test]
fn group_commit_acks_only_after_the_group_fsync() {
    let report = explore(models::group_commit::correct, None);
    assert_exhaustively_correct(&report, "group-commit correct (unbounded)");
}

#[test]
fn group_commit_mutant_ack_before_fsync_is_caught() {
    let report = explore(models::group_commit::mutant_ack_before_fsync, None);
    assert_mutant_caught(
        &report,
        "group-commit ack-before-fsync mutant",
        "acked before its group fsync",
    );
}

// --- Protocol 5: circuit-breaker transitions ------------------------

#[test]
fn breaker_loses_no_transitions_under_concurrent_probes() {
    let report = explore(models::breaker::correct, None);
    assert_exhaustively_correct(&report, "breaker correct (unbounded)");
}

#[test]
fn breaker_half_open_probes_resolve_legally() {
    let report = explore(models::breaker::correct_half_open_probe, None);
    assert_exhaustively_correct(&report, "breaker half-open correct (unbounded)");
}

#[test]
fn breaker_mutant_racy_read_modify_write_is_caught() {
    let report = explore(models::breaker::mutant_racy_read_modify_write, None);
    assert_mutant_caught(&report, "breaker racy-rmw mutant", "a transition was lost");
}

// --- Protocol 6: admission control (no ack after shed) --------------

#[test]
fn admission_never_acks_a_shed_request() {
    let report = explore(models::admission::correct, None);
    assert_exhaustively_correct(&report, "admission correct (unbounded)");
}

#[test]
fn admission_mutant_ack_after_shed_is_caught() {
    let report = explore(models::admission::mutant_ack_after_shed, None);
    assert_mutant_caught(
        &report,
        "admission ack-after-shed mutant",
        "acked without admission",
    );
}

// --- Bounded-preemption sanity --------------------------------------

#[test]
fn bounded_preemption_still_catches_every_mutant() {
    // Two preemptions are enough for each protocol bug — the bound the
    // CI suite would fall back to if a future model's unbounded space
    // grows too large.
    let bound = Some(2);
    assert_mutant_caught(
        &explore(models::gencell::mutant_torn_publish, bound),
        "gencell mutant at bound 2",
        "torn generation",
    );
    assert_mutant_caught(
        &explore(models::shard::mutant_publish_outside_lock, bound),
        "shard mutant at bound 2",
        "final snapshot must hold both rows",
    );
    assert_mutant_caught(
        &explore(models::wal::mutant_apply_before_journal, bound),
        "wal mutant at bound 2",
        "acked but not journaled",
    );
    assert_mutant_caught(
        &explore(models::breaker::mutant_racy_read_modify_write, bound),
        "breaker mutant at bound 2",
        "a transition was lost",
    );
    assert_mutant_caught(
        &explore(models::group_commit::mutant_ack_before_fsync, bound),
        "group-commit mutant at bound 2",
        "acked before its group fsync",
    );
    assert_mutant_caught(
        &explore(models::admission::mutant_ack_after_shed, bound),
        "admission mutant at bound 2",
        "acked without admission",
    );
}
