//! Command-line interface for the Translational Visual Data Platform.
//!
//! Operates on a store file persisted in the JSON-lines format of
//! `tvdp_storage::persist`. Commands:
//!
//! ```text
//! tvdp init <store>
//! tvdp open <dir>
//! tvdp compact <dir>
//! tvdp demo-data <store> --count N [--size PX] [--seed S] [--labelled FRAC]
//! tvdp stats <store>
//! tvdp search <store> (--keyword W | --region S,W,N,E | --near LAT,LON,K |
//!                      --polygon "LAT,LON;LAT,LON;..." |
//!                      --label SCHEME:LABEL | --since T --until T)
//! tvdp train <store> --scheme NAME --algorithm ALGO --model-out FILE
//! tvdp apply <store> --model FILE --scheme NAME
//! tvdp hotspots <store> --scheme NAME --label NAME [--cell METRES] [--top K]
//! ```
//!
//! The command logic lives in [`run`], which returns the rendered output
//! as a string so the test suite can drive every command in-process.

use std::path::Path;
use std::sync::Arc;

use tvdp_core::models::ModelInterface;
use tvdp_core::platform::{Algorithm, IngestRequest};
use tvdp_core::{hotspots, PlatformConfig, Role, Tvdp};
use tvdp_datagen::{generate, CleanlinessClass, DatasetConfig};
use tvdp_geo::{BBox, GeoPoint, GeoPolygon};
use tvdp_ml::SerializableModel;
use tvdp_query::{Query, SpatialQuery, TemporalField, TextualMode};
use tvdp_storage::persist;
use tvdp_storage::VisualStore;
use tvdp_vision::FeatureKind;

/// A CLI failure: message shown to the user, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parses `--flag value` pairs after the positional arguments.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Self { args }
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| err(format!("invalid value for {name}: {raw}"))),
        }
    }
}

const USAGE: &str =
    "usage: tvdp <init|open|compact|demo-data|stats|search|train|apply|hotspots> <store> [flags]\n\
run `tvdp help` for details";

const HELP: &str = "TVDP — Translational Visual Data Platform CLI\n\
\n\
  tvdp init <store>\n\
      Create an empty store file.\n\
  tvdp open <dir>\n\
      Open (or create) a crash-safe store directory: recover the\n\
      snapshot, replay the write-ahead log, report what was repaired.\n\
  tvdp compact <dir>\n\
      Fold a crash-safe store's journal into a fresh snapshot and\n\
      rotate its write-ahead log.\n\
  tvdp demo-data <store> --count N [--size PX] [--seed S] [--labelled FRAC]\n\
      Generate synthetic street imagery, extract features, annotate the\n\
      labelled fraction with ground truth, and persist everything.\n\
  tvdp stats <store>\n\
      Row counts and schemes.\n\
  tvdp search <store> --keyword W\n\
  tvdp search <store> --region S,W,N,E\n\
  tvdp search <store> --near LAT,LON,K\n\
  tvdp search <store> --label SCHEME:LABEL\n\
  tvdp search <store> --since T --until T\n\
      Query the store (filters may be combined; combined = AND).\n\
  tvdp train <store> --scheme NAME --algorithm knn|tree|bayes|forest|svm|logreg|mlp \\\n\
             --model-out FILE\n\
      Train on stored CNN features + annotations; write portable weights.\n\
  tvdp apply <store> --model FILE --scheme NAME\n\
      Classify every unannotated image, write machine annotations, persist.\n\
  tvdp hotspots <store> --scheme NAME --label NAME [--cell METRES] [--top K]\n\
      Spatial aggregation of a label (e.g. encampment hotspots).";

/// Executes a CLI invocation (`args` excludes the program name) and
/// returns the text to print.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        "init" => init(args.get(1).ok_or_else(|| err(USAGE))?),
        "open" => open_cmd(args.get(1).ok_or_else(|| err(USAGE))?),
        "compact" => compact_cmd(args.get(1).ok_or_else(|| err(USAGE))?),
        "demo-data" => demo_data(args.get(1).ok_or_else(|| err(USAGE))?, &args[2..]),
        "stats" => stats(args.get(1).ok_or_else(|| err(USAGE))?),
        "search" => search(args.get(1).ok_or_else(|| err(USAGE))?, &args[2..]),
        "train" => train(args.get(1).ok_or_else(|| err(USAGE))?, &args[2..]),
        "apply" => apply(args.get(1).ok_or_else(|| err(USAGE))?, &args[2..]),
        "hotspots" => hotspots_cmd(args.get(1).ok_or_else(|| err(USAGE))?, &args[2..]),
        other => Err(err(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn load_store(path: &str) -> Result<Arc<VisualStore>, CliError> {
    persist::load(Path::new(path))
        .map(Arc::new)
        .map_err(|e| err(format!("cannot load store {path}: {e}")))
}

fn save_store(store: &VisualStore, path: &str) -> Result<(), CliError> {
    persist::save(store, Path::new(path)).map_err(|e| err(format!("cannot save store {path}: {e}")))
}

fn init(path: &str) -> Result<String, CliError> {
    if Path::new(path).exists() {
        return Err(err(format!("{path} already exists")));
    }
    let store = VisualStore::new();
    save_store(&store, path)?;
    Ok(format!("initialized empty store at {path}"))
}

fn open_cmd(path: &str) -> Result<String, CliError> {
    let (platform, report) = Tvdp::open(Path::new(path), PlatformConfig::default())
        .map_err(|e| err(format!("cannot open durable store {path}: {e}")))?;
    let stats = platform.stats();
    Ok(format!(
        "recovered {path}\n  {report}\n  images      : {}\n  annotations : {}\n",
        stats.images, stats.annotations
    ))
}

fn compact_cmd(path: &str) -> Result<String, CliError> {
    let (platform, _) = Tvdp::open(Path::new(path), PlatformConfig::default())
        .map_err(|e| err(format!("cannot open durable store {path}: {e}")))?;
    let report = platform
        .flush()
        .map_err(|e| err(format!("cannot compact {path}: {e}")))?;
    Ok(format!("compacted {path}\n  {report}\n"))
}

fn demo_data(path: &str, rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::new(rest);
    let count: usize = flags.parse("--count")?.unwrap_or(200);
    let size: usize = flags.parse("--size")?.unwrap_or(48);
    let seed: u64 = flags.parse("--seed")?.unwrap_or(0xC11);
    let labelled: f64 = flags.parse("--labelled")?.unwrap_or(0.8);
    if !(0.0..=1.0).contains(&labelled) {
        return Err(err("--labelled must be in 0..=1"));
    }

    let store = load_store(path)?;
    let platform = Tvdp::with_store(Arc::clone(&store), PlatformConfig::default());
    let operator = platform.register_user("cli", Role::Government);
    let scheme = match platform.store().scheme_by_name("street-cleanliness") {
        Some(s) => s.id,
        None => platform
            .register_scheme(
                "street-cleanliness",
                CleanlinessClass::ALL
                    .iter()
                    .map(|c| c.label().to_string())
                    .collect(),
            )
            .map_err(|e| err(e.to_string()))?,
    };

    let data = generate(&DatasetConfig {
        n_images: count,
        image_size: size,
        seed,
        ..Default::default()
    });
    let batch: Vec<_> = data
        .iter()
        .map(|d| {
            (
                d.image.clone(),
                IngestRequest {
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: d.keywords.clone(),
                },
            )
        })
        .collect();
    let ids = platform
        .ingest_batch(operator, batch, 8)
        .map_err(|e| err(e.to_string()))?;
    let n_labelled = ((count as f64) * labelled) as usize;
    for (d, &id) in data[..n_labelled].iter().zip(&ids[..n_labelled]) {
        platform
            .annotate_human(operator, id, scheme, d.cleanliness.index())
            .map_err(|e| err(e.to_string()))?;
    }
    save_store(platform.store(), path)?;
    Ok(format!(
        "ingested {count} images ({n_labelled} labelled) into {path}; store now holds {} images",
        platform.store().len()
    ))
}

fn stats(path: &str) -> Result<String, CliError> {
    let store = load_store(path)?;
    let mut out = format!(
        "images      : {}\nannotations : {}\n",
        store.len(),
        store.annotation_count()
    );
    let schemes = store.schemes();
    out.push_str(&format!("schemes     : {}\n", schemes.len()));
    for s in schemes {
        out.push_str(&format!(
            "  {} ({}): {}\n",
            s.name,
            s.id,
            s.labels.join(", ")
        ));
    }
    for kind in [
        FeatureKind::ColorHistogram,
        FeatureKind::Cnn,
        FeatureKind::SiftBow,
    ] {
        let n = store.images_with_feature(kind).len();
        if n > 0 {
            out.push_str(&format!("features    : {n} x {kind:?}\n"));
        }
    }
    Ok(out)
}

fn parse_region(raw: &str) -> Result<BBox, CliError> {
    let parts: Vec<f64> = raw
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| err(format!("invalid region `{raw}` (want S,W,N,E)")))?;
    if parts.len() != 4 {
        return Err(err(format!("invalid region `{raw}` (want S,W,N,E)")));
    }
    if parts[0] > parts[2] || parts[1] > parts[3] {
        return Err(err("region min exceeds max"));
    }
    Ok(BBox::new(parts[0], parts[1], parts[2], parts[3]))
}

fn resolve_label(
    store: &VisualStore,
    spec: &str,
) -> Result<(tvdp_storage::ClassificationId, usize), CliError> {
    let (scheme_name, label_name) = spec
        .split_once(':')
        .ok_or_else(|| err(format!("invalid label `{spec}` (want SCHEME:LABEL)")))?;
    let scheme = store
        .scheme_by_name(scheme_name)
        .ok_or_else(|| err(format!("unknown scheme `{scheme_name}`")))?;
    let label = scheme.label_index(label_name).ok_or_else(|| {
        err(format!(
            "unknown label `{label_name}` in `{scheme_name}` (has: {})",
            scheme.labels.join(", ")
        ))
    })?;
    Ok((scheme.id, label))
}

fn search(path: &str, rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::new(rest);
    let store = load_store(path)?;
    let platform = Tvdp::with_store(Arc::clone(&store), PlatformConfig::default());

    let mut subs: Vec<Query> = Vec::new();
    if let Some(word) = flags.get("--keyword") {
        subs.push(Query::Textual {
            text: word.to_string(),
            mode: TextualMode::All,
        });
    }
    if let Some(region) = flags.get("--region") {
        subs.push(Query::Spatial(SpatialQuery::Range(parse_region(region)?)));
    }
    if let Some(near) = flags.get("--near") {
        let parts: Vec<&str> = near.split(',').collect();
        if parts.len() != 3 {
            return Err(err("--near wants LAT,LON,K"));
        }
        let lat: f64 = parts[0].trim().parse().map_err(|_| err("bad latitude"))?;
        let lon: f64 = parts[1].trim().parse().map_err(|_| err("bad longitude"))?;
        let k: usize = parts[2].trim().parse().map_err(|_| err("bad k"))?;
        let point = GeoPoint::try_new(lat, lon).ok_or_else(|| err("coordinates out of range"))?;
        subs.push(Query::Spatial(SpatialQuery::Nearest { point, k }));
    }
    if let Some(poly) = flags.get("--polygon") {
        let vertices: Vec<GeoPoint> = poly
            .split(';')
            .map(|pair| {
                let (lat, lon) = pair
                    .split_once(',')
                    .ok_or_else(|| err(format!("bad polygon vertex `{pair}`")))?;
                let lat: f64 = lat
                    .trim()
                    .parse()
                    .map_err(|_| err("bad polygon latitude"))?;
                let lon: f64 = lon
                    .trim()
                    .parse()
                    .map_err(|_| err("bad polygon longitude"))?;
                GeoPoint::try_new(lat, lon).ok_or_else(|| err("polygon vertex out of range"))
            })
            .collect::<Result<_, _>>()?;
        if vertices.len() < 3 {
            return Err(err("--polygon needs at least 3 vertices"));
        }
        subs.push(Query::Spatial(SpatialQuery::Within(GeoPolygon::new(
            vertices,
        ))));
    }
    if let Some(spec) = flags.get("--label") {
        let (scheme, label) = resolve_label(&store, spec)?;
        subs.push(Query::Categorical {
            scheme,
            label,
            min_confidence: 0.0,
        });
    }
    let since: Option<i64> = flags.parse("--since")?;
    let until: Option<i64> = flags.parse("--until")?;
    if since.is_some() || until.is_some() {
        subs.push(Query::Temporal {
            field: TemporalField::Captured,
            from: since.unwrap_or(i64::MIN),
            to: until.unwrap_or(i64::MAX),
        });
    }
    if subs.is_empty() {
        return Err(err("search needs at least one filter; see `tvdp help`"));
    }
    let query = match subs.pop() {
        Some(only) if subs.is_empty() => only,
        Some(last) => {
            subs.push(last);
            Query::And(subs)
        }
        None => return Err(err("search needs at least one filter; see `tvdp help`")),
    };
    let results = platform
        .search(&query)
        .map_err(|e| err(format!("invalid query: {e}")))?;
    let mut out = format!("{} hits\n", results.len());
    for r in results.iter().take(20) {
        let Some(record) = store.image(r.image) else {
            continue;
        };
        out.push_str(&format!(
            "  {}  ({:.5}, {:.5})  t={}  [{}]\n",
            r.image,
            record.meta.gps.lat,
            record.meta.gps.lon,
            record.meta.captured_at,
            record.meta.keywords.join(" ")
        ));
    }
    if results.len() > 20 {
        out.push_str(&format!("  ... and {} more\n", results.len() - 20));
    }
    Ok(out)
}

fn parse_algorithm(raw: &str) -> Result<Algorithm, CliError> {
    Ok(match raw {
        "knn" => Algorithm::Knn(5),
        "tree" => Algorithm::DecisionTree,
        "bayes" => Algorithm::NaiveBayes,
        "forest" => Algorithm::RandomForest(25),
        "svm" => Algorithm::Svm,
        "logreg" => Algorithm::LogisticRegression,
        "mlp" => Algorithm::Mlp,
        other => return Err(err(format!("unknown algorithm `{other}`"))),
    })
}

fn train(path: &str, rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::new(rest);
    let scheme_name = flags
        .get("--scheme")
        .ok_or_else(|| err("--scheme required"))?;
    let algorithm = parse_algorithm(flags.get("--algorithm").unwrap_or("svm"))?;
    let model_out = flags
        .get("--model-out")
        .ok_or_else(|| err("--model-out required"))?;

    let store = load_store(path)?;
    let platform = Tvdp::with_store(Arc::clone(&store), PlatformConfig::default());
    let operator = platform.register_user("cli", Role::Researcher);
    let scheme = store
        .scheme_by_name(scheme_name)
        .ok_or_else(|| err(format!("unknown scheme `{scheme_name}`")))?;
    let model = platform
        .train_model(
            operator,
            scheme_name,
            scheme.id,
            FeatureKind::Cnn,
            algorithm,
        )
        .map_err(|e| err(e.to_string()))?;
    let portable = platform
        .models()
        .export(model)
        .ok_or_else(|| err("trained model is not exportable"))?;
    let interface = platform
        .models()
        .interface(model)
        .ok_or_else(|| err("trained model vanished from the registry"))?;
    let doc = serde_json::json!({
        "scheme": scheme_name,
        "feature_kind": interface.feature_kind,
        "input_dim": interface.input_dim,
        "weights": portable,
    });
    let encoded =
        serde_json::to_string(&doc).map_err(|e| err(format!("cannot encode model: {e}")))?;
    std::fs::write(model_out, encoded)
        .map_err(|e| err(format!("cannot write {model_out}: {e}")))?;
    Ok(format!(
        "trained {} on {} annotated images; weights written to {model_out}",
        portable.algorithm_tag(),
        store.annotation_count()
    ))
}

fn apply(path: &str, rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::new(rest);
    let model_path = flags
        .get("--model")
        .ok_or_else(|| err("--model required"))?;
    let scheme_name = flags
        .get("--scheme")
        .ok_or_else(|| err("--scheme required"))?;

    let store = load_store(path)?;
    let platform = Tvdp::with_store(Arc::clone(&store), PlatformConfig::default());
    let operator = platform.register_user("cli", Role::Researcher);
    let scheme = store
        .scheme_by_name(scheme_name)
        .ok_or_else(|| err(format!("unknown scheme `{scheme_name}`")))?;

    let raw = std::fs::read_to_string(model_path)
        .map_err(|e| err(format!("cannot read {model_path}: {e}")))?;
    let doc: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| err(format!("bad model file: {e}")))?;
    let weights: SerializableModel = serde_json::from_value(doc["weights"].clone())
        .map_err(|e| err(format!("bad model weights: {e}")))?;
    let feature_kind: FeatureKind = serde_json::from_value(doc["feature_kind"].clone())
        .map_err(|e| err(format!("bad model feature kind: {e}")))?;
    let input_dim = doc["input_dim"]
        .as_u64()
        .ok_or_else(|| err("model file missing input_dim"))? as usize;
    // Guard against a model trained over a different feature pipeline:
    // the store's vectors must match the model's declared input size.
    if let Some(sample) = store
        .image_ids()
        .first()
        .and_then(|&id| store.feature_ref(id, feature_kind))
    {
        if sample.len() != input_dim {
            return Err(err(format!(
                "model expects {input_dim}-dim {feature_kind:?} features but this store                  holds {}-dim vectors (different extractor configuration?)",
                sample.len()
            )));
        }
    }
    let model = platform
        .upload_model(
            operator,
            "cli-import",
            ModelInterface {
                feature_kind,
                input_dim,
                scheme: scheme.id,
            },
            weights,
        )
        .map_err(|e| err(e.to_string()))?;

    // Classify every image without an annotation under the scheme.
    let targets: Vec<_> = store
        .image_ids()
        .into_iter()
        .filter(|&id| {
            store
                .annotations_of(id)
                .iter()
                .all(|a| a.classification != scheme.id)
        })
        .collect();
    let results = platform
        .apply_model(model, &targets)
        .map_err(|e| err(e.to_string()))?;
    save_store(platform.store(), path)?;
    let mut counts = vec![0usize; scheme.labels.len()];
    for (_, label, _) in &results {
        counts[*label] += 1;
    }
    let mut out = format!("classified {} images:\n", results.len());
    for (label, count) in scheme.labels.iter().zip(&counts) {
        out.push_str(&format!("  {label:<22} {count}\n"));
    }
    Ok(out)
}

fn hotspots_cmd(path: &str, rest: &[String]) -> Result<String, CliError> {
    let flags = Flags::new(rest);
    let scheme_name = flags
        .get("--scheme")
        .ok_or_else(|| err("--scheme required"))?;
    let label_name = flags
        .get("--label")
        .ok_or_else(|| err("--label required"))?;
    let cell: f64 = flags.parse("--cell")?.unwrap_or(200.0);
    let top: usize = flags.parse("--top")?.unwrap_or(5);

    let store = load_store(path)?;
    let (scheme, label) = resolve_label(&store, &format!("{scheme_name}:{label_name}"))?;
    // Aggregate over the bounding box of all camera positions.
    let mut points = Vec::new();
    store.for_each_image(|r| points.push(r.meta.gps));
    let Some(region) = BBox::from_points(&points) else {
        return Ok("store is empty".into());
    };
    let cells = hotspots(&store, scheme, label, &region, cell, 0.0, top);
    if cells.is_empty() {
        return Ok(format!("no `{label_name}` sightings in {path}"));
    }
    let mut out = format!(
        "top {} `{}` hotspots ({}m cells):\n",
        cells.len(),
        label_name,
        cell
    );
    for (i, c) in cells.iter().enumerate() {
        let center = c.cell.center();
        out.push_str(&format!(
            "  #{} ({:.5}, {:.5})  {} sightings\n",
            i + 1,
            center.lat,
            center.lon,
            c.count
        ));
    }
    Ok(out)
}
