//! `tvdp` binary entry point; all logic lives in the library so tests can
//! drive commands in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tvdp_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
