//! End-to-end CLI tests: every command driven in-process against a
//! temporary store file.

use tvdp_cli::run;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        Self(p)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn call(args: &[&str]) -> Result<String, String> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&owned).map_err(|e| e.to_string())
}

#[test]
fn full_cli_workflow() {
    let dir = TempDir::new("workflow");
    let store = dir.path("city.tvdp");
    let model = dir.path("model.json");

    // init
    let out = call(&["init", &store]).unwrap();
    assert!(out.contains("initialized"), "{out}");
    // init refuses to clobber
    assert!(call(&["init", &store]).unwrap_err().contains("exists"));

    // demo-data
    let out = call(&[
        "demo-data",
        &store,
        "--count",
        "120",
        "--size",
        "32",
        "--labelled",
        "0.75",
    ])
    .unwrap();
    assert!(out.contains("ingested 120 images (90 labelled)"), "{out}");

    // stats
    let out = call(&["stats", &store]).unwrap();
    assert!(out.contains("images      : 120"), "{out}");
    assert!(out.contains("street-cleanliness"), "{out}");
    assert!(out.contains("Cnn"), "{out}");

    // search by keyword
    let out = call(&["search", &store, "--keyword", "street"]).unwrap();
    assert!(out.contains("hits"), "{out}");

    // search by region (downtown LA box covers all demo data)
    let out = call(&["search", &store, "--region", "34.0,-118.3,34.1,-118.2"]).unwrap();
    assert!(out.starts_with("120 hits"), "{out}");

    // nearest
    let out = call(&["search", &store, "--near", "34.045,-118.25,5"]).unwrap();
    assert!(out.starts_with("5 hits"), "{out}");

    // label search (ground-truth annotations exist on 90 images)
    let out = call(&["search", &store, "--label", "street-cleanliness:Clean"]).unwrap();
    assert!(!out.starts_with("0 hits"), "{out}");

    // combined filters
    let out = call(&[
        "search",
        &store,
        "--keyword",
        "street",
        "--region",
        "34.0,-118.3,34.1,-118.2",
    ])
    .unwrap();
    assert!(out.contains("hits"), "{out}");

    // train
    let out = call(&[
        "train",
        &store,
        "--scheme",
        "street-cleanliness",
        "--algorithm",
        "forest",
        "--model-out",
        &model,
    ])
    .unwrap();
    assert!(out.contains("Random Forest"), "{out}");
    assert!(std::path::Path::new(&model).exists());

    // apply to the 30 unlabelled images; store is re-persisted
    let out = call(&[
        "apply",
        &store,
        "--model",
        &model,
        "--scheme",
        "street-cleanliness",
    ])
    .unwrap();
    assert!(out.contains("classified 30 images"), "{out}");
    let out = call(&["stats", &store]).unwrap();
    assert!(out.contains("annotations : 120"), "{out}");

    // hotspots over the now-complete annotations
    let out = call(&[
        "hotspots",
        &store,
        "--scheme",
        "street-cleanliness",
        "--label",
        "Encampment",
        "--top",
        "3",
    ])
    .unwrap();
    assert!(out.contains("hotspots"), "{out}");
}

#[test]
fn errors_are_helpful() {
    let dir = TempDir::new("errors");
    let store = dir.path("s.tvdp");
    // Missing store.
    assert!(call(&["stats", &store])
        .unwrap_err()
        .contains("cannot load"));
    call(&["init", &store]).unwrap();
    call(&["demo-data", &store, "--count", "30", "--size", "32"]).unwrap();
    // Unknown command.
    assert!(call(&["frobnicate", &store])
        .unwrap_err()
        .contains("unknown command"));
    // Bad region.
    assert!(call(&["search", &store, "--region", "1,2,3"])
        .unwrap_err()
        .contains("region"));
    // Inverted region.
    assert!(call(&["search", &store, "--region", "35,0,34,1"])
        .unwrap_err()
        .contains("min exceeds max"));
    // No filters.
    assert!(call(&["search", &store])
        .unwrap_err()
        .contains("at least one filter"));
    // Unknown scheme / label.
    assert!(call(&["search", &store, "--label", "nope:Clean"])
        .unwrap_err()
        .contains("unknown scheme"));
    assert!(
        call(&["search", &store, "--label", "street-cleanliness:Gold"])
            .unwrap_err()
            .contains("unknown label")
    );
    // Bad algorithm.
    assert!(call(&[
        "train",
        &store,
        "--scheme",
        "street-cleanliness",
        "--algorithm",
        "quantum",
        "--model-out",
        &dir.path("m.json"),
    ])
    .unwrap_err()
    .contains("unknown algorithm"));
    // Help exists.
    assert!(call(&["help"]).unwrap().contains("demo-data"));
}

#[test]
fn temporal_search_filters() {
    let dir = TempDir::new("temporal");
    let store = dir.path("s.tvdp");
    call(&["init", &store]).unwrap();
    call(&["demo-data", &store, "--count", "40", "--size", "32"]).unwrap();
    let all = call(&["search", &store, "--since", "0"]).unwrap();
    assert!(all.starts_with("40 hits"), "{all}");
    let none = call(&["search", &store, "--until", "0"]).unwrap();
    assert!(none.starts_with("0 hits"), "{none}");
}

#[test]
fn polygon_search() {
    let dir = TempDir::new("polygon");
    let store = dir.path("s.tvdp");
    call(&["init", &store]).unwrap();
    call(&["demo-data", &store, "--count", "60", "--size", "32"]).unwrap();
    // A triangle over the western half of downtown.
    let out = call(&[
        "search",
        &store,
        "--polygon",
        "34.035,-118.26;34.053,-118.26;34.053,-118.248",
    ])
    .unwrap();
    assert!(out.contains("hits"), "{out}");
    let hits: usize = out.split_whitespace().next().unwrap().parse().unwrap();
    let all: usize = call(&["search", &store, "--region", "34.0,-118.3,34.1,-118.2"])
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(hits > 0 && hits < all, "triangle {hits} vs all {all}");
    // Bad vertex errors cleanly.
    assert!(call(&["search", &store, "--polygon", "1,2;3"])
        .unwrap_err()
        .contains("vertex"));
    assert!(call(&["search", &store, "--polygon", "1,2;3,4"])
        .unwrap_err()
        .contains("at least 3"));
}

#[test]
fn apply_rejects_mismatched_model_dimensions() {
    let dir = TempDir::new("dimcheck");
    let store = dir.path("s.tvdp");
    call(&["init", &store]).unwrap();
    call(&["demo-data", &store, "--count", "30", "--size", "32"]).unwrap();
    // Hand-craft a model file whose input_dim cannot match the store.
    let bogus = dir.path("bogus.json");
    let weights = serde_json::json!({
        "NaiveBayes": { "classes": [], "var_smoothing": 1e-6 }
    });
    std::fs::write(
        &bogus,
        serde_json::json!({
            "scheme": "street-cleanliness",
            "feature_kind": "Cnn",
            "input_dim": 7,
            "weights": weights,
        })
        .to_string(),
    )
    .unwrap();
    let msg = call(&[
        "apply",
        &store,
        "--model",
        &bogus,
        "--scheme",
        "street-cleanliness",
    ])
    .unwrap_err();
    assert!(msg.contains("7-dim"), "{msg}");
}

#[test]
fn open_and_compact_durable_directory() {
    let dir = TempDir::new("durable");
    let store_dir = dir.path("crash-safe");

    // First open creates an empty crash-safe directory.
    let out = call(&["open", &store_dir]).unwrap();
    assert!(out.contains("snapshot absent"), "{out}");
    assert!(out.contains("images      : 0"), "{out}");

    // Seed it through the durable platform API (the CLI's open/compact
    // operate on directories written by Tvdp::open, not store files).
    {
        use tvdp_core::platform::IngestRequest;
        use tvdp_core::{PlatformConfig, Role, Tvdp};
        let (tvdp, _) =
            Tvdp::open(std::path::Path::new(&store_dir), PlatformConfig::default()).unwrap();
        let user = tvdp.register_user("cli-test", Role::Government);
        let image = tvdp_vision::Image::from_fn(24, 24, |x, y| [x as u8, y as u8, 120]);
        tvdp.ingest(
            user,
            image,
            IngestRequest {
                gps: tvdp_geo::GeoPoint::new(34.05, -118.25),
                fov: None,
                captured_at: 1000,
                uploaded_at: 1100,
                keywords: vec!["street".into()],
            },
        )
        .unwrap();
    }

    // Reopening replays the journal and reports the recovered rows.
    let out = call(&["open", &store_dir]).unwrap();
    assert!(out.contains("op(s) replayed"), "{out}");
    assert!(out.contains("images      : 1"), "{out}");

    // Compaction folds the journal into a snapshot...
    let out = call(&["compact", &store_dir]).unwrap();
    assert!(out.contains("folded into"), "{out}");

    // ...after which recovery loads the snapshot and replays nothing.
    let out = call(&["open", &store_dir]).unwrap();
    assert!(out.contains("snapshot loaded"), "{out}");
    assert!(out.contains("0 op(s) replayed"), "{out}");
    assert!(out.contains("images      : 1"), "{out}");

    // The new commands are documented.
    let help = call(&["help"]).unwrap();
    assert!(
        help.contains("tvdp open") && help.contains("tvdp compact"),
        "{help}"
    );
}
