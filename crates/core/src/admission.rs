//! Deterministic cost-based admission control.
//!
//! The controller models the platform as a single virtual-time server
//! with a configurable capacity in *work units* per second. Every
//! request is priced in units before it runs (planner cardinality for
//! queries, batch size for ingest, a flat charge for dispatch) and
//! admission is a pure function of `(backlog, class, cost, now)`:
//!
//! * the request would start when the current backlog drains
//!   (`max(backlog_done_at, now)`),
//! * if that start is further away than the class's queueing-delay
//!   bound, the request is **shed** with a typed
//!   [`PlatformError::Overloaded`] carrying a deterministic
//!   `retry_after_ms` hint,
//! * otherwise it is admitted and the backlog advances by the
//!   request's modeled service time.
//!
//! The per-class delay bounds implement priority shedding: dispatch
//! (cheap to retry, the device will repeat) gets the tightest bound and
//! sheds first, interactive queries next, ingest (carrying data the
//! platform exists to keep) sheds last. No wall clock, no real queues,
//! no background threads — the same request sequence against the same
//! config always produces the same admit/shed decisions, which is what
//! lets the load harness emit byte-identical numbers across pool
//! widths.

use parking_lot::Mutex;

use crate::error::PlatformError;

/// Workload class of an admission request, in shed-first order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RequestClass {
    /// Edge dispatch — retried by the device transport anyway; shed
    /// first.
    Dispatch,
    /// Interactive query traffic.
    Query,
    /// Uploads and annotations — the data the platform exists to keep;
    /// shed last.
    Ingest,
}

impl RequestClass {
    /// Stable lowercase name, used in stats and API bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestClass::Dispatch => "dispatch",
            RequestClass::Query => "query",
            RequestClass::Ingest => "ingest",
        }
    }

    const ALL: [RequestClass; 3] = [
        RequestClass::Dispatch,
        RequestClass::Query,
        RequestClass::Ingest,
    ];

    fn idx(self) -> usize {
        match self {
            RequestClass::Dispatch => 0,
            RequestClass::Query => 1,
            RequestClass::Ingest => 2,
        }
    }
}

/// Capacity budget and per-class queueing-delay bounds.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Modeled serving capacity in work units per virtual second. One
    /// unit ≈ one scatter-unit dispatch or one scanned/returned row
    /// (see `ShardedEngine::estimate_query_units`).
    pub capacity_units_per_sec: u64,
    /// Maximum modeled queueing delay (virtual ms) a dispatch request
    /// tolerates before being shed.
    pub dispatch_max_delay_ms: i64,
    /// Maximum modeled queueing delay (virtual ms) for queries.
    pub query_max_delay_ms: i64,
    /// Maximum modeled queueing delay (virtual ms) for ingest.
    pub ingest_max_delay_ms: i64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity_units_per_sec: 1_000_000,
            dispatch_max_delay_ms: 50,
            query_max_delay_ms: 250,
            ingest_max_delay_ms: 1_000,
        }
    }
}

impl AdmissionConfig {
    fn max_delay_ms(&self, class: RequestClass) -> i64 {
        match class {
            RequestClass::Dispatch => self.dispatch_max_delay_ms,
            RequestClass::Query => self.query_max_delay_ms,
            RequestClass::Ingest => self.ingest_max_delay_ms,
        }
    }
}

/// Proof of admission: the modeled queueing delay the request absorbed
/// and when the virtual server will get to it. Latency accounting in
/// the load harness starts from `virtual_start_ms`.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct AdmissionTicket {
    /// The admitted class.
    pub class: RequestClass,
    /// The priced cost.
    pub cost_units: u64,
    /// Modeled wait behind the existing backlog, in virtual ms.
    pub queued_delay_ms: i64,
    /// Virtual time the request's service begins.
    pub virtual_start_ms: i64,
}

/// Counters for one class plus the aggregate, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Work units admitted.
    pub admitted_units: u64,
}

/// A deterministic snapshot of the controller's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Totals across classes.
    pub total: ClassStats,
    /// Per-class counters, indexed dispatch / query / ingest.
    pub per_class: [ClassStats; 3],
}

impl AdmissionStats {
    /// Counters for one class.
    pub fn class(&self, class: RequestClass) -> ClassStats {
        self.per_class[class.idx()]
    }

    /// Stable rendering order for reports: shed-first class order.
    pub fn classes() -> [RequestClass; 3] {
        RequestClass::ALL
    }
}

#[derive(Debug, Default)]
struct AdmState {
    /// Virtual time at which everything admitted so far has drained.
    backlog_done_at_ms: i64,
    stats: AdmissionStats,
}

/// The admission controller. One per serving surface; every mutation
/// and query handler asks it before doing work.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<AdmState>,
}

impl AdmissionController {
    /// A controller with the given budget, empty backlog.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            state: Mutex::new(AdmState::default()),
        }
    }

    /// The configured budget.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Prices `cost_units` of `class` work at virtual time `now_ms`.
    /// Admits (advancing the backlog) or sheds with
    /// [`PlatformError::Overloaded`]; either way the decision and the
    /// retry hint are pure functions of the controller's state.
    pub fn admit(
        &self,
        class: RequestClass,
        cost_units: u64,
        now_ms: i64,
    ) -> Result<AdmissionTicket, PlatformError> {
        let mut s = self.state.lock();
        let start = s.backlog_done_at_ms.max(now_ms);
        let delay = start - now_ms;
        let bound = self.config.max_delay_ms(class);
        if delay > bound {
            s.stats.total.shed += 1;
            s.stats.per_class[class.idx()].shed += 1;
            return Err(PlatformError::Overloaded {
                retry_after_ms: (delay - bound).max(1),
            });
        }
        // Ceil division: even a 1-unit request occupies the server for
        // at least one whole virtual millisecond once capacity is
        // finite, so unbounded request rates cannot be free.
        let per_sec = self.config.capacity_units_per_sec.max(1);
        let service_ms = (cost_units.max(1) * 1_000).div_ceil(per_sec).max(1) as i64;
        s.backlog_done_at_ms = start + service_ms;
        s.stats.total.admitted += 1;
        s.stats.total.admitted_units += cost_units;
        let pc = &mut s.stats.per_class[class.idx()];
        pc.admitted += 1;
        pc.admitted_units += cost_units;
        Ok(AdmissionTicket {
            class,
            cost_units,
            queued_delay_ms: delay,
            virtual_start_ms: start,
        })
    }

    /// Modeled backlog still queued ahead of a request arriving at
    /// `now_ms`, in virtual ms. Zero when the server is idle.
    pub fn backlog_ms(&self, now_ms: i64) -> i64 {
        (self.state.lock().backlog_done_at_ms - now_ms).max(0)
    }

    /// Snapshot of the admit/shed counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            capacity_units_per_sec: 1_000, // 1 unit == 1 virtual ms
            dispatch_max_delay_ms: 10,
            query_max_delay_ms: 50,
            ingest_max_delay_ms: 100,
        })
    }

    #[test]
    fn admits_until_the_class_delay_bound_then_sheds() {
        let ctl = tight();
        // Each 20-unit request adds 20 ms of backlog; queries tolerate
        // 50 ms of queueing, so requests 1-3 admit (delays 0/20/40) and
        // request 4 (delay 60) sheds.
        for expected_delay in [0, 20, 40] {
            let t = ctl.admit(RequestClass::Query, 20, 0).unwrap();
            assert_eq!(t.queued_delay_ms, expected_delay);
        }
        let err = ctl.admit(RequestClass::Query, 20, 0).unwrap_err();
        match err {
            PlatformError::Overloaded { retry_after_ms } => assert_eq!(retry_after_ms, 10),
            other => panic!("expected Overloaded, got {other}"),
        }
        let stats = ctl.stats();
        assert_eq!(stats.total.admitted, 3);
        assert_eq!(stats.total.shed, 1);
        assert_eq!(stats.class(RequestClass::Query).shed, 1);
    }

    #[test]
    fn sheds_cheap_to_retry_classes_first() {
        let ctl = tight();
        // 30 ms of backlog: past dispatch's 10 ms bound, inside query's
        // 50 ms and ingest's 100 ms.
        let _ = ctl.admit(RequestClass::Ingest, 30, 0).unwrap();
        assert!(ctl.admit(RequestClass::Dispatch, 1, 0).is_err());
        assert!(ctl.admit(RequestClass::Query, 1, 0).is_ok());
        assert!(ctl.admit(RequestClass::Ingest, 1, 0).is_ok());
    }

    #[test]
    fn backlog_drains_with_virtual_time() {
        let ctl = tight();
        let _ = ctl.admit(RequestClass::Ingest, 100, 0).unwrap();
        assert_eq!(ctl.backlog_ms(0), 100);
        assert_eq!(ctl.backlog_ms(60), 40);
        assert_eq!(ctl.backlog_ms(200), 0);
        // After the drain, dispatch admits again.
        let t = ctl.admit(RequestClass::Dispatch, 1, 200).unwrap();
        assert_eq!(t.queued_delay_ms, 0);
        assert_eq!(t.virtual_start_ms, 200);
    }

    #[test]
    fn decisions_are_deterministic() {
        let script = [
            (RequestClass::Ingest, 40u64, 0i64),
            (RequestClass::Query, 10, 5),
            (RequestClass::Dispatch, 1, 5),
            (RequestClass::Query, 200, 6),
            (RequestClass::Ingest, 7, 100),
        ];
        let run = || {
            let ctl = tight();
            let decisions: Vec<String> = script
                .iter()
                .map(|&(c, units, now)| match ctl.admit(c, units, now) {
                    Ok(t) => format!("ok d={} s={}", t.queued_delay_ms, t.virtual_start_ms),
                    Err(e) => format!("err {e}"),
                })
                .collect();
            (decisions, ctl.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retry_after_is_enough_to_get_admitted() {
        let ctl = tight();
        let _ = ctl.admit(RequestClass::Ingest, 500, 0).unwrap(); // 500 ms backlog
        let err = ctl.admit(RequestClass::Query, 1, 0).unwrap_err();
        let PlatformError::Overloaded { retry_after_ms } = err else {
            panic!("expected Overloaded");
        };
        // Waiting exactly the hint brings the delay back to the bound.
        let _ = ctl.admit(RequestClass::Query, 1, retry_after_ms).unwrap();
    }
}
