//! Platform-level errors.

use tvdp_query::QueryError;
use tvdp_storage::{ClassificationId, DurableError, ImageId, ModelId, StorageError, UserId};
use tvdp_vision::FeatureKind;

/// Errors surfaced by platform operations.
#[derive(Debug)]
pub enum PlatformError {
    /// Underlying storage failure (bad foreign keys etc.).
    Storage(StorageError),
    /// The user is not registered.
    UnknownUser(UserId),
    /// The model is not registered.
    UnknownModel(ModelId),
    /// The classification scheme is not registered.
    UnknownScheme(ClassificationId),
    /// The image is not stored.
    UnknownImage(ImageId),
    /// Training requires labelled data that is not there.
    NotEnoughTrainingData {
        /// The scheme lacking annotations.
        scheme: ClassificationId,
        /// Annotated samples found.
        found: usize,
        /// Minimum required.
        needed: usize,
    },
    /// The image lacks the stored feature a model needs.
    MissingFeature(ImageId, FeatureKind),
    /// No pixels stored for an image that needs processing.
    MissingPixels(ImageId),
    /// A query was malformed (e.g. a visual example whose dimension
    /// does not match the stored feature kind).
    Query(QueryError),
    /// Journaling or recovery failure in the durable persistence layer.
    Durable(DurableError),
    /// A durability-only operation was invoked on an in-memory platform.
    NotDurable,
    /// The admission controller shed the request: accepting it would
    /// push its class's modeled queueing delay past the configured
    /// bound. Cheap to retry — the payload says when.
    Overloaded {
        /// Virtual-clock milliseconds after which a retry would have
        /// been admitted against the backlog seen at shed time.
        retry_after_ms: i64,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Storage(e) => write!(f, "storage: {e}"),
            PlatformError::UnknownUser(id) => write!(f, "unknown user {id}"),
            PlatformError::UnknownModel(id) => write!(f, "unknown model {id}"),
            PlatformError::UnknownScheme(id) => write!(f, "unknown scheme {id}"),
            PlatformError::UnknownImage(id) => write!(f, "unknown image {id}"),
            PlatformError::NotEnoughTrainingData {
                scheme,
                found,
                needed,
            } => write!(
                f,
                "scheme {scheme}: {found} annotated samples, need at least {needed}"
            ),
            PlatformError::MissingFeature(id, kind) => {
                write!(f, "image {id} lacks a stored {kind:?} feature")
            }
            PlatformError::MissingPixels(id) => write!(f, "image {id} has no stored pixels"),
            PlatformError::Query(e) => write!(f, "query: {e}"),
            PlatformError::Durable(e) => write!(f, "durability: {e}"),
            PlatformError::NotDurable => {
                write!(
                    f,
                    "platform is in-memory; open it with Tvdp::open for durability"
                )
            }
            PlatformError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: shed, retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<StorageError> for PlatformError {
    fn from(e: StorageError) -> Self {
        PlatformError::Storage(e)
    }
}

impl From<QueryError> for PlatformError {
    fn from(e: QueryError) -> Self {
        PlatformError::Query(e)
    }
}

impl From<DurableError> for PlatformError {
    fn from(e: DurableError) -> Self {
        // A storage rejection surfaced through the journal is still a
        // storage rejection; keep the established variant so callers
        // match one shape whether the platform is durable or not.
        match e {
            DurableError::Storage(inner) => PlatformError::Storage(inner),
            other => PlatformError::Durable(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PlatformError::NotEnoughTrainingData {
            scheme: ClassificationId(1),
            found: 3,
            needed: 10,
        };
        let s = e.to_string();
        assert!(s.contains("3") && s.contains("10"));
        let e2: PlatformError = StorageError::UnknownImage(ImageId(5)).into();
        assert!(e2.to_string().contains("img-5"));
    }
}
