//! The Translational Visual Data Platform core.
//!
//! [`Tvdp`] is the platform facade the paper's Fig. 1 describes: one
//! object wiring the four core services over shared storage:
//!
//! * **Acquisition** — uploads ([`Tvdp::ingest`]), augmentation with
//!   lineage ([`Tvdp::augment`]), and spatial-crowdsourcing campaigns
//!   ([`Tvdp::acquire_via_campaign`]),
//! * **Access** — the full query language ([`Tvdp::search`]) served by
//!   the indexing substrate,
//! * **Analysis** — training classifiers over stored features and
//!   labels ([`Tvdp::train_model`]), applying them to write machine
//!   annotations back into the store ([`Tvdp::apply_model`]),
//! * **Action** — capability-aware model dispatch to edge devices
//!   ([`Tvdp::dispatch_to_device`]).
//!
//! The write-back of machine annotations is what makes the platform
//! *translational*: knowledge produced by one application (street
//! cleanliness) becomes queryable data for the next (homeless counting,
//! graffiti studies) — see [`translational`].

pub mod admission;
pub mod error;
pub mod models;
pub mod platform;
pub mod router;
pub mod translational;
pub mod users;
pub mod video;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, AdmissionTicket, ClassStats, RequestClass,
};
pub use error::PlatformError;
pub use models::{ModelEntry, ModelInterface, ModelRegistry};
pub use platform::{HealthReport, IngestRequest, PlatformConfig, Tvdp};
pub use router::GeoShardRouter;
pub use translational::{count_by_cell, hotspots, CellCount};
pub use users::{Role, User, UserRegistry};
pub use video::{select_keyframes, KeyframePolicy, VideoFrame, VideoIngestReport};
