//! The ML model registry.
//!
//! Collaborators "build and share their ML models with others through our
//! platform by defining its input and output specifications" (paper
//! Section V). A registered model carries its interface — which feature
//! family and dimensionality it consumes, which classification scheme it
//! emits — so any participant can apply it without knowing its
//! internals, edge deployments can **download** it in portable form
//! ([`ModelRegistry::export`]), and externally trained models can be
//! **uploaded** ([`ModelRegistry::register_portable`]).

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use tvdp_ml::{Classifier, SerializableModel};
use tvdp_storage::{ClassificationId, ModelId, UserId};
use tvdp_vision::FeatureKind;

/// The declared input/output contract of a registered model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelInterface {
    /// Feature family the model consumes.
    pub feature_kind: FeatureKind,
    /// Expected feature dimensionality.
    pub input_dim: usize,
    /// Classification scheme whose labels the model emits.
    pub scheme: ClassificationId,
}

/// A registered model's implementation: portable built-in, or an opaque
/// user-provided classifier (usable but not downloadable).
pub enum ModelImpl {
    /// One of the platform's algorithms — serializable for download.
    Builtin(SerializableModel),
    /// An arbitrary classifier registered in-process.
    Custom(Box<dyn Classifier + Send + Sync>),
}

impl ModelImpl {
    fn classifier(&self) -> &dyn Classifier {
        match self {
            ModelImpl::Builtin(m) => m,
            ModelImpl::Custom(b) => b.as_ref(),
        }
    }
}

/// A registered model: metadata plus the trained classifier.
pub struct ModelEntry {
    /// Identifier.
    pub id: ModelId,
    /// Human-readable name.
    pub name: String,
    /// The registering user.
    pub owner: UserId,
    /// Declared contract.
    pub interface: ModelInterface,
    /// The trained classifier.
    pub implementation: ModelImpl,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("owner", &self.owner)
            .field("interface", &self.interface)
            .field("algorithm", &self.implementation.classifier().name())
            .finish()
    }
}

/// Thread-safe model table.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    next: u64,
    models: BTreeMap<ModelId, ModelEntry>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("count", &self.models.len())
            .finish()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(
        &self,
        name: String,
        owner: UserId,
        interface: ModelInterface,
        implementation: ModelImpl,
    ) -> ModelId {
        let mut inner = self.inner.write();
        let id = ModelId(inner.next);
        inner.next += 1;
        inner.models.insert(
            id,
            ModelEntry {
                id,
                name,
                owner,
                interface,
                implementation,
            },
        );
        id
    }

    /// Registers a trained built-in model (downloadable).
    pub fn register_portable(
        &self,
        name: impl Into<String>,
        owner: UserId,
        interface: ModelInterface,
        model: SerializableModel,
    ) -> ModelId {
        self.insert(name.into(), owner, interface, ModelImpl::Builtin(model))
    }

    /// Registers an arbitrary trained classifier (usable in-process, not
    /// downloadable).
    pub fn register(
        &self,
        name: impl Into<String>,
        owner: UserId,
        interface: ModelInterface,
        classifier: Box<dyn Classifier + Send + Sync>,
    ) -> ModelId {
        self.insert(name.into(), owner, interface, ModelImpl::Custom(classifier))
    }

    /// Whether the model exists.
    pub fn exists(&self, id: ModelId) -> bool {
        self.inner.read().models.contains_key(&id)
    }

    /// The model's declared interface.
    pub fn interface(&self, id: ModelId) -> Option<ModelInterface> {
        self.inner
            .read()
            .models
            .get(&id)
            .map(|m| m.interface.clone())
    }

    /// Model metadata: `(name, owner, algorithm)`.
    pub fn describe(&self, id: ModelId) -> Option<(String, UserId, &'static str)> {
        self.inner.read().models.get(&id).map(|m| {
            (
                m.name.clone(),
                m.owner,
                m.implementation.classifier().name(),
            )
        })
    }

    /// A portable copy of the trained model, when it is a built-in
    /// (`None` for custom in-process models — they cannot leave).
    pub fn export(&self, id: ModelId) -> Option<SerializableModel> {
        match &self.inner.read().models.get(&id)?.implementation {
            ModelImpl::Builtin(m) => Some(m.clone()),
            ModelImpl::Custom(_) => None,
        }
    }

    /// All registered model ids.
    pub fn ids(&self) -> Vec<ModelId> {
        self.inner.read().models.keys().copied().collect()
    }

    /// Runs the model on one feature vector, returning per-class scores.
    ///
    /// # Panics
    ///
    /// Panics when the feature dimensionality violates the declared
    /// interface (caller error).
    pub fn score(&self, id: ModelId, features: &[f32]) -> Option<Vec<f32>> {
        let inner = self.inner.read();
        let entry = inner.models.get(&id)?;
        assert_eq!(
            features.len(),
            entry.interface.input_dim,
            "feature dim violates model interface"
        );
        Some(entry.implementation.classifier().decision_scores(features))
    }

    /// Runs the model on one feature vector, returning `(label index,
    /// confidence)` where confidence is the softmax of the winning score.
    pub fn predict(&self, id: ModelId, features: &[f32]) -> Option<(usize, f32)> {
        let scores = self.score(id, features)?;
        let best = tvdp_ml::argmax(&scores);
        // Softmax confidence of the winner.
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        let exps: f32 = scores.iter().map(|s| (s - max).exp()).sum();
        let confidence = ((scores[best] - max).exp() / exps).clamp(0.0, 1.0);
        Some((best, confidence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_ml::{KnnClassifier, LinearSvm, ScaledClassifier};

    fn trained_knn() -> Box<dyn Classifier + Send + Sync> {
        let mut knn = KnnClassifier::new(1);
        knn.fit(&[vec![0.0, 0.0], vec![5.0, 5.0]], &[0, 1], 2);
        Box::new(knn)
    }

    fn trained_svm_portable() -> SerializableModel {
        let mut m = SerializableModel::Svm(ScaledClassifier::new(LinearSvm::new()));
        let x = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
        ];
        m.fit(&x, &[0, 0, 1, 1], 2);
        m
    }

    fn interface() -> ModelInterface {
        ModelInterface {
            feature_kind: FeatureKind::Cnn,
            input_dim: 2,
            scheme: ClassificationId(0),
        }
    }

    #[test]
    fn register_describe_predict() {
        let reg = ModelRegistry::new();
        let id = reg.register("cleanliness-knn", UserId(1), interface(), trained_knn());
        assert!(reg.exists(id));
        let (name, owner, algo) = reg.describe(id).unwrap();
        assert_eq!(name, "cleanliness-knn");
        assert_eq!(owner, UserId(1));
        assert_eq!(algo, "kNN");
        let (label, conf) = reg.predict(id, &[4.8, 5.1]).unwrap();
        assert_eq!(label, 1);
        assert!((0.0..=1.0).contains(&conf));
        assert_eq!(reg.ids(), vec![id]);
    }

    #[test]
    fn portable_models_export_custom_models_do_not() {
        let reg = ModelRegistry::new();
        let portable = reg.register_portable("svm", UserId(1), interface(), trained_svm_portable());
        let custom = reg.register("knn", UserId(1), interface(), trained_knn());
        assert!(reg.export(portable).is_some());
        assert!(reg.export(custom).is_none());
        assert!(reg.export(ModelId(99)).is_none());
    }

    #[test]
    fn exported_model_predicts_identically_after_reimport() {
        let reg = ModelRegistry::new();
        let id = reg.register_portable("svm", UserId(1), interface(), trained_svm_portable());
        let exported = reg.export(id).unwrap();
        let json = serde_json::to_string(&exported).unwrap();
        let imported: SerializableModel = serde_json::from_str(&json).unwrap();
        let reimported = reg.register_portable("svm-copy", UserId(2), interface(), imported);
        for probe in [[0.1f32, 0.1], [4.9, 5.0], [2.5, 2.5]] {
            assert_eq!(reg.predict(id, &probe), reg.predict(reimported, &probe));
        }
    }

    #[test]
    fn missing_model_returns_none() {
        let reg = ModelRegistry::new();
        assert!(reg.predict(ModelId(9), &[0.0, 0.0]).is_none());
        assert!(reg.interface(ModelId(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "model interface")]
    fn wrong_dim_panics() {
        let reg = ModelRegistry::new();
        let id = reg.register("m", UserId(1), interface(), trained_knn());
        let _ = reg.score(id, &[1.0, 2.0, 3.0]);
    }
}
