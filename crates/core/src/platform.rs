//! The platform facade.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use tvdp_crowd::{simulate_campaign, Campaign, SimulationConfig};
use tvdp_edge::{
    DeviceProfile, DispatchConstraints, DispatchDecision, LinkConditions, ModelDispatcher,
    ModelSpec, MODEL_ZOO,
};
use tvdp_geo::Fov;
use tvdp_kernel::Pool;
use tvdp_ml::mlp::MlpParams;
use tvdp_ml::{
    Classifier, DecisionTree, GaussianNb, KnnClassifier, LinearSvm, LogisticRegression, Mlp,
    RandomForest, ScaledClassifier, SerializableModel,
};
use tvdp_query::engine::EngineConfig;
use tvdp_query::{Query, QueryResult, ShardedEngine, DEFAULT_SEAL_CAP};
use tvdp_storage::{
    AnnotationId, AnnotationSource, ClassificationId, CompactionReport, DurableStore, HealthState,
    ImageId, ImageMeta, ImageOrigin, ModelId, RecoveryReport, RegionOfInterest, UserId,
    VisualStore, WalOp,
};
use tvdp_vision::{
    Augmentation, CnnConfig, CnnExtractor, ColorHistogramExtractor, FeatureExtractor, FeatureKind,
    Image,
};

use crate::error::PlatformError;
use crate::models::{ModelInterface, ModelRegistry};
use crate::router::GeoShardRouter;
use crate::users::{Role, UserRegistry};

/// Training algorithms a participant can pick when devising a model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// k-nearest neighbours with the given `k`.
    Knn(usize),
    /// CART decision tree.
    DecisionTree,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Random forest with the given tree count.
    RandomForest(usize),
    /// Linear SVM (the paper's best performer).
    Svm,
    /// Multinomial logistic regression.
    LogisticRegression,
    /// Single-hidden-layer MLP.
    Mlp,
}

impl Algorithm {
    fn build(self, seed: u64) -> SerializableModel {
        // Scale-sensitive algorithms train behind a standardization
        // pipeline fitted on the training split; every variant is
        // portable (downloadable through the API).
        match self {
            Algorithm::Knn(k) => {
                SerializableModel::Knn(ScaledClassifier::new(KnnClassifier::new(k).weighted()))
            }
            Algorithm::DecisionTree => SerializableModel::DecisionTree(DecisionTree::new()),
            Algorithm::NaiveBayes => SerializableModel::NaiveBayes(GaussianNb::new()),
            Algorithm::RandomForest(n) => {
                SerializableModel::RandomForest(RandomForest::new(n, seed))
            }
            Algorithm::Svm => SerializableModel::Svm(ScaledClassifier::new(LinearSvm::new())),
            Algorithm::LogisticRegression => SerializableModel::LogisticRegression(
                ScaledClassifier::new(LogisticRegression::new()),
            ),
            Algorithm::Mlp => {
                SerializableModel::Mlp(ScaledClassifier::new(Mlp::with_params(MlpParams {
                    hidden: 96,
                    epochs: 80,
                    seed,
                    ..Default::default()
                })))
            }
        }
    }
}

/// Platform construction options.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Query-engine options (visual index feature family etc.).
    pub engine: EngineConfig,
    /// CNN extractor architecture.
    pub cnn: CnnConfig,
    /// Minimum labelled samples before a model may be trained.
    pub min_training_samples: usize,
    /// Seed for stochastic training algorithms.
    pub seed: u64,
    /// Spatial shards the platform core is partitioned into. Each
    /// shard owns its own store, indexes, and (for durable platforms)
    /// WAL epoch; queries scatter across all of them. `1` (the
    /// default) reproduces the unsharded platform exactly.
    pub shards: usize,
    /// Geo-grid pitch, in degrees, of the shard router
    /// ([`GeoShardRouter`]). Must stay stable across reopens of a
    /// durable directory.
    pub shard_cell_deg: f64,
    /// Pending images a shard accumulates before sealing them into an
    /// immutable indexed segment (see
    /// [`tvdp_query::DEFAULT_SEAL_CAP`]). Validated to at least 1 at
    /// platform construction; query results are independent of the
    /// chosen cap — only the scan/index balance moves.
    pub seal_cap: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            cnn: CnnConfig::default(),
            min_training_samples: 10,
            seed: 0x7D_1D,
            shards: 1,
            shard_cell_deg: GeoShardRouter::DEFAULT_CELL_DEG,
            seal_cap: DEFAULT_SEAL_CAP,
        }
    }
}

/// Outcome of a deduplicating upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestOutcome {
    /// The image was new and stored under this id.
    Stored(ImageId),
    /// A near-duplicate already existed; nothing was stored.
    Duplicate {
        /// The previously stored near-duplicate.
        existing: ImageId,
        /// Feature distance to it.
        feature_distance: f32,
    },
}

/// Upload-time metadata for [`Tvdp::ingest`].
#[derive(Debug, Clone)]
pub struct IngestRequest {
    /// Camera GPS position.
    pub gps: tvdp_geo::GeoPoint,
    /// FOV descriptor when direction sensors were available.
    pub fov: Option<Fov>,
    /// Capture timestamp, Unix seconds.
    pub captured_at: i64,
    /// Upload timestamp, Unix seconds.
    pub uploaded_at: i64,
    /// Uploader-supplied keywords.
    pub keywords: Vec<String>,
}

/// Aggregate platform statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Stored images.
    pub images: usize,
    /// Stored annotations.
    pub annotations: usize,
    /// Registered models.
    pub models: usize,
    /// Registered users.
    pub users: usize,
    /// Resident bytes of quantized feature codes across all shards —
    /// the compressed working set the quantized candidate scan reads
    /// (the mirrored `f32` rows cost 4x as much and may be spilled).
    pub quant_code_bytes: usize,
}

/// Aggregated serving-health report ([`Tvdp::health`]): the worst
/// [`HealthState`] across durable shards plus fault accounting. The
/// state machine is the storage layer's — `Ok` → `ReadOnly` on a
/// journal write fault, `ReadOnly` → `Degraded` on the first repaired
/// write, `Degraded` → `Ok` on the next — and the platform reports the
/// most degraded shard so one wedged volume is never masked by healthy
/// neighbors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Worst shard state; `Ok` for an in-memory platform.
    pub state: HealthState,
    /// Total journal write faults observed across shards.
    pub write_faults: u64,
    /// First shard error message still standing, if any.
    pub last_error: Option<String>,
    /// Whether the platform journals to disk at all.
    pub durable: bool,
    /// Shard count (reported so operators can size the blast radius).
    pub shards: usize,
}

/// Platform-wide id counters. Ids are allocated here, ahead of the
/// shard-local insert, so every image/annotation/scheme id is unique
/// across shards and dense in allocation order.
struct NextIds {
    image: u64,
    annotation: u64,
    classification: u64,
}

/// The Translational Visual Data Platform.
///
/// The core is partitioned by capture location into
/// [`PlatformConfig::shards`] independent shards: a deterministic
/// geo-grid router ([`GeoShardRouter`]) assigns every upload to one
/// shard, and each shard owns its own store, indexes, and (for durable
/// platforms) write-ahead-log epoch. Queries never block on ingest:
/// each shard publishes immutable index generations that readers pick
/// up atomically, and a query scatters across the shards' latest
/// generations and gathers a deterministic merge.
pub struct Tvdp {
    config: PlatformConfig,
    stores: Vec<Arc<VisualStore>>,
    durables: Vec<DurableStore>,
    engine: ShardedEngine,
    router: GeoShardRouter,
    ids: Mutex<NextIds>,
    users: UserRegistry,
    models: ModelRegistry,
    color: ColorHistogramExtractor,
    cnn: CnnExtractor,
}

impl Tvdp {
    /// Creates an empty in-memory platform (no persistence) with
    /// [`PlatformConfig::shards`] spatial shards.
    pub fn new(config: PlatformConfig) -> Self {
        let shards = config.shards.max(1);
        let stores = (0..shards).map(|_| Arc::new(VisualStore::new())).collect();
        Self::from_stores(stores, config)
    }

    /// Wraps an existing store (e.g. one reloaded from disk) as a
    /// single-shard platform, rebuilding every index over its current
    /// contents ([`PlatformConfig::shards`] is ignored: the rows are
    /// already in one store). Users and models are runtime state and
    /// start empty.
    pub fn with_store(store: Arc<VisualStore>, config: PlatformConfig) -> Self {
        Self::from_stores(vec![store], config)
    }

    fn from_stores(stores: Vec<Arc<VisualStore>>, config: PlatformConfig) -> Self {
        let router = GeoShardRouter::new(stores.len() as u32, config.shard_cell_deg);
        let engine = ShardedEngine::with_seal_cap(
            stores.clone(),
            config.engine.clone(),
            config.seal_cap.max(1),
        );
        let ids = NextIds {
            image: stores
                .iter()
                .map(|s| s.peek_next_image_id().0)
                .max()
                .unwrap_or(0),
            annotation: stores
                .iter()
                .map(|s| s.peek_next_annotation_id().0)
                .max()
                .unwrap_or(0),
            classification: stores
                .iter()
                .map(|s| s.peek_next_classification_id().0)
                .max()
                .unwrap_or(0),
        };
        let cnn = CnnExtractor::with_config(config.cnn.clone());
        Self {
            config,
            stores,
            durables: Vec::new(),
            engine,
            router,
            ids: Mutex::new(ids),
            users: UserRegistry::new(),
            models: ModelRegistry::new(),
            color: ColorHistogramExtractor::paper_default(),
            cnn,
        }
    }

    /// Opens (or creates) a crash-safe platform persisted under `dir`.
    ///
    /// Recovery replays the snapshot plus the write-ahead log, so every
    /// mutation that returned `Ok` before a crash is visible again; the
    /// returned [`RecoveryReport`] says what was replayed or repaired.
    /// All subsequent mutations are journaled to disk before they are
    /// applied. Users and models are runtime state and start empty.
    ///
    /// A single-shard platform persists directly under `dir`
    /// (compatible with directories written before sharding); a
    /// platform with N > 1 shards keeps one durable store — snapshot
    /// plus WAL epoch — per shard under `dir/shard-<i>/`, and recovery
    /// replays each shard's log independently. The shard count and
    /// grid pitch of a durable directory must not change across
    /// reopens.
    pub fn open(
        dir: &Path,
        config: PlatformConfig,
    ) -> Result<(Self, RecoveryReport), PlatformError> {
        let shards = config.shards.max(1);
        let mut durables = Vec::with_capacity(shards);
        let mut merged: Option<RecoveryReport> = None;
        for i in 0..shards {
            let shard_dir = if shards == 1 {
                dir.to_path_buf()
            } else {
                dir.join(format!("shard-{i}"))
            };
            let (d, r) = DurableStore::open(&shard_dir)?;
            durables.push(d);
            merged = Some(match merged {
                None => r,
                Some(m) => RecoveryReport {
                    epoch: m.epoch.max(r.epoch),
                    snapshot_found: m.snapshot_found || r.snapshot_found,
                    replayed_ops: m.replayed_ops + r.replayed_ops,
                    torn_bytes: m.torn_bytes + r.torn_bytes,
                    debris_removed: m.debris_removed + r.debris_removed,
                },
            });
        }
        let report = merged.unwrap_or(RecoveryReport {
            epoch: 0,
            snapshot_found: false,
            replayed_ops: 0,
            torn_bytes: 0,
            debris_removed: 0,
        });
        let stores = durables.iter().map(|d| d.store_arc()).collect();
        let mut platform = Self::from_stores(stores, config);
        platform.durables = durables;
        Ok((platform, report))
    }

    /// Whether mutations are journaled to disk ([`Tvdp::open`]) rather
    /// than held only in memory ([`Tvdp::new`]).
    pub fn is_durable(&self) -> bool {
        !self.durables.is_empty()
    }

    /// Folds every shard's journal into a fresh snapshot and rotates
    /// its write-ahead log (durable platforms only). Call periodically
    /// to bound the logs and keep reopen cost proportional to store
    /// size, not mutation history. The report aggregates all shards
    /// (max epoch, summed byte/op counts).
    ///
    /// **Wait-for-quiesce semantics:** per shard, `flush` waits only
    /// for in-flight writers to quiesce at the shard's journal lock —
    /// the snapshot cut and segment rotation happen atomically inside
    /// that critical section, so an op either lands wholly before the
    /// cut (folded into the snapshot) or wholly after (journaled in the
    /// new live segment). Writers are *not* blocked for the fold
    /// itself: the merge runs as bounded increments
    /// ([`tvdp_storage::CompactionTask`]) concurrent with new writes,
    /// and `flush` returns once every shard's fold has published. Ops
    /// acknowledged after `flush` was called may therefore be in the
    /// new live segment rather than the snapshot — durable either way.
    pub fn flush(&self) -> Result<CompactionReport, PlatformError> {
        self.flush_with_pool(&Pool::serial())
    }

    /// [`Tvdp::flush`] with the fold's rendering increments fanned out
    /// over `pool`. Snapshot bytes are pool-width independent.
    pub fn flush_with_pool(&self, pool: &Pool) -> Result<CompactionReport, PlatformError> {
        if self.durables.is_empty() {
            return Err(PlatformError::NotDurable);
        }
        let mut merged: Option<CompactionReport> = None;
        for d in &self.durables {
            let r = d.compact_with_pool(pool)?;
            merged = Some(match merged {
                None => r,
                Some(m) => CompactionReport {
                    epoch: m.epoch.max(r.epoch),
                    ops_compacted: m.ops_compacted + r.ops_compacted,
                    wal_bytes_before: m.wal_bytes_before + r.wal_bytes_before,
                    snapshot_bytes: m.snapshot_bytes + r.snapshot_bytes,
                    tiers_merged: m.tiers_merged + r.tiers_merged,
                    increments_run: m.increments_run + r.increments_run,
                    bytes_spilled: m.bytes_spilled + r.bytes_spilled,
                    bytes_reloaded: m.bytes_reloaded + r.bytes_reloaded,
                },
            });
        }
        Ok(merged.unwrap_or(CompactionReport {
            epoch: 0,
            ops_compacted: 0,
            wal_bytes_before: 0,
            snapshot_bytes: 0,
            tiers_merged: 0,
            increments_run: 0,
            bytes_spilled: 0,
            bytes_reloaded: 0,
        }))
    }

    // Platform-wide id allocation. A shard insert happens *at* the
    // allocated id, so ids are unique across shards and the allocation
    // order (= upload order) is recoverable from ids alone.

    fn alloc_image_id(&self) -> ImageId {
        let mut ids = self.ids.lock();
        let id = ImageId(ids.image);
        ids.image += 1;
        id
    }

    fn alloc_annotation_id(&self) -> AnnotationId {
        let mut ids = self.ids.lock();
        let id = AnnotationId(ids.annotation);
        ids.annotation += 1;
        id
    }

    fn alloc_classification_id(&self) -> ClassificationId {
        let mut ids = self.ids.lock();
        let id = ClassificationId(ids.classification);
        ids.classification += 1;
        id
    }

    /// The shard whose store holds `image`, if any.
    pub fn shard_of(&self, image: ImageId) -> Option<usize> {
        self.stores.iter().position(|s| s.image(image).is_some())
    }

    fn image_record(&self, image: ImageId) -> Option<tvdp_storage::ImageRecord> {
        self.stores.iter().find_map(|s| s.image(image))
    }

    fn find_marker(&self, marker: &str) -> Option<ImageId> {
        self.stores.iter().find_map(|s| s.upload_marker(marker))
    }

    // Mutation dispatch: a durable platform journals each write before
    // applying it; an in-memory platform hits the shard store directly.

    fn store_add_image_at(
        &self,
        shard: usize,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, PlatformError> {
        match self.durables.get(shard) {
            Some(d) => Ok(d.add_image_at(id, meta, origin, pixels)?),
            None => Ok(self.stores[shard].add_image_at(id, meta, origin, pixels)?),
        }
    }

    fn store_add_image(
        &self,
        shard: usize,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, PlatformError> {
        let id = self.alloc_image_id();
        self.store_add_image_at(shard, id, meta, origin, pixels)
    }

    fn store_put_feature(
        &self,
        shard: usize,
        image: ImageId,
        kind: FeatureKind,
        vector: Vec<f32>,
    ) -> Result<(), PlatformError> {
        match self.durables.get(shard) {
            Some(d) => Ok(d.put_feature(image, kind, vector)?),
            None => Ok(self.stores[shard].put_feature(image, kind, vector)?),
        }
    }

    fn store_register_scheme(
        &self,
        name: String,
        labels: Vec<String>,
    ) -> Result<ClassificationId, PlatformError> {
        // A scheme is platform-wide: broadcast it to every shard under
        // one global id so any shard can validate and serve
        // annotations against it.
        let id = self.alloc_classification_id();
        if self.durables.is_empty() {
            for s in &self.stores {
                s.register_scheme_at(id, name.clone(), labels.clone())?;
            }
        } else {
            for d in &self.durables {
                d.register_scheme_at(id, name.clone(), labels.clone())?;
            }
        }
        Ok(id)
    }

    fn store_annotate(
        &self,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, PlatformError> {
        let shard = self
            .shard_of(image)
            .ok_or(PlatformError::UnknownImage(image))?;
        let id = self.alloc_annotation_id();
        match self.durables.get(shard) {
            Some(d) => {
                Ok(d.annotate_at(id, image, classification, label, confidence, source, region)?)
            }
            None => Ok(self.stores[shard].annotate_at(
                id,
                image,
                classification,
                label,
                confidence,
                source,
                region,
            )?),
        }
    }

    /// Shard 0's store (read access for analysis pipelines). On a
    /// single-shard platform — the default — this is *the* store; on a
    /// sharded platform use [`Tvdp::stores`] or [`Tvdp::shard_of`] to
    /// reach the others.
    pub fn store(&self) -> &Arc<VisualStore> {
        &self.stores[0]
    }

    /// Every shard's store, indexed by shard number.
    pub fn stores(&self) -> &[Arc<VisualStore>] {
        &self.stores
    }

    /// Number of spatial shards the platform is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.stores.len()
    }

    /// The configuration this platform was constructed with.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The user registry.
    pub fn users(&self) -> &UserRegistry {
        &self.users
    }

    /// The model registry.
    pub fn models(&self) -> &ModelRegistry {
        &self.models
    }

    /// Registers a participant.
    pub fn register_user(&self, name: impl Into<String>, role: Role) -> UserId {
        self.users.register(name, role)
    }

    /// Registers a classification scheme (a labelling task).
    pub fn register_scheme(
        &self,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, PlatformError> {
        self.store_register_scheme(name.into(), labels)
    }

    fn require_user(&self, user: UserId) -> Result<(), PlatformError> {
        if self.users.exists(user) {
            Ok(())
        } else {
            Err(PlatformError::UnknownUser(user))
        }
    }

    /// **Acquisition**: uploads an image; features (color histogram and
    /// CNN embedding) are extracted and every index is updated.
    pub fn ingest(
        &self,
        user: UserId,
        image: Image,
        request: IngestRequest,
    ) -> Result<ImageId, PlatformError> {
        self.require_user(user)?;
        let meta = ImageMeta {
            uploader: user,
            gps: request.gps,
            fov: request.fov,
            captured_at: request.captured_at,
            uploaded_at: request.uploaded_at,
            keywords: request.keywords,
        };
        let shard = self.router.shard(&meta.gps);
        let color = self.color.extract(&image);
        let cnn = self.cnn.extract(&image);
        let id = self.store_add_image(shard, meta, ImageOrigin::Original, Some(image))?;
        self.store_put_feature(shard, id, FeatureKind::ColorHistogram, color)?;
        self.store_put_feature(shard, id, FeatureKind::Cnn, cnn)?;
        self.engine.index_image(shard, id);
        Ok(id)
    }

    /// **Acquisition**: idempotent upload for at-least-once transports.
    /// `key` is the client's idempotency key for this upload attempt; a
    /// retry carrying the same key (e.g. after a lost acknowledgement)
    /// returns the originally stored image with `replayed = true`
    /// instead of storing a duplicate. The image row, both feature
    /// vectors, and the dedup marker are recorded atomically — on
    /// durable platforms as one composite WAL record, so an upload that
    /// was acked once is ingested exactly once even across crashes.
    pub fn ingest_idempotent(
        &self,
        user: UserId,
        image: Image,
        request: IngestRequest,
        key: &str,
    ) -> Result<(ImageId, bool), PlatformError> {
        self.require_user(user)?;
        // Scope the marker per uploader so two clients' self-chosen
        // keys can never collide.
        let marker = format!("u{}:{key}", user.0);
        // Cheap pre-check skips feature extraction on an obvious
        // replay; the owning shard re-checks under its write lock. A
        // retry carries the same GPS, so the router sends it to the
        // shard that already holds the marker.
        if let Some(existing) = self.find_marker(&marker) {
            return Ok((existing, true));
        }
        let meta = ImageMeta {
            uploader: user,
            gps: request.gps,
            fov: request.fov,
            captured_at: request.captured_at,
            uploaded_at: request.uploaded_at,
            keywords: request.keywords,
        };
        let shard = self.router.shard(&meta.gps);
        let features = vec![
            (FeatureKind::ColorHistogram, self.color.extract(&image)),
            (FeatureKind::Cnn, self.cnn.extract(&image)),
        ];
        let fresh = self.alloc_image_id();
        let (id, replayed) = match self.durables.get(shard) {
            Some(d) => d.ingest_upload_at(
                &marker,
                fresh,
                meta,
                ImageOrigin::Original,
                Some(image),
                features,
            )?,
            None => self.stores[shard].ingest_upload_at(
                &marker,
                fresh,
                meta,
                ImageOrigin::Original,
                Some(image),
                &features,
            )?,
        };
        if !replayed {
            self.engine.index_image(shard, id);
        }
        Ok((id, replayed))
    }

    /// **Acquisition**: bulk upload with parallel feature extraction
    /// and per-shard fan-out.
    ///
    /// Feature extraction dominates ingest cost; this path fans the
    /// extraction of a batch out over `threads` workers on a
    /// [`tvdp_kernel::Pool`], allocates ids serially in input order,
    /// then groups the rows by owning shard and applies each shard's
    /// group on its own worker — shards share no locks, so storage and
    /// index updates proceed concurrently across shards. Ids are
    /// returned in input order, and both the extracted features and
    /// the stored rows are bit-identical to sequential ingest.
    pub fn ingest_batch(
        &self,
        user: UserId,
        batch: Vec<(Image, IngestRequest)>,
        threads: usize,
    ) -> Result<Vec<ImageId>, PlatformError> {
        self.require_user(user)?;
        let pool = Pool::new(threads);
        // Phase 1: parallel extraction.
        let extracted: Vec<(Vec<f32>, Vec<f32>)> = pool.map(&batch, |_, (image, _)| {
            (self.color.extract(image), self.cnn.extract(image))
        });
        // Phase 2: serial id allocation + shard routing, in input order.
        type Row = (ImageId, ImageMeta, Image, Vec<f32>, Vec<f32>);
        let mut groups: Vec<Vec<Row>> = (0..self.stores.len()).map(|_| Vec::new()).collect();
        let mut ids = Vec::with_capacity(batch.len());
        for ((image, request), (color, cnn)) in batch.into_iter().zip(extracted) {
            let meta = ImageMeta {
                uploader: user,
                gps: request.gps,
                fov: request.fov,
                captured_at: request.captured_at,
                uploaded_at: request.uploaded_at,
                keywords: request.keywords,
            };
            let shard = self.router.shard(&meta.gps);
            let id = self.alloc_image_id();
            groups[shard].push((id, meta, image, color, cnn));
            ids.push(id);
        }
        // Phase 3: per-shard apply. Workers own disjoint shards, so
        // the rows are moved out through a mutex each worker locks
        // exactly once. On a durable platform each shard's rows are
        // group-committed: the whole group journals as one framed
        // write + one fsync ([`tvdp_storage::DurableStore::apply_batch`])
        // instead of one fsync per op, which is what makes bulk ingest
        // sustain city-scale rates with durability on.
        let groups: Vec<Mutex<Vec<Row>>> = groups.into_iter().map(Mutex::new).collect();
        let outcomes: Vec<Result<(), PlatformError>> = pool.map(&groups, |shard, group| {
            let rows = std::mem::take(&mut *group.lock());
            match self.durables.get(shard) {
                Some(d) => {
                    let mut ops = Vec::with_capacity(rows.len() * 3);
                    let mut indexed = Vec::with_capacity(rows.len());
                    for (id, meta, image, color, cnn) in rows {
                        ops.push(WalOp::AddImage {
                            id,
                            meta,
                            origin: ImageOrigin::Original,
                            pixels: Some((image.width(), image.height(), image.raw().to_vec())),
                        });
                        ops.push(WalOp::PutFeature {
                            image: id,
                            kind: FeatureKind::ColorHistogram,
                            vector: color,
                        });
                        ops.push(WalOp::PutFeature {
                            image: id,
                            kind: FeatureKind::Cnn,
                            vector: cnn,
                        });
                        indexed.push(id);
                    }
                    d.apply_batch(ops)?;
                    for id in indexed {
                        self.engine.index_image(shard, id);
                    }
                }
                None => {
                    for (id, meta, image, color, cnn) in rows {
                        self.store_add_image_at(
                            shard,
                            id,
                            meta,
                            ImageOrigin::Original,
                            Some(image),
                        )?;
                        self.store_put_feature(shard, id, FeatureKind::ColorHistogram, color)?;
                        self.store_put_feature(shard, id, FeatureKind::Cnn, cnn)?;
                        self.engine.index_image(shard, id);
                    }
                }
            }
            Ok(())
        });
        for outcome in outcomes {
            outcome?;
        }
        Ok(ids)
    }

    /// **Acquisition**: bulk idempotent upload — [`Tvdp::ingest_batch`]
    /// for at-least-once transports. Every element carries its own
    /// idempotency key (see [`Tvdp::ingest_idempotent`]); replays are
    /// answered from the existing rows, fresh uploads are extracted in
    /// parallel and group-committed per shard, with each upload's row,
    /// features, and dedup marker journaled as one composite record —
    /// a whole shard group rides a single fsync. Outcomes are returned
    /// in input order as `(id, replayed)`.
    pub fn ingest_idempotent_batch(
        &self,
        user: UserId,
        batch: Vec<(Image, IngestRequest, String)>,
        threads: usize,
    ) -> Result<Vec<(ImageId, bool)>, PlatformError> {
        self.require_user(user)?;
        let pool = Pool::new(threads);
        // Phase 1: parallel extraction. Replays still extract here —
        // wasted work on the rare retry, but the common path stays
        // branch-free and the outcome is unaffected.
        let extracted: Vec<(Vec<f32>, Vec<f32>)> = pool.map(&batch, |_, (image, _, _)| {
            (self.color.extract(image), self.cnn.extract(image))
        });
        // Phase 2: serial dedup + id allocation + shard routing, in
        // input order. A key seen earlier in this same batch dedups
        // against the earlier element, exactly as two sequential
        // ingest_idempotent calls would.
        type Row = (String, ImageId, ImageMeta, Image, Vec<f32>, Vec<f32>);
        let mut groups: Vec<Vec<Row>> = (0..self.stores.len()).map(|_| Vec::new()).collect();
        let mut outcomes: Vec<(ImageId, bool)> = Vec::with_capacity(batch.len());
        let mut batch_markers: std::collections::BTreeMap<String, ImageId> =
            std::collections::BTreeMap::new();
        for ((image, request, key), (color, cnn)) in batch.into_iter().zip(extracted) {
            let marker = format!("u{}:{key}", user.0);
            if let Some(&prior) = batch_markers.get(&marker) {
                outcomes.push((prior, true));
                continue;
            }
            if let Some(existing) = self.find_marker(&marker) {
                outcomes.push((existing, true));
                continue;
            }
            let meta = ImageMeta {
                uploader: user,
                gps: request.gps,
                fov: request.fov,
                captured_at: request.captured_at,
                uploaded_at: request.uploaded_at,
                keywords: request.keywords,
            };
            let shard = self.router.shard(&meta.gps);
            let id = self.alloc_image_id();
            batch_markers.insert(marker.clone(), id);
            groups[shard].push((marker, id, meta, image, color, cnn));
            outcomes.push((id, false));
        }
        // Phase 3: per-shard group commit of composite upload records.
        let groups: Vec<Mutex<Vec<Row>>> = groups.into_iter().map(Mutex::new).collect();
        let applied: Vec<Result<(), PlatformError>> = pool.map(&groups, |shard, group| {
            let rows = std::mem::take(&mut *group.lock());
            match self.durables.get(shard) {
                Some(d) => {
                    let mut ops = Vec::with_capacity(rows.len());
                    let mut indexed = Vec::with_capacity(rows.len());
                    for (marker, id, meta, image, color, cnn) in rows {
                        ops.push(WalOp::IngestUpload {
                            marker,
                            id,
                            meta,
                            origin: ImageOrigin::Original,
                            pixels: Some((image.width(), image.height(), image.raw().to_vec())),
                            features: vec![
                                (FeatureKind::ColorHistogram, color),
                                (FeatureKind::Cnn, cnn),
                            ],
                        });
                        indexed.push(id);
                    }
                    d.apply_batch(ops)?;
                    for id in indexed {
                        self.engine.index_image(shard, id);
                    }
                }
                None => {
                    for (marker, id, meta, image, color, cnn) in rows {
                        self.stores[shard].ingest_upload_at(
                            &marker,
                            id,
                            meta,
                            ImageOrigin::Original,
                            Some(image),
                            &[
                                (FeatureKind::ColorHistogram, color),
                                (FeatureKind::Cnn, cnn),
                            ],
                        )?;
                        self.engine.index_image(shard, id);
                    }
                }
            }
            Ok(())
        });
        for outcome in applied {
            outcome?;
        }
        Ok(outcomes)
    }

    /// **Acquisition**: uploads an image with near-duplicate detection
    /// (the paper's challenge 2: "visual data is huge in size and many
    /// times redundant"). When a stored image is visually within
    /// `max_feature_dist` (CNN feature distance) *and* spatially within
    /// `max_camera_distance_m`, the upload is rejected as a duplicate and
    /// the existing row is returned instead.
    pub fn ingest_dedup(
        &self,
        user: UserId,
        image: Image,
        request: IngestRequest,
        max_feature_dist: f32,
        max_camera_distance_m: f64,
    ) -> Result<IngestOutcome, PlatformError> {
        self.require_user(user)?;
        let cnn = self.cnn.extract(&image);
        // Compare in squared-distance space: candidate enumeration and the
        // threshold check never take a square root; only the reported
        // distance of an actual duplicate does.
        let candidates = self
            .engine
            .visual_within_sq(&cnn, max_feature_dist * max_feature_dist);
        for &(d_sq, image_id) in &candidates {
            let Some(existing) = self.image_record(image_id) else {
                continue;
            };
            if existing.meta.gps.fast_distance_m(&request.gps) <= max_camera_distance_m {
                return Ok(IngestOutcome::Duplicate {
                    existing: image_id,
                    feature_distance: d_sq.sqrt(),
                });
            }
        }
        Ok(IngestOutcome::Stored(self.ingest(user, image, request)?))
    }

    /// **Acquisition**: ingests a video as a key-frame sequence (paper
    /// Section IV-B: "a video is represented by a sequence of key frames
    /// … each one is tagged with various descriptors"). Frames dropped by
    /// `policy` never hit storage.
    pub fn ingest_video(
        &self,
        user: UserId,
        frames: &[crate::video::VideoFrame],
        policy: crate::video::KeyframePolicy,
        keywords: Vec<String>,
    ) -> Result<crate::video::VideoIngestReport, PlatformError> {
        self.require_user(user)?;
        let kept = crate::video::select_keyframes(frames, policy);
        let mut keyframes = Vec::with_capacity(kept.len());
        for &i in &kept {
            let frame = &frames[i];
            let id = self.ingest(
                user,
                frame.image.clone(),
                IngestRequest {
                    gps: frame.fov.camera,
                    fov: Some(frame.fov),
                    captured_at: frame.captured_at,
                    uploaded_at: frame.captured_at + 1,
                    keywords: keywords.clone(),
                },
            )?;
            keyframes.push(id);
        }
        Ok(crate::video::VideoIngestReport {
            frames_offered: frames.len(),
            frames_dropped: frames.len() - keyframes.len(),
            keyframes,
        })
    }

    /// **Acquisition**: synthesizes an augmented variant of a stored
    /// image, recording lineage and extracting fresh features.
    pub fn augment(
        &self,
        user: UserId,
        parent: ImageId,
        op: Augmentation,
    ) -> Result<ImageId, PlatformError> {
        self.require_user(user)?;
        // The child inherits the parent's metadata (same GPS), so it
        // lands on the parent's shard, where the lineage check can see
        // the parent row.
        let shard = self
            .shard_of(parent)
            .ok_or(PlatformError::UnknownImage(parent))?;
        let record = self.stores[shard]
            .image(parent)
            .ok_or(PlatformError::UnknownImage(parent))?;
        let pixels = self.stores[shard]
            .pixels(parent)
            .ok_or(PlatformError::MissingPixels(parent))?;
        let augmented = op.apply(&pixels);
        let color = self.color.extract(&augmented);
        let cnn = self.cnn.extract(&augmented);
        let id = self.store_add_image(
            shard,
            record.meta.clone(),
            ImageOrigin::Augmented {
                parent,
                op: op.tag(),
            },
            Some(augmented),
        )?;
        self.store_put_feature(shard, id, FeatureKind::ColorHistogram, color)?;
        self.store_put_feature(shard, id, FeatureKind::Cnn, cnn)?;
        self.engine.index_image(shard, id);
        Ok(id)
    }

    /// **Acquisition**: runs a spatial-crowdsourcing campaign. For each
    /// captured FOV, `capture` synthesizes the photo a worker would take
    /// (pixels, keywords, capture time); everything is ingested under
    /// `user` and the resulting image ids returned.
    pub fn acquire_via_campaign(
        &self,
        user: UserId,
        campaign: &Campaign,
        sim: &SimulationConfig,
        mut capture: impl FnMut(&Fov) -> (Image, Vec<String>, i64),
    ) -> Result<(tvdp_crowd::CampaignReport, Vec<ImageId>), PlatformError> {
        self.require_user(user)?;
        let (report, fovs) = simulate_campaign(campaign, sim);
        let mut ids = Vec::with_capacity(fovs.len());
        for fov in &fovs {
            let (image, keywords, captured_at) = capture(fov);
            let id = self.ingest(
                user,
                image,
                IngestRequest {
                    gps: fov.camera,
                    fov: Some(*fov),
                    captured_at,
                    uploaded_at: captured_at + 60,
                    keywords,
                },
            )?;
            ids.push(id);
        }
        Ok((report, ids))
    }

    /// **Access**: executes a query, scattering it across the shards'
    /// published index generations and gathering a deterministic
    /// merge. Reads never block on ingest. Malformed queries (e.g. a
    /// visual example of the wrong dimension) surface as
    /// [`PlatformError::Query`] instead of panicking.
    pub fn search(&self, query: &Query) -> Result<Vec<QueryResult>, PlatformError> {
        Ok(self.engine.try_execute(query)?)
    }

    /// **Access**: executes independent queries concurrently on the global
    /// worker pool. Results are in query order and identical to calling
    /// [`Tvdp::search`] per query.
    pub fn search_batch(&self, queries: &[Query]) -> Result<Vec<Vec<QueryResult>>, PlatformError> {
        Ok(self
            .engine
            .try_execute_batch_with_pool(queries, Pool::global())?)
    }

    /// **Access**: [`Tvdp::search`] under a virtual-clock deadline. The
    /// engine charges a modeled clock at scatter/gather and
    /// segment-scan boundaries and aborts with
    /// [`tvdp_query::QueryError::DeadlineExceeded`] (surfaced as
    /// [`PlatformError::Query`]) instead of burning pool time once the
    /// clock passes `deadline_ms`. The trip decision is deterministic
    /// across pool widths.
    pub fn search_with_deadline(
        &self,
        query: &Query,
        now_ms: i64,
        deadline_ms: i64,
    ) -> Result<Vec<QueryResult>, PlatformError> {
        Ok(self
            .engine
            .try_execute_with_deadline(query, Pool::global(), now_ms, deadline_ms)?)
    }

    /// Prices `query` in admission work units from the planner's
    /// cardinality statistics over the current published index
    /// generations. Read-only and deterministic; the admission
    /// controller charges this against its capacity budget before the
    /// query runs.
    pub fn estimate_query_cost(&self, query: &Query) -> u64 {
        self.engine.estimate_query_units(query)
    }

    /// Aggregated platform health: the worst durable shard state (an
    /// in-memory platform is always `Ok`), total injected/observed
    /// write faults, and the first recorded error. Drives the API
    /// health endpoint and the degraded-mode behavior of callers.
    pub fn health(&self) -> HealthReport {
        let mut report = HealthReport {
            state: HealthState::Ok,
            write_faults: 0,
            last_error: None,
            durable: self.is_durable(),
            shards: self.shard_count(),
        };
        for durable in &self.durables {
            let h = durable.health();
            report.state = report.state.max(h.state);
            report.write_faults += h.write_faults;
            if report.last_error.is_none() {
                report.last_error = h.last_error;
            }
        }
        report
    }

    /// Installs (or, with `None`, removes) a shared write-fault plan on
    /// every durable shard's WAL — chaos instrumentation for exercising
    /// the degraded-mode state machine against live traffic. Durable
    /// platforms only.
    pub fn set_write_fault_plan(
        &self,
        plan: Option<std::sync::Arc<tvdp_storage::WriteFaultPlan>>,
    ) -> Result<(), PlatformError> {
        if self.durables.is_empty() {
            return Err(PlatformError::NotDurable);
        }
        for durable in &self.durables {
            durable.set_write_fault_plan(plan.clone());
        }
        Ok(())
    }

    /// Extracts the platform's feature families from an image *without*
    /// storing it (the "get visual features" API: edge devices and
    /// collaborators compute-on-upload).
    pub fn extract_features(&self, image: &Image) -> Vec<(FeatureKind, Vec<f32>)> {
        vec![
            (FeatureKind::ColorHistogram, self.color.extract(image)),
            (FeatureKind::Cnn, self.cnn.extract(image)),
        ]
    }

    /// Records a human annotation (confidence 1.0).
    pub fn annotate_human(
        &self,
        user: UserId,
        image: ImageId,
        scheme: ClassificationId,
        label: usize,
    ) -> Result<AnnotationId, PlatformError> {
        self.require_user(user)?;
        self.store_annotate(
            image,
            scheme,
            label,
            1.0,
            AnnotationSource::Human(user),
            None,
        )
    }

    /// Records a human annotation on a sub-region of the image (the
    /// part-of-image labels of the paper's annotation descriptor: "a
    /// label … associated with a boundary surrounding a visual part of
    /// the image"). The region must lie within the stored image bounds.
    pub fn annotate_human_region(
        &self,
        user: UserId,
        image: ImageId,
        scheme: ClassificationId,
        label: usize,
        region: tvdp_storage::RegionOfInterest,
    ) -> Result<AnnotationId, PlatformError> {
        self.require_user(user)?;
        let record = self
            .image_record(image)
            .ok_or(PlatformError::UnknownImage(image))?;
        if record.width > 0
            && (region.x + region.width > record.width || region.y + region.height > record.height)
        {
            return Err(PlatformError::Storage(
                tvdp_storage::StorageError::UnknownImage(image),
            ));
        }
        self.store_annotate(
            image,
            scheme,
            label,
            1.0,
            AnnotationSource::Human(user),
            Some(region),
        )
    }

    /// **Analysis**: trains a classifier on every stored image that has
    /// both a feature of `feature_kind` and a (sufficiently confident)
    /// annotation under `scheme`, then registers it.
    pub fn train_model(
        &self,
        user: UserId,
        name: impl Into<String>,
        scheme: ClassificationId,
        feature_kind: FeatureKind,
        algorithm: Algorithm,
    ) -> Result<ModelId, PlatformError> {
        self.require_user(user)?;
        let scheme_row = self.stores[0]
            .scheme(scheme)
            .ok_or(PlatformError::UnknownScheme(scheme))?;
        let n_classes = scheme_row.labels.len();
        // Gather candidates from every shard, then sort by global id so
        // the training set order — and with it every seeded algorithm's
        // output — is independent of the shard count.
        let mut candidates: Vec<(ImageId, usize)> = Vec::new();
        for (shard, store) in self.stores.iter().enumerate() {
            for image in store.images_with_feature(feature_kind) {
                candidates.push((image, shard));
            }
        }
        candidates.sort_unstable_by_key(|&(image, _)| image);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (image, shard) in candidates {
            let store = &self.stores[shard];
            let anns = store.annotations_of(image);
            // Prefer human labels; fall back to the most confident
            // machine label for the scheme.
            let best = anns
                .iter()
                .filter(|a| a.classification == scheme)
                .max_by(|a, b| {
                    (a.is_human() as u8)
                        .cmp(&(b.is_human() as u8))
                        .then(a.confidence.total_cmp(&b.confidence))
                });
            if let Some(ann) = best {
                let Some(feature) = store.feature(image, feature_kind) else {
                    continue;
                };
                features.push(feature);
                labels.push(ann.label);
            }
        }
        if features.len() < self.config.min_training_samples {
            return Err(PlatformError::NotEnoughTrainingData {
                scheme,
                found: features.len(),
                needed: self.config.min_training_samples,
            });
        }
        let input_dim = features[0].len();
        let mut classifier = algorithm.build(self.config.seed);
        classifier.fit(&features, &labels, n_classes);
        let id = self.models.register_portable(
            name,
            user,
            ModelInterface {
                feature_kind,
                input_dim,
                scheme,
            },
            classifier,
        );
        Ok(id)
    }

    /// Registers an externally trained portable model under `user` (the
    /// upload half of the paper's model-sharing APIs). The declared
    /// scheme must exist.
    pub fn upload_model(
        &self,
        user: UserId,
        name: impl Into<String>,
        interface: ModelInterface,
        model: SerializableModel,
    ) -> Result<ModelId, PlatformError> {
        self.require_user(user)?;
        if self.stores[0].scheme(interface.scheme).is_none() {
            return Err(PlatformError::UnknownScheme(interface.scheme));
        }
        Ok(self.models.register_portable(name, user, interface, model))
    }

    /// **Analysis → translational write-back**: applies a registered
    /// model to images, storing each prediction as a machine annotation.
    /// Returns `(image, label, confidence)` per processed image; images
    /// lacking the required feature are reported as errors.
    pub fn apply_model(
        &self,
        model: ModelId,
        images: &[ImageId],
    ) -> Result<Vec<(ImageId, usize, f32)>, PlatformError> {
        let interface = self
            .models
            .interface(model)
            .ok_or(PlatformError::UnknownModel(model))?;
        let mut out = Vec::with_capacity(images.len());
        for &image in images {
            // Borrow the feature row from the owning shard's arena; no
            // per-image clone.
            let feature = self
                .stores
                .iter()
                .find_map(|s| s.feature_ref(image, interface.feature_kind))
                .ok_or(PlatformError::MissingFeature(image, interface.feature_kind))?;
            let (label, confidence) = self
                .models
                .predict(model, &feature)
                .ok_or(PlatformError::UnknownModel(model))?;
            self.store_annotate(
                image,
                interface.scheme,
                label,
                confidence,
                AnnotationSource::Machine(model),
                None,
            )?;
            out.push((image, label, confidence));
        }
        Ok(out)
    }

    /// **Action**: chooses the zoo model to deploy on a device.
    pub fn dispatch_to_device(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
    ) -> Option<ModelSpec> {
        // MODEL_ZOO is non-empty, so construction cannot fail; an empty
        // zoo simply yields no dispatch rather than an error here.
        ModelDispatcher::new(MODEL_ZOO.to_vec())
            .ok()?
            .dispatch(device, constraints)
    }

    /// **Action**: chooses what to deploy given observed link health —
    /// the graceful-degradation path. Falls back to a smaller zoo model
    /// when the preferred one cannot download within the link budget,
    /// and to server-side inference when the device's breaker is open
    /// or its bandwidth has collapsed.
    pub fn dispatch_to_device_degraded(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
        link: &LinkConditions,
    ) -> DispatchDecision {
        match ModelDispatcher::new(MODEL_ZOO.to_vec()) {
            Ok(d) => d.dispatch_degraded(device, constraints, link),
            Err(_) => DispatchDecision::ServerSide {
                reason: tvdp_edge::DegradeReason::NoQualifyingModel,
            },
        }
    }

    /// Aggregate statistics, summed across shards.
    pub fn stats(&self) -> PlatformStats {
        PlatformStats {
            images: self.stores.iter().map(|s| s.len()).sum(),
            annotations: self.stores.iter().map(|s| s.annotation_count()).sum(),
            models: self.models.ids().len(),
            users: self.users.all().len(),
            quant_code_bytes: self.stores.iter().map(|s| s.quant_code_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::GeoPoint;

    fn fast_config() -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            min_training_samples: 6,
            ..Default::default()
        }
    }

    fn scene(class: usize, seed: usize) -> Image {
        // Two visually distinct synthetic classes.
        Image::from_fn(24, 24, |x, y| {
            let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
            if class == 0 {
                [200, v, v]
            } else if (x / 4 + y / 4) % 2 == 0 {
                [v, v, 220]
            } else {
                [20, 20, 40]
            }
        })
    }

    fn request(i: i64) -> IngestRequest {
        IngestRequest {
            gps: GeoPoint::new(34.0 + i as f64 * 1e-4, -118.25),
            fov: None,
            captured_at: 1000 + i,
            uploaded_at: 1100 + i,
            keywords: vec!["street".into()],
        }
    }

    #[test]
    fn ingest_extracts_features_and_indexes() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("LASAN", Role::Government);
        let id = tvdp.ingest(user, scene(0, 0), request(0)).unwrap();
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        assert!(tvdp
            .store()
            .feature(id, FeatureKind::ColorHistogram)
            .is_some());
        let hits = tvdp
            .search(&Query::Textual {
                text: "street".into(),
                mode: tvdp_query::TextualMode::All,
            })
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(tvdp.stats().images, 1);
    }

    #[test]
    fn unknown_user_rejected() {
        let tvdp = Tvdp::new(fast_config());
        let err = tvdp.ingest(UserId(7), scene(0, 0), request(0)).unwrap_err();
        assert!(matches!(err, PlatformError::UnknownUser(_)));
    }

    #[test]
    fn train_and_apply_model_end_to_end() {
        let tvdp = Tvdp::new(fast_config());
        let gov = tvdp.register_user("LASAN", Role::Government);
        let researcher = tvdp.register_user("USC", Role::Researcher);
        let scheme = tvdp
            .register_scheme("binary", vec!["red".into(), "blue".into()])
            .unwrap();
        // Labelled training uploads.
        for i in 0..16 {
            let class = i % 2;
            let id = tvdp
                .ingest(gov, scene(class, i), request(i as i64))
                .unwrap();
            tvdp.annotate_human(gov, id, scheme, class).unwrap();
        }
        let model = tvdp
            .train_model(
                researcher,
                "red-vs-blue",
                scheme,
                FeatureKind::Cnn,
                Algorithm::Svm,
            )
            .unwrap();
        // New unlabeled uploads get machine annotations.
        let new0 = tvdp.ingest(gov, scene(0, 99), request(99)).unwrap();
        let new1 = tvdp.ingest(gov, scene(1, 98), request(98)).unwrap();
        let results = tvdp.apply_model(model, &[new0, new1]).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1, 0, "red scene misclassified");
        assert_eq!(results[1].1, 1, "blue scene misclassified");
        // Write-back happened: annotations are queryable.
        let anns = tvdp.store().annotations_of(new0);
        assert_eq!(anns.len(), 1);
        assert!(!anns[0].is_human());
    }

    #[test]
    fn training_requires_enough_data() {
        let tvdp = Tvdp::new(fast_config());
        let gov = tvdp.register_user("LASAN", Role::Government);
        let scheme = tvdp
            .register_scheme("s", vec!["a".into(), "b".into()])
            .unwrap();
        let id = tvdp.ingest(gov, scene(0, 0), request(0)).unwrap();
        tvdp.annotate_human(gov, id, scheme, 0).unwrap();
        let err = tvdp
            .train_model(gov, "m", scheme, FeatureKind::Cnn, Algorithm::NaiveBayes)
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::NotEnoughTrainingData { found: 1, .. }
        ));
    }

    #[test]
    fn augment_records_lineage_and_is_searchable() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let parent = tvdp.ingest(user, scene(0, 1), request(1)).unwrap();
        let child = tvdp
            .augment(user, parent, Augmentation::FlipHorizontal)
            .unwrap();
        assert_eq!(tvdp.store().augmented_children(parent), vec![child]);
        let rec = tvdp.store().image(child).unwrap();
        assert!(rec.is_augmented());
        assert!(tvdp.store().feature(child, FeatureKind::Cnn).is_some());
    }

    #[test]
    fn dedup_rejects_near_duplicates() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let first = tvdp.ingest(user, scene(0, 1), request(1)).unwrap();
        // Same pixels, same place: duplicate.
        let outcome = tvdp
            .ingest_dedup(user, scene(0, 1), request(1), 0.05, 50.0)
            .unwrap();
        assert_eq!(
            outcome,
            IngestOutcome::Duplicate {
                existing: first,
                feature_distance: 0.0
            }
        );
        assert_eq!(tvdp.stats().images, 1);
        // Same pixels far away: stored.
        let mut far = request(2);
        far.gps = GeoPoint::new(34.2, -118.25);
        let outcome = tvdp
            .ingest_dedup(user, scene(0, 1), far, 0.05, 50.0)
            .unwrap();
        assert!(matches!(outcome, IngestOutcome::Stored(_)));
        // Different pixels nearby: stored.
        let outcome = tvdp
            .ingest_dedup(user, scene(1, 9), request(1), 0.05, 50.0)
            .unwrap();
        assert!(matches!(outcome, IngestOutcome::Stored(_)));
        assert_eq!(tvdp.stats().images, 3);
    }

    #[test]
    fn dedup_threshold_matches_brute_force_distance() {
        // Regression test for the squared-distance dedup path: the
        // duplicate decision must be exactly `distance <= max_feature_dist`
        // where distance is the plain scalar Euclidean feature distance —
        // ranking on d² must not move the threshold boundary.
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let first_img = scene(0, 1);
        let first = tvdp.ingest(user, first_img.clone(), request(1)).unwrap();
        let stored = tvdp.store().feature(first, FeatureKind::Cnn).unwrap();

        let probe = scene(0, 3);
        let probe_feature = tvdp
            .extract_features(&probe)
            .into_iter()
            .find(|(k, _)| *k == FeatureKind::Cnn)
            .unwrap()
            .1;
        let brute_force: f32 = stored
            .iter()
            .zip(&probe_feature)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(brute_force > 0.0, "probe must differ from the stored image");

        // Thresholds straddling the true distance flip the outcome.
        let above = brute_force * 1.01;
        let below = brute_force * 0.99;
        match tvdp
            .ingest_dedup(user, probe.clone(), request(1), above, 50.0)
            .unwrap()
        {
            IngestOutcome::Duplicate {
                existing,
                feature_distance,
            } => {
                assert_eq!(existing, first);
                assert!(
                    (feature_distance - brute_force).abs() <= 1e-5 * brute_force.max(1.0),
                    "reported {feature_distance} vs brute-force {brute_force}"
                );
            }
            other => panic!("expected duplicate at threshold {above}, got {other:?}"),
        }
        assert!(matches!(
            tvdp.ingest_dedup(user, probe, request(1), below, 50.0)
                .unwrap(),
            IngestOutcome::Stored(_)
        ));
    }

    #[test]
    fn video_ingest_keeps_only_keyframes() {
        use crate::video::{KeyframePolicy, VideoFrame};
        use tvdp_geo::Fov;

        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::Government);
        let base = GeoPoint::new(34.0, -118.25);
        // 12 frames: truck parked for 8, then driving for 4.
        let frames: Vec<VideoFrame> = (0..12)
            .map(|i| {
                let moved = if i < 8 { 0.0 } else { (i - 7) as f64 * 40.0 };
                VideoFrame {
                    image: scene(0, i),
                    fov: Fov::new(base.destination(90.0, moved), 90.0, 60.0, 80.0),
                    captured_at: 100 + i as i64,
                }
            })
            .collect();
        let report = tvdp
            .ingest_video(
                user,
                &frames,
                KeyframePolicy::SpatialNovelty {
                    min_move_m: 20.0,
                    min_turn_deg: 45.0,
                },
                vec!["route-7".into()],
            )
            .unwrap();
        assert_eq!(report.frames_offered, 12);
        assert_eq!(report.keyframes.len(), 5, "1 parked + 4 moving");
        assert_eq!(report.frames_dropped, 7);
        assert_eq!(tvdp.stats().images, 5);
        // Every key frame carries its own FOV and is searchable.
        for &id in &report.keyframes {
            assert!(tvdp.store().image(id).unwrap().meta.fov.is_some());
        }
        let hits = tvdp
            .search(&Query::Textual {
                text: "route 7".into(),
                mode: tvdp_query::TextualMode::All,
            })
            .unwrap();
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn dispatch_respects_device_tier() {
        let tvdp = Tvdp::new(fast_config());
        let pick = tvdp
            .dispatch_to_device(
                &tvdp_edge::DeviceClass::Desktop.profile(),
                &DispatchConstraints::default(),
            )
            .unwrap();
        assert_eq!(pick.name, "InceptionV3");
    }

    #[test]
    fn degraded_dispatch_reaches_the_platform_facade() {
        let tvdp = Tvdp::new(fast_config());
        let device = tvdp_edge::DeviceClass::Desktop.profile();
        let healthy = tvdp.dispatch_to_device_degraded(
            &device,
            &DispatchConstraints::default(),
            &LinkConditions::nominal(),
        );
        assert_eq!(
            healthy.deployed().map(|m| m.name),
            Some("InceptionV3"),
            "nominal link deploys the preferred model"
        );
        let broken = tvdp.dispatch_to_device_degraded(
            &device,
            &DispatchConstraints::default(),
            &LinkConditions {
                breaker_open: true,
                ..LinkConditions::nominal()
            },
        );
        assert!(matches!(broken, DispatchDecision::ServerSide { .. }));
    }

    #[test]
    fn ingest_idempotent_dedups_retries() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("LASAN", Role::Government);
        let (id, replayed) = tvdp
            .ingest_idempotent(user, scene(0, 0), request(0), "cam7-frame3")
            .unwrap();
        assert!(!replayed);
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        // The lost-ack retry is acknowledged without a second row.
        let (again, replayed) = tvdp
            .ingest_idempotent(user, scene(0, 0), request(0), "cam7-frame3")
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(tvdp.stats().images, 1);
        // The same key from a different user is a different upload.
        let other = tvdp.register_user("USC", Role::Researcher);
        let (theirs, replayed) = tvdp
            .ingest_idempotent(other, scene(1, 1), request(1), "cam7-frame3")
            .unwrap();
        assert!(!replayed);
        assert_ne!(theirs, id);
        // The first ingest was indexed exactly once.
        let hits = tvdp
            .search(&Query::Textual {
                text: "street".into(),
                mode: tvdp_query::TextualMode::All,
            })
            .unwrap();
        assert_eq!(hits.len(), 2);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use tvdp_geo::GeoPoint;

    fn cfg() -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            ..Default::default()
        }
    }

    fn img(i: usize) -> Image {
        Image::from_fn(20, 20, |x, y| [(x * i) as u8, (y + i) as u8, 7])
    }

    fn req(i: i64) -> IngestRequest {
        IngestRequest {
            gps: GeoPoint::new(34.0 + i as f64 * 1e-4, -118.25),
            fov: None,
            captured_at: i,
            uploaded_at: i + 1,
            keywords: vec![format!("kw{i}")],
        }
    }

    #[test]
    fn batch_matches_sequential_ingest() {
        let seq = Tvdp::new(cfg());
        let par = Tvdp::new(cfg());
        let user_s = seq.register_user("u", Role::Government);
        let user_p = par.register_user("u", Role::Government);
        let batch: Vec<(Image, IngestRequest)> = (0..17).map(|i| (img(i), req(i as i64))).collect();
        let seq_ids: Vec<ImageId> = batch
            .iter()
            .map(|(im, rq)| seq.ingest(user_s, im.clone(), rq.clone()).unwrap())
            .collect();
        let par_ids = par.ingest_batch(user_p, batch, 4).unwrap();
        assert_eq!(seq_ids, par_ids, "ids in input order");
        for (&a, &b) in seq_ids.iter().zip(&par_ids) {
            assert_eq!(
                seq.store().feature(a, FeatureKind::Cnn),
                par.store().feature(b, FeatureKind::Cnn),
                "parallel extraction must be bit-identical"
            );
            assert_eq!(seq.store().image(a), par.store().image(b));
        }
        // Index sees everything.
        let hits = par
            .search(&Query::Textual {
                text: "kw3".into(),
                mode: tvdp_query::TextualMode::All,
            })
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn search_batch_matches_per_query_search() {
        let tvdp = Tvdp::new(cfg());
        let user = tvdp.register_user("u", Role::Government);
        let batch: Vec<(Image, IngestRequest)> = (0..12).map(|i| (img(i), req(i as i64))).collect();
        tvdp.ingest_batch(user, batch, 4).unwrap();
        let queries: Vec<Query> = (0..12)
            .map(|i| Query::Textual {
                text: format!("kw{i}"),
                mode: tvdp_query::TextualMode::All,
            })
            .collect();
        let batched = tvdp.search_batch(&queries).unwrap();
        assert_eq!(batched.len(), queries.len());
        for (q, results) in queries.iter().zip(&batched) {
            assert_eq!(&tvdp.search(q).unwrap(), results, "diverged on {q:?}");
        }
    }

    #[test]
    fn batch_handles_empty_and_single() {
        let tvdp = Tvdp::new(cfg());
        let user = tvdp.register_user("u", Role::Government);
        assert!(tvdp.ingest_batch(user, vec![], 4).unwrap().is_empty());
        let one = tvdp.ingest_batch(user, vec![(img(1), req(1))], 8).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn batch_rejects_unknown_user() {
        let tvdp = Tvdp::new(cfg());
        let err = tvdp
            .ingest_batch(UserId(9), vec![(img(1), req(1))], 2)
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnknownUser(_)));
    }
}

#[cfg(test)]
mod region_annotation_tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_storage::RegionOfInterest;

    #[test]
    fn region_annotations_validate_bounds() {
        let tvdp = Tvdp::new(PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4],
                pool_grid: 2,
                seed: 1,
            },
            ..Default::default()
        });
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let scheme = tvdp
            .register_scheme("parts", vec!["tent".into(), "bag".into()])
            .unwrap();
        let img = Image::from_fn(32, 24, |_, _| [50, 50, 50]);
        let id = tvdp
            .ingest(
                user,
                img,
                IngestRequest {
                    gps: GeoPoint::new(34.0, -118.25),
                    fov: None,
                    captured_at: 0,
                    uploaded_at: 1,
                    keywords: vec![],
                },
            )
            .unwrap();
        // In-bounds region works.
        let ann = tvdp
            .annotate_human_region(
                user,
                id,
                scheme,
                0,
                RegionOfInterest {
                    x: 4,
                    y: 4,
                    width: 10,
                    height: 10,
                },
            )
            .unwrap();
        let rows = tvdp.store().annotations_of(id);
        assert_eq!(rows[0].id, ann);
        assert_eq!(rows[0].region.unwrap().width, 10);
        // Out-of-bounds region rejected.
        let err = tvdp.annotate_human_region(
            user,
            id,
            scheme,
            0,
            RegionOfInterest {
                x: 30,
                y: 0,
                width: 10,
                height: 5,
            },
        );
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod durability_tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_query::TextualMode;

    fn fast_config() -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            min_training_samples: 6,
            ..Default::default()
        }
    }

    fn scene(class: usize, seed: usize) -> Image {
        Image::from_fn(24, 24, |x, y| {
            let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
            if class == 0 {
                [200, v, v]
            } else {
                [v, v, 220]
            }
        })
    }

    fn request(i: i64) -> IngestRequest {
        IngestRequest {
            gps: GeoPoint::new(34.0 + i as f64 * 1e-4, -118.25),
            fov: None,
            captured_at: 1000 + i,
            uploaded_at: 1100 + i,
            keywords: vec!["street".into()],
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-platform-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn durable_platform_survives_reopen() {
        let dir = temp_dir("reopen");
        let (id, scheme, ann);
        {
            let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
            assert!(tvdp.is_durable());
            assert!(!report.snapshot_found);
            let user = tvdp.register_user("LASAN", Role::Government);
            scheme = tvdp
                .register_scheme("binary", vec!["red".into(), "blue".into()])
                .unwrap();
            id = tvdp.ingest(user, scene(0, 0), request(0)).unwrap();
            ann = tvdp.annotate_human(user, id, scheme, 0).unwrap();
            // No flush: everything below must come back from the WAL alone.
        }
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        // scheme + image + two features + annotation
        assert_eq!(report.replayed_ops, 5);
        assert_eq!(tvdp.stats().images, 1);
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        assert_eq!(tvdp.store().annotations_of(id)[0].id, ann);
        assert_eq!(tvdp.store().scheme(scheme).unwrap().labels.len(), 2);
        // The query engine was rebuilt over the recovered rows.
        let hits = tvdp
            .search(&Query::Textual {
                text: "street".into(),
                mode: TextualMode::All,
            })
            .unwrap();
        assert_eq!(hits.len(), 1);
        // Ids keep advancing from where the journal left off.
        let user = tvdp.register_user("LASAN", Role::Government);
        let next = tvdp.ingest(user, scene(1, 1), request(1)).unwrap();
        assert!(next.0 > id.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_compacts_the_journal() {
        let dir = temp_dir("flush");
        {
            let (tvdp, _) = Tvdp::open(&dir, fast_config()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            tvdp.ingest(user, scene(0, 0), request(0)).unwrap();
            let report = tvdp.flush().unwrap();
            assert!(report.ops_compacted >= 3);
            assert!(report.wal_bytes_before > 0);
        }
        // After compaction the state comes back from the snapshot, not a replay.
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        assert!(report.snapshot_found);
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(tvdp.stats().images, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_platform_rejects_flush() {
        let tvdp = Tvdp::new(fast_config());
        assert!(!tvdp.is_durable());
        assert!(matches!(tvdp.flush(), Err(PlatformError::NotDurable)));
    }

    #[test]
    fn sharded_durable_platform_survives_reopen() {
        let dir = temp_dir("sharded-reopen");
        let config = PlatformConfig {
            shards: 3,
            ..fast_config()
        };
        let mut ids = Vec::new();
        {
            let (tvdp, _) = Tvdp::open(&dir, config.clone()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            let scheme = tvdp
                .register_scheme("binary", vec!["red".into(), "blue".into()])
                .unwrap();
            // Spread uploads across the city so several shards own rows.
            for i in 0..9 {
                let mut rq = request(i);
                rq.gps = GeoPoint::new(34.0 + 0.03 * i as f64, -118.25 - 0.02 * i as f64);
                let id = tvdp.ingest(user, scene(0, i as usize), rq).unwrap();
                tvdp.annotate_human(user, id, scheme, 0).unwrap();
                ids.push(id);
            }
            assert!(dir.join("shard-0").exists());
            // No flush: everything must come back from per-shard WALs.
        }
        let (tvdp, report) = Tvdp::open(&dir, config).unwrap();
        // 3x scheme broadcast + 9 x (image + 2 features + annotation).
        assert_eq!(report.replayed_ops, 3 + 9 * 4);
        assert_eq!(tvdp.stats().images, 9);
        for &id in &ids {
            assert!(tvdp.shard_of(id).is_some());
        }
        let hits = tvdp
            .search(&Query::Textual {
                text: "street".into(),
                mode: TextualMode::All,
            })
            .unwrap();
        assert_eq!(hits.len(), 9);
        // Ids keep advancing past everything in any shard's journal.
        let user = tvdp.register_user("LASAN", Role::Government);
        let next = tvdp.ingest(user, scene(1, 1), request(1)).unwrap();
        assert!(next.0 > ids.iter().map(|i| i.0).max().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_idempotent_dedups_across_crash_recovery() {
        let dir = temp_dir("idem");
        let id;
        {
            let (tvdp, _) = Tvdp::open(&dir, fast_config()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            let (stored, replayed) = tvdp
                .ingest_idempotent(user, scene(0, 0), request(0), "edge4-s9")
                .unwrap();
            assert!(!replayed);
            id = stored;
            // No flush: the upload must come back from the composite
            // WAL record alone.
        }
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        // One composite record covers image + features + marker.
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(tvdp.stats().images, 1);
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        // The client's retry after the crash still deduplicates.
        let user = tvdp.register_user("LASAN", Role::Government);
        let (again, replayed) = tvdp
            .ingest_idempotent(user, scene(0, 0), request(0), "edge4-s9")
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(tvdp.stats().images, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_ingest_group_commits_and_survives_reopen() {
        let dir = temp_dir("batch-reopen");
        let config = PlatformConfig {
            shards: 3,
            ..fast_config()
        };
        let ids;
        let live;
        {
            let (tvdp, _) = Tvdp::open(&dir, config.clone()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            let batch: Vec<(Image, IngestRequest)> = (0..9)
                .map(|i| {
                    let mut rq = request(i);
                    rq.gps = GeoPoint::new(34.0 + 0.03 * i as f64, -118.25 - 0.02 * i as f64);
                    (scene(0, i as usize), rq)
                })
                .collect();
            ids = tvdp.ingest_batch(user, batch, 4).unwrap();
            live = tvdp
                .stores()
                .iter()
                .map(|s| s.snapshot())
                .collect::<Vec<_>>();
            // No flush: the batch must come back from the group-committed
            // WAL frames alone.
        }
        let (tvdp, report) = Tvdp::open(&dir, config).unwrap();
        // 9 x (image + 2 features), journaled as one frame run per shard.
        assert_eq!(report.replayed_ops, 27);
        assert_eq!(tvdp.stats().images, 9);
        for (shard, snap) in live.iter().enumerate() {
            assert_eq!(tvdp.stores()[shard].snapshot(), *snap, "shard {shard}");
        }
        for &id in &ids {
            assert!(tvdp.shard_of(id).is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_ingest_journals_identical_bytes_at_any_thread_count() {
        let batch = |n: i64| -> Vec<(Image, IngestRequest)> {
            (0..n)
                .map(|i| {
                    let mut rq = request(i);
                    rq.gps = GeoPoint::new(34.0 + 0.03 * i as f64, -118.25 - 0.02 * i as f64);
                    (scene(0, i as usize), rq)
                })
                .collect()
        };
        let config = PlatformConfig {
            shards: 3,
            ..fast_config()
        };
        let dir1 = temp_dir("batch-threads-1");
        let dir4 = temp_dir("batch-threads-4");
        for (dir, threads) in [(&dir1, 1usize), (&dir4, 4usize)] {
            let (tvdp, _) = Tvdp::open(dir, config.clone()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            tvdp.ingest_batch(user, batch(9), threads).unwrap();
        }
        for shard in 0..3 {
            let wal = format!("shard-{shard}/wal-0.log");
            assert_eq!(
                std::fs::read(dir1.join(&wal)).unwrap(),
                std::fs::read(dir4.join(&wal)).unwrap(),
                "{wal} diverged across thread counts"
            );
        }
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir4).ok();
    }

    #[test]
    fn flush_snapshot_bytes_are_pool_width_invariant() {
        let config = PlatformConfig {
            shards: 2,
            ..fast_config()
        };
        let dir_s = temp_dir("flush-serial");
        let dir_p = temp_dir("flush-pool");
        for (dir, threads) in [(&dir_s, 1usize), (&dir_p, 4usize)] {
            let (tvdp, _) = Tvdp::open(dir, config.clone()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            for i in 0..6 {
                let mut rq = request(i);
                rq.gps = GeoPoint::new(34.0 + 0.05 * i as f64, -118.25);
                tvdp.ingest(user, scene(0, i as usize), rq).unwrap();
            }
            let report = tvdp.flush_with_pool(&Pool::new(threads)).unwrap();
            assert_eq!(report.tiers_merged, 2, "one L0 tier per shard");
        }
        for shard in 0..2 {
            let snap = format!("shard-{shard}/snapshot.json");
            assert_eq!(
                std::fs::read(dir_s.join(&snap)).unwrap(),
                std::fs::read(dir_p.join(&snap)).unwrap(),
                "{snap} diverged across pool widths"
            );
        }
        std::fs::remove_dir_all(&dir_s).ok();
        std::fs::remove_dir_all(&dir_p).ok();
    }

    #[test]
    fn idempotent_batch_dedups_in_batch_and_across_reopen() {
        let dir = temp_dir("idem-batch");
        let first;
        {
            let (tvdp, _) = Tvdp::open(&dir, fast_config()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            let batch = vec![
                (scene(0, 0), request(0), "s0".to_string()),
                (scene(0, 1), request(1), "s1".to_string()),
                // A retry of s0 inside the same batch dedups against
                // the first element, not a new row.
                (scene(0, 0), request(0), "s0".to_string()),
            ];
            let outcomes = tvdp.ingest_idempotent_batch(user, batch, 2).unwrap();
            assert_eq!(outcomes.len(), 3);
            assert!(!outcomes[0].1 && !outcomes[1].1);
            assert!(outcomes[2].1, "in-batch duplicate key must replay");
            assert_eq!(outcomes[2].0, outcomes[0].0);
            assert_eq!(tvdp.stats().images, 2);
            first = outcomes[0].0;
        }
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        // Two composite records, each carrying row + features + marker.
        assert_eq!(report.replayed_ops, 2);
        assert_eq!(tvdp.stats().images, 2);
        // A whole-batch retry after the crash replays everything.
        let user = tvdp.register_user("LASAN", Role::Government);
        let retry = vec![
            (scene(0, 0), request(0), "s0".to_string()),
            (scene(0, 1), request(1), "s1".to_string()),
        ];
        let outcomes = tvdp.ingest_idempotent_batch(user, retry, 2).unwrap();
        assert!(outcomes.iter().all(|&(_, replayed)| replayed));
        assert_eq!(outcomes[0].0, first);
        assert_eq!(tvdp.stats().images, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_query::{SpatialQuery, TemporalField, TextualMode, VisualMode};

    fn cfg(shards: usize) -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            shards,
            ..Default::default()
        }
    }

    fn img(i: usize) -> Image {
        Image::from_fn(20, 20, |x, y| [(x * i) as u8, (y + 2 * i) as u8, 31])
    }

    fn req(i: i64) -> IngestRequest {
        IngestRequest {
            // Spread far enough that uploads land in many grid cells.
            gps: GeoPoint::new(34.0 + 0.025 * i as f64, -118.25 - 0.015 * i as f64),
            fov: None,
            captured_at: 1000 + i,
            uploaded_at: 1100 + i,
            keywords: vec!["street".into(), format!("kw{i}")],
        }
    }

    /// One platform per shard count, identically populated.
    fn populated(shards: usize) -> Tvdp {
        populated_with(cfg(shards))
    }

    fn populated_with(config: PlatformConfig) -> Tvdp {
        let tvdp = Tvdp::new(config);
        let user = tvdp.register_user("LASAN", Role::Government);
        let scheme = tvdp
            .register_scheme("binary", vec!["red".into(), "blue".into()])
            .unwrap();
        for i in 0..24 {
            let id = tvdp.ingest(user, img(i), req(i as i64)).unwrap();
            tvdp.annotate_human(user, id, scheme, i % 2).unwrap();
        }
        tvdp
    }

    #[test]
    fn shard_counts_agree_on_every_query_family() {
        let single = populated(1);
        let sharded = populated(4);
        assert_eq!(single.stats().images, 24);
        assert_eq!(sharded.stats().images, 24);
        assert!(sharded.shard_count() == 4);
        // Rows actually spread over shards.
        let occupied = sharded.stores().iter().filter(|s| s.len() > 0).count();
        assert!(occupied > 1, "routing sent everything to one shard");

        let example = single
            .store()
            .feature(ImageId(0), FeatureKind::Cnn)
            .unwrap();
        let queries = vec![
            Query::Textual {
                text: "street".into(),
                mode: TextualMode::All,
            },
            Query::Textual {
                text: "street kw3 kw17".into(),
                mode: TextualMode::Ranked(7),
            },
            Query::Temporal {
                field: TemporalField::Captured,
                from: 1003,
                to: 1015,
            },
            Query::Spatial(SpatialQuery::Nearest {
                point: GeoPoint::new(34.2, -118.4),
                k: 5,
            }),
            Query::Visual {
                example: example.clone(),
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(6),
            },
            Query::Categorical {
                scheme: ClassificationId(0),
                label: 1,
                min_confidence: 0.5,
            },
            Query::And(vec![
                Query::Spatial(SpatialQuery::Range(tvdp_geo::BBox::new(
                    33.9, -118.6, 34.4, -118.2,
                ))),
                Query::Visual {
                    example,
                    kind: FeatureKind::Cnn,
                    mode: VisualMode::TopK(4),
                },
            ]),
        ];
        for q in &queries {
            let a = single.search(q).unwrap();
            let b = sharded.search(q).unwrap();
            assert_eq!(a, b, "shard counts diverged on {q:?}");
        }
        let a = single.search_batch(&queries).unwrap();
        let b = sharded.search_batch(&queries).unwrap();
        assert_eq!(a, b, "batched execution diverged across shard counts");
    }

    #[test]
    fn seal_cap_choices_agree_on_every_query_family() {
        // The seal cap only moves the sealed-segment/tail-scan balance
        // inside each shard; results must be bit-identical whether every
        // row seals immediately (cap 1), pairs seal (cap 2), or nothing
        // seals in a 24-row run (default cap 128).
        let reference = populated_with(cfg(4));
        assert_eq!(reference.config().seal_cap, tvdp_query::DEFAULT_SEAL_CAP);
        let example = reference
            .stores()
            .iter()
            .find_map(|s| s.feature(ImageId(0), FeatureKind::Cnn))
            .unwrap();
        let queries = vec![
            Query::Textual {
                text: "street".into(),
                mode: TextualMode::Ranked(9),
            },
            Query::Temporal {
                field: TemporalField::Uploaded,
                from: 1104,
                to: 1118,
            },
            Query::Spatial(SpatialQuery::Nearest {
                point: GeoPoint::new(34.2, -118.4),
                k: 5,
            }),
            Query::Visual {
                example: example.clone(),
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(6),
            },
            Query::Categorical {
                scheme: ClassificationId(0),
                label: 0,
                min_confidence: 0.5,
            },
            Query::And(vec![
                Query::Temporal {
                    field: TemporalField::Captured,
                    from: 1000,
                    to: 1020,
                },
                Query::Visual {
                    example,
                    kind: FeatureKind::Cnn,
                    mode: VisualMode::TopK(4),
                },
            ]),
        ];
        // seal_cap: 0 is invalid input; construction clamps it to 1
        // rather than panicking deep inside the query layer.
        for cap in [0usize, 1, 2] {
            let tvdp = populated_with(PlatformConfig {
                seal_cap: cap,
                ..cfg(4)
            });
            assert_eq!(tvdp.stats().images, 24);
            for q in &queries {
                assert_eq!(
                    reference.search(q).unwrap(),
                    tvdp.search(q).unwrap(),
                    "seal_cap {cap} diverged from the default cap on {q:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_batch_ingest_matches_sequential() {
        let seq = populated(4);
        let par = Tvdp::new(cfg(4));
        let user = par.register_user("LASAN", Role::Government);
        let scheme = par
            .register_scheme("binary", vec!["red".into(), "blue".into()])
            .unwrap();
        let batch: Vec<(Image, IngestRequest)> = (0..24).map(|i| (img(i), req(i as i64))).collect();
        let ids = par.ingest_batch(user, batch, 4).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            par.annotate_human(user, id, scheme, i % 2).unwrap();
        }
        // Same ids in input order, same rows on the same shards.
        assert_eq!(ids, (0..24).map(ImageId).collect::<Vec<_>>());
        for &id in &ids {
            assert_eq!(seq.shard_of(id), par.shard_of(id));
            let shard = par.shard_of(id).unwrap();
            assert_eq!(
                seq.stores()[shard].feature(id, FeatureKind::Cnn),
                par.stores()[shard].feature(id, FeatureKind::Cnn),
            );
        }
        let q = Query::Textual {
            text: "street".into(),
            mode: TextualMode::Ranked(10),
        };
        assert_eq!(seq.search(&q).unwrap(), par.search(&q).unwrap());
    }

    #[test]
    fn search_surfaces_kind_mismatch_instead_of_panicking() {
        let tvdp = populated(2);
        let err = tvdp
            .search(&Query::Visual {
                example: vec![0.5; 4],
                kind: FeatureKind::ColorHistogram,
                mode: VisualMode::TopK(3),
            })
            .unwrap_err();
        assert!(matches!(err, PlatformError::Query(_)), "got {err:?}");
        let err = tvdp
            .search_batch(&[Query::And(vec![Query::Visual {
                example: vec![0.5; 4],
                kind: FeatureKind::ColorHistogram,
                mode: VisualMode::Threshold(0.1),
            }])])
            .unwrap_err();
        assert!(matches!(err, PlatformError::Query(_)), "got {err:?}");
    }

    #[test]
    fn idempotent_uploads_route_to_the_marker_owner() {
        let tvdp = Tvdp::new(cfg(4));
        let user = tvdp.register_user("LASAN", Role::Government);
        let (id, replayed) = tvdp
            .ingest_idempotent(user, img(3), req(3), "cam1-f1")
            .unwrap();
        assert!(!replayed);
        let (again, replayed) = tvdp
            .ingest_idempotent(user, img(3), req(3), "cam1-f1")
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(tvdp.stats().images, 1);
    }
}
