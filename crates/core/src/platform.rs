//! The platform facade.

use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use tvdp_crowd::{simulate_campaign, Campaign, SimulationConfig};
use tvdp_edge::{
    DeviceProfile, DispatchConstraints, DispatchDecision, LinkConditions, ModelDispatcher,
    ModelSpec, MODEL_ZOO,
};
use tvdp_geo::Fov;
use tvdp_kernel::Pool;
use tvdp_ml::mlp::MlpParams;
use tvdp_ml::{
    Classifier, DecisionTree, GaussianNb, KnnClassifier, LinearSvm, LogisticRegression, Mlp,
    RandomForest, ScaledClassifier, SerializableModel,
};
use tvdp_query::engine::EngineConfig;
use tvdp_query::{Query, QueryEngine, QueryResult};
use tvdp_storage::{
    AnnotationId, AnnotationSource, ClassificationId, CompactionReport, DurableStore, ImageId,
    ImageMeta, ImageOrigin, ModelId, RecoveryReport, RegionOfInterest, UserId, VisualStore,
};
use tvdp_vision::{
    Augmentation, CnnConfig, CnnExtractor, ColorHistogramExtractor, FeatureExtractor, FeatureKind,
    Image,
};

use crate::error::PlatformError;
use crate::models::{ModelInterface, ModelRegistry};
use crate::users::{Role, UserRegistry};

/// Training algorithms a participant can pick when devising a model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// k-nearest neighbours with the given `k`.
    Knn(usize),
    /// CART decision tree.
    DecisionTree,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Random forest with the given tree count.
    RandomForest(usize),
    /// Linear SVM (the paper's best performer).
    Svm,
    /// Multinomial logistic regression.
    LogisticRegression,
    /// Single-hidden-layer MLP.
    Mlp,
}

impl Algorithm {
    fn build(self, seed: u64) -> SerializableModel {
        // Scale-sensitive algorithms train behind a standardization
        // pipeline fitted on the training split; every variant is
        // portable (downloadable through the API).
        match self {
            Algorithm::Knn(k) => {
                SerializableModel::Knn(ScaledClassifier::new(KnnClassifier::new(k).weighted()))
            }
            Algorithm::DecisionTree => SerializableModel::DecisionTree(DecisionTree::new()),
            Algorithm::NaiveBayes => SerializableModel::NaiveBayes(GaussianNb::new()),
            Algorithm::RandomForest(n) => {
                SerializableModel::RandomForest(RandomForest::new(n, seed))
            }
            Algorithm::Svm => SerializableModel::Svm(ScaledClassifier::new(LinearSvm::new())),
            Algorithm::LogisticRegression => SerializableModel::LogisticRegression(
                ScaledClassifier::new(LogisticRegression::new()),
            ),
            Algorithm::Mlp => {
                SerializableModel::Mlp(ScaledClassifier::new(Mlp::with_params(MlpParams {
                    hidden: 96,
                    epochs: 80,
                    seed,
                    ..Default::default()
                })))
            }
        }
    }
}

/// Platform construction options.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Query-engine options (visual index feature family etc.).
    pub engine: EngineConfig,
    /// CNN extractor architecture.
    pub cnn: CnnConfig,
    /// Minimum labelled samples before a model may be trained.
    pub min_training_samples: usize,
    /// Seed for stochastic training algorithms.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            cnn: CnnConfig::default(),
            min_training_samples: 10,
            seed: 0x7D_1D,
        }
    }
}

/// Outcome of a deduplicating upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestOutcome {
    /// The image was new and stored under this id.
    Stored(ImageId),
    /// A near-duplicate already existed; nothing was stored.
    Duplicate {
        /// The previously stored near-duplicate.
        existing: ImageId,
        /// Feature distance to it.
        feature_distance: f32,
    },
}

/// Upload-time metadata for [`Tvdp::ingest`].
#[derive(Debug, Clone)]
pub struct IngestRequest {
    /// Camera GPS position.
    pub gps: tvdp_geo::GeoPoint,
    /// FOV descriptor when direction sensors were available.
    pub fov: Option<Fov>,
    /// Capture timestamp, Unix seconds.
    pub captured_at: i64,
    /// Upload timestamp, Unix seconds.
    pub uploaded_at: i64,
    /// Uploader-supplied keywords.
    pub keywords: Vec<String>,
}

/// Aggregate platform statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Stored images.
    pub images: usize,
    /// Stored annotations.
    pub annotations: usize,
    /// Registered models.
    pub models: usize,
    /// Registered users.
    pub users: usize,
}

/// The Translational Visual Data Platform.
pub struct Tvdp {
    config: PlatformConfig,
    store: Arc<VisualStore>,
    durable: Option<DurableStore>,
    engine: RwLock<QueryEngine>,
    users: UserRegistry,
    models: ModelRegistry,
    color: ColorHistogramExtractor,
    cnn: CnnExtractor,
}

impl Tvdp {
    /// Creates an empty in-memory platform (no persistence).
    pub fn new(config: PlatformConfig) -> Self {
        Self::with_store(Arc::new(VisualStore::new()), config)
    }

    /// Wraps an existing store (e.g. one reloaded from disk), rebuilding
    /// every index over its current contents. Users and models are
    /// runtime state and start empty.
    pub fn with_store(store: Arc<VisualStore>, config: PlatformConfig) -> Self {
        let engine = QueryEngine::build(Arc::clone(&store), config.engine.clone());
        let cnn = CnnExtractor::with_config(config.cnn.clone());
        Self {
            config,
            store,
            durable: None,
            engine: RwLock::new(engine),
            users: UserRegistry::new(),
            models: ModelRegistry::new(),
            color: ColorHistogramExtractor::paper_default(),
            cnn,
        }
    }

    /// Opens (or creates) a crash-safe platform persisted under `dir`.
    ///
    /// Recovery replays the snapshot plus the write-ahead log, so every
    /// mutation that returned `Ok` before a crash is visible again; the
    /// returned [`RecoveryReport`] says what was replayed or repaired.
    /// All subsequent mutations are journaled to disk before they are
    /// applied. Users and models are runtime state and start empty.
    pub fn open(
        dir: &Path,
        config: PlatformConfig,
    ) -> Result<(Self, RecoveryReport), PlatformError> {
        let (durable, report) = DurableStore::open(dir)?;
        let store = durable.store_arc();
        let mut platform = Self::with_store(store, config);
        platform.durable = Some(durable);
        Ok((platform, report))
    }

    /// Whether mutations are journaled to disk ([`Tvdp::open`]) rather
    /// than held only in memory ([`Tvdp::new`]).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Folds the journal into a fresh snapshot and rotates the
    /// write-ahead log (durable platforms only). Call periodically to
    /// bound the log and keep reopen cost proportional to store size,
    /// not mutation history.
    pub fn flush(&self) -> Result<CompactionReport, PlatformError> {
        match &self.durable {
            Some(d) => Ok(d.compact()?),
            None => Err(PlatformError::NotDurable),
        }
    }

    // Mutation dispatch: a durable platform journals each write before
    // applying it; an in-memory platform hits the store directly.

    fn store_add_image(
        &self,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, PlatformError> {
        match &self.durable {
            Some(d) => Ok(d.add_image(meta, origin, pixels)?),
            None => Ok(self.store.add_image(meta, origin, pixels)?),
        }
    }

    fn store_put_feature(
        &self,
        image: ImageId,
        kind: FeatureKind,
        vector: Vec<f32>,
    ) -> Result<(), PlatformError> {
        match &self.durable {
            Some(d) => Ok(d.put_feature(image, kind, vector)?),
            None => Ok(self.store.put_feature(image, kind, vector)?),
        }
    }

    fn store_register_scheme(
        &self,
        name: String,
        labels: Vec<String>,
    ) -> Result<ClassificationId, PlatformError> {
        match &self.durable {
            Some(d) => Ok(d.register_scheme(name, labels)?),
            None => Ok(self.store.register_scheme(name, labels)?),
        }
    }

    fn store_annotate(
        &self,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, PlatformError> {
        match &self.durable {
            Some(d) => Ok(d.annotate(image, classification, label, confidence, source, region)?),
            None => {
                Ok(self
                    .store
                    .annotate(image, classification, label, confidence, source, region)?)
            }
        }
    }

    /// The underlying store (read access for analysis pipelines).
    pub fn store(&self) -> &Arc<VisualStore> {
        &self.store
    }

    /// The user registry.
    pub fn users(&self) -> &UserRegistry {
        &self.users
    }

    /// The model registry.
    pub fn models(&self) -> &ModelRegistry {
        &self.models
    }

    /// Registers a participant.
    pub fn register_user(&self, name: impl Into<String>, role: Role) -> UserId {
        self.users.register(name, role)
    }

    /// Registers a classification scheme (a labelling task).
    pub fn register_scheme(
        &self,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, PlatformError> {
        self.store_register_scheme(name.into(), labels)
    }

    fn require_user(&self, user: UserId) -> Result<(), PlatformError> {
        if self.users.exists(user) {
            Ok(())
        } else {
            Err(PlatformError::UnknownUser(user))
        }
    }

    /// **Acquisition**: uploads an image; features (color histogram and
    /// CNN embedding) are extracted and every index is updated.
    pub fn ingest(
        &self,
        user: UserId,
        image: Image,
        request: IngestRequest,
    ) -> Result<ImageId, PlatformError> {
        self.require_user(user)?;
        let meta = ImageMeta {
            uploader: user,
            gps: request.gps,
            fov: request.fov,
            captured_at: request.captured_at,
            uploaded_at: request.uploaded_at,
            keywords: request.keywords,
        };
        let color = self.color.extract(&image);
        let cnn = self.cnn.extract(&image);
        let id = self.store_add_image(meta, ImageOrigin::Original, Some(image))?;
        self.store_put_feature(id, FeatureKind::ColorHistogram, color)?;
        self.store_put_feature(id, FeatureKind::Cnn, cnn)?;
        self.engine.write().index_image(id);
        Ok(id)
    }

    /// **Acquisition**: idempotent upload for at-least-once transports.
    /// `key` is the client's idempotency key for this upload attempt; a
    /// retry carrying the same key (e.g. after a lost acknowledgement)
    /// returns the originally stored image with `replayed = true`
    /// instead of storing a duplicate. The image row, both feature
    /// vectors, and the dedup marker are recorded atomically — on
    /// durable platforms as one composite WAL record, so an upload that
    /// was acked once is ingested exactly once even across crashes.
    pub fn ingest_idempotent(
        &self,
        user: UserId,
        image: Image,
        request: IngestRequest,
        key: &str,
    ) -> Result<(ImageId, bool), PlatformError> {
        self.require_user(user)?;
        // Scope the marker per uploader so two clients' self-chosen
        // keys can never collide.
        let marker = format!("u{}:{key}", user.0);
        // Cheap pre-check skips feature extraction on an obvious
        // replay; the store re-checks under its write lock.
        if let Some(existing) = self.store.upload_marker(&marker) {
            return Ok((existing, true));
        }
        let meta = ImageMeta {
            uploader: user,
            gps: request.gps,
            fov: request.fov,
            captured_at: request.captured_at,
            uploaded_at: request.uploaded_at,
            keywords: request.keywords,
        };
        let features = vec![
            (FeatureKind::ColorHistogram, self.color.extract(&image)),
            (FeatureKind::Cnn, self.cnn.extract(&image)),
        ];
        let (id, replayed) = match &self.durable {
            Some(d) => {
                d.ingest_upload(&marker, meta, ImageOrigin::Original, Some(image), features)?
            }
            None => self.store.ingest_upload(
                &marker,
                meta,
                ImageOrigin::Original,
                Some(image),
                &features,
            )?,
        };
        if !replayed {
            self.engine.write().index_image(id);
        }
        Ok((id, replayed))
    }

    /// **Acquisition**: bulk upload with parallel feature extraction.
    ///
    /// Feature extraction dominates ingest cost; this path fans the
    /// extraction of a batch out over `threads` workers on a
    /// [`tvdp_kernel::Pool`], then applies storage and index updates
    /// serially in input order. Ids are returned in input order, and the
    /// extracted features are bit-identical to sequential ingest.
    pub fn ingest_batch(
        &self,
        user: UserId,
        batch: Vec<(Image, IngestRequest)>,
        threads: usize,
    ) -> Result<Vec<ImageId>, PlatformError> {
        self.require_user(user)?;
        // Phase 1: parallel extraction.
        let extracted: Vec<(Vec<f32>, Vec<f32>)> = Pool::new(threads)
            .map(&batch, |_, (image, _)| {
                (self.color.extract(image), self.cnn.extract(image))
            });
        // Phase 2: serial storage + indexing.
        let mut ids = Vec::with_capacity(batch.len());
        let mut engine = self.engine.write();
        for ((image, request), (color, cnn)) in batch.into_iter().zip(extracted) {
            let meta = ImageMeta {
                uploader: user,
                gps: request.gps,
                fov: request.fov,
                captured_at: request.captured_at,
                uploaded_at: request.uploaded_at,
                keywords: request.keywords,
            };
            let id = self.store_add_image(meta, ImageOrigin::Original, Some(image))?;
            self.store_put_feature(id, FeatureKind::ColorHistogram, color)?;
            self.store_put_feature(id, FeatureKind::Cnn, cnn)?;
            engine.index_image(id);
            ids.push(id);
        }
        Ok(ids)
    }

    /// **Acquisition**: uploads an image with near-duplicate detection
    /// (the paper's challenge 2: "visual data is huge in size and many
    /// times redundant"). When a stored image is visually within
    /// `max_feature_dist` (CNN feature distance) *and* spatially within
    /// `max_camera_distance_m`, the upload is rejected as a duplicate and
    /// the existing row is returned instead.
    pub fn ingest_dedup(
        &self,
        user: UserId,
        image: Image,
        request: IngestRequest,
        max_feature_dist: f32,
        max_camera_distance_m: f64,
    ) -> Result<IngestOutcome, PlatformError> {
        self.require_user(user)?;
        let cnn = self.cnn.extract(&image);
        // Compare in squared-distance space: candidate enumeration and the
        // threshold check never take a square root; only the reported
        // distance of an actual duplicate does.
        let candidates = self
            .engine
            .read()
            .visual_within_sq(&cnn, max_feature_dist * max_feature_dist);
        for &(d_sq, image_id) in &candidates {
            let Some(existing) = self.store.image(image_id) else {
                continue;
            };
            if existing.meta.gps.fast_distance_m(&request.gps) <= max_camera_distance_m {
                return Ok(IngestOutcome::Duplicate {
                    existing: image_id,
                    feature_distance: d_sq.sqrt(),
                });
            }
        }
        Ok(IngestOutcome::Stored(self.ingest(user, image, request)?))
    }

    /// **Acquisition**: ingests a video as a key-frame sequence (paper
    /// Section IV-B: "a video is represented by a sequence of key frames
    /// … each one is tagged with various descriptors"). Frames dropped by
    /// `policy` never hit storage.
    pub fn ingest_video(
        &self,
        user: UserId,
        frames: &[crate::video::VideoFrame],
        policy: crate::video::KeyframePolicy,
        keywords: Vec<String>,
    ) -> Result<crate::video::VideoIngestReport, PlatformError> {
        self.require_user(user)?;
        let kept = crate::video::select_keyframes(frames, policy);
        let mut keyframes = Vec::with_capacity(kept.len());
        for &i in &kept {
            let frame = &frames[i];
            let id = self.ingest(
                user,
                frame.image.clone(),
                IngestRequest {
                    gps: frame.fov.camera,
                    fov: Some(frame.fov),
                    captured_at: frame.captured_at,
                    uploaded_at: frame.captured_at + 1,
                    keywords: keywords.clone(),
                },
            )?;
            keyframes.push(id);
        }
        Ok(crate::video::VideoIngestReport {
            frames_offered: frames.len(),
            frames_dropped: frames.len() - keyframes.len(),
            keyframes,
        })
    }

    /// **Acquisition**: synthesizes an augmented variant of a stored
    /// image, recording lineage and extracting fresh features.
    pub fn augment(
        &self,
        user: UserId,
        parent: ImageId,
        op: Augmentation,
    ) -> Result<ImageId, PlatformError> {
        self.require_user(user)?;
        let record = self
            .store
            .image(parent)
            .ok_or(PlatformError::UnknownImage(parent))?;
        let pixels = self
            .store
            .pixels(parent)
            .ok_or(PlatformError::MissingPixels(parent))?;
        let augmented = op.apply(&pixels);
        let color = self.color.extract(&augmented);
        let cnn = self.cnn.extract(&augmented);
        let id = self.store_add_image(
            record.meta.clone(),
            ImageOrigin::Augmented {
                parent,
                op: op.tag(),
            },
            Some(augmented),
        )?;
        self.store_put_feature(id, FeatureKind::ColorHistogram, color)?;
        self.store_put_feature(id, FeatureKind::Cnn, cnn)?;
        self.engine.write().index_image(id);
        Ok(id)
    }

    /// **Acquisition**: runs a spatial-crowdsourcing campaign. For each
    /// captured FOV, `capture` synthesizes the photo a worker would take
    /// (pixels, keywords, capture time); everything is ingested under
    /// `user` and the resulting image ids returned.
    pub fn acquire_via_campaign(
        &self,
        user: UserId,
        campaign: &Campaign,
        sim: &SimulationConfig,
        mut capture: impl FnMut(&Fov) -> (Image, Vec<String>, i64),
    ) -> Result<(tvdp_crowd::CampaignReport, Vec<ImageId>), PlatformError> {
        self.require_user(user)?;
        let (report, fovs) = simulate_campaign(campaign, sim);
        let mut ids = Vec::with_capacity(fovs.len());
        for fov in &fovs {
            let (image, keywords, captured_at) = capture(fov);
            let id = self.ingest(
                user,
                image,
                IngestRequest {
                    gps: fov.camera,
                    fov: Some(*fov),
                    captured_at,
                    uploaded_at: captured_at + 60,
                    keywords,
                },
            )?;
            ids.push(id);
        }
        Ok((report, ids))
    }

    /// **Access**: executes a query against the indexes.
    pub fn search(&self, query: &Query) -> Vec<QueryResult> {
        self.engine.read().execute(query)
    }

    /// **Access**: executes independent queries concurrently on the global
    /// worker pool. Results are in query order and identical to calling
    /// [`Tvdp::search`] per query.
    pub fn search_batch(&self, queries: &[Query]) -> Vec<Vec<QueryResult>> {
        self.engine.read().execute_batch(queries)
    }

    /// Extracts the platform's feature families from an image *without*
    /// storing it (the "get visual features" API: edge devices and
    /// collaborators compute-on-upload).
    pub fn extract_features(&self, image: &Image) -> Vec<(FeatureKind, Vec<f32>)> {
        vec![
            (FeatureKind::ColorHistogram, self.color.extract(image)),
            (FeatureKind::Cnn, self.cnn.extract(image)),
        ]
    }

    /// Records a human annotation (confidence 1.0).
    pub fn annotate_human(
        &self,
        user: UserId,
        image: ImageId,
        scheme: ClassificationId,
        label: usize,
    ) -> Result<AnnotationId, PlatformError> {
        self.require_user(user)?;
        self.store_annotate(
            image,
            scheme,
            label,
            1.0,
            AnnotationSource::Human(user),
            None,
        )
    }

    /// Records a human annotation on a sub-region of the image (the
    /// part-of-image labels of the paper's annotation descriptor: "a
    /// label … associated with a boundary surrounding a visual part of
    /// the image"). The region must lie within the stored image bounds.
    pub fn annotate_human_region(
        &self,
        user: UserId,
        image: ImageId,
        scheme: ClassificationId,
        label: usize,
        region: tvdp_storage::RegionOfInterest,
    ) -> Result<AnnotationId, PlatformError> {
        self.require_user(user)?;
        let record = self
            .store
            .image(image)
            .ok_or(PlatformError::UnknownImage(image))?;
        if record.width > 0
            && (region.x + region.width > record.width || region.y + region.height > record.height)
        {
            return Err(PlatformError::Storage(
                tvdp_storage::StorageError::UnknownImage(image),
            ));
        }
        self.store_annotate(
            image,
            scheme,
            label,
            1.0,
            AnnotationSource::Human(user),
            Some(region),
        )
    }

    /// **Analysis**: trains a classifier on every stored image that has
    /// both a feature of `feature_kind` and a (sufficiently confident)
    /// annotation under `scheme`, then registers it.
    pub fn train_model(
        &self,
        user: UserId,
        name: impl Into<String>,
        scheme: ClassificationId,
        feature_kind: FeatureKind,
        algorithm: Algorithm,
    ) -> Result<ModelId, PlatformError> {
        self.require_user(user)?;
        let scheme_row = self
            .store
            .scheme(scheme)
            .ok_or(PlatformError::UnknownScheme(scheme))?;
        let n_classes = scheme_row.labels.len();
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for image in self.store.images_with_feature(feature_kind) {
            let anns = self.store.annotations_of(image);
            // Prefer human labels; fall back to the most confident
            // machine label for the scheme.
            let best = anns
                .iter()
                .filter(|a| a.classification == scheme)
                .max_by(|a, b| {
                    (a.is_human() as u8)
                        .cmp(&(b.is_human() as u8))
                        .then(a.confidence.total_cmp(&b.confidence))
                });
            if let Some(ann) = best {
                let Some(feature) = self.store.feature(image, feature_kind) else {
                    continue;
                };
                features.push(feature);
                labels.push(ann.label);
            }
        }
        if features.len() < self.config.min_training_samples {
            return Err(PlatformError::NotEnoughTrainingData {
                scheme,
                found: features.len(),
                needed: self.config.min_training_samples,
            });
        }
        let input_dim = features[0].len();
        let mut classifier = algorithm.build(self.config.seed);
        classifier.fit(&features, &labels, n_classes);
        let id = self.models.register_portable(
            name,
            user,
            ModelInterface {
                feature_kind,
                input_dim,
                scheme,
            },
            classifier,
        );
        Ok(id)
    }

    /// Registers an externally trained portable model under `user` (the
    /// upload half of the paper's model-sharing APIs). The declared
    /// scheme must exist.
    pub fn upload_model(
        &self,
        user: UserId,
        name: impl Into<String>,
        interface: ModelInterface,
        model: SerializableModel,
    ) -> Result<ModelId, PlatformError> {
        self.require_user(user)?;
        if self.store.scheme(interface.scheme).is_none() {
            return Err(PlatformError::UnknownScheme(interface.scheme));
        }
        Ok(self.models.register_portable(name, user, interface, model))
    }

    /// **Analysis → translational write-back**: applies a registered
    /// model to images, storing each prediction as a machine annotation.
    /// Returns `(image, label, confidence)` per processed image; images
    /// lacking the required feature are reported as errors.
    pub fn apply_model(
        &self,
        model: ModelId,
        images: &[ImageId],
    ) -> Result<Vec<(ImageId, usize, f32)>, PlatformError> {
        let interface = self
            .models
            .interface(model)
            .ok_or(PlatformError::UnknownModel(model))?;
        let mut out = Vec::with_capacity(images.len());
        for &image in images {
            // Borrow the feature row from the arena; no per-image clone.
            let feature = self
                .store
                .feature_ref(image, interface.feature_kind)
                .ok_or(PlatformError::MissingFeature(image, interface.feature_kind))?;
            let (label, confidence) = self
                .models
                .predict(model, &feature)
                .ok_or(PlatformError::UnknownModel(model))?;
            self.store_annotate(
                image,
                interface.scheme,
                label,
                confidence,
                AnnotationSource::Machine(model),
                None,
            )?;
            out.push((image, label, confidence));
        }
        Ok(out)
    }

    /// **Action**: chooses the zoo model to deploy on a device.
    pub fn dispatch_to_device(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
    ) -> Option<ModelSpec> {
        // MODEL_ZOO is non-empty, so construction cannot fail; an empty
        // zoo simply yields no dispatch rather than an error here.
        ModelDispatcher::new(MODEL_ZOO.to_vec())
            .ok()?
            .dispatch(device, constraints)
    }

    /// **Action**: chooses what to deploy given observed link health —
    /// the graceful-degradation path. Falls back to a smaller zoo model
    /// when the preferred one cannot download within the link budget,
    /// and to server-side inference when the device's breaker is open
    /// or its bandwidth has collapsed.
    pub fn dispatch_to_device_degraded(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
        link: &LinkConditions,
    ) -> DispatchDecision {
        match ModelDispatcher::new(MODEL_ZOO.to_vec()) {
            Ok(d) => d.dispatch_degraded(device, constraints, link),
            Err(_) => DispatchDecision::ServerSide {
                reason: tvdp_edge::DegradeReason::NoQualifyingModel,
            },
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> PlatformStats {
        PlatformStats {
            images: self.store.len(),
            annotations: self.store.annotation_count(),
            models: self.models.ids().len(),
            users: self.users.all().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::GeoPoint;

    fn fast_config() -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            min_training_samples: 6,
            ..Default::default()
        }
    }

    fn scene(class: usize, seed: usize) -> Image {
        // Two visually distinct synthetic classes.
        Image::from_fn(24, 24, |x, y| {
            let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
            if class == 0 {
                [200, v, v]
            } else if (x / 4 + y / 4) % 2 == 0 {
                [v, v, 220]
            } else {
                [20, 20, 40]
            }
        })
    }

    fn request(i: i64) -> IngestRequest {
        IngestRequest {
            gps: GeoPoint::new(34.0 + i as f64 * 1e-4, -118.25),
            fov: None,
            captured_at: 1000 + i,
            uploaded_at: 1100 + i,
            keywords: vec!["street".into()],
        }
    }

    #[test]
    fn ingest_extracts_features_and_indexes() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("LASAN", Role::Government);
        let id = tvdp.ingest(user, scene(0, 0), request(0)).unwrap();
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        assert!(tvdp
            .store()
            .feature(id, FeatureKind::ColorHistogram)
            .is_some());
        let hits = tvdp.search(&Query::Textual {
            text: "street".into(),
            mode: tvdp_query::TextualMode::All,
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(tvdp.stats().images, 1);
    }

    #[test]
    fn unknown_user_rejected() {
        let tvdp = Tvdp::new(fast_config());
        let err = tvdp.ingest(UserId(7), scene(0, 0), request(0)).unwrap_err();
        assert!(matches!(err, PlatformError::UnknownUser(_)));
    }

    #[test]
    fn train_and_apply_model_end_to_end() {
        let tvdp = Tvdp::new(fast_config());
        let gov = tvdp.register_user("LASAN", Role::Government);
        let researcher = tvdp.register_user("USC", Role::Researcher);
        let scheme = tvdp
            .register_scheme("binary", vec!["red".into(), "blue".into()])
            .unwrap();
        // Labelled training uploads.
        for i in 0..16 {
            let class = i % 2;
            let id = tvdp
                .ingest(gov, scene(class, i), request(i as i64))
                .unwrap();
            tvdp.annotate_human(gov, id, scheme, class).unwrap();
        }
        let model = tvdp
            .train_model(
                researcher,
                "red-vs-blue",
                scheme,
                FeatureKind::Cnn,
                Algorithm::Svm,
            )
            .unwrap();
        // New unlabeled uploads get machine annotations.
        let new0 = tvdp.ingest(gov, scene(0, 99), request(99)).unwrap();
        let new1 = tvdp.ingest(gov, scene(1, 98), request(98)).unwrap();
        let results = tvdp.apply_model(model, &[new0, new1]).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1, 0, "red scene misclassified");
        assert_eq!(results[1].1, 1, "blue scene misclassified");
        // Write-back happened: annotations are queryable.
        let anns = tvdp.store().annotations_of(new0);
        assert_eq!(anns.len(), 1);
        assert!(!anns[0].is_human());
    }

    #[test]
    fn training_requires_enough_data() {
        let tvdp = Tvdp::new(fast_config());
        let gov = tvdp.register_user("LASAN", Role::Government);
        let scheme = tvdp
            .register_scheme("s", vec!["a".into(), "b".into()])
            .unwrap();
        let id = tvdp.ingest(gov, scene(0, 0), request(0)).unwrap();
        tvdp.annotate_human(gov, id, scheme, 0).unwrap();
        let err = tvdp
            .train_model(gov, "m", scheme, FeatureKind::Cnn, Algorithm::NaiveBayes)
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::NotEnoughTrainingData { found: 1, .. }
        ));
    }

    #[test]
    fn augment_records_lineage_and_is_searchable() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let parent = tvdp.ingest(user, scene(0, 1), request(1)).unwrap();
        let child = tvdp
            .augment(user, parent, Augmentation::FlipHorizontal)
            .unwrap();
        assert_eq!(tvdp.store().augmented_children(parent), vec![child]);
        let rec = tvdp.store().image(child).unwrap();
        assert!(rec.is_augmented());
        assert!(tvdp.store().feature(child, FeatureKind::Cnn).is_some());
    }

    #[test]
    fn dedup_rejects_near_duplicates() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let first = tvdp.ingest(user, scene(0, 1), request(1)).unwrap();
        // Same pixels, same place: duplicate.
        let outcome = tvdp
            .ingest_dedup(user, scene(0, 1), request(1), 0.05, 50.0)
            .unwrap();
        assert_eq!(
            outcome,
            IngestOutcome::Duplicate {
                existing: first,
                feature_distance: 0.0
            }
        );
        assert_eq!(tvdp.stats().images, 1);
        // Same pixels far away: stored.
        let mut far = request(2);
        far.gps = GeoPoint::new(34.2, -118.25);
        let outcome = tvdp
            .ingest_dedup(user, scene(0, 1), far, 0.05, 50.0)
            .unwrap();
        assert!(matches!(outcome, IngestOutcome::Stored(_)));
        // Different pixels nearby: stored.
        let outcome = tvdp
            .ingest_dedup(user, scene(1, 9), request(1), 0.05, 50.0)
            .unwrap();
        assert!(matches!(outcome, IngestOutcome::Stored(_)));
        assert_eq!(tvdp.stats().images, 3);
    }

    #[test]
    fn dedup_threshold_matches_brute_force_distance() {
        // Regression test for the squared-distance dedup path: the
        // duplicate decision must be exactly `distance <= max_feature_dist`
        // where distance is the plain scalar Euclidean feature distance —
        // ranking on d² must not move the threshold boundary.
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let first_img = scene(0, 1);
        let first = tvdp.ingest(user, first_img.clone(), request(1)).unwrap();
        let stored = tvdp.store().feature(first, FeatureKind::Cnn).unwrap();

        let probe = scene(0, 3);
        let probe_feature = tvdp
            .extract_features(&probe)
            .into_iter()
            .find(|(k, _)| *k == FeatureKind::Cnn)
            .unwrap()
            .1;
        let brute_force: f32 = stored
            .iter()
            .zip(&probe_feature)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(brute_force > 0.0, "probe must differ from the stored image");

        // Thresholds straddling the true distance flip the outcome.
        let above = brute_force * 1.01;
        let below = brute_force * 0.99;
        match tvdp
            .ingest_dedup(user, probe.clone(), request(1), above, 50.0)
            .unwrap()
        {
            IngestOutcome::Duplicate {
                existing,
                feature_distance,
            } => {
                assert_eq!(existing, first);
                assert!(
                    (feature_distance - brute_force).abs() <= 1e-5 * brute_force.max(1.0),
                    "reported {feature_distance} vs brute-force {brute_force}"
                );
            }
            other => panic!("expected duplicate at threshold {above}, got {other:?}"),
        }
        assert!(matches!(
            tvdp.ingest_dedup(user, probe, request(1), below, 50.0)
                .unwrap(),
            IngestOutcome::Stored(_)
        ));
    }

    #[test]
    fn video_ingest_keeps_only_keyframes() {
        use crate::video::{KeyframePolicy, VideoFrame};
        use tvdp_geo::Fov;

        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("u", Role::Government);
        let base = GeoPoint::new(34.0, -118.25);
        // 12 frames: truck parked for 8, then driving for 4.
        let frames: Vec<VideoFrame> = (0..12)
            .map(|i| {
                let moved = if i < 8 { 0.0 } else { (i - 7) as f64 * 40.0 };
                VideoFrame {
                    image: scene(0, i),
                    fov: Fov::new(base.destination(90.0, moved), 90.0, 60.0, 80.0),
                    captured_at: 100 + i as i64,
                }
            })
            .collect();
        let report = tvdp
            .ingest_video(
                user,
                &frames,
                KeyframePolicy::SpatialNovelty {
                    min_move_m: 20.0,
                    min_turn_deg: 45.0,
                },
                vec!["route-7".into()],
            )
            .unwrap();
        assert_eq!(report.frames_offered, 12);
        assert_eq!(report.keyframes.len(), 5, "1 parked + 4 moving");
        assert_eq!(report.frames_dropped, 7);
        assert_eq!(tvdp.stats().images, 5);
        // Every key frame carries its own FOV and is searchable.
        for &id in &report.keyframes {
            assert!(tvdp.store().image(id).unwrap().meta.fov.is_some());
        }
        let hits = tvdp.search(&Query::Textual {
            text: "route 7".into(),
            mode: tvdp_query::TextualMode::All,
        });
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn dispatch_respects_device_tier() {
        let tvdp = Tvdp::new(fast_config());
        let pick = tvdp
            .dispatch_to_device(
                &tvdp_edge::DeviceClass::Desktop.profile(),
                &DispatchConstraints::default(),
            )
            .unwrap();
        assert_eq!(pick.name, "InceptionV3");
    }

    #[test]
    fn degraded_dispatch_reaches_the_platform_facade() {
        let tvdp = Tvdp::new(fast_config());
        let device = tvdp_edge::DeviceClass::Desktop.profile();
        let healthy = tvdp.dispatch_to_device_degraded(
            &device,
            &DispatchConstraints::default(),
            &LinkConditions::nominal(),
        );
        assert_eq!(
            healthy.deployed().map(|m| m.name),
            Some("InceptionV3"),
            "nominal link deploys the preferred model"
        );
        let broken = tvdp.dispatch_to_device_degraded(
            &device,
            &DispatchConstraints::default(),
            &LinkConditions {
                breaker_open: true,
                ..LinkConditions::nominal()
            },
        );
        assert!(matches!(broken, DispatchDecision::ServerSide { .. }));
    }

    #[test]
    fn ingest_idempotent_dedups_retries() {
        let tvdp = Tvdp::new(fast_config());
        let user = tvdp.register_user("LASAN", Role::Government);
        let (id, replayed) = tvdp
            .ingest_idempotent(user, scene(0, 0), request(0), "cam7-frame3")
            .unwrap();
        assert!(!replayed);
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        // The lost-ack retry is acknowledged without a second row.
        let (again, replayed) = tvdp
            .ingest_idempotent(user, scene(0, 0), request(0), "cam7-frame3")
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(tvdp.stats().images, 1);
        // The same key from a different user is a different upload.
        let other = tvdp.register_user("USC", Role::Researcher);
        let (theirs, replayed) = tvdp
            .ingest_idempotent(other, scene(1, 1), request(1), "cam7-frame3")
            .unwrap();
        assert!(!replayed);
        assert_ne!(theirs, id);
        // The first ingest was indexed exactly once.
        let hits = tvdp.search(&Query::Textual {
            text: "street".into(),
            mode: tvdp_query::TextualMode::All,
        });
        assert_eq!(hits.len(), 2);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use tvdp_geo::GeoPoint;

    fn cfg() -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            ..Default::default()
        }
    }

    fn img(i: usize) -> Image {
        Image::from_fn(20, 20, |x, y| [(x * i) as u8, (y + i) as u8, 7])
    }

    fn req(i: i64) -> IngestRequest {
        IngestRequest {
            gps: GeoPoint::new(34.0 + i as f64 * 1e-4, -118.25),
            fov: None,
            captured_at: i,
            uploaded_at: i + 1,
            keywords: vec![format!("kw{i}")],
        }
    }

    #[test]
    fn batch_matches_sequential_ingest() {
        let seq = Tvdp::new(cfg());
        let par = Tvdp::new(cfg());
        let user_s = seq.register_user("u", Role::Government);
        let user_p = par.register_user("u", Role::Government);
        let batch: Vec<(Image, IngestRequest)> = (0..17).map(|i| (img(i), req(i as i64))).collect();
        let seq_ids: Vec<ImageId> = batch
            .iter()
            .map(|(im, rq)| seq.ingest(user_s, im.clone(), rq.clone()).unwrap())
            .collect();
        let par_ids = par.ingest_batch(user_p, batch, 4).unwrap();
        assert_eq!(seq_ids, par_ids, "ids in input order");
        for (&a, &b) in seq_ids.iter().zip(&par_ids) {
            assert_eq!(
                seq.store().feature(a, FeatureKind::Cnn),
                par.store().feature(b, FeatureKind::Cnn),
                "parallel extraction must be bit-identical"
            );
            assert_eq!(seq.store().image(a), par.store().image(b));
        }
        // Index sees everything.
        let hits = par.search(&Query::Textual {
            text: "kw3".into(),
            mode: tvdp_query::TextualMode::All,
        });
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn search_batch_matches_per_query_search() {
        let tvdp = Tvdp::new(cfg());
        let user = tvdp.register_user("u", Role::Government);
        let batch: Vec<(Image, IngestRequest)> = (0..12).map(|i| (img(i), req(i as i64))).collect();
        tvdp.ingest_batch(user, batch, 4).unwrap();
        let queries: Vec<Query> = (0..12)
            .map(|i| Query::Textual {
                text: format!("kw{i}"),
                mode: tvdp_query::TextualMode::All,
            })
            .collect();
        let batched = tvdp.search_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, results) in queries.iter().zip(&batched) {
            assert_eq!(&tvdp.search(q), results, "diverged on {q:?}");
        }
    }

    #[test]
    fn batch_handles_empty_and_single() {
        let tvdp = Tvdp::new(cfg());
        let user = tvdp.register_user("u", Role::Government);
        assert!(tvdp.ingest_batch(user, vec![], 4).unwrap().is_empty());
        let one = tvdp.ingest_batch(user, vec![(img(1), req(1))], 8).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn batch_rejects_unknown_user() {
        let tvdp = Tvdp::new(cfg());
        let err = tvdp
            .ingest_batch(UserId(9), vec![(img(1), req(1))], 2)
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnknownUser(_)));
    }
}

#[cfg(test)]
mod region_annotation_tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_storage::RegionOfInterest;

    #[test]
    fn region_annotations_validate_bounds() {
        let tvdp = Tvdp::new(PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4],
                pool_grid: 2,
                seed: 1,
            },
            ..Default::default()
        });
        let user = tvdp.register_user("u", Role::CommunityPartner);
        let scheme = tvdp
            .register_scheme("parts", vec!["tent".into(), "bag".into()])
            .unwrap();
        let img = Image::from_fn(32, 24, |_, _| [50, 50, 50]);
        let id = tvdp
            .ingest(
                user,
                img,
                IngestRequest {
                    gps: GeoPoint::new(34.0, -118.25),
                    fov: None,
                    captured_at: 0,
                    uploaded_at: 1,
                    keywords: vec![],
                },
            )
            .unwrap();
        // In-bounds region works.
        let ann = tvdp
            .annotate_human_region(
                user,
                id,
                scheme,
                0,
                RegionOfInterest {
                    x: 4,
                    y: 4,
                    width: 10,
                    height: 10,
                },
            )
            .unwrap();
        let rows = tvdp.store().annotations_of(id);
        assert_eq!(rows[0].id, ann);
        assert_eq!(rows[0].region.unwrap().width, 10);
        // Out-of-bounds region rejected.
        let err = tvdp.annotate_human_region(
            user,
            id,
            scheme,
            0,
            RegionOfInterest {
                x: 30,
                y: 0,
                width: 10,
                height: 5,
            },
        );
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod durability_tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_query::TextualMode;

    fn fast_config() -> PlatformConfig {
        PlatformConfig {
            cnn: CnnConfig {
                input_size: 16,
                stage_channels: vec![4, 8],
                pool_grid: 2,
                seed: 1,
            },
            min_training_samples: 6,
            ..Default::default()
        }
    }

    fn scene(class: usize, seed: usize) -> Image {
        Image::from_fn(24, 24, |x, y| {
            let v = ((x * 3 + y * 5 + seed) % 17) as u8 * 3;
            if class == 0 {
                [200, v, v]
            } else {
                [v, v, 220]
            }
        })
    }

    fn request(i: i64) -> IngestRequest {
        IngestRequest {
            gps: GeoPoint::new(34.0 + i as f64 * 1e-4, -118.25),
            fov: None,
            captured_at: 1000 + i,
            uploaded_at: 1100 + i,
            keywords: vec!["street".into()],
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-platform-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn durable_platform_survives_reopen() {
        let dir = temp_dir("reopen");
        let (id, scheme, ann);
        {
            let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
            assert!(tvdp.is_durable());
            assert!(!report.snapshot_found);
            let user = tvdp.register_user("LASAN", Role::Government);
            scheme = tvdp
                .register_scheme("binary", vec!["red".into(), "blue".into()])
                .unwrap();
            id = tvdp.ingest(user, scene(0, 0), request(0)).unwrap();
            ann = tvdp.annotate_human(user, id, scheme, 0).unwrap();
            // No flush: everything below must come back from the WAL alone.
        }
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        // scheme + image + two features + annotation
        assert_eq!(report.replayed_ops, 5);
        assert_eq!(tvdp.stats().images, 1);
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        assert_eq!(tvdp.store().annotations_of(id)[0].id, ann);
        assert_eq!(tvdp.store().scheme(scheme).unwrap().labels.len(), 2);
        // The query engine was rebuilt over the recovered rows.
        let hits = tvdp.search(&Query::Textual {
            text: "street".into(),
            mode: TextualMode::All,
        });
        assert_eq!(hits.len(), 1);
        // Ids keep advancing from where the journal left off.
        let user = tvdp.register_user("LASAN", Role::Government);
        let next = tvdp.ingest(user, scene(1, 1), request(1)).unwrap();
        assert!(next.0 > id.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_compacts_the_journal() {
        let dir = temp_dir("flush");
        {
            let (tvdp, _) = Tvdp::open(&dir, fast_config()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            tvdp.ingest(user, scene(0, 0), request(0)).unwrap();
            let report = tvdp.flush().unwrap();
            assert!(report.ops_compacted >= 3);
            assert!(report.wal_bytes_before > 0);
        }
        // After compaction the state comes back from the snapshot, not a replay.
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        assert!(report.snapshot_found);
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(tvdp.stats().images, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_platform_rejects_flush() {
        let tvdp = Tvdp::new(fast_config());
        assert!(!tvdp.is_durable());
        assert!(matches!(tvdp.flush(), Err(PlatformError::NotDurable)));
    }

    #[test]
    fn ingest_idempotent_dedups_across_crash_recovery() {
        let dir = temp_dir("idem");
        let id;
        {
            let (tvdp, _) = Tvdp::open(&dir, fast_config()).unwrap();
            let user = tvdp.register_user("LASAN", Role::Government);
            let (stored, replayed) = tvdp
                .ingest_idempotent(user, scene(0, 0), request(0), "edge4-s9")
                .unwrap();
            assert!(!replayed);
            id = stored;
            // No flush: the upload must come back from the composite
            // WAL record alone.
        }
        let (tvdp, report) = Tvdp::open(&dir, fast_config()).unwrap();
        // One composite record covers image + features + marker.
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(tvdp.stats().images, 1);
        assert!(tvdp.store().feature(id, FeatureKind::Cnn).is_some());
        // The client's retry after the crash still deduplicates.
        let user = tvdp.register_user("LASAN", Role::Government);
        let (again, replayed) = tvdp
            .ingest_idempotent(user, scene(0, 0), request(0), "edge4-s9")
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(tvdp.stats().images, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
