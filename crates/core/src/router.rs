//! Deterministic geo-grid shard routing.
//!
//! The sharded platform core partitions images by *where they were
//! captured*: the city is cut into a fixed grid of
//! [`GeoShardRouter::cell_deg`]-degree cells, every cell is hashed with
//! FNV-1a, and the hash picks one of N shards. Two properties matter:
//!
//! * **Determinism** — the same GPS point maps to the same shard on
//!   every run and every machine (integer cell coordinates, fixed
//!   64-bit FNV), so WAL replay and idempotent retries land on the
//!   shard that already owns the row.
//! * **Locality** — a whole grid cell moves together, so the dense
//!   spatial range queries of the access layer touch few shards while
//!   the hash still spreads hot districts across the fleet.

use tvdp_geo::GeoPoint;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Maps capture locations onto a fixed shard count via a hashed
/// geo-grid. Copyable and configuration-only: routing never consults
/// platform state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoShardRouter {
    shards: u32,
    cell_deg: f64,
}

impl GeoShardRouter {
    /// Default grid pitch in degrees (~1.1 km of latitude), chosen so a
    /// city block's uploads co-locate while a district spans many cells.
    pub const DEFAULT_CELL_DEG: f64 = 0.01;

    /// Creates a router over `shards` shards with grid pitch
    /// `cell_deg` degrees.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `cell_deg` is not finite and
    /// positive.
    pub fn new(shards: u32, cell_deg: f64) -> Self {
        assert!(shards > 0, "router needs at least one shard");
        assert!(
            cell_deg.is_finite() && cell_deg > 0.0,
            "cell pitch must be finite and positive"
        );
        GeoShardRouter { shards, cell_deg }
    }

    /// Number of shards this router spreads over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Grid pitch in degrees.
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }

    /// The shard owning `point`, in `0..self.shards()`.
    ///
    /// Total over all bit patterns: a non-finite coordinate (which the
    /// validated [`GeoPoint`] constructors reject, but raw struct
    /// literals and deserialized rows can still carry) saturates to
    /// cell 0 through the `as i64` cast, so even garbage sensor input
    /// routes deterministically instead of panicking.
    pub fn shard(&self, point: &GeoPoint) -> usize {
        if self.shards <= 1 {
            return 0;
        }
        let cx = (point.lat / self.cell_deg).floor() as i64;
        let cy = (point.lon / self.cell_deg).floor() as i64;
        let mut h = FNV_OFFSET;
        for b in cx.to_le_bytes().into_iter().chain(cy.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        (h % u64::from(self.shards)) as usize
    }

    /// The shard owning an optional capture origin. Origin-less rows
    /// (synthetic content, migrated archives without GPS) all land on
    /// shard 0, a fixed policy every replay and retry agrees on.
    pub fn shard_opt(&self, point: Option<&GeoPoint>) -> usize {
        point.map_or(0, |p| self.shard(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = GeoShardRouter::new(1, GeoShardRouter::DEFAULT_CELL_DEG);
        assert_eq!(r.shard(&GeoPoint::new(34.05, -118.25)), 0);
        assert_eq!(r.shard(&GeoPoint::new(-89.9, 179.9)), 0);
    }

    #[test]
    fn routing_is_deterministic_and_cell_granular() {
        let r = GeoShardRouter::new(8, 0.01);
        let p = GeoPoint::new(34.0512, -118.2537);
        let same_cell = GeoPoint::new(34.0518, -118.2531);
        assert_eq!(r.shard(&p), r.shard(&p));
        assert_eq!(r.shard(&p), r.shard(&same_cell));
        assert!(r.shard(&p) < 8);
    }

    #[test]
    fn origin_less_rows_route_to_shard_zero_at_every_shard_count() {
        for shards in [1u32, 2, 3, 8, 64] {
            let r = GeoShardRouter::new(shards, 0.01);
            assert_eq!(r.shard_opt(None), 0, "shards={shards}");
        }
        // With an origin, shard_opt is exactly shard().
        let r = GeoShardRouter::new(8, 0.01);
        let p = GeoPoint::new(34.05, -118.25);
        assert_eq!(r.shard_opt(Some(&p)), r.shard(&p));
    }

    #[test]
    fn boundary_and_negative_coordinates_route_in_range() {
        let r = GeoShardRouter::new(5, 0.01);
        let extremes = [
            GeoPoint::new(90.0, 180.0),
            GeoPoint::new(-90.0, -180.0),
            GeoPoint::new(90.0, -180.0),
            GeoPoint::new(-90.0, 180.0),
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(-0.0, -0.0),
            GeoPoint::new(-33.87, 151.21),
            GeoPoint::new(-54.8, -68.3),
        ];
        for p in &extremes {
            let s = r.shard(p);
            assert!(s < 5, "{p:?} routed out of range: {s}");
            assert_eq!(s, r.shard(p), "{p:?} routed nondeterministically");
        }
        // Negative zero and positive zero are the same cell.
        assert_eq!(
            r.shard(&GeoPoint::new(0.0, 0.0)),
            r.shard(&GeoPoint::new(-0.0, -0.0))
        );
    }

    #[test]
    fn non_finite_coordinates_never_panic_and_route_deterministically() {
        // The validated constructors reject these, but raw struct
        // literals (deserialized or migrated rows) can still carry
        // them; routing must stay total.
        let r = GeoShardRouter::new(7, 0.01);
        let weird = [
            GeoPoint {
                lat: f64::NAN,
                lon: 0.0,
            },
            GeoPoint {
                lat: f64::INFINITY,
                lon: f64::NEG_INFINITY,
            },
            GeoPoint {
                lat: 0.0,
                lon: f64::NAN,
            },
        ];
        for p in &weird {
            let s = r.shard(p);
            assert!(s < 7, "{p:?} routed out of range");
            assert_eq!(s, r.shard(p), "{p:?} routed nondeterministically");
        }
    }

    #[test]
    fn same_point_is_stable_within_a_shard_count() {
        // The map from point to shard is a pure function of
        // (point, shards, cell_deg): pin a few values so an accidental
        // hash change shows up as a routed-row migration, which would
        // break WAL replay of existing directories.
        let p = GeoPoint::new(34.0512, -118.2537);
        for shards in [2u32, 4, 16] {
            let a = GeoShardRouter::new(shards, 0.01).shard(&p);
            let b = GeoShardRouter::new(shards, 0.01).shard(&p);
            assert_eq!(a, b);
            assert!(a < shards as usize);
        }
    }

    #[test]
    fn shards_receive_reasonably_spread_load() {
        let r = GeoShardRouter::new(4, 0.01);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let p = GeoPoint::new(34.0 + 0.01 * f64::from(i), -118.25);
            counts[r.shard(&p)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "a shard got nothing: {counts:?}"
        );
    }
}
