//! Translational data analysis helpers.
//!
//! The paper's Fig. 9 scenario: street-cleanliness annotations produced
//! for LASAN include an *encampment* class, which the city's Homeless
//! Coordinator reuses directly — no new learning — to count and localize
//! homeless tents. These helpers turn a (scheme, label) pair into
//! spatial aggregates: per-cell counts and ranked hotspots.

use serde::{Deserialize, Serialize};
use tvdp_geo::{BBox, GeoPoint, METERS_PER_DEG_LAT};
use tvdp_storage::{ClassificationId, VisualStore};

/// An aggregation cell with its hit count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellCount {
    /// Cell bounds.
    pub cell: BBox,
    /// Number of matching images whose camera position falls in the cell.
    pub count: usize,
}

/// Counts images annotated with `(scheme, label)` (at or above
/// `min_confidence`) per grid cell of `cell_size_m` metres over `region`.
/// Cells with zero hits are omitted.
pub fn count_by_cell(
    store: &VisualStore,
    scheme: ClassificationId,
    label: usize,
    region: &BBox,
    cell_size_m: f64,
    min_confidence: f32,
) -> Vec<CellCount> {
    assert!(cell_size_m > 0.0, "cell size must be positive");
    let mean_lat = ((region.min_lat + region.max_lat) / 2.0).to_radians();
    let dlat = cell_size_m / METERS_PER_DEG_LAT;
    let dlon = cell_size_m / (METERS_PER_DEG_LAT * mean_lat.cos());
    let rows = (((region.max_lat - region.min_lat) / dlat).ceil() as usize).max(1);
    let cols = (((region.max_lon - region.min_lon) / dlon).ceil() as usize).max(1);
    let mut counts = vec![0usize; rows * cols];

    for ann in store.annotations_with_label(scheme, label) {
        if ann.confidence < min_confidence {
            continue;
        }
        let Some(record) = store.image(ann.image) else {
            continue;
        };
        let p: GeoPoint = record.meta.gps;
        if !region.contains(&p) {
            continue;
        }
        let row = (((p.lat - region.min_lat) / dlat) as usize).min(rows - 1);
        let col = (((p.lon - region.min_lon) / dlon) as usize).min(cols - 1);
        counts[row * cols + col] += 1;
    }

    let mut out = Vec::new();
    for row in 0..rows {
        for col in 0..cols {
            let count = counts[row * cols + col];
            if count == 0 {
                continue;
            }
            out.push(CellCount {
                cell: BBox::new(
                    region.min_lat + row as f64 * dlat,
                    region.min_lon + col as f64 * dlon,
                    (region.min_lat + (row + 1) as f64 * dlat)
                        .min(region.max_lat.max(region.min_lat + rows as f64 * dlat)),
                    (region.min_lon + (col + 1) as f64 * dlon)
                        .min(region.max_lon.max(region.min_lon + cols as f64 * dlon)),
                ),
                count,
            });
        }
    }
    out
}

/// The `k` densest cells, highest count first (tent-cluster hotspots).
pub fn hotspots(
    store: &VisualStore,
    scheme: ClassificationId,
    label: usize,
    region: &BBox,
    cell_size_m: f64,
    min_confidence: f32,
    k: usize,
) -> Vec<CellCount> {
    let mut cells = count_by_cell(store, scheme, label, region, cell_size_m, min_confidence);
    cells.sort_by_key(|c| std::cmp::Reverse(c.count));
    cells.truncate(k);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_storage::{AnnotationSource, ImageMeta, ImageOrigin, UserId};

    fn region() -> BBox {
        BBox::new(34.0, -118.3, 34.02, -118.28)
    }

    fn store_with_clusters() -> (VisualStore, ClassificationId) {
        let store = VisualStore::new();
        let scheme = store
            .register_scheme("cleanliness", vec!["clean".into(), "encampment".into()])
            .unwrap();
        // Dense cluster near the south-west corner, sparse singleton
        // north-east.
        let add = |lat: f64, lon: f64, label: usize, confidence: f32| {
            let id = store
                .add_image(
                    ImageMeta {
                        uploader: UserId(0),
                        gps: GeoPoint::new(lat, lon),
                        fov: None,
                        captured_at: 0,
                        uploaded_at: 1,
                        keywords: vec![],
                    },
                    ImageOrigin::Original,
                    None,
                )
                .unwrap();
            store
                .annotate(
                    id,
                    scheme,
                    label,
                    confidence,
                    AnnotationSource::Human(UserId(0)),
                    None,
                )
                .unwrap();
        };
        for i in 0..5 {
            add(34.0005 + i as f64 * 1e-5, -118.2995, 1, 0.9);
        }
        add(34.019, -118.281, 1, 0.9);
        // Clean images everywhere must not count.
        add(34.001, -118.299, 0, 1.0);
        add(34.019, -118.281, 0, 1.0);
        // Low-confidence encampment filtered out at 0.5.
        add(34.010, -118.290, 1, 0.2);
        (store, scheme)
    }

    #[test]
    fn counts_cluster_correctly() {
        let (store, scheme) = store_with_clusters();
        let cells = count_by_cell(&store, scheme, 1, &region(), 200.0, 0.5);
        let total: usize = cells.iter().map(|c| c.count).sum();
        assert_eq!(total, 6, "5 clustered + 1 singleton");
        let max = cells.iter().map(|c| c.count).max().unwrap();
        assert_eq!(max, 5, "dense cluster lands in one cell");
    }

    #[test]
    fn hotspots_ranked_descending() {
        let (store, scheme) = store_with_clusters();
        let top = hotspots(&store, scheme, 1, &region(), 200.0, 0.5, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].count >= top[1].count);
        assert_eq!(top[0].count, 5);
    }

    #[test]
    fn confidence_threshold_filters() {
        let (store, scheme) = store_with_clusters();
        let strict: usize = count_by_cell(&store, scheme, 1, &region(), 200.0, 0.5)
            .iter()
            .map(|c| c.count)
            .sum();
        let loose: usize = count_by_cell(&store, scheme, 1, &region(), 200.0, 0.0)
            .iter()
            .map(|c| c.count)
            .sum();
        assert_eq!(
            loose,
            strict + 1,
            "low-confidence row included only when allowed"
        );
    }

    #[test]
    fn out_of_region_ignored() {
        let (store, scheme) = store_with_clusters();
        let far = BBox::new(35.0, -117.0, 35.01, -116.99);
        assert!(count_by_cell(&store, scheme, 1, &far, 100.0, 0.0).is_empty());
    }

    #[test]
    fn cells_cover_their_points() {
        let (store, scheme) = store_with_clusters();
        for cell in count_by_cell(&store, scheme, 1, &region(), 150.0, 0.5) {
            assert!(cell.count > 0);
            assert!(cell.cell.area_m2() > 0.0);
        }
    }
}
