//! Platform users and roles.
//!
//! The paper names four participant kinds (Section II): governments
//! providing open datasets, professional researchers/developers providing
//! algorithms, community partners operating solutions or crowdsourcing
//! data, and academic partners building on the open datasets.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use tvdp_storage::UserId;

/// Participant category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// City departments (e.g. LASAN) providing data and taking action.
    Government,
    /// Researchers and developers providing analysis methods.
    Researcher,
    /// Community partners operating solutions and crowdsourcing data.
    CommunityPartner,
    /// Students and academics building on open datasets.
    Academic,
}

/// A registered participant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Identifier.
    pub id: UserId,
    /// Display name.
    pub name: String,
    /// Participant category.
    pub role: Role,
}

/// Thread-safe user table.
#[derive(Debug, Default)]
pub struct UserRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next: u64,
    users: BTreeMap<UserId, User>,
}

impl UserRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user, returning the new id.
    pub fn register(&self, name: impl Into<String>, role: Role) -> UserId {
        let mut inner = self.inner.write();
        let id = UserId(inner.next);
        inner.next += 1;
        inner.users.insert(
            id,
            User {
                id,
                name: name.into(),
                role,
            },
        );
        id
    }

    /// Looks a user up.
    pub fn get(&self, id: UserId) -> Option<User> {
        self.inner.read().users.get(&id).cloned()
    }

    /// Whether the id is registered.
    pub fn exists(&self, id: UserId) -> bool {
        self.inner.read().users.contains_key(&id)
    }

    /// All users.
    pub fn all(&self) -> Vec<User> {
        self.inner.read().users.values().cloned().collect()
    }

    /// Users holding a role.
    pub fn with_role(&self, role: Role) -> Vec<User> {
        self.inner
            .read()
            .users
            .values()
            .filter(|u| u.role == role)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = UserRegistry::new();
        let lasan = reg.register("LASAN", Role::Government);
        let usc = reg.register("USC IMSC", Role::Researcher);
        assert_ne!(lasan, usc);
        assert_eq!(reg.get(lasan).unwrap().name, "LASAN");
        assert!(reg.exists(usc));
        assert!(!reg.exists(UserId(99)));
        assert_eq!(reg.all().len(), 2);
    }

    #[test]
    fn role_filter() {
        let reg = UserRegistry::new();
        reg.register("LASAN", Role::Government);
        reg.register("Homeless Coordinator", Role::Government);
        reg.register("USC", Role::Researcher);
        assert_eq!(reg.with_role(Role::Government).len(), 2);
        assert_eq!(reg.with_role(Role::Academic).len(), 0);
    }
}
