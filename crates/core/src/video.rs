//! Video ingestion as key-frame sequences.
//!
//! The paper stores a video as "a sequence of key frames … where each one
//! is tagged with various descriptors" (Section IV-B), with per-frame
//! spatial metadata at MediaQ granularity. Uploading every frame would be
//! redundant (challenge 2 of Section II), so key-frame selection keeps a
//! frame only when it adds something: enough travel, a new viewing
//! direction, or fresh coverage area — the criteria behind the paper's
//! key-frame-selection references \[6\]\[7\].

use serde::{Deserialize, Serialize};
use tvdp_geo::Fov;
use tvdp_storage::ImageId;
use tvdp_vision::Image;

/// One captured video frame with its spatial metadata.
#[derive(Debug, Clone)]
pub struct VideoFrame {
    /// Frame pixels.
    pub image: Image,
    /// Per-frame FOV (MediaQ-granularity sensing).
    pub fov: Fov,
    /// Capture timestamp, Unix seconds.
    pub captured_at: i64,
}

/// Key-frame selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyframePolicy {
    /// Keep every `n`-th frame (the naive baseline).
    EveryNth(usize),
    /// Keep a frame when the camera moved at least `min_move_m` metres or
    /// turned at least `min_turn_deg` degrees since the last kept frame —
    /// the spatial-novelty criterion.
    SpatialNovelty {
        /// Minimum camera travel to justify a new key frame.
        min_move_m: f64,
        /// Minimum heading change to justify a new key frame.
        min_turn_deg: f64,
    },
}

/// Selects the indices of frames to keep. The first frame is always kept.
pub fn select_keyframes(frames: &[VideoFrame], policy: KeyframePolicy) -> Vec<usize> {
    if frames.is_empty() {
        return Vec::new();
    }
    match policy {
        KeyframePolicy::EveryNth(n) => {
            let n = n.max(1);
            (0..frames.len()).step_by(n).collect()
        }
        KeyframePolicy::SpatialNovelty {
            min_move_m,
            min_turn_deg,
        } => {
            let mut kept = vec![0usize];
            let mut last = &frames[0].fov;
            for (i, frame) in frames.iter().enumerate().skip(1) {
                let moved = last.camera.fast_distance_m(&frame.fov.camera);
                let turned = tvdp_geo::angular_diff_deg(last.heading_deg, frame.fov.heading_deg);
                if moved >= min_move_m || turned >= min_turn_deg {
                    kept.push(i);
                    last = &frame.fov;
                }
            }
            kept
        }
    }
}

/// Result of a video ingestion.
#[derive(Debug, Clone)]
pub struct VideoIngestReport {
    /// Stored key-frame ids, in time order.
    pub keyframes: Vec<ImageId>,
    /// Total frames offered.
    pub frames_offered: usize,
    /// Frames dropped by key-frame selection.
    pub frames_dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::GeoPoint;

    fn frame(dist_m: f64, heading: f64, t: i64) -> VideoFrame {
        let base = GeoPoint::new(34.0, -118.25);
        VideoFrame {
            image: Image::from_fn(16, 16, |x, y| [x as u8, y as u8, t as u8]),
            fov: Fov::new(base.destination(90.0, dist_m), heading, 60.0, 80.0),
            captured_at: t,
        }
    }

    #[test]
    fn every_nth_keeps_stride() {
        let frames: Vec<VideoFrame> = (0..10).map(|i| frame(i as f64, 0.0, i as i64)).collect();
        assert_eq!(
            select_keyframes(&frames, KeyframePolicy::EveryNth(3)),
            vec![0, 3, 6, 9]
        );
        assert_eq!(
            select_keyframes(&frames, KeyframePolicy::EveryNth(1)).len(),
            10
        );
        assert_eq!(
            select_keyframes(&[], KeyframePolicy::EveryNth(2)),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn spatial_novelty_drops_stationary_frames() {
        // Truck stopped at a light: 20 identical poses, then moves.
        let mut frames: Vec<VideoFrame> = (0..20).map(|i| frame(0.0, 0.0, i)).collect();
        for i in 0..5 {
            frames.push(frame(30.0 * (i + 1) as f64, 0.0, 20 + i as i64));
        }
        let kept = select_keyframes(
            &frames,
            KeyframePolicy::SpatialNovelty {
                min_move_m: 15.0,
                min_turn_deg: 30.0,
            },
        );
        assert_eq!(kept.len(), 6, "first frame + 5 moving frames: {kept:?}");
        assert_eq!(kept[0], 0);
    }

    #[test]
    fn spatial_novelty_keeps_turns() {
        // Stationary but panning camera.
        let frames: Vec<VideoFrame> = (0..8)
            .map(|i| frame(0.0, i as f64 * 45.0, i as i64))
            .collect();
        let kept = select_keyframes(
            &frames,
            KeyframePolicy::SpatialNovelty {
                min_move_m: 1000.0,
                min_turn_deg: 40.0,
            },
        );
        assert_eq!(kept.len(), 8, "every 45-degree turn is novel");
    }
}
