//! Worker-task assignment.
//!
//! Implements the two assignment strategies of the GeoCrowd line of work
//! the paper builds on (refs \[12\]\[13\]): a cheap greedy heuristic and
//! exact maximum task assignment via augmenting-path bipartite matching,
//! both respecting worker ranges and capacities.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::task::{SpatialTask, TaskId};
use crate::worker::{Worker, WorkerId};

/// The outcome of an assignment round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// Assigned (worker, task) pairs.
    pub pairs: Vec<(WorkerId, TaskId)>,
    /// Tasks no reachable worker could take.
    pub unassigned: Vec<TaskId>,
    /// Sum of worker-to-task distances over assigned pairs, metres.
    pub total_travel_m: f64,
}

impl Assignment {
    /// Number of assigned tasks.
    pub fn assigned_count(&self) -> usize {
        self.pairs.len()
    }
}

/// Greedy assignment: tasks in input order each take the nearest worker
/// with remaining capacity. Fast (`O(tasks × workers)`) but can strand
/// tasks a different pairing would have served.
pub fn assign_greedy(workers: &[Worker], tasks: &[SpatialTask]) -> Assignment {
    let mut remaining: HashMap<WorkerId, usize> =
        workers.iter().map(|w| (w.id, w.capacity)).collect();
    let mut pairs = Vec::new();
    let mut unassigned = Vec::new();
    let mut total_travel = 0.0;
    for task in tasks {
        let best = workers
            .iter()
            .filter(|w| remaining[&w.id] > 0 && w.can_reach(&task.location))
            .min_by(|a, b| {
                a.location
                    .fast_distance_m(&task.location)
                    .total_cmp(&b.location.fast_distance_m(&task.location))
            });
        match best {
            Some(w) => {
                if let Some(slots) = remaining.get_mut(&w.id) {
                    *slots -= 1;
                }
                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                total_travel += w.location.fast_distance_m(&task.location);
                pairs.push((w.id, task.id));
            }
            None => unassigned.push(task.id),
        }
    }
    Assignment {
        pairs,
        unassigned,
        total_travel_m: total_travel,
    }
}

/// Maximum task assignment: expands each worker into `capacity` slots and
/// runs Kuhn's augmenting-path bipartite matching, maximizing the number
/// of assigned tasks (the MTA objective of GeoCrowd).
pub fn assign_matching(workers: &[Worker], tasks: &[SpatialTask]) -> Assignment {
    // Slot w_s for each worker unit of capacity.
    let mut slot_owner = Vec::new(); // slot -> worker index
    for (wi, w) in workers.iter().enumerate() {
        for _ in 0..w.capacity {
            slot_owner.push(wi);
        }
    }
    // Adjacency: task -> reachable slots.
    let adj: Vec<Vec<usize>> = tasks
        .iter()
        .map(|t| {
            slot_owner
                .iter()
                .enumerate()
                .filter(|(_, &wi)| workers[wi].can_reach(&t.location))
                .map(|(s, _)| s)
                .collect()
        })
        .collect();

    let mut slot_match: Vec<Option<usize>> = vec![None; slot_owner.len()]; // slot -> task
    let mut task_match: Vec<Option<usize>> = vec![None; tasks.len()]; // task -> slot

    fn try_augment(
        t: usize,
        adj: &[Vec<usize>],
        slot_match: &mut [Option<usize>],
        task_match: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &s in &adj[t] {
            if visited[s] {
                continue;
            }
            visited[s] = true;
            let free = match slot_match[s] {
                None => true,
                Some(other) => try_augment(other, adj, slot_match, task_match, visited),
            };
            if free {
                slot_match[s] = Some(t);
                task_match[t] = Some(s);
                return true;
            }
        }
        false
    }

    for t in 0..tasks.len() {
        let mut visited = vec![false; slot_owner.len()];
        try_augment(t, &adj, &mut slot_match, &mut task_match, &mut visited);
    }

    let mut pairs = Vec::new();
    let mut unassigned = Vec::new();
    let mut total_travel = 0.0;
    for (t, task) in tasks.iter().enumerate() {
        match task_match[t] {
            Some(s) => {
                let w = &workers[slot_owner[s]];
                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                total_travel += w.location.fast_distance_m(&task.location);
                pairs.push((w.id, task.id));
            }
            None => unassigned.push(task.id),
        }
    }
    Assignment {
        pairs,
        unassigned,
        total_travel_m: total_travel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::GeoPoint;

    fn p(dx_m: f64) -> GeoPoint {
        GeoPoint::new(34.0, -118.25).destination(90.0, dx_m)
    }

    #[test]
    fn greedy_assigns_nearest() {
        let workers = vec![
            Worker::new(WorkerId(1), p(0.0), 1000.0, 1),
            Worker::new(WorkerId(2), p(500.0), 1000.0, 1),
        ];
        let tasks = vec![SpatialTask::anywhere(TaskId(1), p(450.0), 1)];
        let a = assign_greedy(&workers, &tasks);
        assert_eq!(a.pairs, vec![(WorkerId(2), TaskId(1))]);
        assert!(a.unassigned.is_empty());
        assert!((a.total_travel_m - 50.0).abs() < 2.0);
    }

    #[test]
    fn matching_beats_greedy_on_crossing_case() {
        // Worker A can reach both tasks; worker B only task 1. Greedy
        // (task order 1 then 2) sends A to task 1 (closer), stranding
        // task 2; matching serves both.
        let workers = vec![
            Worker::new(WorkerId(1), p(0.0), 2000.0, 1),   // A
            Worker::new(WorkerId(2), p(-200.0), 300.0, 1), // B: only near task 1
        ];
        let tasks = vec![
            SpatialTask::anywhere(TaskId(1), p(-50.0), 1),
            SpatialTask::anywhere(TaskId(2), p(1500.0), 1),
        ];
        let g = assign_greedy(&workers, &tasks);
        let m = assign_matching(&workers, &tasks);
        assert_eq!(g.assigned_count(), 1, "greedy strands task 2");
        assert_eq!(m.assigned_count(), 2, "matching serves both");
        assert!(m.unassigned.is_empty());
    }

    #[test]
    fn capacity_respected() {
        let workers = vec![Worker::new(WorkerId(1), p(0.0), 5000.0, 2)];
        let tasks: Vec<SpatialTask> = (0..4)
            .map(|i| SpatialTask::anywhere(TaskId(i), p(i as f64 * 100.0), 1))
            .collect();
        for a in [
            assign_greedy(&workers, &tasks),
            assign_matching(&workers, &tasks),
        ] {
            assert_eq!(a.assigned_count(), 2);
            assert_eq!(a.unassigned.len(), 2);
        }
    }

    #[test]
    fn unreachable_tasks_unassigned() {
        let workers = vec![Worker::new(WorkerId(1), p(0.0), 100.0, 5)];
        let tasks = vec![SpatialTask::anywhere(TaskId(1), p(5000.0), 1)];
        for a in [
            assign_greedy(&workers, &tasks),
            assign_matching(&workers, &tasks),
        ] {
            assert_eq!(a.assigned_count(), 0);
            assert_eq!(a.unassigned, vec![TaskId(1)]);
        }
    }

    #[test]
    fn matching_never_worse_than_greedy_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for round in 0..10 {
            let workers: Vec<Worker> = (0..8)
                .map(|i| {
                    Worker::new(
                        WorkerId(i),
                        p(rng.gen_range(0.0..3000.0)),
                        rng.gen_range(200.0..800.0),
                        rng.gen_range(1..3),
                    )
                })
                .collect();
            let tasks: Vec<SpatialTask> = (0..15)
                .map(|i| SpatialTask::anywhere(TaskId(i), p(rng.gen_range(0.0..3000.0)), 1))
                .collect();
            let g = assign_greedy(&workers, &tasks);
            let m = assign_matching(&workers, &tasks);
            assert!(
                m.assigned_count() >= g.assigned_count(),
                "round {round}: matching {} < greedy {}",
                m.assigned_count(),
                g.assigned_count()
            );
            // Every assignment is within range.
            for (wid, tid) in m.pairs.iter().chain(g.pairs.iter()) {
                let w = workers.iter().find(|w| w.id == *wid).unwrap();
                let t = tasks.iter().find(|t| t.id == *tid).unwrap();
                assert!(w.can_reach(&t.location));
            }
        }
    }
}
