//! Coverage-driven campaign planning.
//!
//! A campaign declares a region and a coverage goal ("every cell seen
//! from at least `min_sectors` directions"). Each round inspects the
//! current [`CoverageGrid`] and emits one photo task per missing
//! (cell, direction) pair — the iterative spatial crowdsourcing loop of
//! the paper's Section III.

use serde::{Deserialize, Serialize};
use tvdp_geo::{CoverageGrid, CoverageSpec, GeoPoint};

use crate::task::{SpatialTask, TaskId};

/// A visual-data collection campaign.
///
/// ```
/// use tvdp_crowd::Campaign;
/// use tvdp_geo::{BBox, CoverageGrid, CoverageSpec};
///
/// let region = BBox::new(34.02, -118.29, 34.024, -118.285);
/// let spec = CoverageSpec::new(region, 100.0, 8);
/// let campaign = Campaign::new("pilot", spec, 2, 5);
/// // Nothing photographed yet: the first round wants every cell twice.
/// let grid = CoverageGrid::new(spec);
/// let round = campaign.plan_round(&grid, 0, 1_000);
/// assert!(!round.tasks.is_empty());
/// assert!(!campaign.satisfied(&grid));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// Human-readable name.
    pub name: String,
    /// Coverage model: region, cell size, direction sectors.
    pub spec: CoverageSpec,
    /// A cell is satisfied once covered in this many distinct sectors.
    pub min_sectors: usize,
    /// Reward offered per task.
    pub reward: u32,
}

impl Campaign {
    /// Creates a campaign; `min_sectors` must not exceed the sector count.
    pub fn new(
        name: impl Into<String>,
        spec: CoverageSpec,
        min_sectors: usize,
        reward: u32,
    ) -> Self {
        assert!(
            (1..=spec.sectors).contains(&min_sectors),
            "min_sectors {min_sectors} out of range 1..={}",
            spec.sectors
        );
        Self {
            name: name.into(),
            spec,
            min_sectors,
            reward,
        }
    }

    /// Plans the next round against the current coverage state: one task
    /// per missing (cell, sector), located at the cell centre, directed
    /// along the missing sector. Task ids start at `next_task_id`.
    ///
    /// Caps the round at `max_tasks` (budget), preferring the least
    /// covered cells first.
    pub fn plan_round(
        &self,
        grid: &CoverageGrid,
        next_task_id: u64,
        max_tasks: usize,
    ) -> CampaignRound {
        let mut under = grid.undercovered(self.min_sectors);
        // Least-covered first: the most missing sectors.
        under.sort_by_key(|(_, missing)| std::cmp::Reverse(missing.len()));
        let mut tasks = Vec::new();
        let mut id = next_task_id;
        'outer: for (cell, missing) in &under {
            let center: GeoPoint = grid.cell_bbox(*cell).center();
            // Only request up to the sectors still needed for the goal.
            let covered = grid.cell_mask(*cell).count_ones() as usize;
            let needed = self.min_sectors.saturating_sub(covered);
            for &sector in missing.iter().take(needed) {
                tasks.push(SpatialTask::directed(
                    TaskId(id),
                    center,
                    grid.sector_heading(sector),
                    self.reward,
                ));
                id += 1;
                if tasks.len() >= max_tasks {
                    break 'outer;
                }
            }
        }
        CampaignRound {
            tasks,
            cells_below_goal: under.len(),
        }
    }

    /// Whether the coverage goal is met: no cell below `min_sectors`.
    pub fn satisfied(&self, grid: &CoverageGrid) -> bool {
        grid.undercovered(self.min_sectors).is_empty()
    }
}

/// One planned round of tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignRound {
    /// The photo tasks to dispatch.
    pub tasks: Vec<SpatialTask>,
    /// How many cells are still below the goal.
    pub cells_below_goal: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::{BBox, Fov};

    fn small_spec() -> CoverageSpec {
        let sw = GeoPoint::new(34.02, -118.29);
        let ne = sw.destination(0.0, 300.0);
        let e = sw.destination(90.0, 300.0);
        CoverageSpec::new(BBox::new(sw.lat, sw.lon, ne.lat, e.lon), 100.0, 8)
    }

    #[test]
    fn fresh_campaign_wants_everything() {
        let spec = small_spec();
        let campaign = Campaign::new("c", spec, 2, 1);
        let grid = CoverageGrid::new(spec);
        let round = campaign.plan_round(&grid, 0, 1000);
        let (rows, cols) = grid.dims();
        // Every cell needs min_sectors tasks.
        assert_eq!(round.tasks.len(), (rows * cols) as usize * 2);
        assert_eq!(round.cells_below_goal, (rows * cols) as usize);
        assert!(!campaign.satisfied(&grid));
        // Task ids are sequential from 0.
        assert_eq!(round.tasks[0].id, TaskId(0));
        assert_eq!(
            round.tasks.last().unwrap().id,
            TaskId(round.tasks.len() as u64 - 1)
        );
    }

    #[test]
    fn budget_caps_round_size() {
        let spec = small_spec();
        let campaign = Campaign::new("c", spec, 4, 1);
        let grid = CoverageGrid::new(spec);
        let round = campaign.plan_round(&grid, 0, 5);
        assert_eq!(round.tasks.len(), 5);
    }

    #[test]
    fn satisfied_after_dense_coverage() {
        let spec = small_spec();
        let campaign = Campaign::new("c", spec, 1, 1);
        let mut grid = CoverageGrid::new(spec);
        // Photograph every cell centre in one direction with a wide view.
        let (rows, cols) = grid.dims();
        for r in 0..rows {
            for c in 0..cols {
                let center = grid
                    .cell_bbox(tvdp_geo::coverage::CellId { row: r, col: c })
                    .center();
                grid.add_fov(&Fov::new(center, 0.0, 360.0, 80.0));
            }
        }
        assert!(campaign.satisfied(&grid));
        let round = campaign.plan_round(&grid, 0, 100);
        assert!(round.tasks.is_empty());
        assert_eq!(round.cells_below_goal, 0);
    }

    #[test]
    fn planned_tasks_target_missing_sectors_only() {
        let spec = small_spec();
        let campaign = Campaign::new("c", spec, 2, 1);
        let mut grid = CoverageGrid::new(spec);
        // Cover every cell from the north sector only.
        let (rows, cols) = grid.dims();
        for r in 0..rows {
            for c in 0..cols {
                let center = grid
                    .cell_bbox(tvdp_geo::coverage::CellId { row: r, col: c })
                    .center();
                grid.add_fov(&Fov::new(center, grid.sector_heading(0), 40.0, 60.0));
            }
        }
        let round = campaign.plan_round(&grid, 0, 10_000);
        // Each cell already has >= 1 sector; only one more is requested.
        assert_eq!(round.tasks.len(), (rows * cols) as usize);
        for t in &round.tasks {
            let h = t.required_heading.expect("directed task");
            assert!(
                tvdp_geo::angular_diff_deg(h, grid.sector_heading(0)) > 20.0,
                "task re-requests the covered sector"
            );
        }
    }

    #[test]
    #[should_panic(expected = "min_sectors")]
    fn bad_goal_rejected() {
        let spec = small_spec();
        let _ = Campaign::new("c", spec, 9, 1);
    }
}
