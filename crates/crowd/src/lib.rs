//! Spatial crowdsourcing substrate for the Translational Visual Data
//! Platform.
//!
//! The paper's acquisition layer (Section III) collects data *proactively*:
//! a participant creates a campaign asking for certain visual data at
//! specific locations, workers are assigned to nearby photo tasks
//! (GeoCrowd, paper ref \[12\]), and the adequacy of what came back is
//! judged with the direction-aware coverage model of ref \[17\] — feeding
//! the next, narrower campaign round until coverage suffices.
//!
//! * [`task`] / [`worker`] — photo tasks with required viewing directions
//!   and capacity-constrained workers,
//! * [`assign`] — greedy nearest-worker assignment and maximum bipartite
//!   matching (augmenting paths), the two strategies benchmarked in the
//!   ablations,
//! * [`campaign`] — turning under-covered (cell, direction) pairs into
//!   task lists,
//! * [`simulate`] — an end-to-end iterative campaign simulator.

pub mod assign;
pub mod campaign;
pub mod simulate;
pub mod task;
pub mod worker;

pub use assign::{assign_greedy, assign_matching, Assignment};
pub use campaign::{Campaign, CampaignRound};
pub use simulate::{simulate_campaign, CampaignReport, SimulationConfig, UplinkModel};
pub use task::{SpatialTask, TaskId};
pub use worker::{Worker, WorkerId};
