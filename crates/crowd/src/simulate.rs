//! End-to-end iterative campaign simulation.
//!
//! Plays the paper's acquisition loop: plan tasks from coverage gaps →
//! assign to workers → workers (probabilistically) capture FOVs →
//! accumulate coverage → repeat until the goal or the round budget is
//! exhausted.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tvdp_geo::{CoverageGrid, CoverageReport, Fov};

use crate::assign::{assign_greedy, assign_matching};
use crate::campaign::Campaign;
use crate::worker::{Worker, WorkerId};

/// Which assignment algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignStrategy {
    /// Nearest-available-worker heuristic.
    Greedy,
    /// Maximum bipartite matching.
    Matching,
}

/// The uplink between a worker's capture and the platform. Captured
/// photos must still be *delivered*; city links drop some of them.
#[derive(Debug, Clone, Copy)]
pub struct UplinkModel {
    /// Probability one transmission of a captured photo is delivered.
    pub delivery_rate: f64,
    /// Retransmissions attempted after a failed delivery before the
    /// capture is counted as lost.
    pub max_retransmits: u32,
}

impl Default for UplinkModel {
    fn default() -> Self {
        Self {
            delivery_rate: 1.0,
            max_retransmits: 2,
        }
    }
}

impl UplinkModel {
    /// Attempts delivery, returning whether the photo landed and how
    /// many retransmissions it took. A perfect uplink short-circuits
    /// without touching the RNG, so the default configuration replays
    /// the exact capture sequence of earlier releases.
    fn deliver(&self, rng: &mut StdRng) -> (bool, u32) {
        if self.delivery_rate >= 1.0 {
            return (true, 0);
        }
        for retransmit in 0..=self.max_retransmits {
            if rng.gen_bool(self.delivery_rate.max(0.0)) {
                return (true, retransmit);
            }
        }
        (false, self.max_retransmits)
    }
}

/// Simulation knobs.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of simulated workers.
    pub n_workers: usize,
    /// Worker travel range, metres.
    pub worker_range_m: f64,
    /// Tasks a worker accepts per round.
    pub worker_capacity: usize,
    /// Probability an assigned task actually produces a photo.
    pub completion_rate: f64,
    /// Task budget per round.
    pub round_budget: usize,
    /// Maximum rounds before giving up.
    pub max_rounds: usize,
    /// Assignment algorithm.
    pub strategy: AssignStrategy,
    /// Uplink loss model applied to every captured photo.
    pub uplink: UplinkModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            n_workers: 20,
            worker_range_m: 600.0,
            worker_capacity: 4,
            completion_rate: 0.85,
            round_budget: 200,
            max_rounds: 12,
            strategy: AssignStrategy::Matching,
            uplink: UplinkModel::default(),
            seed: 0xCA4D,
        }
    }
}

/// Per-round and final statistics of a simulated campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Coverage after each round.
    pub rounds: Vec<CoverageReport>,
    /// Total tasks issued.
    pub tasks_issued: usize,
    /// Total tasks completed (photos captured *and* delivered).
    pub tasks_completed: usize,
    /// Captured photos the uplink lost even after retransmissions.
    pub uploads_lost: usize,
    /// Retransmissions the uplink needed across all deliveries.
    pub retransmits: usize,
    /// Whether the campaign goal was met.
    pub satisfied: bool,
}

/// Runs the iterative loop, returning the per-round coverage trajectory
/// and the captured FOVs.
pub fn simulate_campaign(
    campaign: &Campaign,
    config: &SimulationConfig,
) -> (CampaignReport, Vec<Fov>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let region = campaign.spec.region;
    // Workers scattered uniformly over the region.
    let workers: Vec<Worker> = (0..config.n_workers)
        .map(|i| {
            let lat = rng.gen_range(region.min_lat..region.max_lat);
            let lon = rng.gen_range(region.min_lon..region.max_lon);
            Worker::new(
                WorkerId(i as u64),
                tvdp_geo::GeoPoint::new(lat, lon),
                config.worker_range_m,
                config.worker_capacity,
            )
        })
        .collect();

    let mut grid = CoverageGrid::new(campaign.spec);
    let mut captured = Vec::new();
    let mut report = CampaignReport {
        rounds: Vec::new(),
        tasks_issued: 0,
        tasks_completed: 0,
        uploads_lost: 0,
        retransmits: 0,
        satisfied: false,
    };
    let mut next_task_id = 0u64;

    for _ in 0..config.max_rounds {
        if campaign.satisfied(&grid) {
            break;
        }
        let round = campaign.plan_round(&grid, next_task_id, config.round_budget);
        next_task_id += round.tasks.len() as u64;
        report.tasks_issued += round.tasks.len();
        let assignment = match config.strategy {
            AssignStrategy::Greedy => assign_greedy(&workers, &round.tasks),
            AssignStrategy::Matching => assign_matching(&workers, &round.tasks),
        };
        for (_, task_id) in &assignment.pairs {
            if !rng.gen_bool(config.completion_rate) {
                continue;
            }
            let Some(task) = round.tasks.iter().find(|t| t.id == *task_id) else {
                continue;
            };
            // The worker stands a little off the exact spot and aims
            // roughly along the requested heading.
            let pos = task
                .location
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..12.0));
            let heading = task
                .required_heading
                .unwrap_or_else(|| rng.gen_range(0.0..360.0))
                + rng.gen_range(-10.0..10.0);
            let fov = Fov::new(
                pos,
                heading,
                rng.gen_range(50.0..70.0),
                rng.gen_range(60.0..120.0),
            );
            let (delivered, retransmits) = config.uplink.deliver(&mut rng);
            report.retransmits += retransmits as usize;
            if !delivered {
                // The photo was taken but never reached the platform;
                // the coverage gap stays open for a later round.
                report.uploads_lost += 1;
                continue;
            }
            grid.add_fov(&fov);
            captured.push(fov);
            report.tasks_completed += 1;
        }
        report.rounds.push(grid.report());
    }
    report.satisfied = campaign.satisfied(&grid);
    (report, captured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::{BBox, CoverageSpec, GeoPoint};

    fn campaign(min_sectors: usize) -> Campaign {
        let sw = GeoPoint::new(34.02, -118.29);
        let ne = sw.destination(0.0, 400.0);
        let e = sw.destination(90.0, 400.0);
        let spec = CoverageSpec::new(BBox::new(sw.lat, sw.lon, ne.lat, e.lon), 100.0, 8);
        Campaign::new("test", spec, min_sectors, 1)
    }

    #[test]
    fn coverage_increases_monotonically() {
        let (report, fovs) = simulate_campaign(&campaign(3), &SimulationConfig::default());
        assert!(!report.rounds.is_empty());
        for w in report.rounds.windows(2) {
            assert!(w[1].direction_coverage >= w[0].direction_coverage - 1e-12);
        }
        assert_eq!(report.tasks_completed, fovs.len());
        assert!(report.tasks_completed <= report.tasks_issued);
    }

    #[test]
    fn easy_goal_gets_satisfied() {
        let config = SimulationConfig {
            max_rounds: 20,
            ..Default::default()
        };
        let (report, _) = simulate_campaign(&campaign(1), &config);
        assert!(
            report.satisfied,
            "goal of 1 sector/cell should be reachable: {report:?}"
        );
    }

    #[test]
    fn zero_completion_rate_never_covers() {
        let config = SimulationConfig {
            completion_rate: 0.0,
            max_rounds: 3,
            ..Default::default()
        };
        let (report, fovs) = simulate_campaign(&campaign(1), &config);
        assert!(!report.satisfied);
        assert!(fovs.is_empty());
        assert_eq!(report.tasks_completed, 0);
        assert!(report.tasks_issued > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let config = SimulationConfig::default();
        let (r1, f1) = simulate_campaign(&campaign(2), &config);
        let (r2, f2) = simulate_campaign(&campaign(2), &config);
        assert_eq!(r1.tasks_completed, r2.tasks_completed);
        assert_eq!(f1.len(), f2.len());
        assert_eq!(r1.rounds.len(), r2.rounds.len());
    }

    #[test]
    fn lossy_uplink_loses_captures_and_retransmits_recover_some() {
        let lossless = SimulationConfig {
            max_rounds: 4,
            ..Default::default()
        };
        let no_retry = SimulationConfig {
            uplink: UplinkModel {
                delivery_rate: 0.5,
                max_retransmits: 0,
            },
            ..lossless.clone()
        };
        let with_retry = SimulationConfig {
            uplink: UplinkModel {
                delivery_rate: 0.5,
                max_retransmits: 3,
            },
            ..lossless.clone()
        };
        let (r0, _) = simulate_campaign(&campaign(4), &lossless);
        let (r1, f1) = simulate_campaign(&campaign(4), &no_retry);
        let (r2, _) = simulate_campaign(&campaign(4), &with_retry);
        assert_eq!(r0.uploads_lost, 0, "perfect uplink loses nothing");
        assert!(
            r1.uploads_lost > 0,
            "a 50% link with no retries loses photos"
        );
        assert_eq!(r1.tasks_completed, f1.len(), "lost photos are not counted");
        // Retransmission converts most losses into deliveries.
        let loss_rate = |r: &CampaignReport| {
            r.uploads_lost as f64 / (r.tasks_completed + r.uploads_lost).max(1) as f64
        };
        assert!(
            loss_rate(&r2) < loss_rate(&r1),
            "retries should cut the loss rate: {} vs {}",
            loss_rate(&r2),
            loss_rate(&r1)
        );
        assert!(r2.retransmits > 0);
    }

    #[test]
    fn perfect_uplink_replays_the_historical_capture_sequence() {
        // delivery_rate = 1.0 must not consume RNG draws, so the default
        // config and an explicit perfect uplink are bit-identical.
        let default_cfg = SimulationConfig::default();
        let explicit = SimulationConfig {
            uplink: UplinkModel {
                delivery_rate: 1.0,
                max_retransmits: 9,
            },
            ..SimulationConfig::default()
        };
        let (r1, f1) = simulate_campaign(&campaign(2), &default_cfg);
        let (r2, f2) = simulate_campaign(&campaign(2), &explicit);
        assert_eq!(r1.tasks_completed, r2.tasks_completed);
        assert_eq!(f1.len(), f2.len());
        assert_eq!(r1.retransmits, 0);
    }

    #[test]
    fn iterative_rounds_beat_single_round() {
        // With a small per-round budget, later rounds must add coverage.
        let config = SimulationConfig {
            round_budget: 30,
            max_rounds: 6,
            ..Default::default()
        };
        let (report, _) = simulate_campaign(&campaign(4), &config);
        assert!(report.rounds.len() > 1);
        let first = report.rounds[0].direction_coverage;
        let last = report.rounds.last().unwrap().direction_coverage;
        assert!(last > first, "rounds added nothing: {first} -> {last}");
    }
}
