//! Photo-collection tasks.

use serde::{Deserialize, Serialize};
use tvdp_geo::GeoPoint;

/// Identifies a spatial task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

/// A request for one geo-tagged photo: go to `location` and photograph
/// toward `required_heading` (when the campaign needs a specific viewing
/// direction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialTask {
    /// Task identifier.
    pub id: TaskId,
    /// Where the photo must be taken.
    pub location: GeoPoint,
    /// Required compass viewing direction in degrees, if any.
    pub required_heading: Option<f64>,
    /// Reward points offered (incentive accounting).
    pub reward: u32,
}

impl SpatialTask {
    /// Creates a task with a directional requirement.
    pub fn directed(id: TaskId, location: GeoPoint, heading: f64, reward: u32) -> Self {
        Self {
            id,
            location,
            required_heading: Some(tvdp_geo::normalize_deg(heading)),
            reward,
        }
    }

    /// Creates a direction-free task.
    pub fn anywhere(id: TaskId, location: GeoPoint, reward: u32) -> Self {
        Self {
            id,
            location,
            required_heading: None,
            reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_task_normalizes_heading() {
        let t = SpatialTask::directed(TaskId(1), GeoPoint::new(34.0, -118.0), 370.0, 5);
        assert_eq!(t.required_heading, Some(10.0));
        assert_eq!(t.id.to_string(), "task-1");
    }

    #[test]
    fn anywhere_task_has_no_heading() {
        let t = SpatialTask::anywhere(TaskId(2), GeoPoint::new(34.0, -118.0), 3);
        assert_eq!(t.required_heading, None);
        assert_eq!(t.reward, 3);
    }
}
