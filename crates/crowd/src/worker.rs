//! Crowd workers.

use serde::{Deserialize, Serialize};
use tvdp_geo::GeoPoint;

/// Identifies a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u64);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// A participant who can perform photo tasks near their location
/// (GeoCrowd's worker model: a spatial region of acceptance plus a
/// maximum number of tasks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Worker identifier.
    pub id: WorkerId,
    /// Current position.
    pub location: GeoPoint,
    /// Maximum travel distance to a task, metres.
    pub range_m: f64,
    /// Maximum number of tasks this worker accepts per round.
    pub capacity: usize,
}

impl Worker {
    /// Creates a worker; panics on degenerate range/capacity.
    pub fn new(id: WorkerId, location: GeoPoint, range_m: f64, capacity: usize) -> Self {
        assert!(range_m > 0.0, "non-positive range");
        assert!(capacity >= 1, "zero capacity");
        Self {
            id,
            location,
            range_m,
            capacity,
        }
    }

    /// Whether this worker can reach `p`.
    pub fn can_reach(&self, p: &GeoPoint) -> bool {
        self.location.fast_distance_m(p) <= self.range_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_respects_range() {
        let w = Worker::new(WorkerId(1), GeoPoint::new(34.0, -118.25), 500.0, 3);
        let near = w.location.destination(90.0, 400.0);
        let far = w.location.destination(90.0, 800.0);
        assert!(w.can_reach(&near));
        assert!(!w.can_reach(&far));
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_rejected() {
        let _ = Worker::new(WorkerId(1), GeoPoint::new(0.0, 0.0), 100.0, 0);
    }
}
