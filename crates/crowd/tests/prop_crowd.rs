//! Property-based tests of the crowdsourcing substrate.

use proptest::prelude::*;
use tvdp_crowd::{assign_greedy, assign_matching, SpatialTask, TaskId, Worker, WorkerId};
use tvdp_geo::GeoPoint;

fn la_point() -> impl Strategy<Value = GeoPoint> {
    (34.0f64..34.05, -118.3f64..-118.25).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn workers() -> impl Strategy<Value = Vec<Worker>> {
    proptest::collection::vec((la_point(), 100.0f64..2_000.0, 1usize..4), 1..12).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (p, range, cap))| Worker::new(WorkerId(i as u64), p, range, cap))
            .collect()
    })
}

fn tasks() -> impl Strategy<Value = Vec<SpatialTask>> {
    proptest::collection::vec(la_point(), 1..25).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, p)| SpatialTask::anywhere(TaskId(i as u64), p, 1))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assignments_are_valid(workers in workers(), tasks in tasks()) {
        for assignment in [assign_greedy(&workers, &tasks), assign_matching(&workers, &tasks)] {
            // Every assigned pair is within range.
            for (wid, tid) in &assignment.pairs {
                let w = workers.iter().find(|w| w.id == *wid).expect("known worker");
                let t = tasks.iter().find(|t| t.id == *tid).expect("known task");
                prop_assert!(w.can_reach(&t.location));
            }
            // No task assigned twice; assigned + unassigned partition.
            let mut seen: Vec<TaskId> = assignment.pairs.iter().map(|(_, t)| *t).collect();
            seen.extend(&assignment.unassigned);
            seen.sort();
            let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
            expected.sort();
            prop_assert_eq!(seen, expected);
            // Capacities respected.
            for w in &workers {
                let load = assignment.pairs.iter().filter(|(wid, _)| *wid == w.id).count();
                prop_assert!(load <= w.capacity, "worker {} over capacity", w.id);
            }
            // Travel accounting is non-negative and finite.
            prop_assert!(assignment.total_travel_m.is_finite());
            prop_assert!(assignment.total_travel_m >= 0.0);
        }
    }

    #[test]
    fn matching_never_assigns_fewer(workers in workers(), tasks in tasks()) {
        let greedy = assign_greedy(&workers, &tasks);
        let matching = assign_matching(&workers, &tasks);
        prop_assert!(
            matching.assigned_count() >= greedy.assigned_count(),
            "matching {} < greedy {}",
            matching.assigned_count(),
            greedy.assigned_count()
        );
    }

    #[test]
    fn matching_is_maximal(workers in workers(), tasks in tasks()) {
        // No unassigned task may have a reachable worker with spare
        // capacity (otherwise the matching is not even maximal).
        let assignment = assign_matching(&workers, &tasks);
        for tid in &assignment.unassigned {
            let t = tasks.iter().find(|t| t.id == *tid).expect("known task");
            for w in &workers {
                if !w.can_reach(&t.location) {
                    continue;
                }
                let load = assignment.pairs.iter().filter(|(wid, _)| *wid == w.id).count();
                prop_assert!(
                    load >= w.capacity,
                    "task {tid} unassigned but worker {} reachable with spare capacity",
                    w.id
                );
            }
        }
    }
}
