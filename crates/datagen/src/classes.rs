//! The street-cleanliness label vocabulary.

use serde::{Deserialize, Serialize};

/// The five LASAN cleanliness classes of the paper's Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CleanlinessClass {
    /// Abandoned furniture or other single large object.
    BulkyItem,
    /// Scattered trash bags and debris.
    IllegalDumping,
    /// Homeless encampment (tents).
    Encampment,
    /// Overgrown vegetation encroaching on the walkway.
    OvergrownVegetation,
    /// Nothing to report.
    Clean,
}

impl CleanlinessClass {
    /// All classes in canonical (label-index) order.
    pub const ALL: [CleanlinessClass; 5] = [
        CleanlinessClass::BulkyItem,
        CleanlinessClass::IllegalDumping,
        CleanlinessClass::Encampment,
        CleanlinessClass::OvergrownVegetation,
        CleanlinessClass::Clean,
    ];

    /// Canonical label index (matches [`Self::ALL`]).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            // tvdp-lint: allow(no_panic, reason = "ALL enumerates every variant; index/from_index round-trip is covered by tests")
            .expect("class in ALL")
    }

    /// Class from a label index.
    pub fn from_index(i: usize) -> Option<CleanlinessClass> {
        Self::ALL.get(i).copied()
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CleanlinessClass::BulkyItem => "Bulky Item",
            CleanlinessClass::IllegalDumping => "Illegal Dumping",
            CleanlinessClass::Encampment => "Encampment",
            CleanlinessClass::OvergrownVegetation => "Overgrown Vegetation",
            CleanlinessClass::Clean => "Clean",
        }
    }

    /// Keywords an uploader might attach to an image of this class.
    pub fn keyword_pool(self) -> &'static [&'static str] {
        match self {
            CleanlinessClass::BulkyItem => &["couch", "furniture", "mattress", "abandoned"],
            CleanlinessClass::IllegalDumping => &["trash", "dumping", "debris", "bags"],
            CleanlinessClass::Encampment => &["tent", "encampment", "homeless"],
            CleanlinessClass::OvergrownVegetation => &["weeds", "vegetation", "overgrown"],
            CleanlinessClass::Clean => &["clean", "clear"],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, c) in CleanlinessClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(CleanlinessClass::from_index(i), Some(*c));
        }
        assert_eq!(CleanlinessClass::from_index(5), None);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CleanlinessClass::Encampment.label(), "Encampment");
        assert_eq!(
            CleanlinessClass::OvergrownVegetation.label(),
            "Overgrown Vegetation"
        );
    }

    #[test]
    fn keyword_pools_nonempty_and_distinctive() {
        for c in CleanlinessClass::ALL {
            assert!(!c.keyword_pool().is_empty());
        }
        assert!(CleanlinessClass::Encampment
            .keyword_pool()
            .contains(&"tent"));
    }
}
