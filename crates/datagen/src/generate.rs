//! End-to-end dataset generation: scenes + acquisition metadata.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::Fov;
use tvdp_vision::Image;

use crate::classes::CleanlinessClass;
use crate::scene::{render, render_styled, SceneParams};
use crate::streets::StreetGrid;

/// Generator configuration. Defaults are a scaled-down stand-in for the
/// paper's 22K-image LASAN dataset, sized so full feature extraction and
/// training stay laptop-fast; raise `n_images` toward 22_000 to approach
/// paper scale.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of images to generate.
    pub n_images: usize,
    /// Square image edge length in pixels.
    pub image_size: usize,
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Relative class frequencies in [`CleanlinessClass::ALL`] order.
    pub class_weights: [f64; 5],
    /// Probability of a graffiti co-label per class (same order).
    pub graffiti_rates: [f64; 5],
    /// Capture-period start (Unix seconds).
    pub period_start: i64,
    /// Capture-period length in seconds.
    pub period_len: i64,
    /// Number of distinct uploader ids to simulate.
    pub n_uploaders: u64,
    /// When set, each ~650 m district gets a persistent appearance
    /// (architectural palette): images captured in the same district
    /// share a color cast. Real streetscapes have this place-appearance
    /// correlation; the scene-localization experiment (paper ref [23])
    /// depends on it.
    pub appearance_by_block: bool,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            n_images: 1500,
            image_size: 48,
            seed: 0xC1EA,
            // Clean dominates real street imagery; incident classes are
            // rarer but well represented (the paper's set was curated).
            class_weights: [0.18, 0.18, 0.18, 0.16, 0.30],
            graffiti_rates: [0.15, 0.30, 0.30, 0.10, 0.08],
            period_start: 1_546_300_800, // 2019-01-01, the paper's era
            period_len: 90 * 24 * 3600,
            n_uploaders: 12,
            appearance_by_block: false,
        }
    }
}

/// One generated image with its ground truth and acquisition metadata.
#[derive(Debug, Clone)]
pub struct SyntheticImage {
    /// Pixels.
    pub image: Image,
    /// Ground-truth cleanliness class.
    pub cleanliness: CleanlinessClass,
    /// Ground-truth graffiti co-label (hidden from cleanliness training;
    /// used by the translational experiment).
    pub graffiti: bool,
    /// Camera field of view on the street grid.
    pub fov: Fov,
    /// Capture timestamp (Unix seconds).
    pub captured_at: i64,
    /// Upload timestamp (capture + transfer delay).
    pub uploaded_at: i64,
    /// Uploader-supplied keywords (noisy: class words plus generic ones).
    pub keywords: Vec<String>,
    /// Simulated uploader id.
    pub uploader: u64,
}

/// Generates a deterministic dataset per `config`.
pub fn generate(config: &DatasetConfig) -> Vec<SyntheticImage> {
    assert!(config.n_images > 0, "empty dataset requested");
    // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
    let total_weight: f64 = config.class_weights.iter().sum();
    assert!(total_weight > 0.0, "class weights sum to zero");

    let grid = StreetGrid::downtown_la();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.n_images);
    for _ in 0..config.n_images {
        // Class by weighted draw.
        let mut draw = rng.gen_range(0.0..total_weight);
        let mut class = CleanlinessClass::Clean;
        for (i, &w) in config.class_weights.iter().enumerate() {
            if draw < w {
                class = CleanlinessClass::ALL[i];
                break;
            }
            draw -= w;
        }
        let graffiti = rng.gen_bool(config.graffiti_rates[class.index()]);
        let params = SceneParams::sample(config.image_size, &mut rng);
        // RNG order differs between the modes on purpose: the default
        // path preserves the calibrated stream (render before FOV);
        // district mode needs the position first to derive the palette.
        let (image, fov) = if config.appearance_by_block {
            let fov = grid.sample_fov(&mut rng);
            // Deterministic district palette: buildings in one district
            // share a facade paint. SplitMix64 over the district cell
            // picks a stable, saturated wall color.
            let block_row = ((fov.camera.lat - 34.0) / 0.006) as i64;
            let block_col = ((fov.camera.lon + 118.3) / 0.006) as i64;
            let mut z = (block_row as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (block_col as u64).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 30)).wrapping_mul(0x94D049BB133111EB);
            let wall = [
                60.0 + ((z >> 8) & 0xFF) as f32 / 255.0 * 160.0,
                60.0 + ((z >> 24) & 0xFF) as f32 / 255.0 * 160.0,
                60.0 + ((z >> 40) & 0xFF) as f32 / 255.0 * 160.0,
            ];
            (
                render_styled(class, graffiti, &params, &mut rng, Some(wall)),
                fov,
            )
        } else {
            let image = render(class, graffiti, &params, &mut rng);
            (image, grid.sample_fov(&mut rng))
        };
        let captured_at = config.period_start + rng.gen_range(0..config.period_len.max(1));
        let uploaded_at = captured_at + rng.gen_range(30..3600 * 6);

        // Keywords: 60% of images carry one class keyword; most carry a
        // generic street word; graffiti sometimes mentioned.
        let mut keywords = Vec::new();
        if rng.gen_bool(0.6) {
            let pool = class.keyword_pool();
            keywords.push(pool[rng.gen_range(0..pool.len())].to_string());
        }
        if rng.gen_bool(0.8) {
            const GENERIC: [&str; 4] = ["street", "sidewalk", "downtown", "la"];
            keywords.push(GENERIC[rng.gen_range(0..GENERIC.len())].to_string());
        }
        if graffiti && rng.gen_bool(0.4) {
            keywords.push("graffiti".to_string());
        }

        out.push(SyntheticImage {
            image,
            cleanliness: class,
            graffiti,
            fov,
            captured_at,
            uploaded_at,
            keywords,
            uploader: rng.gen_range(0..config.n_uploaders),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            n_images: 120,
            image_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_count_with_all_classes() {
        let data = generate(&small_config());
        assert_eq!(data.len(), 120);
        for class in CleanlinessClass::ALL {
            assert!(
                data.iter().any(|d| d.cleanliness == class),
                "class {class:?} absent from 120 samples"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image, y.image);
            assert_eq!(x.cleanliness, y.cleanliness);
            assert_eq!(x.captured_at, y.captured_at);
        }
        let c = generate(&DatasetConfig {
            seed: 1,
            ..small_config()
        });
        assert!(a.iter().zip(&c).any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn class_weights_respected() {
        let config = DatasetConfig {
            n_images: 600,
            image_size: 16,
            class_weights: [0.0, 0.0, 0.0, 0.0, 1.0],
            ..Default::default()
        };
        let data = generate(&config);
        assert!(data
            .iter()
            .all(|d| d.cleanliness == CleanlinessClass::Clean));
    }

    #[test]
    fn timestamps_ordered_and_in_period() {
        let config = small_config();
        for d in generate(&config) {
            assert!(d.captured_at >= config.period_start);
            assert!(d.captured_at < config.period_start + config.period_len);
            assert!(d.uploaded_at > d.captured_at);
        }
    }

    #[test]
    fn fovs_on_the_grid() {
        let grid = StreetGrid::downtown_la();
        for d in generate(&small_config()) {
            assert!(grid.region().contains(&d.fov.camera));
        }
    }

    #[test]
    fn graffiti_rate_tracks_config() {
        let config = DatasetConfig {
            n_images: 400,
            image_size: 16,
            graffiti_rates: [1.0; 5],
            ..Default::default()
        };
        let data = generate(&config);
        assert!(data.iter().all(|d| d.graffiti));
        let config0 = DatasetConfig {
            graffiti_rates: [0.0; 5],
            ..config
        };
        assert!(generate(&config0).iter().all(|d| !d.graffiti));
    }

    #[test]
    fn keywords_sometimes_match_class() {
        let data = generate(&DatasetConfig {
            n_images: 300,
            image_size: 16,
            ..Default::default()
        });
        let with_class_word = data
            .iter()
            .filter(|d| {
                d.keywords
                    .iter()
                    .any(|k| d.cleanliness.keyword_pool().contains(&k.as_str()))
            })
            .count();
        // Around 60% carry a class keyword.
        assert!(with_class_word > 100, "only {with_class_word} of 300");
        assert!(with_class_word < 250);
    }
}

#[cfg(test)]
mod block_appearance_tests {
    use super::*;

    fn district(lat: f64, lon: f64) -> (i64, i64) {
        (
            ((lat - 34.0) / 0.006) as i64,
            ((lon + 118.3) / 0.006) as i64,
        )
    }

    #[test]
    fn district_mode_is_deterministic_and_distinct() {
        let base = DatasetConfig {
            n_images: 60,
            image_size: 16,
            ..Default::default()
        };
        let styled = generate(&DatasetConfig {
            appearance_by_block: true,
            ..base.clone()
        });
        let styled2 = generate(&DatasetConfig {
            appearance_by_block: true,
            ..base.clone()
        });
        for (a, b) in styled.iter().zip(&styled2) {
            assert_eq!(a.image, b.image);
            assert_eq!(a.fov.camera, b.fov.camera);
        }
        // Distinct from the default mode.
        let plain = generate(&base);
        assert!(styled.iter().zip(&plain).any(|(a, b)| a.image != b.image));
    }

    #[test]
    fn same_district_images_share_a_palette() {
        let styled = generate(&DatasetConfig {
            n_images: 240,
            image_size: 16,
            appearance_by_block: true,
            ..Default::default()
        });
        // Mean-RGB distance within a district must be clearly smaller
        // than across districts (persistent facade paint).
        let rgb: Vec<[f32; 3]> = styled.iter().map(|d| d.image.mean_rgb()).collect();
        let dist = |a: [f32; 3], b: [f32; 3]| -> f64 {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| f64::from((x - y) * (x - y)))
                .sum::<f64>()
                .sqrt()
        };
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..styled.len() {
            for j in (i + 1)..styled.len() {
                let di = district(styled[i].fov.camera.lat, styled[i].fov.camera.lon);
                let dj = district(styled[j].fov.camera.lat, styled[j].fov.camera.lon);
                let d = dist(rgb[i], rgb[j]);
                if di == dj {
                    within = (within.0 + d, within.1 + 1);
                } else {
                    across = (across.0 + d, across.1 + 1);
                }
            }
        }
        let within_mean = within.0 / within.1 as f64;
        let across_mean = across.0 / across.1 as f64;
        assert!(
            within_mean < across_mean * 0.95,
            "no palette coherence: within {within_mean:.1} vs across {across_mean:.1}"
        );
    }
}
