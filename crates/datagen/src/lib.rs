//! Synthetic LASAN-style dataset generator.
//!
//! The paper's evaluation uses 22K real geo-tagged street images labelled
//! by the Los Angeles Sanitation Department with five cleanliness classes
//! (Fig. 5): *bulky item*, *illegal dumping*, *encampment*, *overgrown
//! vegetation*, and *clean*. That dataset is not public, so this crate
//! procedurally renders street scenes whose classes differ in the *kind*
//! of pixel statistics they exhibit:
//!
//! * bulky item — one large box-shaped object on the sidewalk,
//! * illegal dumping — a scatter of small dark bags/debris blobs,
//! * encampment — tent silhouettes with tarp-blue panels,
//! * overgrown vegetation — high-frequency green texture regions,
//! * clean — bare street, nothing added.
//!
//! Illumination, color cast, viewpoint, and noise vary per image, so no
//! trivial single-pixel rule separates the classes; the relative power of
//! color vs gradient vs spatial-structure features (paper Fig. 6) is
//! decided by genuine feature extraction downstream, not by construction.
//!
//! Each image also carries realistic acquisition metadata — GPS position
//! on a street grid, a camera FOV aligned with the street, capture/upload
//! timestamps, keywords, an uploader — plus a hidden graffiti co-label
//! used by the translational-data experiment (Fig. 9).

pub mod classes;
pub mod generate;
pub mod scene;
pub mod streets;

pub use classes::CleanlinessClass;
pub use generate::{generate, DatasetConfig, SyntheticImage};
pub use streets::StreetGrid;
