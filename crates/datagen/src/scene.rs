//! Procedural street-scene rendering.
//!
//! Scenes are composed of a building wall, a sidewalk band, and a street
//! band, with class-specific foreground objects. Difficulty is calibrated
//! to reproduce the per-class structure of the paper's Fig. 7: vegetation
//! has a strong color signature (easiest), while encampment tarps vary in
//! color so their signal is mostly structural (hardest).

use rand::rngs::StdRng;
use rand::Rng;

use tvdp_vision::Image;

use crate::classes::CleanlinessClass;

/// Per-image rendering conditions.
#[derive(Debug, Clone, Copy)]
pub struct SceneParams {
    /// Square image edge length in pixels.
    pub size: usize,
    /// Global brightness multiplier (time of day).
    pub illumination: f32,
    /// Per-channel color cast multipliers (camera white balance).
    pub color_cast: [f32; 3],
    /// Gaussian pixel-noise sigma in 8-bit units.
    pub noise_sigma: f32,
}

impl SceneParams {
    /// Samples realistic conditions.
    pub fn sample(size: usize, rng: &mut StdRng) -> Self {
        Self {
            size,
            illumination: rng.gen_range(0.55..1.35),
            color_cast: [
                rng.gen_range(0.8..1.2),
                rng.gen_range(0.8..1.2),
                rng.gen_range(0.8..1.2),
            ],
            noise_sigma: rng.gen_range(3.0..9.0),
        }
    }
}

/// A float RGB canvas for compositing before quantization.
struct Canvas {
    size: usize,
    data: Vec<[f32; 3]>,
}

impl Canvas {
    fn new(size: usize) -> Self {
        Self {
            size,
            data: vec![[0.0; 3]; size * size],
        }
    }

    #[inline]
    fn set(&mut self, x: usize, y: usize, c: [f32; 3]) {
        if x < self.size && y < self.size {
            self.data[y * self.size + x] = c;
        }
    }

    #[inline]
    fn get(&self, x: usize, y: usize) -> [f32; 3] {
        self.data[y * self.size + x]
    }

    fn fill_rect(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, c: [f32; 3]) {
        let s = self.size as f32;
        let (xa, xb) = ((x0 * s) as usize, ((x1 * s) as usize).min(self.size));
        let (ya, yb) = ((y0 * s) as usize, ((y1 * s) as usize).min(self.size));
        for y in ya..yb {
            for x in xa..xb {
                self.set(x, y, c);
            }
        }
    }

    fn fill_ellipse(&mut self, cx: f32, cy: f32, rx: f32, ry: f32, c: [f32; 3]) {
        let s = self.size as f32;
        let (cx, cy, rx, ry) = (cx * s, cy * s, rx * s, ry * s);
        let x0 = ((cx - rx).floor().max(0.0)) as usize;
        let x1 = (((cx + rx).ceil()) as usize).min(self.size);
        let y0 = ((cy - ry).floor().max(0.0)) as usize;
        let y1 = (((cy + ry).ceil()) as usize).min(self.size);
        for y in y0..y1 {
            for x in x0..x1 {
                let dx = (x as f32 - cx) / rx.max(1e-6);
                let dy = (y as f32 - cy) / ry.max(1e-6);
                if dx * dx + dy * dy <= 1.0 {
                    self.set(x, y, c);
                }
            }
        }
    }

    /// Multiplies the existing colors in a rectangle (shadow casting).
    fn shade_rect(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, factor: f32) {
        let s = self.size as f32;
        let (xa, xb) = ((x0 * s) as usize, ((x1 * s) as usize).min(self.size));
        let (ya, yb) = ((y0 * s) as usize, ((y1 * s) as usize).min(self.size));
        for y in ya..yb {
            for x in xa..xb {
                let c = self.get(x, y);
                self.set(x, y, shade(c, factor));
            }
        }
    }

    /// Filled triangle with apex at the top — a tent silhouette.
    fn fill_tent(&mut self, cx: f32, base_y: f32, half_w: f32, height: f32, c: [f32; 3]) {
        let s = self.size as f32;
        let (cx, base_y, half_w, height) = (cx * s, base_y * s, half_w * s, height * s);
        let y0 = ((base_y - height).max(0.0)) as usize;
        let y1 = (base_y as usize).min(self.size);
        for y in y0..y1 {
            // Width grows linearly from apex to base.
            let frac = (y as f32 - (base_y - height)) / height.max(1e-6);
            let w = half_w * frac;
            let xa = ((cx - w).max(0.0)) as usize;
            let xb = ((cx + w) as usize).min(self.size);
            for x in xa..xb {
                self.set(x, y, c);
            }
        }
    }
}

fn shade(base: [f32; 3], amount: f32) -> [f32; 3] {
    [base[0] * amount, base[1] * amount, base[2] * amount]
}

/// Renders one labelled street scene with the default (random) wall tone.
pub fn render(
    class: CleanlinessClass,
    graffiti: bool,
    params: &SceneParams,
    rng: &mut StdRng,
) -> Image {
    render_styled(class, graffiti, params, rng, None)
}

/// Renders one labelled street scene; `wall_base` overrides the building
/// facade color (used for persistent district palettes).
pub fn render_styled(
    class: CleanlinessClass,
    graffiti: bool,
    params: &SceneParams,
    rng: &mut StdRng,
    wall_base: Option<[f32; 3]>,
) -> Image {
    let size = params.size;
    assert!(size >= 16, "scene too small to carry structure");
    let mut canvas = Canvas::new(size);

    // --- Background bands -------------------------------------------------
    // Building wall hue varies per image so color alone cannot identify the
    // background.
    // The random tone is always drawn so the RNG stream is identical
    // whether or not a district palette overrides it (keeps every other
    // aspect of a dataset comparable across modes).
    let random_tone: [f32; 3] = {
        let tone = rng.gen_range(0.0f32..1.0);
        [
            120.0 + 60.0 * tone + rng.gen_range(-10.0..10.0),
            105.0 + 45.0 * tone + rng.gen_range(-10.0..10.0),
            90.0 + 40.0 * tone + rng.gen_range(-10.0..10.0),
        ]
    };
    let wall_base = wall_base.unwrap_or(random_tone);
    let wall_h = rng.gen_range(0.38f32..0.5);
    let sidewalk_h = rng.gen_range(0.2f32..0.3);
    canvas.fill_rect(0.0, 0.0, 1.0, wall_h, wall_base);
    // Brick-like horizontal seams on the wall.
    let seam = shade(wall_base, 0.8);
    let mut y = 0.06f32;
    while y < wall_h {
        canvas.fill_rect(0.0, y, 1.0, y + 0.012, seam);
        // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
        y += rng.gen_range(0.07..0.1);
    }
    let sidewalk = [168.0 + rng.gen_range(-12.0f32..12.0); 3];
    canvas.fill_rect(0.0, wall_h, 1.0, wall_h + sidewalk_h, sidewalk);
    let street = [92.0 + rng.gen_range(-10.0f32..10.0); 3];
    canvas.fill_rect(0.0, wall_h + sidewalk_h, 1.0, 1.0, street);
    // Curb line.
    canvas.fill_rect(
        0.0,
        wall_h + sidewalk_h - 0.015,
        1.0,
        wall_h + sidewalk_h,
        shade(sidewalk, 0.6),
    );

    // --- Class-independent street clutter ----------------------------------
    // Parked cars, posters, and cast shadows appear in every class. They
    // inject strong color variance uncorrelated with the label, so color
    // histograms cannot carry the classification alone (as in real street
    // imagery); structural features must do the work.
    if rng.gen_bool(0.55) {
        // Parked car: saturated rectangle low in the street band.
        let w = rng.gen_range(0.2f32..0.35);
        let x = rng.gen_range(0.0f32..(1.0 - w));
        let car_top = wall_h + sidewalk_h + rng.gen_range(0.02..0.08);
        let car: [f32; 3] = [
            rng.gen_range(20.0f32..235.0),
            rng.gen_range(20.0f32..235.0),
            rng.gen_range(20.0f32..235.0),
        ];
        canvas.fill_rect(x, car_top, x + w, (car_top + 0.12).min(1.0), car);
        canvas.fill_rect(
            x + w * 0.1,
            car_top - 0.05,
            x + w * 0.9,
            car_top,
            shade(car, 0.8),
        );
    }
    if rng.gen_bool(0.45) {
        // Poster / storefront sign on the wall.
        let w = rng.gen_range(0.1f32..0.22);
        let x = rng.gen_range(0.0f32..(1.0 - w));
        let y0 = rng.gen_range(0.02f32..(wall_h - 0.15).max(0.03));
        let sign: [f32; 3] = [
            rng.gen_range(40.0f32..250.0),
            rng.gen_range(40.0f32..250.0),
            rng.gen_range(40.0f32..250.0),
        ];
        canvas.fill_rect(x, y0, x + w, y0 + rng.gen_range(0.08..0.14), sign);
    }
    if rng.gen_bool(0.4) {
        // Building shadow across part of the scene.
        let w = rng.gen_range(0.25f32..0.6);
        let x = rng.gen_range(0.0f32..(1.0 - w));
        canvas.shade_rect(x, 0.0, x + w, 1.0, rng.gen_range(0.55..0.8));
    }

    // --- Graffiti (co-label for the translational experiment) -------------
    if graffiti {
        let strokes = rng.gen_range(2..5);
        for _ in 0..strokes {
            let color = [
                rng.gen_range(120.0f32..255.0),
                rng.gen_range(30.0f32..200.0),
                rng.gen_range(120.0f32..255.0),
            ];
            let mut x = rng.gen_range(0.05f32..0.85);
            let mut yy = rng.gen_range(0.05f32..wall_h - 0.08);
            for _ in 0..rng.gen_range(6..14) {
                canvas.fill_rect(x, yy, x + 0.04, yy + 0.025, color);
                x = (x + rng.gen_range(-0.05f32..0.07)).clamp(0.0, 0.92);
                yy = (yy + rng.gen_range(-0.03f32..0.03)).clamp(0.0, wall_h - 0.03);
            }
        }
    }

    // --- Class foreground --------------------------------------------------
    let ground_top = wall_h + 0.02;
    let ground_bottom = 0.95;
    match class {
        CleanlinessClass::Clean => {}
        CleanlinessClass::BulkyItem => {
            // One large box-like object (furniture) with a darker side face.
            let w = rng.gen_range(0.28f32..0.45);
            let h = rng.gen_range(0.2f32..0.32);
            let x = rng.gen_range(0.05f32..(0.95 - w));
            let yb = rng.gen_range((ground_top + h)..ground_bottom);
            let body: [f32; 3] = [
                rng.gen_range(90.0f32..150.0),
                rng.gen_range(60.0f32..105.0),
                rng.gen_range(40.0f32..80.0),
            ];
            canvas.fill_rect(x, yb - h, x + w, yb, body);
            canvas.fill_rect(x, yb - h, x + w * 0.25, yb, shade(body, 0.65));
            // Cushion seams.
            canvas.fill_rect(x, yb - h * 0.5, x + w, yb - h * 0.45, shade(body, 0.8));
        }
        CleanlinessClass::IllegalDumping => {
            // A scatter of small dark bags and debris.
            let n = rng.gen_range(5..10);
            let cx = rng.gen_range(0.2f32..0.8);
            for _ in 0..n {
                let ex = (cx + rng.gen_range(-0.22f32..0.22)).clamp(0.03, 0.97);
                let ey = rng.gen_range(ground_top + 0.05..ground_bottom);
                let r = rng.gen_range(0.03f32..0.07);
                let dark = rng.gen_range(25.0f32..70.0);
                let bag = [
                    dark + rng.gen_range(0.0..25.0),
                    dark + rng.gen_range(0.0..20.0),
                    dark + rng.gen_range(0.0..30.0),
                ];
                canvas.fill_ellipse(ex, ey, r, r * rng.gen_range(0.6..1.0), bag);
            }
        }
        CleanlinessClass::Encampment => {
            // 1-3 tents; tarp color varies (blue common, but gray/green
            // occur), so shape carries most of the signal.
            let n = rng.gen_range(1..4);
            for _ in 0..n {
                let cx = rng.gen_range(0.15f32..0.85);
                let base_y = rng.gen_range(ground_top + 0.18..ground_bottom);
                let half_w = rng.gen_range(0.12f32..0.2);
                let h = rng.gen_range(0.16f32..0.26);
                let tarp = match rng.gen_range(0..4) {
                    0 | 1 => [
                        rng.gen_range(30.0f32..80.0),
                        rng.gen_range(70.0f32..120.0),
                        rng.gen_range(150.0f32..220.0),
                    ],
                    2 => [150.0, 150.0, 155.0],
                    _ => [
                        rng.gen_range(60.0f32..90.0),
                        rng.gen_range(110.0f32..150.0),
                        rng.gen_range(60.0f32..90.0),
                    ],
                };
                canvas.fill_tent(cx, base_y, half_w, h, tarp);
                // Shaded right panel gives the tent its 3-D silhouette.
                canvas.fill_tent(
                    cx + half_w * 0.45,
                    base_y,
                    half_w * 0.55,
                    h * 0.96,
                    shade(tarp, 0.6),
                );
            }
        }
        CleanlinessClass::OvergrownVegetation => {
            // High-frequency green texture patches along the walkway.
            let patches = rng.gen_range(2..4);
            for _ in 0..patches {
                let px = rng.gen_range(0.0f32..0.7);
                let pw = rng.gen_range(0.25f32..0.45);
                let py = rng.gen_range(ground_top..(ground_bottom - 0.2));
                let ph = rng.gen_range(0.15f32..0.3);
                let s = size as f32;
                for yy in ((py * s) as usize)..(((py + ph) * s) as usize).min(size) {
                    for xx in ((px * s) as usize)..(((px + pw) * s) as usize).min(size) {
                        // Leafy speckle: green with strong per-pixel variance.
                        let g = rng.gen_range(90.0f32..200.0);
                        canvas.set(xx, yy, [g * 0.35, g, g * 0.3]);
                    }
                }
            }
        }
    }

    // --- Photometric conditions + sensor noise -----------------------------
    Image::from_fn(size, size, |x, y| {
        let c = canvas.get(x, y);
        let mut out = [0u8; 3];
        for ch in 0..3 {
            let u1: f32 = rng.gen_range(1e-7..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            let v = c[ch] * params.illumination * params.color_cast[ch] + z * params.noise_sigma;
            out[ch] = v.clamp(0.0, 255.0) as u8;
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn render_one(class: CleanlinessClass, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = SceneParams::sample(48, &mut rng);
        render(class, false, &params, &mut rng)
    }

    #[test]
    fn deterministic_under_seed() {
        let a = render_one(CleanlinessClass::Encampment, 7);
        let b = render_one(CleanlinessClass::Encampment, 7);
        assert_eq!(a, b);
        let c = render_one(CleanlinessClass::Encampment, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn vegetation_is_greener_than_clean() {
        // Average over several renders to beat the background variance.
        let mut veg_green = 0.0;
        let mut clean_green = 0.0;
        for seed in 0..10 {
            let v = render_one(CleanlinessClass::OvergrownVegetation, seed).mean_rgb();
            let c = render_one(CleanlinessClass::Clean, seed + 100).mean_rgb();
            veg_green += f64::from(v[1] - (v[0] + v[2]) / 2.0);
            clean_green += f64::from(c[1] - (c[0] + c[2]) / 2.0);
        }
        assert!(
            veg_green > clean_green + 20.0,
            "vegetation green excess {veg_green} vs clean {clean_green}"
        );
    }

    #[test]
    fn dumping_is_darker_than_clean() {
        let mut dump = 0.0;
        let mut clean = 0.0;
        for seed in 0..10 {
            let d = render_one(CleanlinessClass::IllegalDumping, seed).mean_rgb();
            let c = render_one(CleanlinessClass::Clean, seed).mean_rgb();
            dump += f64::from(d[0] + d[1] + d[2]);
            clean += f64::from(c[0] + c[1] + c[2]);
        }
        assert!(dump < clean, "dumping {dump} not darker than clean {clean}");
    }

    #[test]
    fn graffiti_changes_the_wall() {
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let params = SceneParams {
            size: 48,
            illumination: 1.0,
            color_cast: [1.0; 3],
            noise_sigma: 0.0,
        };
        let plain = render(CleanlinessClass::Clean, false, &params, &mut rng1);
        let tagged = render(CleanlinessClass::Clean, true, &params, &mut rng2);
        assert_ne!(plain, tagged);
    }

    #[test]
    fn all_classes_render_at_various_sizes() {
        for class in CleanlinessClass::ALL {
            for size in [16, 32, 64] {
                let mut rng = StdRng::seed_from_u64(1);
                let params = SceneParams::sample(size, &mut rng);
                let img = render(class, true, &params, &mut rng);
                assert_eq!(img.width(), size);
                assert_eq!(img.height(), size);
            }
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_scene_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let params = SceneParams {
            size: 8,
            illumination: 1.0,
            color_cast: [1.0; 3],
            noise_sigma: 0.0,
        };
        let _ = render(CleanlinessClass::Clean, false, &params, &mut rng);
    }
}
