//! A synthetic street grid with camera placement.
//!
//! LASAN imagery is captured from garbage trucks driving city streets, so
//! camera positions lie on streets and headings point along (or slightly
//! off) the direction of travel. The grid is a Manhattan-style lattice of
//! north-south and east-west streets over a configurable region.

use rand::rngs::StdRng;
use rand::Rng;

use tvdp_geo::{BBox, Fov, GeoPoint};

/// A lattice of streets over a region.
#[derive(Debug, Clone)]
pub struct StreetGrid {
    region: BBox,
    /// Street spacing in metres.
    spacing_m: f64,
    ns_lons: Vec<f64>,
    ew_lats: Vec<f64>,
}

impl StreetGrid {
    /// Builds a grid with streets every `spacing_m` metres.
    pub fn new(region: BBox, spacing_m: f64) -> Self {
        assert!(spacing_m > 10.0, "street spacing too small");
        let mean_lat = ((region.min_lat + region.max_lat) / 2.0).to_radians();
        let dlat = spacing_m / tvdp_geo::METERS_PER_DEG_LAT;
        let dlon = spacing_m / (tvdp_geo::METERS_PER_DEG_LAT * mean_lat.cos());
        let mut ns_lons = Vec::new();
        let mut lon = region.min_lon;
        while lon <= region.max_lon {
            ns_lons.push(lon);
            lon += dlon;
        }
        let mut ew_lats = Vec::new();
        let mut lat = region.min_lat;
        while lat <= region.max_lat {
            ew_lats.push(lat);
            lat += dlat;
        }
        Self {
            region,
            spacing_m,
            ns_lons,
            ew_lats,
        }
    }

    /// Downtown-LA default: a ~2 km x 2 km region with 150 m blocks.
    pub fn downtown_la() -> Self {
        let sw = GeoPoint::new(34.035, -118.26);
        let ne = GeoPoint::new(34.053, -118.238);
        Self::new(BBox::new(sw.lat, sw.lon, ne.lat, ne.lon), 150.0)
    }

    /// The covered region.
    pub fn region(&self) -> &BBox {
        &self.region
    }

    /// Number of streets `(north-south, east-west)`.
    pub fn street_counts(&self) -> (usize, usize) {
        (self.ns_lons.len(), self.ew_lats.len())
    }

    /// Samples a camera pose on a random street: position on the street
    /// line (with a small lateral offset) and heading along the street
    /// (with jitter), as a garbage-truck-mounted camera would produce.
    pub fn sample_camera(&self, rng: &mut StdRng) -> (GeoPoint, f64) {
        let lateral = self.spacing_m * 0.03;
        let mean_lat = ((self.region.min_lat + self.region.max_lat) / 2.0).to_radians();
        let m_per_deg_lon = tvdp_geo::METERS_PER_DEG_LAT * mean_lat.cos();
        if rng.gen_bool(0.5) {
            // North-south street: heading 0 or 180.
            let lon = self.ns_lons[rng.gen_range(0..self.ns_lons.len())];
            let lat = rng.gen_range(self.region.min_lat..self.region.max_lat);
            let lon_off = rng.gen_range(-lateral..lateral) / m_per_deg_lon;
            let heading = if rng.gen_bool(0.5) { 0.0 } else { 180.0 };
            let heading = heading + rng.gen_range(-20.0..20.0);
            (
                GeoPoint::new(
                    lat,
                    (lon + lon_off).clamp(self.region.min_lon, self.region.max_lon),
                ),
                tvdp_geo::normalize_deg(heading),
            )
        } else {
            // East-west street: heading 90 or 270.
            let lat = self.ew_lats[rng.gen_range(0..self.ew_lats.len())];
            let lon = rng.gen_range(self.region.min_lon..self.region.max_lon);
            let lat_off = rng.gen_range(-lateral..lateral) / tvdp_geo::METERS_PER_DEG_LAT;
            let heading = if rng.gen_bool(0.5) { 90.0 } else { 270.0 };
            let heading = heading + rng.gen_range(-20.0..20.0);
            (
                GeoPoint::new(
                    (lat + lat_off).clamp(self.region.min_lat, self.region.max_lat),
                    lon,
                ),
                tvdp_geo::normalize_deg(heading),
            )
        }
    }

    /// Samples a full FOV: camera pose plus realistic optics (50–70°
    /// aperture, 60–120 m visible range).
    pub fn sample_fov(&self, rng: &mut StdRng) -> Fov {
        let (camera, heading) = self.sample_camera(rng);
        Fov::new(
            camera,
            heading,
            rng.gen_range(50.0..70.0),
            rng.gen_range(60.0..120.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn grid_has_streets_in_both_directions() {
        let grid = StreetGrid::downtown_la();
        let (ns, ew) = grid.street_counts();
        assert!(ns >= 5, "ns {ns}");
        assert!(ew >= 5, "ew {ew}");
    }

    #[test]
    fn cameras_inside_region() {
        let grid = StreetGrid::downtown_la();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (p, heading) = grid.sample_camera(&mut rng);
            assert!(grid.region().contains(&p), "camera escaped region: {p:?}");
            assert!((0.0..360.0).contains(&heading));
        }
    }

    #[test]
    fn headings_cluster_on_street_axes() {
        let grid = StreetGrid::downtown_la();
        let mut rng = StdRng::seed_from_u64(2);
        let mut near_axis = 0;
        let n = 300;
        for _ in 0..n {
            let (_, heading) = grid.sample_camera(&mut rng);
            let to_axis = [0.0, 90.0, 180.0, 270.0]
                .iter()
                .map(|&a| tvdp_geo::angular_diff_deg(heading, a))
                .fold(f64::INFINITY, f64::min);
            if to_axis <= 20.0 {
                near_axis += 1;
            }
        }
        assert_eq!(
            near_axis, n,
            "all headings within 20 degrees of a street axis"
        );
    }

    #[test]
    fn fovs_have_realistic_optics() {
        let grid = StreetGrid::downtown_la();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let fov = grid.sample_fov(&mut rng);
            assert!((50.0..70.0).contains(&fov.angle_deg));
            assert!((60.0..120.0).contains(&fov.radius_m));
        }
    }

    #[test]
    fn deterministic_sampling() {
        let grid = StreetGrid::downtown_la();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(grid.sample_camera(&mut a), grid.sample_camera(&mut b));
        }
    }
}
