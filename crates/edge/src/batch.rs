//! Deterministic upload coalescing for the edge acquisition path.
//!
//! An edge node that journals every captured sample as its own server
//! round-trip pays one durable-commit fsync per sample on the platform
//! side. [`UploadBatcher`] accumulates [`UploadPacket`]s and releases
//! them in groups sized by an explicit [`BatchPolicy`] — packet count,
//! payload bytes, or a maximum virtual-clock wait, whichever trips
//! first — so the server can journal a whole group through its
//! group-commit WAL path (`data/add_batch`) with a single fsync.
//!
//! The policy is deterministic by construction: every threshold is
//! evaluated against explicit state and the caller's [`VirtualClock`],
//! never the host's wall clock, so identical packet/tick streams cut
//! identical batches on every run and at every concurrency level.

use crate::transport::{UploadPacket, VirtualClock};

/// When an accumulated group of uploads is released.
///
/// Mirrors the storage layer's group-commit policy: a batch becomes due
/// when it reaches `max_packets` packets, `max_bytes` of payload, or
/// when its oldest packet has waited `max_wait_ms` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Packet-count threshold (>= 1; a value of 1 degenerates to
    /// per-packet sends).
    pub max_packets: usize,
    /// Total payload-byte threshold.
    pub max_bytes: usize,
    /// Longest a packet may wait before the batch is due anyway, in
    /// virtual milliseconds. `0` makes every non-empty batch due
    /// immediately.
    pub max_wait_ms: u64,
}

impl BatchPolicy {
    /// Per-packet sends: every enqueued packet is immediately due.
    pub fn per_packet() -> Self {
        BatchPolicy {
            max_packets: 1,
            max_bytes: usize::MAX,
            max_wait_ms: 0,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_packets: 32,
            max_bytes: 1 << 20,
            max_wait_ms: 250,
        }
    }
}

/// Accumulates upload packets until the [`BatchPolicy`] trips, then
/// releases them in enqueue order. See the module docs.
#[derive(Debug)]
pub struct UploadBatcher {
    policy: BatchPolicy,
    pending: Vec<UploadPacket>,
    pending_bytes: usize,
    oldest_ms: i64,
}

impl UploadBatcher {
    /// An empty batcher under `policy` (`max_packets` is clamped to at
    /// least 1).
    pub fn new(policy: BatchPolicy) -> Self {
        UploadBatcher {
            policy: BatchPolicy {
                max_packets: policy.max_packets.max(1),
                ..policy
            },
            pending: Vec::new(),
            pending_bytes: 0,
            oldest_ms: 0,
        }
    }

    /// Adds a packet to the pending batch, stamping the wait-clock on
    /// the first packet. Returns whether the batch is now due.
    pub fn enqueue(&mut self, packet: UploadPacket, clock: &VirtualClock) -> bool {
        if self.pending.is_empty() {
            self.oldest_ms = clock.now_ms();
        }
        self.pending_bytes += packet.payload.len();
        self.pending.push(packet);
        self.is_due(clock)
    }

    /// Whether the pending batch should be released now. An empty
    /// batch is never due.
    pub fn is_due(&self, clock: &VirtualClock) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let max_wait = i64::try_from(self.policy.max_wait_ms).unwrap_or(i64::MAX);
        self.pending.len() >= self.policy.max_packets
            || self.pending_bytes >= self.policy.max_bytes
            || clock.now_ms().saturating_sub(self.oldest_ms) >= max_wait
    }

    /// Takes the pending packets, in enqueue order, resetting the
    /// batcher. Call when [`UploadBatcher::is_due`] (or a shutdown
    /// drain) says so.
    pub fn take_batch(&mut self) -> Vec<UploadPacket> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }

    /// Packets currently pending.
    pub fn pending_packets(&self) -> usize {
        self.pending.len()
    }

    /// Payload bytes currently pending.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// The policy this batcher cuts batches under.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(i: usize, bytes: usize) -> UploadPacket {
        UploadPacket::new(format!("k{i}"), vec![b'x'; bytes])
    }

    #[test]
    fn count_threshold_trips_in_enqueue_order() {
        let clock = VirtualClock::new(0);
        let mut b = UploadBatcher::new(BatchPolicy {
            max_packets: 3,
            max_bytes: usize::MAX,
            max_wait_ms: u64::MAX,
        });
        assert!(!b.enqueue(packet(0, 4), &clock));
        assert!(!b.enqueue(packet(1, 4), &clock));
        assert!(b.enqueue(packet(2, 4), &clock));
        let batch = b.take_batch();
        assert_eq!(
            batch
                .iter()
                .map(|p| p.idempotency_key.as_str())
                .collect::<Vec<_>>(),
            vec!["k0", "k1", "k2"]
        );
        assert_eq!(b.pending_packets(), 0);
        assert_eq!(b.pending_bytes(), 0);
    }

    #[test]
    fn byte_threshold_trips() {
        let clock = VirtualClock::new(0);
        let mut b = UploadBatcher::new(BatchPolicy {
            max_packets: usize::MAX,
            max_bytes: 100,
            max_wait_ms: u64::MAX,
        });
        assert!(!b.enqueue(packet(0, 60), &clock));
        assert!(b.enqueue(packet(1, 60), &clock));
        assert_eq!(b.pending_bytes(), 120);
    }

    #[test]
    fn wait_threshold_trips_on_virtual_time_only() {
        let mut clock = VirtualClock::new(1_000);
        let mut b = UploadBatcher::new(BatchPolicy {
            max_packets: usize::MAX,
            max_bytes: usize::MAX,
            max_wait_ms: 50,
        });
        assert!(!b.enqueue(packet(0, 4), &clock));
        clock.advance(49);
        assert!(!b.is_due(&clock));
        clock.advance(1);
        assert!(b.is_due(&clock));
        // The wait clock re-arms from the next first packet.
        b.take_batch();
        assert!(!b.is_due(&clock));
        assert!(!b.enqueue(packet(1, 4), &clock));
        clock.advance(49);
        assert!(!b.is_due(&clock));
    }

    #[test]
    fn per_packet_policy_degenerates_to_immediate_sends() {
        let clock = VirtualClock::new(0);
        let mut b = UploadBatcher::new(BatchPolicy::per_packet());
        assert!(b.enqueue(packet(0, 4), &clock));
        assert_eq!(b.take_batch().len(), 1);
    }

    #[test]
    fn identical_streams_cut_identical_batches() {
        let cuts = || {
            let mut clock = VirtualClock::new(0);
            let mut b = UploadBatcher::new(BatchPolicy {
                max_packets: 4,
                max_bytes: 300,
                max_wait_ms: 40,
            });
            let mut out = Vec::new();
            for i in 0..20 {
                clock.advance(7 * (i as u64 % 5));
                if b.enqueue(packet(i, 20 + 13 * i), &clock) {
                    out.push(
                        b.take_batch()
                            .iter()
                            .map(|p| p.idempotency_key.clone())
                            .collect::<Vec<_>>(),
                    );
                }
            }
            out.push(
                b.take_batch()
                    .iter()
                    .map(|p| p.idempotency_key.clone())
                    .collect::<Vec<_>>(),
            );
            out
        };
        assert_eq!(cuts(), cuts(), "batch cuts must be deterministic");
    }
}
