//! Per-device circuit breakers and the fleet health view.
//!
//! A device whose uplink keeps failing should stop hammering the link:
//! after `failure_threshold` consecutive send failures the breaker
//! *opens* and sheds traffic for `cooldown_ms` of virtual time, then
//! transitions to *half-open* and lets probe sends through — a run of
//! `probe_successes` closes it again, a single probe failure re-opens
//! it. All timing is virtual (caller-supplied `now_ms`), matching the
//! transport's clock.
//!
//! [`FleetHealth`] aggregates one breaker per device into the device-
//! health view the dispatcher consults for degraded-mode decisions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Breaker tuning, in virtual milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerConfig {
    /// Consecutive send failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker sheds before allowing probes.
    pub cooldown_ms: u64,
    /// Consecutive half-open probe successes that close it again.
    pub probe_successes: u32,
    /// Minimum virtual time between half-open probes. Half-open admits
    /// at most **one in-flight probe** at a time regardless; this adds
    /// a deterministic pacing floor on top, so a recovering server sees
    /// one probe per interval per device instead of a thundering herd
    /// the instant the cooldown elapses. `0` paces only by the
    /// one-in-flight bound.
    pub probe_interval_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 5_000,
            probe_successes: 2,
            probe_interval_ms: 0,
        }
    }
}

/// The classic three-state breaker machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: traffic flows, failures are counted.
    Closed,
    /// Tripped: traffic is shed until the cooldown elapses.
    Open,
    /// Probing: limited traffic; successes close, a failure re-opens.
    HalfOpen,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until_ms: i64,
    },
    HalfOpen {
        probe_streak: u32,
        /// A probe was admitted and its outcome has not been recorded
        /// yet; further sends are shed until it resolves.
        inflight: bool,
        /// Earliest virtual time the next probe may be admitted.
        next_probe_at_ms: i64,
    },
}

/// One device's breaker.
///
/// Derives `PartialEq`/`Eq`/`Hash` so model checkers (`tvdp-check`)
/// can treat a breaker as a hashable state value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: State::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// Whether a send may proceed at virtual time `now_ms`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the call as a probe. Half-open admits at most one
    /// in-flight probe, no sooner than `probe_interval_ms` after the
    /// previous probe resolved.
    pub fn allow(&mut self, now_ms: i64) -> bool {
        match self.state {
            State::Closed { .. } => true,
            State::HalfOpen {
                probe_streak,
                inflight,
                next_probe_at_ms,
            } => {
                if inflight || now_ms < next_probe_at_ms {
                    return false;
                }
                self.state = State::HalfOpen {
                    probe_streak,
                    inflight: true,
                    next_probe_at_ms,
                };
                true
            }
            State::Open { until_ms } => {
                if now_ms >= until_ms {
                    // This call is the first probe.
                    self.state = State::HalfOpen {
                        probe_streak: 0,
                        inflight: true,
                        next_probe_at_ms: now_ms,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records an acknowledged send. In half-open this resolves the
    /// in-flight probe and starts the pacing interval for the next one.
    pub fn record_success(&mut self, now_ms: i64) {
        match self.state {
            State::Closed { .. } => {
                self.state = State::Closed {
                    consecutive_failures: 0,
                };
            }
            State::HalfOpen { probe_streak, .. } => {
                let streak = probe_streak + 1;
                if streak >= self.config.probe_successes {
                    self.state = State::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    self.state = State::HalfOpen {
                        probe_streak: streak,
                        inflight: false,
                        next_probe_at_ms: now_ms
                            .saturating_add(self.config.probe_interval_ms as i64),
                    };
                }
            }
            // A success while open can only be a stale report; ignore.
            State::Open { .. } => {}
        }
    }

    /// Records a failed send (exhausted retries or budget).
    pub fn record_failure(&mut self, now_ms: i64) {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let fails = consecutive_failures + 1;
                if fails >= self.config.failure_threshold {
                    self.trip(now_ms);
                } else {
                    self.state = State::Closed {
                        consecutive_failures: fails,
                    };
                }
            }
            // One failed probe re-opens for a full cooldown.
            State::HalfOpen { .. } => self.trip(now_ms),
            State::Open { .. } => {}
        }
    }

    fn trip(&mut self, now_ms: i64) {
        self.state = State::Open {
            until_ms: now_ms.saturating_add(self.config.cooldown_ms as i64),
        };
    }

    /// Current public state.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Consecutive failures counted so far (closed state only).
    pub fn consecutive_failures(&self) -> u32 {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => consecutive_failures,
            _ => 0,
        }
    }

    /// When an open breaker starts probing again, if open.
    pub fn open_until_ms(&self) -> Option<i64> {
        match self.state {
            State::Open { until_ms } => Some(until_ms),
            _ => None,
        }
    }
}

/// One row of the device-health view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceHealth {
    /// Device identifier.
    pub device: u64,
    /// Breaker state at the time of the view.
    pub state: BreakerState,
    /// Consecutive failures while closed.
    pub consecutive_failures: u32,
    /// For open breakers, when probing resumes.
    pub open_until_ms: Option<i64>,
}

/// Per-device breakers for a fleet, plus the health view built from
/// them. Keyed by device id in a `BTreeMap` so the view order is
/// deterministic (lint L2).
#[derive(Debug, Clone)]
pub struct FleetHealth {
    config: BreakerConfig,
    breakers: BTreeMap<u64, CircuitBreaker>,
}

impl FleetHealth {
    /// An empty fleet; breakers are created on first touch.
    pub fn new(config: BreakerConfig) -> Self {
        FleetHealth {
            config,
            breakers: BTreeMap::new(),
        }
    }

    /// The breaker for `device`, created closed if unseen.
    pub fn breaker(&mut self, device: u64) -> &mut CircuitBreaker {
        let config = self.config;
        self.breakers
            .entry(device)
            .or_insert_with(|| CircuitBreaker::new(config))
    }

    /// Whether `device` may send now (unseen devices may).
    pub fn device_allowed(&mut self, device: u64, now_ms: i64) -> bool {
        self.breaker(device).allow(now_ms)
    }

    /// A deterministic snapshot of every tracked device's health.
    pub fn view(&self) -> Vec<DeviceHealth> {
        self.breakers
            .iter()
            .map(|(device, b)| DeviceHealth {
                device: *device,
                state: b.state(),
                consecutive_failures: b.consecutive_failures(),
                open_until_ms: b.open_until_ms(),
            })
            .collect()
    }

    /// How many tracked devices are currently shedding (open breaker).
    pub fn open_count(&self) -> usize {
        self.breakers
            .values()
            .filter(|b| b.state() == BreakerState::Open)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            probe_successes: 2,
            probe_interval_ms: 0,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure(0);
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 2);
        b.record_failure(20);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(21));
        assert_eq!(b.open_until_ms(), Some(1_020));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure(0);
        b.record_failure(10);
        b.record_success(20);
        b.record_failure(30);
        b.record_failure(40);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn half_open_probing_closes_after_streak() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(!b.allow(500));
        assert!(b.allow(1_100), "cooldown elapsed, probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(1_110);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.record_success(1_120);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(1_100));
        b.record_failure(1_150);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(2_000));
        assert!(b.allow(2_200));
    }

    #[test]
    fn half_open_admits_one_probe_at_a_time() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(1_100), "cooldown elapsed, first probe admitted");
        // The probe has not resolved: every further send is shed, no
        // matter how often the transport asks.
        for t in 1_101..1_110 {
            assert!(!b.allow(t), "second concurrent probe must be shed");
        }
        b.record_success(1_110);
        assert!(b.allow(1_110), "resolved probe frees the slot");
        b.record_success(1_111);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_interval_paces_half_open_deterministically() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            probe_interval_ms: 200,
            probe_successes: 3,
            ..config()
        });
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(1_100));
        b.record_success(1_150);
        // Next probe no earlier than 1_150 + 200.
        assert!(!b.allow(1_200));
        assert!(!b.allow(1_349));
        assert!(b.allow(1_350));
        b.record_success(1_360);
        assert!(!b.allow(1_400), "interval restarts from each resolution");
        assert!(b.allow(1_560));
        b.record_success(1_560);
        assert_eq!(b.state(), BreakerState::Closed, "third success closes");
    }

    #[test]
    fn failed_probe_reopens_even_with_pacing() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            probe_interval_ms: 200,
            ..config()
        });
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(1_100));
        b.record_failure(1_150);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_until_ms(), Some(2_150));
    }

    #[test]
    fn fleet_view_is_deterministic_and_complete() {
        let mut fleet = FleetHealth::new(config());
        for device in [3u64, 1, 2] {
            fleet.breaker(device);
        }
        for _ in 0..3 {
            fleet.breaker(2).record_failure(0);
        }
        let view = fleet.view();
        let ids: Vec<u64> = view.iter().map(|h| h.device).collect();
        assert_eq!(ids, vec![1, 2, 3], "sorted by device id");
        assert_eq!(fleet.open_count(), 1);
        let h2 = &view[1];
        assert_eq!(h2.state, BreakerState::Open);
        assert!(h2.open_until_ms.is_some());
    }
}
