//! Edge-device capability profiles.

use serde::{Deserialize, Serialize};

/// The three device tiers of the paper's Fig. 8 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A common desktop machine.
    Desktop,
    /// A modern smartphone.
    Smartphone,
    /// A Raspberry Pi 3 B+.
    RaspberryPi,
}

impl DeviceClass {
    /// All classes, fastest first.
    pub const ALL: [DeviceClass; 3] = [
        DeviceClass::Desktop,
        DeviceClass::Smartphone,
        DeviceClass::RaspberryPi,
    ];

    /// Display name matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::Desktop => "Desktop",
            DeviceClass::Smartphone => "Smartphone",
            DeviceClass::RaspberryPi => "Raspberry PI",
        }
    }

    /// The canonical profile for this class.
    pub fn profile(self) -> DeviceProfile {
        match self {
            // Effective CNN throughputs (not peak): calibrated so the
            // simulated latencies land in the regimes the paper reports —
            // desktop in tens of ms for mobile nets, the RPi in seconds,
            // i.e. ~1.5 orders of magnitude apart.
            DeviceClass::Desktop => DeviceProfile {
                name: "Desktop",
                class: DeviceClass::Desktop,
                effective_gflops: 50.0,
                memory_mb: 16_384,
                bandwidth_mbps: 500.0,
                per_inference_overhead_ms: 2.0,
                battery_limited: false,
            },
            DeviceClass::Smartphone => DeviceProfile {
                name: "Smartphone",
                class: DeviceClass::Smartphone,
                effective_gflops: 6.0,
                memory_mb: 4_096,
                bandwidth_mbps: 40.0,
                per_inference_overhead_ms: 6.0,
                battery_limited: true,
            },
            DeviceClass::RaspberryPi => DeviceProfile {
                name: "Raspberry PI 3 B+",
                class: DeviceClass::RaspberryPi,
                effective_gflops: 0.9,
                memory_mb: 1_024,
                bandwidth_mbps: 20.0,
                per_inference_overhead_ms: 15.0,
                battery_limited: false,
            },
        }
    }
}

/// Concrete capabilities of one edge device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Tier.
    pub class: DeviceClass,
    /// Sustained CNN throughput, GFLOP/s.
    pub effective_gflops: f64,
    /// RAM available to the model, MB.
    pub memory_mb: u64,
    /// Uplink bandwidth, Mbit/s.
    pub bandwidth_mbps: f64,
    /// Fixed per-inference overhead (image decode, memory traffic), ms.
    pub per_inference_overhead_ms: f64,
    /// Whether energy budget constrains sustained workloads.
    pub battery_limited: bool,
}

impl DeviceProfile {
    /// Seconds to upload `bytes` at the profile's bandwidth.
    pub fn upload_seconds(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_ordered_by_throughput() {
        let d = DeviceClass::Desktop.profile();
        let s = DeviceClass::Smartphone.profile();
        let r = DeviceClass::RaspberryPi.profile();
        assert!(d.effective_gflops > s.effective_gflops);
        assert!(s.effective_gflops > r.effective_gflops);
        // ~1.5+ orders of magnitude between desktop and RPi.
        assert!(d.effective_gflops / r.effective_gflops >= 30.0);
    }

    #[test]
    fn upload_time_scales_with_bytes() {
        let p = DeviceClass::Smartphone.profile();
        let t1 = p.upload_seconds(1_000_000);
        let t2 = p.upload_seconds(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn labels_match_paper_figure() {
        assert_eq!(DeviceClass::RaspberryPi.label(), "Raspberry PI");
        assert_eq!(DeviceClass::ALL.len(), 3);
    }
}
