//! Capability-aware model dispatch.
//!
//! "A high-end device can run a more complex version of the model which
//! potentially can provide more accurate results; a low-end device can
//! run a simpler version much faster but with less accurate results"
//! (paper Section VI). The dispatcher picks, per device, the most
//! accurate zoo model that fits the device's memory and meets the
//! requested latency budget.

use serde::{Deserialize, Serialize};

use crate::device::DeviceProfile;
use crate::energy::{inferences_per_charge, PowerProfile};
use crate::latency::nominal_latency_ms;
use crate::model::ModelSpec;

/// Requirements a dispatched model must satisfy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DispatchConstraints {
    /// Upper bound on per-inference latency, ms.
    pub max_latency_ms: f64,
    /// Lower bound on model accuracy (proxy), if any.
    pub min_accuracy: Option<f64>,
    /// For battery-powered devices: the model must sustain at least this
    /// many inferences per charge. Ignored on mains power.
    pub min_inferences_per_charge: Option<u64>,
}

impl Default for DispatchConstraints {
    fn default() -> Self {
        Self {
            max_latency_ms: 1_000.0,
            min_accuracy: None,
            min_inferences_per_charge: None,
        }
    }
}

/// Chooses models from a zoo for heterogeneous devices.
///
/// ```
/// use tvdp_edge::{DeviceClass, DispatchConstraints, ModelDispatcher, MODEL_ZOO};
///
/// let dispatcher = ModelDispatcher::new(MODEL_ZOO.to_vec());
/// let constraints = DispatchConstraints { max_latency_ms: 700.0, ..Default::default() };
/// // A desktop affords InceptionV3 within 700 ms; a Raspberry Pi cannot.
/// let desktop = dispatcher.dispatch(&DeviceClass::Desktop.profile(), &constraints).unwrap();
/// let rpi = dispatcher.dispatch(&DeviceClass::RaspberryPi.profile(), &constraints).unwrap();
/// assert_eq!(desktop.name, "InceptionV3");
/// assert!(rpi.name.starts_with("MobileNet"));
/// ```
#[derive(Debug, Clone)]
pub struct ModelDispatcher {
    zoo: Vec<ModelSpec>,
}

impl ModelDispatcher {
    /// A dispatcher over the given model variants.
    pub fn new(zoo: Vec<ModelSpec>) -> Self {
        assert!(!zoo.is_empty(), "empty model zoo");
        Self { zoo }
    }

    /// The most accurate model that fits `device` under `constraints`;
    /// `None` when nothing qualifies (caller should fall back to server-
    /// side inference).
    pub fn dispatch(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
    ) -> Option<ModelSpec> {
        let power = PowerProfile::for_device(device);
        self.zoo
            .iter()
            .filter(|m| m.memory_mb() <= device.memory_mb)
            .filter(|m| nominal_latency_ms(m, device) <= constraints.max_latency_ms)
            .filter(|m| constraints.min_accuracy.is_none_or(|a| m.accuracy >= a))
            .filter(|m| {
                match (
                    constraints.min_inferences_per_charge,
                    inferences_per_charge(m, device, &power),
                ) {
                    (Some(need), Some(have)) => have >= need,
                    _ => true, // mains power or no energy constraint
                }
            })
            .max_by(|a, b| {
                a.accuracy
                    .total_cmp(&b.accuracy)
                    // Ties: prefer the cheaper model.
                    .then(b.mflops.total_cmp(&a.mflops))
            })
            .copied()
    }

    /// Dispatch decisions for a whole fleet, in input order.
    pub fn dispatch_fleet(
        &self,
        devices: &[DeviceProfile],
        constraints: &DispatchConstraints,
    ) -> Vec<Option<ModelSpec>> {
        devices
            .iter()
            .map(|d| self.dispatch(d, constraints))
            .collect()
    }

    /// Seconds for `device` to download `model`'s weights.
    pub fn download_seconds(device: &DeviceProfile, model: &ModelSpec) -> f64 {
        device.upload_seconds(model.download_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::model::MODEL_ZOO;

    fn dispatcher() -> ModelDispatcher {
        ModelDispatcher::new(MODEL_ZOO.to_vec())
    }

    #[test]
    fn desktop_gets_the_big_model() {
        let m = dispatcher()
            .dispatch(
                &DeviceClass::Desktop.profile(),
                &DispatchConstraints::default(),
            )
            .unwrap();
        assert_eq!(m.name, "InceptionV3");
    }

    #[test]
    fn rpi_gets_a_mobile_model_under_tight_latency() {
        let constraints = DispatchConstraints {
            max_latency_ms: 700.0,
            min_accuracy: None,
            ..Default::default()
        };
        let m = dispatcher()
            .dispatch(&DeviceClass::RaspberryPi.profile(), &constraints)
            .unwrap();
        assert!(m.name.starts_with("MobileNet"), "got {}", m.name);
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let constraints = DispatchConstraints {
            max_latency_ms: 0.1,
            min_accuracy: None,
            ..Default::default()
        };
        assert!(dispatcher()
            .dispatch(&DeviceClass::RaspberryPi.profile(), &constraints)
            .is_none());
        // Accuracy floor nothing meets.
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: Some(0.99),
            ..Default::default()
        };
        assert!(dispatcher()
            .dispatch(&DeviceClass::Desktop.profile(), &constraints)
            .is_none());
    }

    #[test]
    fn accuracy_floor_excludes_weak_models() {
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: Some(0.75),
            ..Default::default()
        };
        let m = dispatcher()
            .dispatch(&DeviceClass::RaspberryPi.profile(), &constraints)
            .unwrap();
        assert_eq!(m.name, "InceptionV3", "only Inception meets 0.75");
    }

    #[test]
    fn fleet_dispatch_is_per_device() {
        let devices: Vec<_> = DeviceClass::ALL.iter().map(|c| c.profile()).collect();
        let constraints = DispatchConstraints {
            max_latency_ms: 200.0,
            min_accuracy: None,
            ..Default::default()
        };
        let picks = dispatcher().dispatch_fleet(&devices, &constraints);
        // Desktop can afford Inception within 200 ms; RPi cannot.
        assert_eq!(picks[0].unwrap().name, "InceptionV3");
        assert!(picks[2].is_none_or(|m| m.name != "InceptionV3"));
    }

    #[test]
    fn download_time_positive_and_ordered() {
        let d = DeviceClass::Smartphone.profile();
        let small = ModelDispatcher::download_seconds(&d, &MODEL_ZOO[0]);
        let big = ModelDispatcher::download_seconds(&d, &MODEL_ZOO[2]);
        assert!(small > 0.0);
        assert!(big > small);
    }
}

#[cfg(test)]
mod energy_dispatch_tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::energy::{inferences_per_charge, PowerProfile};
    use crate::model::MODEL_ZOO;

    #[test]
    fn battery_budget_downgrades_the_phone_model() {
        let phone = DeviceClass::Smartphone.profile();
        let power = PowerProfile::for_device(&phone);
        // Find a budget Inception cannot sustain but MobileNetV2 can.
        let inception = inferences_per_charge(&MODEL_ZOO[2], &phone, &power).expect("battery");
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: None,
            min_inferences_per_charge: Some(inception + 1),
        };
        let pick = ModelDispatcher::new(MODEL_ZOO.to_vec())
            .dispatch(&phone, &constraints)
            .expect("a mobile net qualifies");
        assert!(pick.name.starts_with("MobileNet"), "got {}", pick.name);
    }

    #[test]
    fn energy_constraint_ignored_on_mains_power() {
        let desktop = DeviceClass::Desktop.profile();
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: None,
            min_inferences_per_charge: Some(u64::MAX),
        };
        let pick = ModelDispatcher::new(MODEL_ZOO.to_vec())
            .dispatch(&desktop, &constraints)
            .expect("desktop unconstrained by battery");
        assert_eq!(pick.name, "InceptionV3");
    }
}
