//! Capability-aware model dispatch.
//!
//! "A high-end device can run a more complex version of the model which
//! potentially can provide more accurate results; a low-end device can
//! run a simpler version much faster but with less accurate results"
//! (paper Section VI). The dispatcher picks, per device, the most
//! accurate zoo model that fits the device's memory and meets the
//! requested latency budget.

use serde::{Deserialize, Serialize};

use crate::device::DeviceProfile;
use crate::energy::{inferences_per_charge, PowerProfile};
use crate::latency::nominal_latency_ms;
use crate::model::ModelSpec;

/// Why a dispatcher could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// The model zoo was empty; there is nothing to dispatch.
    EmptyZoo,
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::EmptyZoo => write!(f, "empty model zoo"),
        }
    }
}

impl std::error::Error for DispatchError {}

/// Requirements a dispatched model must satisfy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DispatchConstraints {
    /// Upper bound on per-inference latency, ms.
    pub max_latency_ms: f64,
    /// Lower bound on model accuracy (proxy), if any.
    pub min_accuracy: Option<f64>,
    /// For battery-powered devices: the model must sustain at least this
    /// many inferences per charge. Ignored on mains power.
    pub min_inferences_per_charge: Option<u64>,
}

impl Default for DispatchConstraints {
    fn default() -> Self {
        Self {
            max_latency_ms: 1_000.0,
            min_accuracy: None,
            min_inferences_per_charge: None,
        }
    }
}

/// Observed uplink conditions a degraded-mode dispatch accounts for,
/// typically fed from the transport's send reports and the device's
/// circuit breaker.
#[derive(Debug, Clone, Copy)]
pub struct LinkConditions {
    /// Measured goodput toward the device, Mbit/s; `None` means assume
    /// the device profile's nominal bandwidth.
    pub effective_bandwidth_mbps: Option<f64>,
    /// How long the round can wait for the model weights, seconds.
    pub download_budget_s: f64,
    /// Whether the device's circuit breaker is currently open.
    pub breaker_open: bool,
}

impl LinkConditions {
    /// Below this measured bandwidth the link is considered collapsed
    /// and no model download is attempted at all.
    pub const MIN_USABLE_MBPS: f64 = 0.1;

    /// Nominal conditions: profile bandwidth, generous budget, breaker
    /// closed.
    pub fn nominal() -> Self {
        LinkConditions {
            effective_bandwidth_mbps: None,
            download_budget_s: f64::INFINITY,
            breaker_open: false,
        }
    }
}

/// Why a dispatch decision fell short of the preferred model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// No zoo model satisfies the device + constraint combination.
    NoQualifyingModel,
    /// The device's circuit breaker is open; don't push bytes at it.
    BreakerOpen,
    /// Measured bandwidth is below the usable floor.
    BandwidthCollapsed,
    /// The preferred model's weights cannot download within the budget.
    DownloadBudgetExceeded,
}

/// Outcome of a link-aware dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchDecision {
    /// Deploy the preferred model; the link can carry it.
    Deploy(ModelSpec),
    /// Deploy a smaller model than capability alone would pick.
    Degraded {
        /// The model actually deployed.
        chosen: ModelSpec,
        /// What capability-only dispatch would have picked.
        preferred: ModelSpec,
        /// Why the fallback happened.
        reason: DegradeReason,
    },
    /// Keep inference on the server; ship nothing to the device.
    ServerSide {
        /// Why no on-device model is viable right now.
        reason: DegradeReason,
    },
}

impl DispatchDecision {
    /// The model placed on the device, if any.
    pub fn deployed(&self) -> Option<ModelSpec> {
        match self {
            DispatchDecision::Deploy(m) => Some(*m),
            DispatchDecision::Degraded { chosen, .. } => Some(*chosen),
            DispatchDecision::ServerSide { .. } => None,
        }
    }
}

/// Chooses models from a zoo for heterogeneous devices.
///
/// ```
/// use tvdp_edge::{DeviceClass, DispatchConstraints, ModelDispatcher, MODEL_ZOO};
///
/// let dispatcher = ModelDispatcher::new(MODEL_ZOO.to_vec()).unwrap();
/// let constraints = DispatchConstraints { max_latency_ms: 700.0, ..Default::default() };
/// // A desktop affords InceptionV3 within 700 ms; a Raspberry Pi cannot.
/// let desktop = dispatcher.dispatch(&DeviceClass::Desktop.profile(), &constraints).unwrap();
/// let rpi = dispatcher.dispatch(&DeviceClass::RaspberryPi.profile(), &constraints).unwrap();
/// assert_eq!(desktop.name, "InceptionV3");
/// assert!(rpi.name.starts_with("MobileNet"));
/// ```
#[derive(Debug, Clone)]
pub struct ModelDispatcher {
    zoo: Vec<ModelSpec>,
}

impl ModelDispatcher {
    /// A dispatcher over the given model variants; rejects an empty zoo
    /// with a typed error instead of panicking.
    pub fn new(zoo: Vec<ModelSpec>) -> Result<Self, DispatchError> {
        if zoo.is_empty() {
            return Err(DispatchError::EmptyZoo);
        }
        Ok(Self { zoo })
    }

    /// All zoo models qualifying for `device` under `constraints`, most
    /// accurate first (ties broken toward the cheaper model).
    fn qualifying(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
    ) -> Vec<ModelSpec> {
        let power = PowerProfile::for_device(device);
        let mut out: Vec<ModelSpec> = self
            .zoo
            .iter()
            .filter(|m| m.memory_mb() <= device.memory_mb)
            .filter(|m| nominal_latency_ms(m, device) <= constraints.max_latency_ms)
            .filter(|m| constraints.min_accuracy.is_none_or(|a| m.accuracy >= a))
            .filter(|m| {
                match (
                    constraints.min_inferences_per_charge,
                    inferences_per_charge(m, device, &power),
                ) {
                    (Some(need), Some(have)) => have >= need,
                    _ => true, // mains power or no energy constraint
                }
            })
            .copied()
            .collect();
        out.sort_by(|a, b| {
            b.accuracy
                .total_cmp(&a.accuracy)
                // Ties: prefer the cheaper model.
                .then(a.mflops.total_cmp(&b.mflops))
        });
        out
    }

    /// The most accurate model that fits `device` under `constraints`;
    /// `None` when nothing qualifies (caller should fall back to server-
    /// side inference).
    pub fn dispatch(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
    ) -> Option<ModelSpec> {
        self.qualifying(device, constraints).first().copied()
    }

    /// Capability dispatch under observed link conditions: prefers the
    /// [`ModelDispatcher::dispatch`] pick, degrades to the next-smaller
    /// qualifying model when the preferred weights cannot be downloaded
    /// within the budget, and falls back to server-side inference when
    /// the breaker is open, bandwidth has collapsed, or nothing fits.
    pub fn dispatch_degraded(
        &self,
        device: &DeviceProfile,
        constraints: &DispatchConstraints,
        link: &LinkConditions,
    ) -> DispatchDecision {
        let candidates = self.qualifying(device, constraints);
        let Some(preferred) = candidates.first().copied() else {
            return DispatchDecision::ServerSide {
                reason: DegradeReason::NoQualifyingModel,
            };
        };
        if link.breaker_open {
            return DispatchDecision::ServerSide {
                reason: DegradeReason::BreakerOpen,
            };
        }
        let bandwidth = link
            .effective_bandwidth_mbps
            .unwrap_or(device.bandwidth_mbps);
        if bandwidth < LinkConditions::MIN_USABLE_MBPS {
            return DispatchDecision::ServerSide {
                reason: DegradeReason::BandwidthCollapsed,
            };
        }
        let download_s = |m: &ModelSpec| (m.download_bytes() as f64 * 8.0) / (bandwidth * 1e6);
        let fitting = candidates
            .iter()
            .find(|m| download_s(m) <= link.download_budget_s)
            .copied();
        match fitting {
            Some(chosen) if chosen == preferred => DispatchDecision::Deploy(chosen),
            Some(chosen) => DispatchDecision::Degraded {
                chosen,
                preferred,
                reason: DegradeReason::DownloadBudgetExceeded,
            },
            None => DispatchDecision::ServerSide {
                reason: DegradeReason::DownloadBudgetExceeded,
            },
        }
    }

    /// Dispatch decisions for a whole fleet, in input order.
    pub fn dispatch_fleet(
        &self,
        devices: &[DeviceProfile],
        constraints: &DispatchConstraints,
    ) -> Vec<Option<ModelSpec>> {
        devices
            .iter()
            .map(|d| self.dispatch(d, constraints))
            .collect()
    }

    /// Seconds for `device` to download `model`'s weights.
    pub fn download_seconds(device: &DeviceProfile, model: &ModelSpec) -> f64 {
        device.upload_seconds(model.download_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::model::MODEL_ZOO;

    fn dispatcher() -> ModelDispatcher {
        ModelDispatcher::new(MODEL_ZOO.to_vec()).unwrap()
    }

    #[test]
    fn empty_zoo_is_a_typed_error() {
        assert_eq!(
            ModelDispatcher::new(Vec::new()).unwrap_err(),
            DispatchError::EmptyZoo
        );
    }

    #[test]
    fn desktop_gets_the_big_model() {
        let m = dispatcher()
            .dispatch(
                &DeviceClass::Desktop.profile(),
                &DispatchConstraints::default(),
            )
            .unwrap();
        assert_eq!(m.name, "InceptionV3");
    }

    #[test]
    fn rpi_gets_a_mobile_model_under_tight_latency() {
        let constraints = DispatchConstraints {
            max_latency_ms: 700.0,
            min_accuracy: None,
            ..Default::default()
        };
        let m = dispatcher()
            .dispatch(&DeviceClass::RaspberryPi.profile(), &constraints)
            .unwrap();
        assert!(m.name.starts_with("MobileNet"), "got {}", m.name);
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let constraints = DispatchConstraints {
            max_latency_ms: 0.1,
            min_accuracy: None,
            ..Default::default()
        };
        assert!(dispatcher()
            .dispatch(&DeviceClass::RaspberryPi.profile(), &constraints)
            .is_none());
        // Accuracy floor nothing meets.
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: Some(0.99),
            ..Default::default()
        };
        assert!(dispatcher()
            .dispatch(&DeviceClass::Desktop.profile(), &constraints)
            .is_none());
    }

    #[test]
    fn accuracy_floor_excludes_weak_models() {
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: Some(0.75),
            ..Default::default()
        };
        let m = dispatcher()
            .dispatch(&DeviceClass::RaspberryPi.profile(), &constraints)
            .unwrap();
        assert_eq!(m.name, "InceptionV3", "only Inception meets 0.75");
    }

    #[test]
    fn fleet_dispatch_is_per_device() {
        let devices: Vec<_> = DeviceClass::ALL.iter().map(|c| c.profile()).collect();
        let constraints = DispatchConstraints {
            max_latency_ms: 200.0,
            min_accuracy: None,
            ..Default::default()
        };
        let picks = dispatcher().dispatch_fleet(&devices, &constraints);
        // Desktop can afford Inception within 200 ms; RPi cannot.
        assert_eq!(picks[0].unwrap().name, "InceptionV3");
        assert!(picks[2].is_none_or(|m| m.name != "InceptionV3"));
    }

    #[test]
    fn degraded_dispatch_falls_back_to_smaller_model() {
        let desktop = DeviceClass::Desktop.profile();
        let constraints = DispatchConstraints::default();
        // Nominal link: the preferred (biggest) model deploys.
        assert_eq!(
            dispatcher().dispatch_degraded(&desktop, &constraints, &LinkConditions::nominal()),
            DispatchDecision::Deploy(MODEL_ZOO[2])
        );
        // Budget only a MobileNet download fits: Inception is 95.2 MB,
        // MobileNetV2 13.6 MB; at 10 Mbit/s they need ~76 s and ~11 s.
        let tight = LinkConditions {
            effective_bandwidth_mbps: Some(10.0),
            download_budget_s: 20.0,
            breaker_open: false,
        };
        match dispatcher().dispatch_degraded(&desktop, &constraints, &tight) {
            DispatchDecision::Degraded {
                chosen,
                preferred,
                reason,
            } => {
                assert!(chosen.name.starts_with("MobileNet"), "got {}", chosen.name);
                assert_eq!(preferred.name, "InceptionV3");
                assert_eq!(reason, DegradeReason::DownloadBudgetExceeded);
            }
            other => panic!("expected a degraded pick, got {other:?}"),
        }
    }

    #[test]
    fn degraded_dispatch_goes_server_side_when_link_is_dead() {
        let phone = DeviceClass::Smartphone.profile();
        let constraints = DispatchConstraints::default();
        let open = LinkConditions {
            breaker_open: true,
            ..LinkConditions::nominal()
        };
        assert_eq!(
            dispatcher().dispatch_degraded(&phone, &constraints, &open),
            DispatchDecision::ServerSide {
                reason: DegradeReason::BreakerOpen
            }
        );
        let collapsed = LinkConditions {
            effective_bandwidth_mbps: Some(0.01),
            download_budget_s: 1e9,
            breaker_open: false,
        };
        assert_eq!(
            dispatcher().dispatch_degraded(&phone, &constraints, &collapsed),
            DispatchDecision::ServerSide {
                reason: DegradeReason::BandwidthCollapsed
            }
        );
        // Budget nothing fits: even the smallest model is too slow.
        let hopeless = LinkConditions {
            effective_bandwidth_mbps: Some(1.0),
            download_budget_s: 0.5,
            breaker_open: false,
        };
        assert_eq!(
            dispatcher().dispatch_degraded(&phone, &constraints, &hopeless),
            DispatchDecision::ServerSide {
                reason: DegradeReason::DownloadBudgetExceeded
            }
        );
        assert_eq!(
            dispatcher()
                .dispatch_degraded(&phone, &constraints, &hopeless)
                .deployed(),
            None
        );
    }

    #[test]
    fn download_time_positive_and_ordered() {
        let d = DeviceClass::Smartphone.profile();
        let small = ModelDispatcher::download_seconds(&d, &MODEL_ZOO[0]);
        let big = ModelDispatcher::download_seconds(&d, &MODEL_ZOO[2]);
        assert!(small > 0.0);
        assert!(big > small);
    }
}

#[cfg(test)]
mod energy_dispatch_tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::energy::{inferences_per_charge, PowerProfile};
    use crate::model::MODEL_ZOO;

    #[test]
    fn battery_budget_downgrades_the_phone_model() {
        let phone = DeviceClass::Smartphone.profile();
        let power = PowerProfile::for_device(&phone);
        // Find a budget Inception cannot sustain but MobileNetV2 can.
        let inception = inferences_per_charge(&MODEL_ZOO[2], &phone, &power).expect("battery");
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: None,
            min_inferences_per_charge: Some(inception + 1),
        };
        let pick = ModelDispatcher::new(MODEL_ZOO.to_vec())
            .unwrap()
            .dispatch(&phone, &constraints)
            .expect("a mobile net qualifies");
        assert!(pick.name.starts_with("MobileNet"), "got {}", pick.name);
    }

    #[test]
    fn energy_constraint_ignored_on_mains_power() {
        let desktop = DeviceClass::Desktop.profile();
        let constraints = DispatchConstraints {
            max_latency_ms: 1e9,
            min_accuracy: None,
            min_inferences_per_charge: Some(u64::MAX),
        };
        let pick = ModelDispatcher::new(MODEL_ZOO.to_vec())
            .unwrap()
            .dispatch(&desktop, &constraints)
            .expect("desktop unconstrained by battery");
        assert_eq!(pick.name, "InceptionV3");
    }
}
