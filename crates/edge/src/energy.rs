//! Energy accounting for on-device inference.
//!
//! The paper lists *battery capacity* among the edge capabilities the
//! dispatcher must respect (Section VI). This module models per-inference
//! energy as active power × compute time and converts a device's battery
//! budget into an inference budget, which [`crate::dispatch`] can use as
//! an additional constraint.

use serde::{Deserialize, Serialize};

use crate::device::DeviceProfile;
use crate::latency::nominal_latency_ms;
use crate::model::ModelSpec;

/// Power characteristics of a device class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Power drawn while running inference, watts.
    pub active_w: f64,
    /// Battery capacity in watt-hours; `None` for mains-powered devices.
    pub battery_wh: Option<f64>,
}

impl PowerProfile {
    /// Canonical power profile for a device (mains desktop, battery
    /// phone, mains-or-powerbank RPi).
    pub fn for_device(device: &DeviceProfile) -> Self {
        match device.class {
            crate::device::DeviceClass::Desktop => Self {
                active_w: 120.0,
                battery_wh: None,
            },
            crate::device::DeviceClass::Smartphone => {
                // ~4000 mAh at 3.85 V ≈ 15.4 Wh.
                Self {
                    active_w: 4.5,
                    battery_wh: Some(15.4),
                }
            }
            crate::device::DeviceClass::RaspberryPi => {
                // Often deployed on a 20 Wh power bank in the field.
                Self {
                    active_w: 5.5,
                    battery_wh: Some(20.0),
                }
            }
        }
    }
}

/// Energy of one inference in joules.
pub fn energy_per_inference_j(
    model: &ModelSpec,
    device: &DeviceProfile,
    power: &PowerProfile,
) -> f64 {
    let seconds = nominal_latency_ms(model, device) / 1000.0;
    power.active_w * seconds
}

/// How many inferences one battery charge sustains; `None` when the
/// device is mains-powered (unbounded).
pub fn inferences_per_charge(
    model: &ModelSpec,
    device: &DeviceProfile,
    power: &PowerProfile,
) -> Option<u64> {
    let battery_j = power.battery_wh? * 3600.0;
    Some((battery_j / energy_per_inference_j(model, device, power)).floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::model::zoo_model;

    #[test]
    fn energy_scales_with_model_size() {
        let phone = DeviceClass::Smartphone.profile();
        let power = PowerProfile::for_device(&phone);
        let small = energy_per_inference_j(&zoo_model("MobileNetV2").unwrap(), &phone, &power);
        let big = energy_per_inference_j(&zoo_model("InceptionV3").unwrap(), &phone, &power);
        assert!(
            big > small * 5.0,
            "Inception ({big} J) vs MobileNetV2 ({small} J)"
        );
        assert!(small > 0.0);
    }

    #[test]
    fn desktop_is_unbounded_phone_is_not() {
        let desktop = DeviceClass::Desktop.profile();
        let phone = DeviceClass::Smartphone.profile();
        let model = zoo_model("MobileNetV1").unwrap();
        assert_eq!(
            inferences_per_charge(&model, &desktop, &PowerProfile::for_device(&desktop)),
            None
        );
        let n = inferences_per_charge(&model, &phone, &PowerProfile::for_device(&phone))
            .expect("battery-powered");
        // 15.4 Wh / (4.5 W × ~0.1 s) ≈ hundreds of thousands — sanity band.
        assert!(n > 10_000, "{n}");
        assert!(n < 10_000_000, "{n}");
    }

    #[test]
    fn smaller_model_gives_more_inferences_per_charge() {
        let phone = DeviceClass::Smartphone.profile();
        let power = PowerProfile::for_device(&phone);
        let small =
            inferences_per_charge(&zoo_model("MobileNetV2").unwrap(), &phone, &power).unwrap();
        let big =
            inferences_per_charge(&zoo_model("InceptionV3").unwrap(), &phone, &power).unwrap();
        assert!(small > big * 5);
    }
}
