//! Deterministic network-fault injection for the upload transport.
//!
//! The storage layer's `FailingWriter` reproduces the one fault a disk
//! write can suffer — dying after an arbitrary byte prefix. A city
//! uplink has a richer failure menu, but the same testing philosophy
//! applies: every fault is *planned*, either scripted attempt-by-attempt
//! or drawn from a seeded RNG, so a chaos run replays bit-for-bit.
//! [`FaultPlan`] is the planner; [`crate::transport::EdgeTransport`]
//! consumes one planned [`Fault`] per delivery attempt and overlays the
//! partition windows, all on a virtual millisecond clock (lint L4
//! forbids wall-clock time in library code).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault, applied to a single delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt goes through unharmed.
    None,
    /// The request is lost before reaching the server; the client waits
    /// out its attempt timeout, the server never sees the bytes.
    DropRequest,
    /// The server receives and processes the request but the
    /// acknowledgement is lost — the at-least-once delivery hazard that
    /// makes idempotency keys necessary.
    DropReply,
    /// Payload bytes are flipped in flight; the server detects the
    /// checksum mismatch and rejects the attempt.
    Corrupt,
    /// The round trip takes this many extra milliseconds; if the total
    /// exceeds the attempt timeout the reply is discarded *after* the
    /// server processed it (same hazard as [`Fault::DropReply`]).
    Stall(u64),
}

/// A half-open virtual-time window `[from_ms, until_ms)` during which
/// the link is down and attempts fail fast without reaching the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First millisecond of the outage.
    pub from_ms: i64,
    /// First millisecond after the outage.
    pub until_ms: i64,
}

/// Per-attempt fault probabilities for the seeded mode.
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// Probability the request is dropped en route.
    pub drop_request: f64,
    /// Probability the acknowledgement is dropped on the way back.
    pub drop_reply: f64,
    /// Probability of in-flight payload corruption.
    pub corrupt: f64,
    /// Probability of a latency spike.
    pub stall: f64,
    /// Extra round-trip milliseconds a spike adds.
    pub stall_ms: u64,
}

impl FaultRates {
    /// A lossy-but-live urban link: some of everything.
    pub fn lossy() -> Self {
        FaultRates {
            drop_request: 0.15,
            drop_reply: 0.05,
            corrupt: 0.05,
            stall: 0.10,
            stall_ms: 900,
        }
    }
}

#[derive(Debug, Clone)]
enum Mode {
    /// Fixed attempt-by-attempt script; exhausted entries mean no fault.
    Scripted { faults: Vec<Fault>, cursor: usize },
    /// Faults drawn from a seeded RNG at the given rates.
    Seeded { rng: StdRng, rates: FaultRates },
}

/// A deterministic plan of network faults.
///
/// ```
/// use tvdp_edge::fault::{Fault, FaultPlan};
///
/// let mut plan = FaultPlan::scripted(vec![Fault::DropRequest, Fault::None]);
/// assert_eq!(plan.next_fault(), Fault::DropRequest);
/// assert_eq!(plan.next_fault(), Fault::None);
/// assert_eq!(plan.next_fault(), Fault::None); // script exhausted
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    mode: Mode,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn reliable() -> Self {
        FaultPlan::scripted(Vec::new())
    }

    /// A plan that replays `faults` one per attempt, then behaves
    /// reliably.
    pub fn scripted(faults: Vec<Fault>) -> Self {
        FaultPlan {
            mode: Mode::Scripted { faults, cursor: 0 },
            partitions: Vec::new(),
        }
    }

    /// A plan drawing faults at `rates` from an RNG seeded with `seed`.
    pub fn seeded(rates: FaultRates, seed: u64) -> Self {
        FaultPlan {
            mode: Mode::Seeded {
                rng: StdRng::seed_from_u64(seed),
                rates,
            },
            partitions: Vec::new(),
        }
    }

    /// Adds link-outage windows on top of the per-attempt faults.
    pub fn with_partitions(mut self, partitions: Vec<Partition>) -> Self {
        self.partitions = partitions;
        self
    }

    /// Whether the link is partitioned at virtual time `now_ms`.
    pub fn partitioned_at(&self, now_ms: i64) -> bool {
        self.partitions
            .iter()
            .any(|p| p.from_ms <= now_ms && now_ms < p.until_ms)
    }

    /// The fault for the next delivery attempt (partitions are checked
    /// separately via [`FaultPlan::partitioned_at`] because they depend
    /// on the clock, not the attempt count).
    pub fn next_fault(&mut self) -> Fault {
        match &mut self.mode {
            Mode::Scripted { faults, cursor } => {
                let f = faults.get(*cursor).copied().unwrap_or(Fault::None);
                *cursor = cursor.saturating_add(1);
                f
            }
            Mode::Seeded { rng, rates } => {
                // One uniform draw per attempt, carved into disjoint
                // probability bands so rates compose predictably.
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut edge = rates.drop_request;
                if u < edge {
                    return Fault::DropRequest;
                }
                edge += rates.drop_reply;
                if u < edge {
                    return Fault::DropReply;
                }
                edge += rates.corrupt;
                if u < edge {
                    return Fault::Corrupt;
                }
                edge += rates.stall;
                if u < edge {
                    return Fault::Stall(rates.stall_ms);
                }
                Fault::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_replays_then_goes_quiet() {
        let mut plan = FaultPlan::scripted(vec![Fault::Corrupt, Fault::Stall(500)]);
        assert_eq!(plan.next_fault(), Fault::Corrupt);
        assert_eq!(plan.next_fault(), Fault::Stall(500));
        assert_eq!(plan.next_fault(), Fault::None);
    }

    #[test]
    fn seeded_plan_is_reproducible() {
        let draw = || {
            let mut p = FaultPlan::seeded(FaultRates::lossy(), 42);
            (0..64).map(|_| p.next_fault()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
        // A lossy plan actually injects something.
        assert!(draw().iter().any(|f| *f != Fault::None));
    }

    #[test]
    fn partitions_are_half_open_windows() {
        let plan = FaultPlan::reliable().with_partitions(vec![Partition {
            from_ms: 100,
            until_ms: 200,
        }]);
        assert!(!plan.partitioned_at(99));
        assert!(plan.partitioned_at(100));
        assert!(plan.partitioned_at(199));
        assert!(!plan.partitioned_at(200));
    }

    #[test]
    fn zero_rates_never_fault() {
        let mut p = FaultPlan::seeded(
            FaultRates {
                drop_request: 0.0,
                drop_reply: 0.0,
                corrupt: 0.0,
                stall: 0.0,
                stall_ms: 0,
            },
            7,
        );
        for _ in 0..32 {
            assert_eq!(p.next_fault(), Fault::None);
        }
    }
}
