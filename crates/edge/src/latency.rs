//! Analytical inference-latency simulation.
//!
//! `latency = overhead + FLOPs / effective_throughput`, with seeded
//! multiplicative jitter modelling scheduler/thermal variance. The paper
//! measures wall-clock inference on physical devices; this cost model
//! reproduces the *relative* structure its Fig. 8 reports (which device
//! tier is how many orders of magnitude slower).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::device::DeviceProfile;
use crate::model::ModelSpec;

/// Summary statistics over simulated runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Minimum observed.
    pub min_ms: f64,
    /// Maximum observed.
    pub max_ms: f64,
    /// Number of simulated inferences.
    pub runs: usize,
}

impl LatencyStats {
    /// `log10(mean_ms)` — the paper plots Fig. 8 on a log scale.
    pub fn log10_mean(&self) -> f64 {
        self.mean_ms.log10()
    }
}

/// Deterministic single-inference latency (no jitter), in ms.
pub fn nominal_latency_ms(model: &ModelSpec, device: &DeviceProfile) -> f64 {
    device.per_inference_overhead_ms + model.mflops / device.effective_gflops
}

/// Simulates `runs` inferences of `model` on `device` with ±jitter.
pub fn simulate_inference(
    model: &ModelSpec,
    device: &DeviceProfile,
    runs: usize,
    seed: u64,
) -> LatencyStats {
    assert!(runs >= 1, "need at least one run");
    let nominal = nominal_latency_ms(model, device);
    let mut rng =
        StdRng::seed_from_u64(seed ^ model.mflops.to_bits() ^ device.effective_gflops.to_bits());
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for _ in 0..runs {
        // Multiplicative jitter: mostly small, occasional 1.5x stalls
        // (GC, thermal throttling, background load).
        let base: f64 = rng.gen_range(0.92..1.12);
        let stall = if rng.gen_bool(0.05) {
            rng.gen_range(1.2..1.6)
        } else {
            1.0
        };
        let t = nominal * base * stall;
        // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
        sum += t;
        min = min.min(t);
        max = max.max(t);
    }
    LatencyStats {
        mean_ms: sum / runs as f64,
        min_ms: min,
        max_ms: max,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::model::zoo_model;

    #[test]
    fn nominal_matches_cost_model() {
        let m = zoo_model("MobileNetV1").unwrap();
        let d = DeviceClass::Desktop.profile();
        let expected = 2.0 + 569.0 / 50.0;
        assert!((nominal_latency_ms(&m, &d) - expected).abs() < 1e-9);
    }

    #[test]
    fn desktop_tens_of_ms_rpi_thousands() {
        let m = zoo_model("MobileNetV1").unwrap();
        let desktop = simulate_inference(&m, &DeviceClass::Desktop.profile(), 100, 1);
        let rpi = simulate_inference(&m, &DeviceClass::RaspberryPi.profile(), 100, 1);
        assert!(
            (5.0..100.0).contains(&desktop.mean_ms),
            "desktop {} ms",
            desktop.mean_ms
        );
        assert!(rpi.mean_ms > 400.0, "rpi {} ms", rpi.mean_ms);
        // Paper: RPi ~1.5 orders of magnitude slower than desktop class.
        let orders = rpi.log10_mean() - desktop.log10_mean();
        assert!((1.0..2.3).contains(&orders), "separation {orders} orders");
    }

    #[test]
    fn bigger_model_slower_on_every_device() {
        let small = zoo_model("MobileNetV2").unwrap();
        let big = zoo_model("InceptionV3").unwrap();
        for class in DeviceClass::ALL {
            let p = class.profile();
            assert!(nominal_latency_ms(&big, &p) > nominal_latency_ms(&small, &p));
        }
    }

    #[test]
    fn stats_consistent_and_deterministic() {
        let m = zoo_model("InceptionV3").unwrap();
        let d = DeviceClass::Smartphone.profile();
        let a = simulate_inference(&m, &d, 200, 9);
        let b = simulate_inference(&m, &d, 200, 9);
        assert_eq!(a.mean_ms, b.mean_ms);
        assert!(a.min_ms <= a.mean_ms && a.mean_ms <= a.max_ms);
        assert_eq!(a.runs, 200);
        // Jitter bounded: min within 10% below nominal.
        let nominal = nominal_latency_ms(&m, &d);
        assert!(a.min_ms >= nominal * 0.9);
        assert!(a.max_ms <= nominal * 1.12 * 1.6 + 1e-9);
    }
}
