//! The crowd-based learning loop (paper Fig. 4, ref [34]).
//!
//! Edge devices hold pools of freshly captured, unlabeled samples. Each
//! round, the current server model is (conceptually) dispatched to the
//! edges; every edge scores its pool locally, prioritizes the most
//! informative samples (smallest prediction margin), extracts feature
//! vectors locally, and uploads only what fits the per-round bandwidth
//! budget. Uploaded samples get labels (user feedback / manual
//! labelling), join the server training set, and the model is retrained.
//!
//! Uploading features instead of raw images is the framework's bandwidth
//! lever: the report tracks both the bytes actually sent and the bytes a
//! raw-image upload would have cost.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tvdp_ml::{Classifier, ConfusionMatrix, Dataset};

/// How an edge picks which samples to upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Smallest top-1 / top-2 margin first (uncertainty sampling) — the
    /// paper's prioritized distributed selection.
    Margin,
    /// Uniform random (the ablation baseline).
    Random,
}

/// Loop configuration.
#[derive(Debug, Clone)]
pub struct CrowdLearningConfig {
    /// Number of dispatch/collect/retrain rounds.
    pub rounds: usize,
    /// Upload budget per edge per round, bytes.
    pub per_edge_budget_bytes: u64,
    /// Bytes of one uploaded feature vector (dim × 4 for f32).
    pub feature_bytes: u64,
    /// Bytes a raw image upload would have cost instead.
    pub raw_image_bytes: u64,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// RNG seed (random strategy, tie-breaking).
    pub seed: u64,
}

/// One edge device's sample pool: feature vectors with *hidden* ground-
/// truth labels (revealed only when a sample is uploaded and labelled).
#[derive(Debug, Clone)]
pub struct EdgeNode {
    /// Node identifier.
    pub id: u64,
    /// Remaining unlabeled pool.
    pub pool: Vec<(Vec<f32>, usize)>,
}

/// Per-round statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0 = before any edge data).
    pub round: usize,
    /// Macro F1 of the server model on the held-out test set.
    pub test_f1: f64,
    /// Samples uploaded this round across all edges.
    pub uploaded: usize,
    /// Feature bytes actually uploaded this round.
    pub bytes_uploaded: u64,
    /// Bytes raw-image uploads would have cost this round.
    pub raw_bytes_equivalent: u64,
}

/// Full loop report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdLearningReport {
    /// Per-round stats; entry 0 is the initial model before edge data.
    pub rounds: Vec<RoundStats>,
    /// Bandwidth saved by shipping features instead of raw images, in
    /// `[0, 1]` (1 = everything saved).
    pub bandwidth_saving: f64,
}

impl CrowdLearningReport {
    /// F1 of the initial model (no edge data).
    pub fn initial_f1(&self) -> f64 {
        self.rounds.first().map_or(0.0, |r| r.test_f1)
    }

    /// F1 after the final round.
    pub fn final_f1(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.test_f1)
    }
}

/// Orders a pool's indices by the edge's local selection policy:
/// smallest prediction margin first for [`SelectionStrategy::Margin`],
/// a seeded shuffle for [`SelectionStrategy::Random`].
pub(crate) fn selection_order<C: Classifier>(
    model: &C,
    pool: &[(Vec<f32>, usize)],
    strategy: SelectionStrategy,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..pool.len()).collect();
    match strategy {
        SelectionStrategy::Random => order.shuffle(rng),
        SelectionStrategy::Margin => {
            let mut scored: Vec<(f32, usize)> = pool
                .iter()
                .enumerate()
                .map(|(i, (x, _))| {
                    let mut scores = model.decision_scores(x);
                    scores.sort_by(|a, b| b.total_cmp(a));
                    let margin = if scores.len() >= 2 {
                        scores[0] - scores[1]
                    } else {
                        f32::INFINITY
                    };
                    (margin, i)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            order = scored.into_iter().map(|(_, i)| i).collect();
        }
    }
    order
}

/// Runs the crowd-based learning loop.
///
/// `make_model` builds a fresh classifier per retraining; `train` seeds
/// the server's labelled set; `test` is the held-out evaluation set.
pub fn run_crowd_learning<C, F>(
    train: &Dataset,
    test: &Dataset,
    edges: &mut [EdgeNode],
    config: &CrowdLearningConfig,
    make_model: F,
) -> CrowdLearningReport
where
    C: Classifier,
    F: Fn() -> C,
{
    assert!(config.rounds >= 1, "need at least one round");
    assert!(config.feature_bytes > 0, "zero feature size");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut accumulated = train.clone();
    let mut rounds = Vec::new();
    let mut total_bytes = 0u64;
    let mut total_raw = 0u64;

    // Round 0: the initial model.
    let mut model = make_model();
    model.fit(
        &accumulated.features,
        &accumulated.labels,
        accumulated.n_classes,
    );
    let cm = ConfusionMatrix::from_predictions(
        &test.labels,
        &model.predict(&test.features),
        test.n_classes,
    );
    rounds.push(RoundStats {
        round: 0,
        test_f1: cm.macro_f1(),
        uploaded: 0,
        bytes_uploaded: 0,
        raw_bytes_equivalent: 0,
    });

    let per_round_samples = (config.per_edge_budget_bytes / config.feature_bytes) as usize;

    for round in 1..=config.rounds {
        let mut uploaded_this_round = 0usize;
        for edge in edges.iter_mut() {
            if edge.pool.is_empty() || per_round_samples == 0 {
                continue;
            }
            // Order the pool by the edge's local selection policy.
            let order = selection_order(&model, &edge.pool, config.strategy, &mut rng);
            let take = per_round_samples.min(order.len());
            // Remove selected samples from the pool (descending indices so
            // removal doesn't shift later ones).
            let mut selected: Vec<usize> = order[..take].to_vec();
            selected.sort_unstable_by(|a, b| b.cmp(a));
            for idx in selected {
                let (x, label) = edge.pool.swap_remove(idx);
                accumulated.features.push(x);
                accumulated.labels.push(label);
                uploaded_this_round += 1;
                total_bytes += config.feature_bytes;
                total_raw += config.raw_image_bytes;
            }
        }
        // Retrain on the grown set and evaluate.
        let mut retrained = make_model();
        retrained.fit(
            &accumulated.features,
            &accumulated.labels,
            accumulated.n_classes,
        );
        model = retrained;
        let cm = ConfusionMatrix::from_predictions(
            &test.labels,
            &model.predict(&test.features),
            test.n_classes,
        );
        rounds.push(RoundStats {
            round,
            test_f1: cm.macro_f1(),
            uploaded: uploaded_this_round,
            bytes_uploaded: uploaded_this_round as u64 * config.feature_bytes,
            raw_bytes_equivalent: uploaded_this_round as u64 * config.raw_image_bytes,
        });
    }

    let bandwidth_saving = if total_raw == 0 {
        0.0
    } else {
        1.0 - total_bytes as f64 / total_raw as f64
    };
    CrowdLearningReport {
        rounds,
        bandwidth_saving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tvdp_ml::LinearSvm;

    /// Two-blob problem; the initial training set is tiny and the edges
    /// hold the bulk of the data.
    fn setup(seed: u64) -> (Dataset, Dataset, Vec<EdgeNode>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = |class: usize| -> (Vec<f32>, usize) {
            let cx = class as f32 * 2.0;
            (
                vec![cx + rng.gen_range(-1.2..1.2), cx + rng.gen_range(-1.2..1.2)],
                class,
            )
        };
        let mut mk_dataset = |n: usize| {
            let mut f = Vec::new();
            let mut l = Vec::new();
            for i in 0..n {
                let (x, y) = sample(i % 2);
                f.push(x);
                l.push(y);
            }
            Dataset::new(f, l, 2)
        };
        let train = mk_dataset(8);
        let test = mk_dataset(200);
        let edges = (0..4)
            .map(|id| EdgeNode {
                id,
                pool: (0..100).map(|i| sample(i % 2)).collect(),
            })
            .collect();
        (train, test, edges)
    }

    fn config(strategy: SelectionStrategy) -> CrowdLearningConfig {
        CrowdLearningConfig {
            rounds: 4,
            per_edge_budget_bytes: 160, // 20 two-dim f32 vectors
            feature_bytes: 8,
            raw_image_bytes: 6912, // 48x48x3
            strategy,
            seed: 5,
        }
    }

    #[test]
    fn retraining_improves_f1() {
        let (train, test, mut edges) = setup(1);
        let report = run_crowd_learning(
            &train,
            &test,
            &mut edges,
            &config(SelectionStrategy::Margin),
            LinearSvm::new,
        );
        assert_eq!(report.rounds.len(), 5);
        assert!(
            report.final_f1() > report.initial_f1(),
            "no improvement: {} -> {}",
            report.initial_f1(),
            report.final_f1()
        );
    }

    #[test]
    fn budget_caps_uploads() {
        let (train, test, mut edges) = setup(2);
        let report = run_crowd_learning(
            &train,
            &test,
            &mut edges,
            &config(SelectionStrategy::Random),
            LinearSvm::new,
        );
        for r in &report.rounds[1..] {
            // 4 edges x 20 samples max per round.
            assert!(r.uploaded <= 80, "round uploaded {}", r.uploaded);
            assert_eq!(r.bytes_uploaded, r.uploaded as u64 * 8);
        }
    }

    #[test]
    fn bandwidth_saving_reflects_feature_upload() {
        let (train, test, mut edges) = setup(3);
        let report = run_crowd_learning(
            &train,
            &test,
            &mut edges,
            &config(SelectionStrategy::Margin),
            LinearSvm::new,
        );
        // 8 bytes instead of 6912 per sample: saving well above 99%.
        assert!(
            report.bandwidth_saving > 0.99,
            "saving {}",
            report.bandwidth_saving
        );
    }

    #[test]
    fn pools_shrink_and_never_duplicate() {
        let (train, test, mut edges) = setup(4);
        let before: usize = edges.iter().map(|e| e.pool.len()).sum();
        let report = run_crowd_learning(
            &train,
            &test,
            &mut edges,
            &config(SelectionStrategy::Margin),
            LinearSvm::new,
        );
        let after: usize = edges.iter().map(|e| e.pool.len()).sum();
        let uploaded: usize = report.rounds.iter().map(|r| r.uploaded).sum();
        assert_eq!(before - after, uploaded);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let (train, test, mut edges) = setup(5);
            run_crowd_learning(
                &train,
                &test,
                &mut edges,
                &config(SelectionStrategy::Margin),
                LinearSvm::new,
            )
        };
        let a = run();
        let b = run();
        let af: Vec<f64> = a.rounds.iter().map(|r| r.test_f1).collect();
        let bf: Vec<f64> = b.rounds.iter().map(|r| r.test_f1).collect();
        assert_eq!(af, bf);
    }
}
