//! Edge-computing substrate for the Translational Visual Data Platform.
//!
//! Implements the paper's *Action* layer (Section VI and Fig. 4): a
//! crowd-based learning framework that
//!
//! 1. keeps a zoo of models at different complexities
//!    ([`model::ModelSpec`]: MobileNetV1/V2 and InceptionV3 analogues),
//! 2. dispatches the right model per device capability
//!    ([`dispatch::ModelDispatcher`] over [`device::DeviceProfile`]s),
//! 3. simulates on-device inference latency ([`latency`]) — the
//!    substrate behind the paper's Fig. 8 (desktop vs Raspberry Pi vs
//!    smartphone),
//! 4. improves the server model from edge-collected data under a
//!    bandwidth budget ([`learning`]): each edge ranks its samples by
//!    prediction margin, extracts features locally, and uploads only the
//!    most informative ones — the distributed selection algorithm of the
//!    paper's ref \[34\].
//!
//! Physical devices are not available in this environment, so latency is
//! an analytical cost model (FLOPs / effective throughput + overhead,
//! with seeded jitter); see DESIGN.md for the substitution argument.
//!
//! The acquisition path is resilient by construction: uploads travel
//! through a deterministic fault-injected [`transport`] (drops,
//! corruption, stalls, partitions on a virtual clock) with seeded-jitter
//! exponential backoff, per-device circuit [`breaker`]s feed a fleet
//! health view, and [`uplink::run_crowd_learning_resilient`] replays the
//! learning loop over that lossy link with idempotency-keyed,
//! exactly-once sample ingest.

pub mod batch;
pub mod breaker;
pub mod device;
pub mod dispatch;
pub mod energy;
pub mod fault;
pub mod latency;
pub mod learning;
pub mod model;
pub mod transport;
pub mod uplink;

pub use batch::{BatchPolicy, UploadBatcher};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, DeviceHealth, FleetHealth};
pub use device::{DeviceClass, DeviceProfile};
pub use dispatch::{
    DegradeReason, DispatchConstraints, DispatchDecision, DispatchError, LinkConditions,
    ModelDispatcher,
};
pub use energy::{energy_per_inference_j, inferences_per_charge, PowerProfile};
pub use fault::{Fault, FaultPlan, FaultRates, Partition};
pub use latency::{nominal_latency_ms, simulate_inference, LatencyStats};
pub use learning::{CrowdLearningConfig, CrowdLearningReport, EdgeNode, SelectionStrategy};
pub use model::{ModelSpec, MODEL_ZOO};
pub use transport::{
    ChannelReply, EdgeTransport, RetryPolicy, SendOutcome, SendReport, UploadPacket, VirtualClock,
};
pub use uplink::{run_crowd_learning_resilient, ResilientLearningReport, UplinkConfig};
