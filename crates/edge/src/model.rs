//! The model zoo: analysis models at different complexities.
//!
//! The paper's edge experiment transfers street-cleanliness models built
//! by transfer learning on three pretrained networks. The specs below
//! carry the published compute/size figures of those architectures (at
//! 224×224 / 299×299 inputs), which drive the latency simulation and the
//! dispatcher's accuracy-vs-cost trade-off.

use serde::{Deserialize, Serialize};

/// A deployable model variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Architecture name.
    pub name: &'static str,
    /// Multiply-accumulates per inference, in MFLOPs.
    pub mflops: f64,
    /// Parameter count in millions (drives download size and memory).
    pub params_millions: f64,
    /// Square input resolution in pixels.
    pub input_px: u32,
    /// Relative task accuracy proxy in `[0, 1]` (transfer-learning
    /// fine-tuned; ordering follows the architectures' ImageNet results).
    pub accuracy: f64,
}

impl ModelSpec {
    /// Approximate serialized size in bytes (float32 weights).
    pub fn download_bytes(&self) -> u64 {
        (self.params_millions * 1e6 * 4.0) as u64
    }

    /// Approximate runtime memory footprint in MB (weights + activations
    /// rule of thumb: 2x weights).
    pub fn memory_mb(&self) -> u64 {
        ((self.params_millions * 4.0 * 2.0) as u64).max(1)
    }
}

/// The paper's three transfer-learning bases, smallest to largest.
pub const MODEL_ZOO: [ModelSpec; 3] = [
    ModelSpec {
        name: "MobileNetV2",
        mflops: 300.0,
        params_millions: 3.4,
        input_px: 224,
        accuracy: 0.72,
    },
    ModelSpec {
        name: "MobileNetV1",
        mflops: 569.0,
        params_millions: 4.2,
        input_px: 224,
        accuracy: 0.706,
    },
    ModelSpec {
        name: "InceptionV3",
        mflops: 5_700.0,
        params_millions: 23.8,
        input_px: 299,
        accuracy: 0.779,
    },
];

/// Looks a zoo model up by name.
pub fn zoo_model(name: &str) -> Option<ModelSpec> {
    MODEL_ZOO.iter().copied().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_papers_three_models() {
        for name in ["MobileNetV1", "MobileNetV2", "InceptionV3"] {
            assert!(zoo_model(name).is_some(), "{name} missing");
        }
        assert!(zoo_model("ResNet50").is_none());
    }

    #[test]
    fn inception_is_biggest_and_most_accurate() {
        let inception = zoo_model("InceptionV3").unwrap();
        for m in MODEL_ZOO {
            assert!(inception.mflops >= m.mflops);
            assert!(inception.accuracy >= m.accuracy);
            assert!(inception.download_bytes() >= m.download_bytes());
        }
    }

    #[test]
    fn sizes_are_physical() {
        let v2 = zoo_model("MobileNetV2").unwrap();
        // 3.4M float32 params ≈ 13.6 MB download.
        assert_eq!(v2.download_bytes(), 13_600_000);
        assert!(v2.memory_mb() >= 27);
    }
}
