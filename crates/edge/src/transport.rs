//! Fault-injected upload transport on a virtual clock.
//!
//! Edge devices push captured data to the platform over real city
//! networks — links that drop, corrupt, stall, and partition. This
//! module models that path deterministically: [`EdgeTransport`] delivers
//! [`UploadPacket`]s to a caller-supplied server function, injecting
//! faults from a [`FaultPlan`](crate::fault::FaultPlan) and advancing a
//! [`VirtualClock`] instead of sleeping (lint L4 forbids wall-clock
//! time), with seeded-jitter exponential backoff, a per-attempt timeout,
//! a bounded attempt count, and a total virtual-time budget.
//!
//! The transport retries on loss, timeout, corruption rejections, 429
//! (honoring the server's `retry_after_ms` hint), and 5xx. Because a
//! lost acknowledgement is indistinguishable from a lost request, every
//! packet carries an idempotency key; the server side dedups replays so
//! at-least-once delivery becomes exactly-once ingest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::breaker::CircuitBreaker;
use crate::fault::{Fault, FaultPlan};

/// Simulated milliseconds since an arbitrary epoch. All transport
/// timing derives from this clock, never from the host's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: i64,
}

impl VirtualClock {
    /// A clock starting at `start_ms`.
    pub fn new(start_ms: i64) -> Self {
        VirtualClock { now_ms: start_ms }
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    /// Advances the clock; the virtual analogue of sleeping.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms as i64);
    }
}

/// FNV-1a 64-bit checksum guarding payload integrity in flight.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Status the simulated server uses to reject a checksum mismatch; the
/// transport treats it as retryable because the sender's local copy is
/// intact and only the in-flight bytes were damaged.
pub const STATUS_BAD_CHECKSUM: u16 = 460;

/// One client upload: an idempotency key, the payload bytes, and the
/// payload checksum computed at packing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadPacket {
    /// Client-chosen key identifying this logical upload across retries.
    pub idempotency_key: String,
    /// Opaque payload (e.g. a rendered `data/add` JSON body).
    pub payload: Vec<u8>,
    /// [`checksum`] of `payload` at packing time.
    pub checksum: u64,
}

impl UploadPacket {
    /// Packs a payload, stamping its checksum.
    pub fn new(idempotency_key: impl Into<String>, payload: Vec<u8>) -> Self {
        let checksum = checksum(&payload);
        UploadPacket {
            idempotency_key: idempotency_key.into(),
            payload,
            checksum,
        }
    }

    /// Whether the payload still matches its checksum — the receiver's
    /// integrity check.
    pub fn verify(&self) -> bool {
        checksum(&self.payload) == self.checksum
    }
}

/// What the server returned for one delivered attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReply {
    /// HTTP-style status code (`< 300` = accepted).
    pub status: u16,
    /// Server backpressure hint on 429: earliest useful retry delay.
    pub retry_after_ms: Option<u64>,
    /// Response body, opaque to the transport.
    pub body: String,
}

impl ChannelReply {
    /// An accepting reply with the given body.
    pub fn ok(body: impl Into<String>) -> Self {
        ChannelReply {
            status: 200,
            retry_after_ms: None,
            body: body.into(),
        }
    }

    /// A reply with only a status code.
    pub fn status(status: u16) -> Self {
        ChannelReply {
            status,
            retry_after_ms: None,
            body: String::new(),
        }
    }
}

/// Retry/backoff parameters, all in virtual milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Hard cap on delivery attempts per send.
    pub max_attempts: u32,
    /// First backoff delay; doubles per subsequent retry.
    pub base_backoff_ms: u64,
    /// Ceiling the exponential backoff saturates at.
    pub max_backoff_ms: u64,
    /// Backoff jitter: each delay is scaled by a seeded uniform factor
    /// in `[1 - jitter_frac, 1 + jitter_frac]` to decorrelate fleets.
    pub jitter_frac: f64,
    /// How long one attempt waits for a reply before giving up on it.
    pub attempt_timeout_ms: u64,
    /// Total virtual-time budget for the whole send, backoffs included.
    pub total_budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 50,
            max_backoff_ms: 3_200,
            jitter_frac: 0.2,
            attempt_timeout_ms: 400,
            total_budget_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// Fire-and-forget: a single attempt, no backoff — the ablation
    /// baseline the benchmarks compare against.
    pub fn single_attempt() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_frac: 0.0,
            ..Default::default()
        }
    }

    /// Backoff before retry number `retry` (1-based), jittered by `rng`.
    fn backoff_ms(&self, retry: u32, rng: &mut StdRng) -> u64 {
        let exp = retry.saturating_sub(1).min(16);
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms);
        if self.jitter_frac <= 0.0 || raw == 0 {
            return raw;
        }
        let lo = 1.0 - self.jitter_frac;
        let hi = 1.0 + self.jitter_frac;
        let factor: f64 = rng.gen_range(lo..hi);
        (raw as f64 * factor) as u64
    }
}

/// Why a send ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The server accepted the upload (status < 300).
    Acked,
    /// The server rejected it with a non-retryable status; retrying the
    /// same bytes cannot succeed.
    Rejected,
    /// Every allowed attempt was spent without an acknowledgement.
    ExhaustedAttempts,
    /// The total virtual-time budget ran out between attempts.
    BudgetExhausted,
    /// The circuit breaker was open; no attempt was made.
    Shed,
}

/// Full accounting of one send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendReport {
    /// How the send ended.
    pub outcome: SendOutcome,
    /// Delivery attempts made.
    pub attempts: u32,
    /// Virtual time the send started.
    pub started_ms: i64,
    /// Virtual time the send finished.
    pub finished_ms: i64,
    /// Payload bytes that left the device, retries included.
    pub bytes_sent: u64,
    /// Final server reply, when one was received
    /// ([`SendOutcome::Acked`] or [`SendOutcome::Rejected`]).
    pub reply: Option<ChannelReply>,
}

impl SendReport {
    /// Whether the upload was acknowledged.
    pub fn acked(&self) -> bool {
        self.outcome == SendOutcome::Acked
    }

    /// Virtual milliseconds the send occupied.
    pub fn elapsed_ms(&self) -> u64 {
        (self.finished_ms - self.started_ms).max(0) as u64
    }
}

/// What the client observed for one attempt.
enum Observed {
    Reply(ChannelReply),
    /// No reply within the attempt timeout (drop, stall past the
    /// timeout, or partition).
    Lost,
}

/// The resilient upload path of one edge device.
///
/// The server side is a caller-supplied `FnMut(&UploadPacket, i64) ->
/// ChannelReply` invoked at the packet's virtual arrival time — in tests
/// it wraps a real `ApiServer`; in benchmarks, a synthetic sink. Faults
/// sit between the two: a dropped request never invokes it, a dropped
/// reply invokes it and discards the answer.
#[derive(Debug)]
pub struct EdgeTransport {
    clock: VirtualClock,
    policy: RetryPolicy,
    plan: FaultPlan,
    rng: StdRng,
    /// Fault-free round-trip latency of the link, ms.
    pub nominal_rtt_ms: u64,
}

impl EdgeTransport {
    /// A transport over the given policy and fault plan; `seed` drives
    /// backoff jitter and corruption byte selection.
    pub fn new(policy: RetryPolicy, plan: FaultPlan, seed: u64) -> Self {
        EdgeTransport {
            clock: VirtualClock::new(0),
            policy,
            plan,
            rng: StdRng::seed_from_u64(seed),
            nominal_rtt_ms: 40,
        }
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> i64 {
        self.clock.now_ms()
    }

    /// Advances virtual time (e.g. between simulation rounds).
    pub fn advance(&mut self, ms: u64) {
        self.clock.advance(ms);
    }

    /// The configured retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Sends one packet, retrying per policy until acked, rejected, or
    /// out of attempts/budget.
    pub fn send<S>(&mut self, packet: &UploadPacket, server: &mut S) -> SendReport
    where
        S: FnMut(&UploadPacket, i64) -> ChannelReply,
    {
        let started_ms = self.clock.now_ms();
        let mut attempts = 0u32;
        let mut bytes_sent = 0u64;
        loop {
            if attempts >= self.policy.max_attempts {
                return self.report(
                    SendOutcome::ExhaustedAttempts,
                    attempts,
                    started_ms,
                    bytes_sent,
                    None,
                );
            }
            if (self.clock.now_ms() - started_ms) as u64 >= self.policy.total_budget_ms
                && attempts > 0
            {
                return self.report(
                    SendOutcome::BudgetExhausted,
                    attempts,
                    started_ms,
                    bytes_sent,
                    None,
                );
            }
            attempts += 1;
            let observed = self.attempt(packet, &mut bytes_sent, server);
            match observed {
                Observed::Reply(reply) if reply.status < 300 => {
                    return self.report(
                        SendOutcome::Acked,
                        attempts,
                        started_ms,
                        bytes_sent,
                        Some(reply),
                    );
                }
                Observed::Reply(reply) if !retryable(reply.status) => {
                    return self.report(
                        SendOutcome::Rejected,
                        attempts,
                        started_ms,
                        bytes_sent,
                        Some(reply),
                    );
                }
                Observed::Reply(reply) => {
                    // Retryable status: back off, honoring the server's
                    // own backpressure hint when it is larger.
                    let backoff = self.policy.backoff_ms(attempts, &mut self.rng);
                    let wait = backoff.max(reply.retry_after_ms.unwrap_or(0));
                    self.clock.advance(wait);
                }
                Observed::Lost => {
                    let backoff = self.policy.backoff_ms(attempts, &mut self.rng);
                    self.clock.advance(backoff);
                }
            }
        }
    }

    /// [`EdgeTransport::send`] gated by a per-device circuit breaker:
    /// sheds immediately while the breaker is open, and feeds the
    /// outcome back into it.
    pub fn send_guarded<S>(
        &mut self,
        breaker: &mut CircuitBreaker,
        packet: &UploadPacket,
        server: &mut S,
    ) -> SendReport
    where
        S: FnMut(&UploadPacket, i64) -> ChannelReply,
    {
        if !breaker.allow(self.clock.now_ms()) {
            let now = self.clock.now_ms();
            return SendReport {
                outcome: SendOutcome::Shed,
                attempts: 0,
                started_ms: now,
                finished_ms: now,
                bytes_sent: 0,
                reply: None,
            };
        }
        let report = self.send(packet, server);
        match report.outcome {
            SendOutcome::Acked => breaker.record_success(self.clock.now_ms()),
            // A rejection is the *server* refusing well-delivered bytes;
            // the link worked, so it does not count against the breaker.
            SendOutcome::Rejected => breaker.record_success(self.clock.now_ms()),
            SendOutcome::ExhaustedAttempts | SendOutcome::BudgetExhausted => {
                breaker.record_failure(self.clock.now_ms());
            }
            SendOutcome::Shed => {}
        }
        report
    }

    /// One delivery attempt: applies the planned fault, invokes the
    /// server unless the bytes never arrive, and advances the clock by
    /// what the client experienced.
    fn attempt<S>(
        &mut self,
        packet: &UploadPacket,
        bytes_sent: &mut u64,
        server: &mut S,
    ) -> Observed
    where
        S: FnMut(&UploadPacket, i64) -> ChannelReply,
    {
        let now = self.clock.now_ms();
        if self.plan.partitioned_at(now) {
            // Link down: fails fast (no route), nothing leaves the
            // device beyond the connection attempt.
            self.clock
                .advance(self.nominal_rtt_ms.min(self.policy.attempt_timeout_ms));
            return Observed::Lost;
        }
        let fault = self.plan.next_fault();
        *bytes_sent += packet.payload.len() as u64;
        let one_way = self.nominal_rtt_ms / 2;
        match fault {
            Fault::DropRequest => {
                // Bytes vanish en route; the client times out.
                self.clock.advance(self.policy.attempt_timeout_ms);
                Observed::Lost
            }
            Fault::DropReply => {
                // Server processes the upload; the ack is lost.
                let _ = server(packet, now + one_way as i64);
                self.clock.advance(self.policy.attempt_timeout_ms);
                Observed::Lost
            }
            Fault::Corrupt => {
                let corrupted = self.corrupt(packet);
                let reply = server(&corrupted, now + one_way as i64);
                self.clock.advance(self.nominal_rtt_ms);
                Observed::Reply(reply)
            }
            Fault::Stall(extra_ms) => {
                let rtt = self.nominal_rtt_ms.saturating_add(extra_ms);
                let reply = server(packet, now + one_way as i64);
                if rtt > self.policy.attempt_timeout_ms {
                    // The reply exists but arrives after the client gave
                    // up — operationally identical to a dropped ack.
                    self.clock.advance(self.policy.attempt_timeout_ms);
                    Observed::Lost
                } else {
                    self.clock.advance(rtt);
                    Observed::Reply(reply)
                }
            }
            Fault::None => {
                let reply = server(packet, now + one_way as i64);
                self.clock.advance(self.nominal_rtt_ms);
                Observed::Reply(reply)
            }
        }
    }

    /// A copy of `packet` with one payload byte flipped (or, for empty
    /// payloads, a damaged checksum), chosen by the transport's seeded
    /// RNG so corruption is replayable.
    fn corrupt(&mut self, packet: &UploadPacket) -> UploadPacket {
        let mut damaged = packet.clone();
        if damaged.payload.is_empty() {
            damaged.checksum ^= 1;
        } else {
            let idx = self.rng.gen_range(0..damaged.payload.len());
            damaged.payload[idx] ^= 0x40;
        }
        damaged
    }

    fn report(
        &self,
        outcome: SendOutcome,
        attempts: u32,
        started_ms: i64,
        bytes_sent: u64,
        reply: Option<ChannelReply>,
    ) -> SendReport {
        SendReport {
            outcome,
            attempts,
            started_ms,
            finished_ms: self.clock.now_ms(),
            bytes_sent,
            reply,
        }
    }
}

/// Whether a status code is worth retrying: backpressure (429), a
/// transport-integrity rejection ([`STATUS_BAD_CHECKSUM`]), or a server
/// fault (5xx). Other 4xx statuses are permanent for the same bytes.
fn retryable(status: u16) -> bool {
    status == 429 || status == STATUS_BAD_CHECKSUM || status >= 500
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultRates, Partition};

    /// A server accepting everything, verifying checksums, and counting
    /// how many times each idempotency key was processed.
    struct CountingServer {
        seen: std::collections::BTreeMap<String, u32>,
    }

    impl CountingServer {
        fn new() -> Self {
            CountingServer {
                seen: std::collections::BTreeMap::new(),
            }
        }

        fn handle(&mut self, packet: &UploadPacket) -> ChannelReply {
            if !packet.verify() {
                return ChannelReply::status(STATUS_BAD_CHECKSUM);
            }
            *self.seen.entry(packet.idempotency_key.clone()).or_insert(0) += 1;
            ChannelReply::ok("{}")
        }
    }

    fn packet(key: &str) -> UploadPacket {
        UploadPacket::new(key, format!("payload-{key}").into_bytes())
    }

    #[test]
    fn clean_link_acks_first_attempt() {
        let mut t = EdgeTransport::new(RetryPolicy::default(), FaultPlan::reliable(), 1);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert!(r.acked());
        assert_eq!(r.attempts, 1);
        assert_eq!(srv.seen["a"], 1);
    }

    #[test]
    fn dropped_request_is_retried_and_acked_once() {
        let plan = FaultPlan::scripted(vec![Fault::DropRequest, Fault::DropRequest]);
        let mut t = EdgeTransport::new(RetryPolicy::default(), plan, 2);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert!(r.acked());
        assert_eq!(r.attempts, 3);
        assert_eq!(srv.seen["a"], 1);
    }

    #[test]
    fn dropped_reply_reaches_server_twice_under_retry() {
        // The at-least-once hazard: the server processed attempt 1 but
        // the client could not know. Idempotency dedup happens a layer
        // up; at the transport layer the duplicate is expected.
        let plan = FaultPlan::scripted(vec![Fault::DropReply]);
        let mut t = EdgeTransport::new(RetryPolicy::default(), plan, 3);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert!(r.acked());
        assert_eq!(r.attempts, 2);
        assert_eq!(srv.seen["a"], 2);
    }

    #[test]
    fn corruption_is_detected_and_the_retry_is_intact() {
        let plan = FaultPlan::scripted(vec![Fault::Corrupt]);
        let mut t = EdgeTransport::new(RetryPolicy::default(), plan, 4);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert!(r.acked());
        assert_eq!(r.attempts, 2);
        // The corrupted copy was rejected before counting.
        assert_eq!(srv.seen["a"], 1);
    }

    #[test]
    fn stall_past_timeout_counts_as_loss() {
        let policy = RetryPolicy {
            attempt_timeout_ms: 400,
            ..Default::default()
        };
        let plan = FaultPlan::scripted(vec![Fault::Stall(1_000)]);
        let mut t = EdgeTransport::new(policy, plan, 5);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert!(r.acked());
        assert_eq!(r.attempts, 2);
        assert_eq!(srv.seen["a"], 2, "the stalled attempt was processed");
    }

    #[test]
    fn attempts_are_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        let plan = FaultPlan::scripted(vec![Fault::DropRequest; 10]);
        let mut t = EdgeTransport::new(policy, plan, 6);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert_eq!(r.outcome, SendOutcome::ExhaustedAttempts);
        assert_eq!(r.attempts, 3);
        assert!(!srv.seen.contains_key("a"));
    }

    #[test]
    fn partition_fails_fast_until_it_heals() {
        let plan = FaultPlan::reliable().with_partitions(vec![Partition {
            from_ms: 0,
            until_ms: 500,
        }]);
        let mut t = EdgeTransport::new(RetryPolicy::default(), plan, 7);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert!(r.acked(), "send should survive the outage: {r:?}");
        assert!(r.attempts > 1);
        assert!(
            r.finished_ms >= 500,
            "acked only after the partition healed"
        );
        assert_eq!(srv.seen["a"], 1);
    }

    #[test]
    fn retry_after_hint_is_honored() {
        let mut t = EdgeTransport::new(RetryPolicy::default(), FaultPlan::reliable(), 8);
        let mut rejected_once = false;
        let r = t.send(&packet("a"), &mut |_, _| {
            if rejected_once {
                ChannelReply::ok("{}")
            } else {
                rejected_once = true;
                ChannelReply {
                    status: 429,
                    retry_after_ms: Some(5_000),
                    body: String::new(),
                }
            }
        });
        assert!(r.acked());
        // The wait was driven by the 5 s hint, not the ~50 ms backoff.
        assert!(r.elapsed_ms() >= 5_000, "elapsed {} ms", r.elapsed_ms());
    }

    #[test]
    fn non_retryable_rejection_stops_immediately() {
        let mut t = EdgeTransport::new(RetryPolicy::default(), FaultPlan::reliable(), 9);
        let r = t.send(&packet("a"), &mut |_, _| ChannelReply::status(401));
        assert_eq!(r.outcome, SendOutcome::Rejected);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn total_budget_bounds_virtual_time() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            total_budget_ms: 3_000,
            ..Default::default()
        };
        let plan = FaultPlan::seeded(
            FaultRates {
                drop_request: 1.0,
                drop_reply: 0.0,
                corrupt: 0.0,
                stall: 0.0,
                stall_ms: 0,
            },
            0,
        );
        let mut t = EdgeTransport::new(policy, plan, 10);
        let mut srv = CountingServer::new();
        let r = t.send(&packet("a"), &mut |p, _| srv.handle(p));
        assert_eq!(r.outcome, SendOutcome::BudgetExhausted);
        assert!(r.elapsed_ms() >= 3_000);
        assert!(
            r.elapsed_ms() < 10_000,
            "gave up promptly: {}",
            r.elapsed_ms()
        );
    }

    #[test]
    fn sends_are_deterministic_for_a_seed() {
        let run = || {
            let plan = FaultPlan::seeded(FaultRates::lossy(), 77);
            let mut t = EdgeTransport::new(RetryPolicy::default(), plan, 78);
            let mut srv = CountingServer::new();
            let reports: Vec<SendReport> = (0..20)
                .map(|i| t.send(&packet(&format!("k{i}")), &mut |p, _| srv.handle(p)))
                .collect();
            (reports, srv.seen)
        };
        assert_eq!(run(), run());
    }
}
