//! The crowd-learning loop over a lossy uplink.
//!
//! [`crate::learning::run_crowd_learning`] assumes every selected sample
//! reaches the server. [`run_crowd_learning_resilient`] replays the same
//! loop through the fault-injected [`EdgeTransport`]: each selected
//! sample becomes an [`UploadPacket`] with an idempotency key, sends are
//! gated by per-device circuit breakers, and the server side dedups
//! replayed keys so a retried upload whose first ack was lost is still
//! ingested exactly once. Samples whose sends fail outright stay in the
//! edge pool and compete again next round — degraded throughput, no data
//! loss.
//!
//! Everything is seeded and runs on virtual time, so a chaos schedule
//! replays bit-for-bit and results are independent of the worker-pool
//! thread count.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tvdp_ml::{Classifier, ConfusionMatrix, Dataset};

use crate::breaker::{BreakerConfig, DeviceHealth, FleetHealth};
use crate::fault::{FaultPlan, FaultRates, Partition};
use crate::learning::{
    selection_order, CrowdLearningConfig, CrowdLearningReport, EdgeNode, RoundStats,
};
use crate::transport::{
    ChannelReply, EdgeTransport, RetryPolicy, SendOutcome, UploadPacket, STATUS_BAD_CHECKSUM,
};

/// Transport-level configuration of a resilient learning run.
#[derive(Debug, Clone)]
pub struct UplinkConfig {
    /// Retry/backoff policy every edge transport uses.
    pub policy: RetryPolicy,
    /// Circuit-breaker tuning shared by the fleet.
    pub breaker: BreakerConfig,
    /// Per-attempt fault rates (each edge gets its own seeded stream).
    pub rates: FaultRates,
    /// Link-outage windows shared by every edge.
    pub partitions: Vec<Partition>,
    /// Virtual milliseconds between learning rounds (lets breaker
    /// cooldowns elapse).
    pub round_gap_ms: u64,
    /// Master seed; per-edge transport and fault seeds derive from it.
    pub seed: u64,
}

impl UplinkConfig {
    /// A fault-free uplink (the resilient loop then matches the plain
    /// loop's upload counts exactly).
    pub fn reliable(seed: u64) -> Self {
        UplinkConfig {
            policy: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            rates: FaultRates {
                drop_request: 0.0,
                drop_reply: 0.0,
                corrupt: 0.0,
                stall: 0.0,
                stall_ms: 0,
            },
            partitions: Vec::new(),
            round_gap_ms: 10_000,
            seed,
        }
    }

    /// A lossy urban link with default retry/breaker tuning.
    pub fn lossy(seed: u64) -> Self {
        UplinkConfig {
            rates: FaultRates::lossy(),
            ..UplinkConfig::reliable(seed)
        }
    }
}

/// Transport telemetry for one learning round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UplinkRoundStats {
    /// Learning round this row belongs to (1-based; round 0 has no
    /// uplink traffic).
    pub round: usize,
    /// Sends acknowledged by the server.
    pub acked: usize,
    /// Sends abandoned after exhausting attempts or budget.
    pub gave_up: usize,
    /// Sends shed locally by an open circuit breaker.
    pub shed: usize,
    /// Delivery attempts across all sends (retries included).
    pub attempts: u64,
    /// Payload bytes that left the devices, retries included.
    pub bytes_sent: u64,
    /// Server-side replays suppressed by idempotency-key dedup.
    pub duplicates_suppressed: usize,
}

/// Outcome of a resilient crowd-learning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilientLearningReport {
    /// The learning trajectory (round 0 = initial model).
    pub learning: CrowdLearningReport,
    /// Per-round transport telemetry, rounds `1..`.
    pub uplink: Vec<UplinkRoundStats>,
    /// Final per-device breaker health.
    pub health: Vec<DeviceHealth>,
}

/// Wire format of one sample: `label:u32 | dim:u32 | dim * f32`, all
/// little-endian. Real bytes (rather than a captured reference) so the
/// corruption fault has something to flip and the checksum something to
/// protect.
fn encode_sample(x: &[f32], label: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + x.len() * 4);
    out.extend_from_slice(&(label as u32).to_le_bytes());
    out.extend_from_slice(&(x.len() as u32).to_le_bytes());
    for v in x {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_sample(bytes: &[u8]) -> Option<(Vec<f32>, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let label = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let dim = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
    if bytes.len() != 8 + dim * 4 {
        return None;
    }
    let mut x = Vec::with_capacity(dim);
    for chunk in bytes[8..].chunks_exact(4) {
        x.push(f32::from_le_bytes(chunk.try_into().ok()?));
    }
    Some((x, label))
}

const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// [`crate::learning::run_crowd_learning`] with every upload pushed
/// through a fault-injected transport.
///
/// Selected samples that fail to upload stay in their edge's pool; only
/// acknowledged samples join the server's training set, each exactly
/// once even when an ack is lost and the send retried.
pub fn run_crowd_learning_resilient<C, F>(
    train: &Dataset,
    test: &Dataset,
    edges: &mut [EdgeNode],
    config: &CrowdLearningConfig,
    uplink: &UplinkConfig,
    make_model: F,
) -> ResilientLearningReport
where
    C: Classifier,
    F: Fn() -> C,
{
    assert!(config.rounds >= 1, "need at least one round");
    assert!(config.feature_bytes > 0, "zero feature size");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut accumulated = train.clone();
    let mut rounds = Vec::new();
    let mut uplink_rounds = Vec::new();
    let mut total_bytes = 0u64;
    let mut total_raw = 0u64;

    // Stable per-sample ids for idempotency keys, kept in lockstep with
    // each pool through swap_remove.
    let mut sample_ids: Vec<Vec<u64>> = edges
        .iter()
        .map(|e| (0..e.pool.len() as u64).collect())
        .collect();
    let mut transports: Vec<EdgeTransport> = edges
        .iter()
        .map(|e| {
            let fault_seed = uplink.seed ^ (e.id.wrapping_add(1)).wrapping_mul(SEED_MIX);
            let plan = FaultPlan::seeded(uplink.rates, fault_seed)
                .with_partitions(uplink.partitions.clone());
            EdgeTransport::new(uplink.policy, plan, fault_seed.rotate_left(17))
        })
        .collect();
    let mut fleet = FleetHealth::new(uplink.breaker);
    // Server-side idempotency table: every key ever acked.
    let mut seen: BTreeSet<String> = BTreeSet::new();

    // Round 0: the initial model.
    let mut model = make_model();
    model.fit(
        &accumulated.features,
        &accumulated.labels,
        accumulated.n_classes,
    );
    let eval = |model: &C, rounds_len: usize, uploaded: usize, cfg: &CrowdLearningConfig| {
        let cm = ConfusionMatrix::from_predictions(
            &test.labels,
            &model.predict(&test.features),
            test.n_classes,
        );
        RoundStats {
            round: rounds_len,
            test_f1: cm.macro_f1(),
            uploaded,
            bytes_uploaded: uploaded as u64 * cfg.feature_bytes,
            raw_bytes_equivalent: uploaded as u64 * cfg.raw_image_bytes,
        }
    };
    rounds.push(eval(&model, 0, 0, config));

    let per_round_samples = (config.per_edge_budget_bytes / config.feature_bytes) as usize;

    for round in 1..=config.rounds {
        let mut stats = UplinkRoundStats {
            round,
            acked: 0,
            gave_up: 0,
            shed: 0,
            attempts: 0,
            bytes_sent: 0,
            duplicates_suppressed: 0,
        };
        let mut staging: Vec<(Vec<f32>, usize)> = Vec::new();
        for (e, edge) in edges.iter_mut().enumerate() {
            if edge.pool.is_empty() || per_round_samples == 0 {
                continue;
            }
            let order = selection_order(&model, &edge.pool, config.strategy, &mut rng);
            let take = per_round_samples.min(order.len());
            let mut acked_idx: Vec<usize> = Vec::new();
            for &idx in &order[..take] {
                let (x, label) = &edge.pool[idx];
                let key = format!("edge{}-s{}", edge.id, sample_ids[e][idx]);
                let packet = UploadPacket::new(key, encode_sample(x, *label));
                let report = transports[e].send_guarded(
                    fleet.breaker(edge.id),
                    &packet,
                    &mut |p: &UploadPacket, _now: i64| {
                        if !p.verify() {
                            return ChannelReply::status(STATUS_BAD_CHECKSUM);
                        }
                        if seen.contains(&p.idempotency_key) {
                            // A replay of an upload whose ack was lost:
                            // acknowledge again, ingest nothing.
                            stats.duplicates_suppressed += 1;
                            return ChannelReply::ok("");
                        }
                        match decode_sample(&p.payload) {
                            Some(sample) => {
                                seen.insert(p.idempotency_key.clone());
                                staging.push(sample);
                                ChannelReply::ok("")
                            }
                            None => ChannelReply::status(400),
                        }
                    },
                );
                stats.attempts += report.attempts as u64;
                stats.bytes_sent += report.bytes_sent;
                match report.outcome {
                    SendOutcome::Acked => {
                        acked_idx.push(idx);
                        stats.acked += 1;
                    }
                    SendOutcome::Shed => stats.shed += 1,
                    _ => stats.gave_up += 1,
                }
            }
            // Only acknowledged samples leave the pool; everything else
            // stays for a later round (no loss). Descending order keeps
            // swap_remove indices valid, ids move in lockstep.
            acked_idx.sort_unstable_by(|a, b| b.cmp(a));
            for idx in acked_idx {
                edge.pool.swap_remove(idx);
                sample_ids[e].swap_remove(idx);
            }
        }
        total_bytes += stats.acked as u64 * config.feature_bytes;
        total_raw += stats.acked as u64 * config.raw_image_bytes;
        for sample in staging {
            accumulated.features.push(sample.0);
            accumulated.labels.push(sample.1);
        }
        let mut retrained = make_model();
        retrained.fit(
            &accumulated.features,
            &accumulated.labels,
            accumulated.n_classes,
        );
        model = retrained;
        rounds.push(eval(&model, round, stats.acked, config));
        uplink_rounds.push(stats);
        for t in &mut transports {
            t.advance(uplink.round_gap_ms);
        }
    }

    let bandwidth_saving = if total_raw == 0 {
        0.0
    } else {
        1.0 - total_bytes as f64 / total_raw as f64
    };
    ResilientLearningReport {
        learning: CrowdLearningReport {
            rounds,
            bandwidth_saving,
        },
        uplink: uplink_rounds,
        health: fleet.view(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learning::SelectionStrategy;
    use rand::Rng;
    use tvdp_ml::LinearSvm;

    fn setup(seed: u64) -> (Dataset, Dataset, Vec<EdgeNode>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = |class: usize| -> (Vec<f32>, usize) {
            let cx = class as f32 * 2.0;
            (
                vec![cx + rng.gen_range(-1.2..1.2), cx + rng.gen_range(-1.2..1.2)],
                class,
            )
        };
        let mut mk_dataset = |n: usize| {
            let mut f = Vec::new();
            let mut l = Vec::new();
            for i in 0..n {
                let (x, y) = sample(i % 2);
                f.push(x);
                l.push(y);
            }
            Dataset::new(f, l, 2)
        };
        let train = mk_dataset(8);
        let test = mk_dataset(100);
        let edges = (0..4)
            .map(|id| EdgeNode {
                id,
                pool: (0..50).map(|i| sample(i % 2)).collect(),
            })
            .collect();
        (train, test, edges)
    }

    fn config() -> CrowdLearningConfig {
        CrowdLearningConfig {
            rounds: 3,
            per_edge_budget_bytes: 80, // 10 two-dim f32 vectors
            feature_bytes: 8,
            raw_image_bytes: 6912,
            strategy: SelectionStrategy::Margin,
            seed: 5,
        }
    }

    #[test]
    fn sample_wire_format_roundtrips() {
        let x = vec![0.5f32, -1.25, 3.0];
        let bytes = encode_sample(&x, 7);
        assert_eq!(decode_sample(&bytes), Some((x, 7)));
        assert_eq!(decode_sample(&bytes[..bytes.len() - 1]), None);
        assert_eq!(decode_sample(b"abc"), None);
    }

    #[test]
    fn reliable_uplink_matches_plain_loop_counts() {
        let (train, test, mut edges) = setup(1);
        let before: usize = edges.iter().map(|e| e.pool.len()).sum();
        let report = run_crowd_learning_resilient(
            &train,
            &test,
            &mut edges,
            &config(),
            &UplinkConfig::reliable(9),
            LinearSvm::new,
        );
        let after: usize = edges.iter().map(|e| e.pool.len()).sum();
        let uploaded: usize = report.learning.rounds.iter().map(|r| r.uploaded).sum();
        // Fault-free: every selected sample uploads, 4 edges x 10 per round.
        assert_eq!(uploaded, 120);
        assert_eq!(before - after, uploaded);
        for u in &report.uplink {
            assert_eq!(u.gave_up, 0);
            assert_eq!(u.shed, 0);
            assert_eq!(u.duplicates_suppressed, 0);
            assert_eq!(u.attempts, u.acked as u64);
        }
    }

    #[test]
    fn lossy_uplink_loses_nothing_and_duplicates_nothing() {
        let (train, test, mut edges) = setup(2);
        let before: usize = edges.iter().map(|e| e.pool.len()).sum();
        let report = run_crowd_learning_resilient(
            &train,
            &test,
            &mut edges,
            &config(),
            &UplinkConfig::lossy(11),
            LinearSvm::new,
        );
        let after: usize = edges.iter().map(|e| e.pool.len()).sum();
        let uploaded: usize = report.learning.rounds.iter().map(|r| r.uploaded).sum();
        // Acked == removed from pools: nothing lost, nothing double-counted.
        assert_eq!(before - after, uploaded);
        // The lossy link actually exercised the retry path.
        let attempts: u64 = report.uplink.iter().map(|u| u.attempts).sum();
        assert!(attempts > uploaded as u64, "no retries happened");
    }

    #[test]
    fn resilient_run_is_deterministic() {
        let run = || {
            let (train, test, mut edges) = setup(3);
            run_crowd_learning_resilient(
                &train,
                &test,
                &mut edges,
                &config(),
                &UplinkConfig::lossy(13),
                LinearSvm::new,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
