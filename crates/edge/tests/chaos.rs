//! Chaos harness: seeded fault schedules against the *real* platform.
//!
//! The unit tests in `tvdp-edge` exercise the transport against counting
//! stubs. This suite closes the loop the issue actually cares about:
//! every packet goes through `EdgeTransport` into a live `ApiServer`
//! backed by a `Tvdp` platform (in-memory or crash-safe durable), and
//! the invariants are checked end to end:
//!
//! * **Exactly-once** — for every scripted schedule placing each fault
//!   kind at each attempt position, an upload acked once is ingested
//!   exactly once.
//! * **Crash safety** — acked uploads survive a crash (drop + reopen),
//!   an upload abandoned before reaching the server is not visible after
//!   recovery, and the idempotency table itself is recovered so a
//!   post-crash retransmission still dedups.
//! * **Breaker lifecycle** — a link partition opens the breaker, open
//!   breakers shed, and half-open probes close it once the link heals,
//!   after which every shed upload lands exactly once.
//! * **Pool independence** — resilient crowd-learning telemetry is
//!   byte-identical between 1- and 8-thread worker pools.

use std::sync::Arc;

use tvdp_api::{ApiRequest, ApiResponse, ApiServer, RateLimitConfig};
use tvdp_core::{PlatformConfig, Role, Tvdp};
use tvdp_edge::breaker::{BreakerConfig, BreakerState, CircuitBreaker, FleetHealth};
use tvdp_edge::fault::{Fault, FaultPlan, FaultRates, Partition};
use tvdp_edge::learning::{CrowdLearningConfig, EdgeNode, SelectionStrategy};
use tvdp_edge::transport::{
    ChannelReply, EdgeTransport, RetryPolicy, SendOutcome, UploadPacket, STATUS_BAD_CHECKSUM,
};
use tvdp_edge::uplink::{run_crowd_learning_resilient, UplinkConfig};
use tvdp_ml::{Dataset, RandomForest};
use tvdp_storage::codec;
use tvdp_vision::{CnnConfig, Image};

/// A platform with a tiny CNN so feature extraction stays fast.
fn fast_config() -> PlatformConfig {
    PlatformConfig {
        cnn: CnnConfig {
            input_size: 16,
            stage_channels: vec![4, 8],
            pool_grid: 2,
            seed: 1,
        },
        min_training_samples: 6,
        ..Default::default()
    }
}

fn fast_platform() -> Arc<Tvdp> {
    Arc::new(Tvdp::new(fast_config()))
}

/// A server whose rate limiter never throttles the chaos traffic.
fn api_server(platform: &Arc<Tvdp>) -> ApiServer {
    ApiServer::with_rate_limit(
        Arc::clone(platform),
        RateLimitConfig {
            burst: 100_000,
            per_second: 100_000.0,
            ..Default::default()
        },
    )
}

fn scene(seed: usize) -> Image {
    Image::from_fn(16, 16, |x, y| {
        let v = ((x * 3 + y * 7 + seed) % 23) as u8 * 5;
        [v, 200u8.wrapping_sub(v), v / 2]
    })
}

/// A distinct `data/add` JSON body per sequence number — real payload
/// bytes for the corruption fault to flip.
fn add_body(seq: usize) -> String {
    let img = scene(seq);
    format!(
        concat!(
            r#"{{"width":{},"height":{},"pixels":"{}","lat":34.05,"lon":-118.25,"#,
            r#""captured_at":{},"uploaded_at":{},"keywords":["chaos"]}}"#
        ),
        img.width(),
        img.height(),
        codec::hex_encode(img.raw()),
        1_000 + seq,
        1_100 + seq,
    )
}

/// Bridges the byte-level transport to the JSON API: verifies the
/// packet checksum (460 on damage), then replays the payload as a
/// `data/add` request carrying the packet's idempotency key, copying
/// any 429 backpressure hint back onto the wire.
fn serve(server: &ApiServer, key: &str, packet: &UploadPacket, now_ms: i64) -> ChannelReply {
    if !packet.verify() {
        return ChannelReply::status(STATUS_BAD_CHECKSUM);
    }
    let Ok(body) = String::from_utf8(packet.payload.clone()) else {
        return ChannelReply::status(400);
    };
    let request = ApiRequest {
        key: key.to_string(),
        endpoint: "data/add".to_string(),
        body,
        idempotency_key: Some(packet.idempotency_key.clone()),
        deadline_ms: None,
    };
    let response = server.handle(&request, now_ms);
    reply_of(&response)
}

fn reply_of(response: &ApiResponse) -> ChannelReply {
    if response.is_ok() {
        ChannelReply::ok(response.render_body())
    } else {
        ChannelReply {
            status: response.status,
            retry_after_ms: response.body["retry_after_ms"].as_u64(),
            body: response.render_body(),
        }
    }
}

/// The image id a successful `data/add` reply carries.
fn acked_image_id(report_body: &str) -> u64 {
    codec::parse(report_body).expect("ack body parses")["image"]
        .as_u64()
        .expect("ack body has an image id")
}

#[test]
fn every_fault_at_every_position_still_ingests_exactly_once() {
    let faults = [
        Fault::DropRequest,
        Fault::DropReply,
        Fault::Corrupt,
        Fault::Stall(900), // past the 400 ms attempt timeout: a lost ack
    ];
    const UPLOADS: usize = 4;
    const POSITIONS: usize = 6;
    for (fi, fault) in faults.iter().enumerate() {
        for position in 0..POSITIONS {
            // One fault at one attempt position, everything else clean.
            let mut schedule = vec![Fault::None; POSITIONS];
            schedule[position] = *fault;
            let platform = fast_platform();
            let gateway = platform.register_user("edge-gateway", Role::Government);
            let server = api_server(&platform);
            let key = server.issue_key(gateway);
            let mut transport = EdgeTransport::new(
                RetryPolicy::default(),
                FaultPlan::scripted(schedule),
                (fi * POSITIONS + position) as u64,
            );
            for seq in 0..UPLOADS {
                let packet = UploadPacket::new(format!("cam0-s{seq}"), add_body(seq).into_bytes());
                let report = transport.send(&packet, &mut |p, now| serve(&server, &key, p, now));
                assert!(
                    report.acked(),
                    "{fault:?} at attempt {position}, upload {seq}: {report:?}"
                );
            }
            // The invariant of the issue: acked once == ingested exactly
            // once, regardless of where the fault landed. A lost ack
            // (DropReply / long Stall) reaches the server twice, but the
            // idempotency key collapses the replay.
            assert_eq!(
                platform.stats().images,
                UPLOADS,
                "{fault:?} at attempt {position}: duplicate or lost ingest"
            );
        }
    }
}

#[test]
fn acked_uploads_survive_a_crash_and_unacked_ones_stay_invisible() {
    let dir = std::env::temp_dir().join(format!("tvdp-chaos-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let lost_ack_packet = UploadPacket::new("cam1-s1", add_body(1).into_bytes());
    let abandoned_packet = UploadPacket::new("cam1-s2", add_body(2).into_bytes());
    let lost_ack_id;
    {
        let (platform, _) = Tvdp::open(&dir, fast_config()).expect("open fresh");
        let platform = Arc::new(platform);
        let gateway = platform.register_user("edge-gateway", Role::Government);
        let server = api_server(&platform);
        let key = server.issue_key(gateway);

        // Upload 0: clean. Upload 1: the ack is lost, the retry is
        // answered from the idempotency table.
        let mut transport = EdgeTransport::new(
            RetryPolicy::default(),
            FaultPlan::scripted(vec![Fault::None, Fault::DropReply]),
            7,
        );
        let clean = transport.send(
            &UploadPacket::new("cam1-s0", add_body(0).into_bytes()),
            &mut |p, now| serve(&server, &key, p, now),
        );
        assert!(clean.acked());
        let retried = transport.send(&lost_ack_packet, &mut |p, now| serve(&server, &key, p, now));
        assert!(retried.acked());
        assert_eq!(retried.attempts, 2, "first ack was dropped");
        lost_ack_id = acked_image_id(&retried.reply.expect("acked").body);

        // Upload 2: a fire-and-forget send dropped en route — the client
        // gives up and the server never saw the bytes.
        let mut flaky = EdgeTransport::new(
            RetryPolicy::single_attempt(),
            FaultPlan::scripted(vec![Fault::DropRequest]),
            8,
        );
        let abandoned = flaky.send(&abandoned_packet, &mut |p, now| {
            serve(&server, &key, p, now)
        });
        assert_eq!(abandoned.outcome, SendOutcome::ExhaustedAttempts);
        assert_eq!(platform.stats().images, 2);
        // Crash: the platform is dropped without flush; the WAL is all
        // that survives.
    }

    let (platform, report) = Tvdp::open(&dir, fast_config()).expect("reopen");
    let platform = Arc::new(platform);
    assert!(report.replayed_ops > 0, "recovery replayed the WAL");
    // Both acked uploads are visible; the abandoned one is not.
    assert_eq!(
        platform.stats().images,
        2,
        "exactly the acked uploads survive recovery"
    );

    // Users are runtime state; re-register (same first id) and verify the
    // recovered idempotency table still collapses a retransmission.
    let gateway = platform.register_user("edge-gateway", Role::Government);
    let server = api_server(&platform);
    let key = server.issue_key(gateway);
    let mut transport = EdgeTransport::new(RetryPolicy::default(), FaultPlan::reliable(), 9);
    let replay = transport.send(&lost_ack_packet, &mut |p, now| serve(&server, &key, p, now));
    assert!(replay.acked());
    assert_eq!(
        acked_image_id(&replay.reply.expect("acked").body),
        lost_ack_id,
        "post-crash retransmission is answered with the original id"
    );
    assert_eq!(platform.stats().images, 2, "replay ingested nothing new");

    // The abandoned upload can now be retried for real.
    let landed = transport.send(&abandoned_packet, &mut |p, now| {
        serve(&server, &key, p, now)
    });
    assert!(landed.acked());
    assert_eq!(platform.stats().images, 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partition_opens_the_breaker_and_healing_closes_it() {
    let platform = fast_platform();
    let gateway = platform.register_user("edge-gateway", Role::Government);
    let server = api_server(&platform);
    let key = server.issue_key(gateway);

    // Link down for the first 3 s of virtual time; short retry budget so
    // failures accrue quickly.
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 50,
        max_backoff_ms: 100,
        jitter_frac: 0.0,
        attempt_timeout_ms: 400,
        total_budget_ms: 2_000,
    };
    let plan = FaultPlan::reliable().with_partitions(vec![Partition {
        from_ms: 0,
        until_ms: 3_000,
    }]);
    let mut transport = EdgeTransport::new(policy, plan, 11);
    let mut breaker = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 3,
        cooldown_ms: 1_000,
        probe_successes: 2,
        probe_interval_ms: 0,
    });

    const UPLOADS: usize = 8;
    let packets: Vec<UploadPacket> = (0..UPLOADS)
        .map(|seq| UploadPacket::new(format!("cam2-s{seq}"), add_body(seq).into_bytes()))
        .collect();
    let mut pending = Vec::new();
    let mut failed = 0usize;
    let mut shed = 0usize;
    for packet in &packets {
        let report = transport.send_guarded(&mut breaker, packet, &mut |p, now| {
            serve(&server, &key, p, now)
        });
        match report.outcome {
            SendOutcome::Acked => {}
            SendOutcome::Shed => {
                shed += 1;
                pending.push(packet.clone());
            }
            _ => {
                failed += 1;
                pending.push(packet.clone());
            }
        }
    }
    assert_eq!(failed, 3, "threshold failures before the trip");
    assert_eq!(shed, UPLOADS - 3, "open breaker shed the rest locally");
    assert_eq!(
        breaker.state(),
        tvdp_edge::breaker::BreakerState::Open,
        "breaker tripped during the outage"
    );
    assert_eq!(platform.stats().images, 0, "nothing crossed the partition");

    // Let the partition heal and the cooldown elapse, then drain the
    // backlog: the first sends are half-open probes, and the probe
    // streak closes the breaker.
    transport.advance(5_000);
    for packet in &pending {
        let report = transport.send_guarded(&mut breaker, packet, &mut |p, now| {
            serve(&server, &key, p, now)
        });
        assert!(report.acked(), "post-heal send failed: {report:?}");
    }
    assert_eq!(breaker.state(), tvdp_edge::breaker::BreakerState::Closed);
    assert_eq!(
        platform.stats().images,
        UPLOADS,
        "every upload eventually landed exactly once"
    );
}

#[test]
fn fleet_heal_probe_rate_is_bounded_per_device() {
    // A whole fleet trips during an outage. When the server heals, every
    // device retries aggressively — but half-open admits one unresolved
    // probe per device, paced `probe_interval_ms` apart, so the
    // recovering server sees a bounded, deterministic probe trickle
    // instead of a thundering herd.
    const DEVICES: u64 = 6;
    let mut fleet = FleetHealth::new(BreakerConfig {
        failure_threshold: 1,
        cooldown_ms: 1_000,
        probe_successes: 2,
        probe_interval_ms: 250,
    });
    for d in 0..DEVICES {
        fleet.breaker(d).record_failure(0);
    }
    assert_eq!(fleet.open_count(), DEVICES as usize, "all tripped");

    // Healed at t=1_000: tick every 100 ms; each device hammers
    // device_allowed ten times per tick (an impatient retry loop).
    let mut probe_log: Vec<(i64, u64)> = Vec::new();
    let mut t = 1_000i64;
    while fleet.view().iter().any(|h| h.state != BreakerState::Closed) {
        for d in 0..DEVICES {
            let mut admitted = 0u32;
            for _ in 0..10 {
                if fleet.device_allowed(d, t) {
                    admitted += 1;
                }
            }
            assert!(
                admitted <= 1,
                "device {d} fired {admitted} concurrent probes at t={t}"
            );
            if admitted == 1 {
                fleet.breaker(d).record_success(t);
                probe_log.push((t, d));
            }
        }
        t += 100;
        assert!(t < 10_000, "fleet failed to converge: {:?}", fleet.view());
    }

    // Two successful probes close each breaker; with the 250 ms pacing
    // and 100 ms ticks they land at exactly t=1_000 and t=1_300.
    assert_eq!(probe_log.len(), (DEVICES * 2) as usize);
    for d in 0..DEVICES {
        let times: Vec<i64> = probe_log
            .iter()
            .filter(|&&(_, dev)| dev == d)
            .map(|&(at, _)| at)
            .collect();
        assert_eq!(times, vec![1_000, 1_300], "device {d} probe schedule");
    }
    assert_eq!(fleet.open_count(), 0);
}

// --- resilient crowd learning under seeded chaos -----------------------

fn crowd_setup(seed: u64) -> (Dataset, Dataset, Vec<EdgeNode>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sample = |class: usize| -> (Vec<f32>, usize) {
        let cx = class as f32 * 2.0;
        (
            vec![cx + rng.gen_range(-1.2..1.2), cx + rng.gen_range(-1.2..1.2)],
            class,
        )
    };
    let mut mk = |n: usize| {
        let mut f = Vec::new();
        let mut l = Vec::new();
        for i in 0..n {
            let (x, y) = sample(i % 2);
            f.push(x);
            l.push(y);
        }
        Dataset::new(f, l, 2)
    };
    let train = mk(12);
    let test = mk(60);
    let edges = (0..3)
        .map(|id| EdgeNode {
            id,
            pool: (0..30).map(|i| sample(i % 2)).collect(),
        })
        .collect();
    (train, test, edges)
}

fn crowd_config() -> CrowdLearningConfig {
    CrowdLearningConfig {
        rounds: 3,
        per_edge_budget_bytes: 64, // 8 two-dim f32 samples per edge-round
        feature_bytes: 8,
        raw_image_bytes: 6_912,
        strategy: SelectionStrategy::Margin,
        seed: 17,
    }
}

#[test]
fn round_telemetry_is_byte_identical_across_pool_sizes() {
    let run = |threads: usize| {
        let (train, test, mut edges) = crowd_setup(4);
        let report = run_crowd_learning_resilient(
            &train,
            &test,
            &mut edges,
            &crowd_config(),
            &UplinkConfig::lossy(21),
            || RandomForest::new(6, 42).with_pool_threads(threads),
        );
        let pools: Vec<usize> = edges.iter().map(|e| e.pool.len()).collect();
        (format!("{report:?}"), pools)
    };
    let (single, pools_single) = run(1);
    let (eight, pools_eight) = run(8);
    assert_eq!(single, eight, "telemetry must not depend on thread count");
    assert_eq!(pools_single, pools_eight);
}

#[test]
fn lost_acks_in_the_crowd_loop_are_deduplicated_not_double_ingested() {
    let (train, test, mut edges) = crowd_setup(5);
    let before: usize = edges.iter().map(|e| e.pool.len()).sum();
    // Acks only fail: every loss forces a replay the server must dedup.
    let uplink = UplinkConfig {
        rates: FaultRates {
            drop_request: 0.0,
            drop_reply: 0.35,
            corrupt: 0.0,
            stall: 0.0,
            stall_ms: 0,
        },
        ..UplinkConfig::reliable(31)
    };
    let report =
        run_crowd_learning_resilient(&train, &test, &mut edges, &crowd_config(), &uplink, || {
            RandomForest::new(4, 7).with_pool_threads(2)
        });
    let after: usize = edges.iter().map(|e| e.pool.len()).sum();
    let uploaded: usize = report.learning.rounds.iter().map(|r| r.uploaded).sum();
    let suppressed: usize = report.uplink.iter().map(|u| u.duplicates_suppressed).sum();
    assert_eq!(before - after, uploaded, "no loss, no double-count");
    assert!(suppressed > 0, "a 35% ack-loss rate must force replays");
}
