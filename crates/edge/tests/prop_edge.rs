//! Property-based tests of the edge substrate: the dispatcher never
//! violates its constraints and never leaves a better model on the table.

use proptest::prelude::*;
use tvdp_edge::{
    inferences_per_charge, nominal_latency_ms, DeviceClass, DispatchConstraints, ModelDispatcher,
    ModelSpec, PowerProfile,
};

fn arb_model(i: usize) -> impl Strategy<Value = ModelSpec> {
    (50.0f64..8_000.0, 0.5f64..40.0, 0.5f64..0.95).prop_map(move |(mflops, params, accuracy)| {
        // Leak a unique name: ModelSpec carries &'static str; fine in tests.
        let name: &'static str = Box::leak(format!("model-{i}").into_boxed_str());
        ModelSpec {
            name,
            mflops,
            params_millions: params,
            input_px: 224,
            accuracy,
        }
    })
}

fn arb_zoo() -> impl Strategy<Value = Vec<ModelSpec>> {
    (1usize..6).prop_flat_map(|n| {
        let mut strategies = Vec::new();
        for i in 0..n {
            strategies.push(arb_model(i));
        }
        strategies
    })
}

fn arb_device() -> impl Strategy<Value = DeviceClass> {
    prop_oneof![
        Just(DeviceClass::Desktop),
        Just(DeviceClass::Smartphone),
        Just(DeviceClass::RaspberryPi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dispatch_honours_every_constraint(
        zoo in arb_zoo(),
        class in arb_device(),
        max_latency in 1.0f64..20_000.0,
        min_accuracy in proptest::option::of(0.4f64..0.99),
        min_charge in proptest::option::of(1_000u64..1_000_000),
    ) {
        let device = class.profile();
        let power = PowerProfile::for_device(&device);
        let constraints = DispatchConstraints {
            max_latency_ms: max_latency,
            min_accuracy,
            min_inferences_per_charge: min_charge,
        };
        let dispatcher = ModelDispatcher::new(zoo.clone());
        match dispatcher.dispatch(&device, &constraints) {
            Some(picked) => {
                prop_assert!(nominal_latency_ms(&picked, &device) <= max_latency);
                if let Some(floor) = min_accuracy {
                    prop_assert!(picked.accuracy >= floor);
                }
                prop_assert!(picked.memory_mb() <= device.memory_mb);
                if let (Some(need), Some(have)) =
                    (min_charge, inferences_per_charge(&picked, &device, &power))
                {
                    prop_assert!(have >= need);
                }
                // Optimality: no qualifying model is strictly more accurate.
                for m in &zoo {
                    let qualifies = m.memory_mb() <= device.memory_mb
                        && nominal_latency_ms(m, &device) <= max_latency
                        && min_accuracy.is_none_or(|a| m.accuracy >= a)
                        && match (min_charge, inferences_per_charge(m, &device, &power)) {
                            (Some(need), Some(have)) => have >= need,
                            _ => true,
                        };
                    if qualifies {
                        prop_assert!(
                            m.accuracy <= picked.accuracy,
                            "{} ({}) beats picked {} ({})",
                            m.name, m.accuracy, picked.name, picked.accuracy
                        );
                    }
                }
            }
            None => {
                // Nothing in the zoo qualifies.
                for m in &zoo {
                    let qualifies = m.memory_mb() <= device.memory_mb
                        && nominal_latency_ms(m, &device) <= max_latency
                        && min_accuracy.is_none_or(|a| m.accuracy >= a)
                        && match (min_charge, inferences_per_charge(m, &device, &power)) {
                            (Some(need), Some(have)) => have >= need,
                            _ => true,
                        };
                    prop_assert!(!qualifies, "{} qualifies but dispatch returned None", m.name);
                }
            }
        }
    }

    #[test]
    fn latency_monotone_in_model_size(class in arb_device(), mflops in 10.0f64..10_000.0) {
        let device = class.profile();
        let small = ModelSpec {
            name: "small", mflops, params_millions: 1.0, input_px: 224, accuracy: 0.5,
        };
        let big = ModelSpec {
            name: "big", mflops: mflops * 2.0, params_millions: 2.0, input_px: 224, accuracy: 0.6,
        };
        prop_assert!(nominal_latency_ms(&big, &device) > nominal_latency_ms(&small, &device));
    }
}
