//! Compass-angle arithmetic for viewing directions.
//!
//! Viewing directions (`θ` in the FOV model) live on a circle, so plain
//! interval arithmetic does not apply: ranges may wrap through north
//! (e.g. `350°..10°`). [`AngularRange`] models such wrap-around intervals.

use serde::{Deserialize, Serialize};

/// Normalizes an angle in degrees into `[0, 360)`.
pub fn normalize_deg(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Smallest absolute difference between two compass angles, in `[0, 180]`.
pub fn angular_diff_deg(a: f64, b: f64) -> f64 {
    let d = (normalize_deg(a) - normalize_deg(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// A closed arc of compass directions, possibly wrapping through north.
///
/// Stored as a start angle and a non-negative width, so the arc covers
/// `start .. start + width` (mod 360). A width of `360` covers everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngularRange {
    start: f64,
    width: f64,
}

impl AngularRange {
    /// The full circle.
    pub const FULL: AngularRange = AngularRange {
        start: 0.0,
        width: 360.0,
    };

    /// An arc beginning at `start` degrees, spanning `width` degrees
    /// clockwise. `width` is clamped to `[0, 360]`.
    pub fn new(start: f64, width: f64) -> Self {
        Self {
            start: normalize_deg(start),
            width: width.clamp(0.0, 360.0),
        }
    }

    /// An arc centred on `center` with total `width` degrees.
    pub fn centered(center: f64, width: f64) -> Self {
        let w = width.clamp(0.0, 360.0);
        Self::new(center - w / 2.0, w)
    }

    /// Start angle in `[0, 360)`.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Width in degrees in `[0, 360]`.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Central direction of the arc.
    pub fn center(&self) -> f64 {
        normalize_deg(self.start + self.width / 2.0)
    }

    /// Whether the arc covers the whole circle.
    pub fn is_full(&self) -> bool {
        self.width >= 360.0
    }

    /// Whether compass angle `deg` lies on the arc (inclusive endpoints).
    pub fn contains(&self, deg: f64) -> bool {
        if self.is_full() {
            return true;
        }
        let offset = normalize_deg(normalize_deg(deg) - self.start);
        offset <= self.width
    }

    /// Whether the two arcs share any direction.
    pub fn overlaps(&self, other: &AngularRange) -> bool {
        if self.is_full() || other.is_full() {
            return true;
        }
        self.contains(other.start)
            || other.contains(self.start)
            || self.contains(normalize_deg(other.start + other.width))
            || other.contains(normalize_deg(self.start + self.width))
    }

    /// The smallest arc containing both arcs. Returns [`AngularRange::FULL`]
    /// when no proper containing arc smaller than the circle exists.
    pub fn union(&self, other: &AngularRange) -> AngularRange {
        if self.is_full() || other.is_full() {
            return AngularRange::FULL;
        }
        // Try both candidate hulls (starting at either arc's start) and keep
        // the narrower one that covers both.
        let hull_from = |a: &AngularRange, b: &AngularRange| -> f64 {
            let end_a = a.width;
            let b_start = normalize_deg(b.start - a.start);
            let b_end = b_start + b.width;
            end_a.max(b_end)
        };
        let w1 = hull_from(self, other);
        let w2 = hull_from(other, self);
        if w1 <= w2 {
            AngularRange::new(self.start, w1.min(360.0))
        } else {
            AngularRange::new(other.start, w2.min(360.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_wraps_both_directions() {
        assert_eq!(normalize_deg(370.0), 10.0);
        assert_eq!(normalize_deg(-10.0), 350.0);
        assert_eq!(normalize_deg(720.0), 0.0);
        assert_eq!(normalize_deg(0.0), 0.0);
    }

    #[test]
    fn angular_diff_takes_short_way() {
        assert_eq!(angular_diff_deg(350.0, 10.0), 20.0);
        assert_eq!(angular_diff_deg(0.0, 180.0), 180.0);
        assert_eq!(angular_diff_deg(90.0, 90.0), 0.0);
        assert_eq!(angular_diff_deg(-10.0, 10.0), 20.0);
    }

    #[test]
    fn range_contains_without_wrap() {
        let r = AngularRange::new(30.0, 60.0); // 30..90
        assert!(r.contains(30.0));
        assert!(r.contains(60.0));
        assert!(r.contains(90.0));
        assert!(!r.contains(91.0));
        assert!(!r.contains(29.0));
        assert!(!r.contains(200.0));
    }

    #[test]
    fn range_contains_with_wrap() {
        let r = AngularRange::new(350.0, 20.0); // 350..10
        assert!(r.contains(350.0));
        assert!(r.contains(0.0));
        assert!(r.contains(10.0));
        assert!(!r.contains(11.0));
        assert!(!r.contains(349.0));
    }

    #[test]
    fn centered_range() {
        let r = AngularRange::centered(0.0, 60.0); // 330..30
        assert!(r.contains(330.0));
        assert!(r.contains(0.0));
        assert!(r.contains(30.0));
        assert!(!r.contains(31.0));
        assert_eq!(r.center(), 0.0);
    }

    #[test]
    fn overlaps_cases() {
        let a = AngularRange::new(0.0, 90.0);
        let b = AngularRange::new(80.0, 90.0);
        let c = AngularRange::new(180.0, 90.0);
        let wrap = AngularRange::new(350.0, 20.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&wrap));
        assert!(!c.overlaps(&wrap));
        assert!(a.overlaps(&AngularRange::FULL));
    }

    #[test]
    fn union_covers_both() {
        let a = AngularRange::new(10.0, 20.0);
        let b = AngularRange::new(50.0, 20.0);
        let u = a.union(&b);
        for deg in [10.0, 30.0, 50.0, 70.0] {
            assert!(u.contains(deg), "{deg} not in union");
        }
        assert!(u.width() <= 61.0, "union too wide: {}", u.width());
    }

    #[test]
    fn union_across_north() {
        let a = AngularRange::new(340.0, 30.0); // 340..10
        let b = AngularRange::new(5.0, 30.0); // 5..35
        let u = a.union(&b);
        assert!(u.contains(340.0));
        assert!(u.contains(0.0));
        assert!(u.contains(35.0));
        assert!(u.width() <= 56.0, "width {}", u.width());
    }

    #[test]
    fn full_range_contains_everything() {
        for deg in 0..360 {
            assert!(AngularRange::FULL.contains(deg as f64));
        }
    }
}
