//! Axis-aligned geographic bounding boxes.

use serde::{Deserialize, Serialize};

use crate::error::GeoError;
use crate::point::GeoPoint;

/// An axis-aligned lat/lon rectangle.
///
/// This is the representation used for the scene-location descriptor (the
/// minimum bounding box of the region depicted in an image) and for spatial
/// range queries. Boxes never wrap the antimeridian; TVDP deployments are
/// city-scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Southern edge, degrees.
    pub min_lat: f64,
    /// Western edge, degrees.
    pub min_lon: f64,
    /// Northern edge, degrees.
    pub max_lat: f64,
    /// Eastern edge, degrees.
    pub max_lon: f64,
}

impl BBox {
    /// Creates a box from edges.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` on either axis or any edge is non-finite.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        assert!(
            min_lat.is_finite()
                && min_lon.is_finite()
                && max_lat.is_finite()
                && max_lon.is_finite(),
            "non-finite bbox edge"
        );
        assert!(min_lat <= max_lat, "min_lat {min_lat} > max_lat {max_lat}");
        assert!(min_lon <= max_lon, "min_lon {min_lon} > max_lon {max_lon}");
        Self {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// Creates a box from edges, rejecting wrapped or out-of-range input
    /// with a typed error instead of panicking.
    ///
    /// This is the constructor for externally supplied rectangles (API
    /// queries, deserialized payloads): a rect spanning the antimeridian
    /// arrives either as `min_lon > max_lon` (wrapped) or with an edge
    /// beyond ±180° (unwrapped), and both decode to a near-empty box under
    /// [`BBox::intersects`]/[`BBox::contains`] if accepted. Returns
    /// [`GeoError::AntimeridianSpan`] so callers can split at ±180° and
    /// retry rather than silently dropping matches.
    pub fn try_new(
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
    ) -> Result<Self, GeoError> {
        let b = Self {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        };
        b.validate()?;
        Ok(b)
    }

    /// Checks the invariants documented on [`BBox`]: finite edges,
    /// `min <= max` per axis, latitudes within ±90°, longitudes within
    /// ±180° (no antimeridian wrap).
    ///
    /// `BBox` has public fields and a serde `Deserialize` impl, both of
    /// which bypass [`BBox::new`]; any box that crosses a trust boundary
    /// must be re-validated with this before it reaches an index.
    pub fn validate(&self) -> Result<(), GeoError> {
        if !(self.min_lat.is_finite()
            && self.min_lon.is_finite()
            && self.max_lat.is_finite()
            && self.max_lon.is_finite())
        {
            return Err(GeoError::NonFinite);
        }
        if self.min_lat > self.max_lat || self.min_lat < -90.0 || self.max_lat > 90.0 {
            return Err(GeoError::LatitudeRange {
                min_lat: self.min_lat,
                max_lat: self.max_lat,
            });
        }
        if self.min_lon > self.max_lon || self.min_lon < -180.0 || self.max_lon > 180.0 {
            return Err(GeoError::AntimeridianSpan {
                min_lon: self.min_lon,
                max_lon: self.max_lon,
            });
        }
        Ok(())
    }

    /// The degenerate box covering a single point.
    pub fn from_point(p: GeoPoint) -> Self {
        Self::new(p.lat, p.lon, p.lat, p.lon)
    }

    /// The smallest box covering all `points`. Returns `None` on empty input.
    pub fn from_points(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut b = Self::from_point(*first);
        for p in &points[1..] {
            b.expand_to(*p);
        }
        Some(b)
    }

    /// Centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
            && other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
    }

    /// Whether the boxes share any point (boundary touch counts).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }

    /// The intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox::new(
            self.min_lat.max(other.min_lat),
            self.min_lon.max(other.min_lon),
            self.max_lat.min(other.max_lat),
            self.max_lon.min(other.max_lon),
        ))
    }

    /// The smallest box covering both.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox::new(
            self.min_lat.min(other.min_lat),
            self.min_lon.min(other.min_lon),
            self.max_lat.max(other.max_lat),
            self.max_lon.max(other.max_lon),
        )
    }

    /// Grows the box in place so it covers `p`.
    pub fn expand_to(&mut self, p: GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// Area in squared degrees — only meaningful for *comparing* boxes
    /// (e.g. R*-tree split heuristics), not as a physical area.
    pub fn area_deg2(&self) -> f64 {
        (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)
    }

    /// Half-perimeter in degrees (R*-tree margin heuristic).
    pub fn margin_deg(&self) -> f64 {
        (self.max_lat - self.min_lat) + (self.max_lon - self.min_lon)
    }

    /// Approximate physical area in square metres.
    pub fn area_m2(&self) -> f64 {
        let mean_lat = ((self.min_lat + self.max_lat) / 2.0).to_radians();
        let h = (self.max_lat - self.min_lat) * crate::METERS_PER_DEG_LAT;
        let w = (self.max_lon - self.min_lon) * crate::METERS_PER_DEG_LAT * mean_lat.cos();
        h * w
    }

    /// Minimum distance in metres from `p` to the box (0 when inside).
    pub fn min_distance_m(&self, p: &GeoPoint) -> f64 {
        let clamped = GeoPoint::new(
            p.lat.clamp(self.min_lat, self.max_lat),
            p.lon.clamp(self.min_lon, self.max_lon),
        );
        p.fast_distance_m(&clamped)
    }

    /// The four corners, counter-clockwise starting at (min_lat, min_lon).
    pub fn corners(&self) -> [GeoPoint; 4] {
        [
            GeoPoint::new(self.min_lat, self.min_lon),
            GeoPoint::new(self.min_lat, self.max_lon),
            GeoPoint::new(self.max_lat, self.max_lon),
            GeoPoint::new(self.max_lat, self.min_lon),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BBox {
        BBox::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn contains_boundary_and_interior() {
        let b = unit();
        assert!(b.contains(&GeoPoint::new(0.5, 0.5)));
        assert!(b.contains(&GeoPoint::new(0.0, 0.0)));
        assert!(b.contains(&GeoPoint::new(1.0, 1.0)));
        assert!(!b.contains(&GeoPoint::new(1.0001, 0.5)));
    }

    #[test]
    fn intersects_and_intersection() {
        let a = unit();
        let b = BBox::new(0.5, 0.5, 1.5, 1.5);
        let c = BBox::new(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BBox::new(0.5, 0.5, 1.0, 1.0));
        assert!(a.intersection(&c).is_none());
        // Touching edges intersect.
        let d = BBox::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn union_covers_both() {
        let a = unit();
        let b = BBox::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_bbox(&a));
        assert!(u.contains_bbox(&b));
        assert_eq!(u, BBox::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn from_points_builds_mbr() {
        let pts = vec![
            GeoPoint::new(1.0, 5.0),
            GeoPoint::new(-2.0, 7.0),
            GeoPoint::new(0.5, 4.0),
        ];
        let b = BBox::from_points(&pts).unwrap();
        assert_eq!(b, BBox::new(-2.0, 4.0, 1.0, 7.0));
        assert!(BBox::from_points(&[]).is_none());
    }

    #[test]
    fn min_distance_zero_inside() {
        let b = unit();
        assert_eq!(b.min_distance_m(&GeoPoint::new(0.5, 0.5)), 0.0);
        assert!(b.min_distance_m(&GeoPoint::new(2.0, 0.5)) > 100_000.0);
    }

    #[test]
    fn area_comparisons() {
        let small = BBox::new(0.0, 0.0, 1.0, 1.0);
        let big = BBox::new(0.0, 0.0, 2.0, 2.0);
        assert!(big.area_deg2() > small.area_deg2());
        assert!(big.margin_deg() > small.margin_deg());
        assert!(small.area_m2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "min_lat")]
    fn inverted_box_panics() {
        let _ = BBox::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn corner_boxes_at_world_edges_validate() {
        // The full ±180/±90 extremes are legal as long as nothing wraps.
        for b in [
            BBox::try_new(-90.0, -180.0, 90.0, 180.0).unwrap(),
            BBox::try_new(89.0, 179.0, 90.0, 180.0).unwrap(),
            BBox::try_new(-90.0, -180.0, -89.0, -179.0).unwrap(),
            BBox::try_new(0.0, 180.0, 0.0, 180.0).unwrap(),
        ] {
            assert!(b.validate().is_ok());
        }
    }

    #[test]
    fn antimeridian_wrap_is_rejected() {
        // Wrapped encoding: min_lon > max_lon. Built via struct literal to
        // model a deserialized query that bypassed the constructor.
        let wrapped = BBox {
            min_lat: -1.0,
            min_lon: 170.0,
            max_lat: 1.0,
            max_lon: -170.0,
        };
        assert_eq!(
            wrapped.validate(),
            Err(GeoError::AntimeridianSpan {
                min_lon: 170.0,
                max_lon: -170.0,
            })
        );
        // Unwrapped encoding: an edge beyond ±180°.
        assert!(matches!(
            BBox::try_new(-1.0, 170.0, 1.0, 190.0),
            Err(GeoError::AntimeridianSpan { .. })
        ));
        assert!(matches!(
            BBox::try_new(-1.0, -190.0, 1.0, -170.0),
            Err(GeoError::AntimeridianSpan { .. })
        ));
    }

    #[test]
    fn latitude_overflow_and_non_finite_are_rejected() {
        assert!(matches!(
            BBox::try_new(-91.0, 0.0, 0.0, 1.0),
            Err(GeoError::LatitudeRange { .. })
        ));
        assert!(matches!(
            BBox::try_new(0.0, 0.0, 90.5, 1.0),
            Err(GeoError::LatitudeRange { .. })
        ));
        let inverted_lat = BBox {
            min_lat: 1.0,
            min_lon: 0.0,
            max_lat: 0.0,
            max_lon: 1.0,
        };
        assert!(matches!(
            inverted_lat.validate(),
            Err(GeoError::LatitudeRange { .. })
        ));
        assert_eq!(
            BBox::try_new(f64::NAN, 0.0, 1.0, 1.0),
            Err(GeoError::NonFinite)
        );
    }
}
