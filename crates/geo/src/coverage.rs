//! Spatial coverage measurement of geo-tagged visual data.
//!
//! Implements the direction-aware coverage model the paper relies on for
//! evaluating dataset adequacy (Section III, citing Alfarrarjeh et al.,
//! "Spatial coverage measurement of geo-tagged visual data", BigMM 2018):
//! the region of interest is discretized into grid cells, and each cell
//! tracks *which compass direction sectors* have been photographed. A cell
//! seen only from the north is not fully covered — a streetscape dataset
//! should view each location from several directions.
//!
//! The resulting [`CoverageReport`] drives iterative spatial crowdsourcing:
//! under-covered cells/directions become the targets of the next campaign.

use serde::{Deserialize, Serialize};

use crate::bbox::BBox;
use crate::fov::Fov;
use crate::point::GeoPoint;
use crate::METERS_PER_DEG_LAT;

/// Parameters of the coverage model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoverageSpec {
    /// Region of interest.
    pub region: BBox,
    /// Edge length of a grid cell in metres.
    pub cell_size_m: f64,
    /// Number of compass direction sectors per cell (the paper's model uses
    /// 8: N, NE, E, SE, S, SW, W, NW).
    pub sectors: usize,
}

impl CoverageSpec {
    /// Creates a spec; panics on degenerate parameters.
    pub fn new(region: BBox, cell_size_m: f64, sectors: usize) -> Self {
        assert!(cell_size_m > 0.0, "cell size must be positive");
        assert!((1..=64).contains(&sectors), "sectors must be in 1..=64");
        Self {
            region,
            cell_size_m,
            sectors,
        }
    }
}

/// Identifies one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// Row (south to north).
    pub row: u32,
    /// Column (west to east).
    pub col: u32,
}

/// Aggregate coverage statistics over the grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Cells touched by at least one FOV / total cells.
    pub cell_coverage: f64,
    /// Covered (cell, sector) pairs / total pairs — the direction-aware
    /// coverage measure.
    pub direction_coverage: f64,
    /// Total number of grid cells.
    pub total_cells: usize,
    /// Cells with at least one covered sector.
    pub covered_cells: usize,
    /// Number of FOVs accumulated.
    pub fov_count: usize,
}

/// A grid accumulating directional coverage from FOVs.
#[derive(Debug, Clone)]
pub struct CoverageGrid {
    spec: CoverageSpec,
    rows: u32,
    cols: u32,
    /// Per cell: bitmask of covered sectors (bit `s` = sector `s` covered).
    cells: Vec<u64>,
    fov_count: usize,
}

impl CoverageGrid {
    /// Builds an empty grid over `spec.region`.
    pub fn new(spec: CoverageSpec) -> Self {
        let mean_lat = ((spec.region.min_lat + spec.region.max_lat) / 2.0).to_radians();
        let height_m = (spec.region.max_lat - spec.region.min_lat) * METERS_PER_DEG_LAT;
        let width_m =
            (spec.region.max_lon - spec.region.min_lon) * METERS_PER_DEG_LAT * mean_lat.cos();
        let rows = (height_m / spec.cell_size_m).ceil().max(1.0) as u32;
        let cols = (width_m / spec.cell_size_m).ceil().max(1.0) as u32;
        Self {
            spec,
            rows,
            cols,
            cells: vec![0; (rows * cols) as usize],
            fov_count: 0,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.rows, self.cols)
    }

    /// The spec this grid was built from.
    pub fn spec(&self) -> &CoverageSpec {
        &self.spec
    }

    /// Geographic rectangle of a cell.
    pub fn cell_bbox(&self, cell: CellId) -> BBox {
        let r = &self.spec.region;
        let dlat = (r.max_lat - r.min_lat) / self.rows as f64;
        let dlon = (r.max_lon - r.min_lon) / self.cols as f64;
        BBox::new(
            r.min_lat + cell.row as f64 * dlat,
            r.min_lon + cell.col as f64 * dlon,
            r.min_lat + (cell.row + 1) as f64 * dlat,
            r.min_lon + (cell.col + 1) as f64 * dlon,
        )
    }

    /// The cell containing `p`, if inside the region.
    pub fn cell_of(&self, p: &GeoPoint) -> Option<CellId> {
        let r = &self.spec.region;
        if !r.contains(p) {
            return None;
        }
        let dlat = (r.max_lat - r.min_lat) / self.rows as f64;
        let dlon = (r.max_lon - r.min_lon) / self.cols as f64;
        let row = (((p.lat - r.min_lat) / dlat) as u32).min(self.rows - 1);
        let col = (((p.lon - r.min_lon) / dlon) as u32).min(self.cols - 1);
        Some(CellId { row, col })
    }

    fn sector_of(&self, heading_deg: f64) -> usize {
        let w = 360.0 / self.spec.sectors as f64;
        ((crate::angle::normalize_deg(heading_deg) / w) as usize).min(self.spec.sectors - 1)
    }

    /// Accumulates one FOV into the grid: every cell intersected by the
    /// sector is marked covered in each direction sector the FOV's aperture
    /// spans.
    pub fn add_fov(&mut self, fov: &Fov) {
        self.fov_count += 1;
        // Sector bits spanned by the viewing aperture.
        let mut bits: u64 = 0;
        let range = fov.direction_range();
        let w = 360.0 / self.spec.sectors as f64;
        for s in 0..self.spec.sectors {
            let sector_center = (s as f64 + 0.5) * w;
            if range.contains(sector_center) || self.sector_of(fov.heading_deg) == s {
                bits |= 1 << s;
            }
        }
        // Restrict the scan to cells under the scene-location MBR.
        let mbr = fov.scene_location();
        let Some(lo) = self.clamped_cell(mbr.min_lat, mbr.min_lon) else {
            return;
        };
        let Some(hi) = self.clamped_cell(mbr.max_lat, mbr.max_lon) else {
            return;
        };
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                let cell = CellId { row, col };
                if fov.intersects_bbox(&self.cell_bbox(cell)) {
                    self.cells[(row * self.cols + col) as usize] |= bits;
                }
            }
        }
    }

    /// Cell index for a (possibly out-of-region) coordinate, clamped to the
    /// grid; `None` when the grid region is empty.
    fn clamped_cell(&self, lat: f64, lon: f64) -> Option<CellId> {
        let r = &self.spec.region;
        let lat = lat.clamp(r.min_lat, r.max_lat);
        let lon = lon.clamp(r.min_lon, r.max_lon);
        self.cell_of(&GeoPoint::new(lat, lon))
    }

    /// Covered-sector bitmask of a cell.
    pub fn cell_mask(&self, cell: CellId) -> u64 {
        self.cells[(cell.row * self.cols + cell.col) as usize]
    }

    /// Aggregate coverage statistics.
    pub fn report(&self) -> CoverageReport {
        let total = self.cells.len();
        let covered = self.cells.iter().filter(|&&m| m != 0).count();
        let sector_pairs: u32 = self.cells.iter().map(|m| m.count_ones()).sum();
        CoverageReport {
            cell_coverage: covered as f64 / total as f64,
            direction_coverage: sector_pairs as f64 / (total * self.spec.sectors) as f64,
            total_cells: total,
            covered_cells: covered,
            fov_count: self.fov_count,
        }
    }

    /// Cells covered in fewer than `min_sectors` directions, with the list
    /// of missing sector indices — the work-list for the next
    /// crowdsourcing campaign round.
    pub fn undercovered(&self, min_sectors: usize) -> Vec<(CellId, Vec<usize>)> {
        let mut out = Vec::new();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let cell = CellId { row, col };
                let mask = self.cell_mask(cell);
                if (mask.count_ones() as usize) < min_sectors {
                    let missing = (0..self.spec.sectors)
                        .filter(|s| mask & (1 << s) == 0)
                        .collect();
                    out.push((cell, missing));
                }
            }
        }
        out
    }

    /// Compass heading (sector centre) for a sector index.
    pub fn sector_heading(&self, sector: usize) -> f64 {
        (sector as f64 + 0.5) * 360.0 / self.spec.sectors as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_region() -> BBox {
        // ~500 m x 500 m near USC.
        let sw = GeoPoint::new(34.02, -118.29);
        let ne = sw.destination(0.0, 500.0);
        let ne = GeoPoint::new(ne.lat, sw.destination(90.0, 500.0).lon);
        BBox::new(sw.lat, sw.lon, ne.lat, ne.lon)
    }

    fn grid() -> CoverageGrid {
        CoverageGrid::new(CoverageSpec::new(small_region(), 100.0, 8))
    }

    #[test]
    fn empty_grid_has_zero_coverage() {
        let g = grid();
        let r = g.report();
        assert_eq!(r.cell_coverage, 0.0);
        assert_eq!(r.direction_coverage, 0.0);
        assert_eq!(r.fov_count, 0);
        assert!(r.total_cells >= 25);
    }

    #[test]
    fn one_fov_covers_some_cells_one_direction_band() {
        let mut g = grid();
        let cam = g.spec().region.center();
        g.add_fov(&Fov::new(cam, 0.0, 60.0, 150.0));
        let r = g.report();
        assert!(r.covered_cells >= 1);
        assert!(r.cell_coverage > 0.0 && r.cell_coverage < 1.0);
        // Direction coverage must be lower than cell coverage: only northern
        // sectors are marked.
        assert!(r.direction_coverage < r.cell_coverage);
    }

    #[test]
    fn camera_cell_is_covered() {
        let mut g = grid();
        let cam = g.spec().region.center();
        g.add_fov(&Fov::new(cam, 90.0, 60.0, 120.0));
        let cell = g.cell_of(&cam).unwrap();
        assert_ne!(g.cell_mask(cell), 0);
    }

    #[test]
    fn eight_directions_fill_direction_coverage_of_camera_cell() {
        let mut g = grid();
        let cam = g.spec().region.center();
        for s in 0..8 {
            g.add_fov(&Fov::new(cam, g.sector_heading(s), 46.0, 120.0));
        }
        let cell = g.cell_of(&cam).unwrap();
        assert_eq!(g.cell_mask(cell).count_ones(), 8);
    }

    #[test]
    fn undercovered_lists_missing_sectors() {
        let mut g = grid();
        let cam = g.spec().region.center();
        g.add_fov(&Fov::new(cam, 0.0, 46.0, 120.0));
        let cell = g.cell_of(&cam).unwrap();
        let under = g.undercovered(8);
        let entry = under
            .iter()
            .find(|(c, _)| *c == cell)
            .expect("cell is undercovered");
        assert!(entry.1.len() < 8, "some sector must be covered");
        assert!(!entry.1.is_empty());
        // Fully uncovered cells miss all 8.
        let corner = CellId { row: 0, col: 0 };
        if g.cell_mask(corner) == 0 {
            let e = under.iter().find(|(c, _)| *c == corner).unwrap();
            assert_eq!(e.1.len(), 8);
        }
    }

    #[test]
    fn fov_outside_region_is_harmless() {
        let mut g = grid();
        let far = GeoPoint::new(35.0, -117.0);
        g.add_fov(&Fov::new(far, 0.0, 60.0, 100.0));
        assert_eq!(g.report().covered_cells, 0);
        assert_eq!(g.report().fov_count, 1);
    }

    #[test]
    fn cell_of_roundtrips_with_cell_bbox() {
        let g = grid();
        for row in 0..g.dims().0 {
            for col in 0..g.dims().1 {
                let cell = CellId { row, col };
                let center = g.cell_bbox(cell).center();
                assert_eq!(g.cell_of(&center), Some(cell));
            }
        }
    }

    #[test]
    fn coverage_monotone_in_fovs() {
        let mut g = grid();
        let cam = g.spec().region.center();
        let mut last = 0.0;
        for s in 0..8 {
            g.add_fov(&Fov::new(cam, g.sector_heading(s), 60.0, 200.0));
            let c = g.report().direction_coverage;
            assert!(c >= last, "coverage decreased: {c} < {last}");
            last = c;
        }
        assert!(last > 0.0);
    }
}
