//! Typed geometry validation errors.

use std::error::Error;
use std::fmt;

/// A spatial descriptor failed validation.
///
/// TVDP geometry is deliberately antimeridian-free ([`crate::BBox`] docs):
/// deployments are city-scale, and every index structure (R*-tree MBRs,
/// coverage grids, the equirectangular projection) assumes `min <= max` on
/// both axes. `BBox` has public fields and a serde `Deserialize` impl, so a
/// wrapped rectangle can still *arrive* — e.g. a query deserialized from an
/// API request spanning ±180°. Those must be rejected with this error, not
/// silently treated as a near-empty box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeoError {
    /// A latitude or longitude edge is NaN or infinite.
    NonFinite,
    /// The box spans (or crosses) the antimeridian: either
    /// `min_lon > max_lon` (the wrapped encoding) or an edge lies outside
    /// `[-180, 180]` (the unwrapped encoding). Callers must split such a
    /// query into two boxes at ±180° before submitting it.
    AntimeridianSpan {
        /// Western edge as supplied, degrees.
        min_lon: f64,
        /// Eastern edge as supplied, degrees.
        max_lon: f64,
    },
    /// The latitude edges are inverted or outside `[-90, 90]`.
    LatitudeRange {
        /// Southern edge as supplied, degrees.
        min_lat: f64,
        /// Northern edge as supplied, degrees.
        max_lat: f64,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::NonFinite => write!(f, "non-finite bbox edge"),
            GeoError::AntimeridianSpan { min_lon, max_lon } => write!(
                f,
                "bbox spans the antimeridian (min_lon {min_lon}, max_lon {max_lon}); \
                 split the query at ±180°"
            ),
            GeoError::LatitudeRange { min_lat, max_lat } => write!(
                f,
                "bbox latitude out of range (min_lat {min_lat}, max_lat {max_lat}); \
                 latitudes must satisfy -90 <= min <= max <= 90"
            ),
        }
    }
}

impl Error for GeoError {}
