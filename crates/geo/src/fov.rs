//! The camera field-of-view (FOV) spatial descriptor (paper Fig. 3).
//!
//! An image's FOV is the circular sector `(L, θ, α, R)`: camera location
//! `L`, compass viewing direction `θ`, viewable angle `α`, and maximum
//! visible distance `R` in metres. The FOV describes *what the image shows*
//! far more accurately than the camera point alone, and is the basis for
//! directional spatial queries, scene localization, and coverage
//! measurement.

use serde::{Deserialize, Serialize};

use crate::angle::{angular_diff_deg, normalize_deg, AngularRange};
use crate::bbox::BBox;
use crate::point::GeoPoint;
use crate::projection::{point_in_polygon, segments_intersect, LocalProjection, XY};

/// Camera field of view: the spatial extent of an image.
///
/// ```
/// use tvdp_geo::{Fov, GeoPoint};
///
/// // A camera at USC looking north with a 60° lens, 100 m visibility.
/// let fov = Fov::new(GeoPoint::new(34.0224, -118.2851), 0.0, 60.0, 100.0);
/// let ahead = fov.camera.destination(0.0, 50.0);
/// let behind = fov.camera.destination(180.0, 50.0);
/// assert!(fov.contains(&ahead));
/// assert!(!fov.contains(&behind));
/// // The scene location is the MBR of everything the image shows.
/// assert!(fov.scene_location().contains(&ahead));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fov {
    /// Camera location `L` at capture time.
    pub camera: GeoPoint,
    /// Compass viewing direction `θ` in degrees, `[0, 360)`.
    pub heading_deg: f64,
    /// Viewable (aperture) angle `α` in degrees, `(0, 360]`.
    pub angle_deg: f64,
    /// Maximum visible distance `R` in metres.
    pub radius_m: f64,
}

impl Fov {
    /// Creates an FOV descriptor.
    ///
    /// # Panics
    ///
    /// Panics when `angle_deg` is outside `(0, 360]` or `radius_m` is not a
    /// positive finite number.
    pub fn new(camera: GeoPoint, heading_deg: f64, angle_deg: f64, radius_m: f64) -> Self {
        assert!(
            angle_deg > 0.0 && angle_deg <= 360.0,
            "viewable angle out of range: {angle_deg}"
        );
        assert!(
            radius_m.is_finite() && radius_m > 0.0,
            "visible distance out of range: {radius_m}"
        );
        Self {
            camera,
            heading_deg: normalize_deg(heading_deg),
            angle_deg,
            radius_m,
        }
    }

    /// The arc of compass directions this FOV looks toward.
    pub fn direction_range(&self) -> AngularRange {
        AngularRange::centered(self.heading_deg, self.angle_deg)
    }

    /// Whether the geographic point `p` is visible in this FOV.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let d = self.camera.fast_distance_m(p);
        if d > self.radius_m {
            return false;
        }
        if d < 1e-9 || self.angle_deg >= 360.0 {
            return true;
        }
        let bearing = self.camera.bearing_deg(p);
        angular_diff_deg(bearing, self.heading_deg) <= self.angle_deg / 2.0
    }

    /// The scene-location descriptor: the minimum bounding box of the
    /// geographic region depicted by the image (the circular sector).
    pub fn scene_location(&self) -> BBox {
        let mut pts = vec![self.camera];
        let half = self.angle_deg / 2.0;
        // Sector arc endpoints.
        pts.push(
            self.camera
                .destination(self.heading_deg - half, self.radius_m),
        );
        pts.push(
            self.camera
                .destination(self.heading_deg + half, self.radius_m),
        );
        // Cardinal extremes of the arc, when the sector sweeps past them.
        let range = self.direction_range();
        for cardinal in [0.0, 90.0, 180.0, 270.0] {
            if range.contains(cardinal) {
                pts.push(self.camera.destination(cardinal, self.radius_m));
            }
        }
        // Interior samples guard against projection curvature on wide sectors.
        let steps = (self.angle_deg / 15.0).ceil() as usize;
        for i in 0..=steps {
            let brg = self.heading_deg - half + self.angle_deg * i as f64 / steps.max(1) as f64;
            pts.push(self.camera.destination(brg, self.radius_m));
        }
        // tvdp-lint: allow(no_panic, reason = "pts holds the two arc endpoints pushed unconditionally above")
        BBox::from_points(&pts).expect("non-empty point set")
    }

    /// Polygonal approximation of the sector in local metres, anchored at
    /// the camera: camera vertex followed by arc samples.
    fn polygon_xy(&self, proj: &LocalProjection) -> Vec<XY> {
        let mut poly = Vec::new();
        if self.angle_deg < 360.0 {
            poly.push(proj.to_xy(&self.camera));
        }
        let half = self.angle_deg / 2.0;
        let steps = ((self.angle_deg / 5.0).ceil() as usize).max(2);
        for i in 0..=steps {
            let brg = self.heading_deg - half + self.angle_deg * i as f64 / steps as f64;
            poly.push(proj.to_xy(&self.camera.destination(brg, self.radius_m)));
        }
        poly
    }

    /// Whether the FOV sector intersects the rectangle `rect`.
    ///
    /// Exact up to the polygonal approximation of the arc (5° steps), which
    /// over-approximates by less than 0.1% of `R`.
    pub fn intersects_bbox(&self, rect: &BBox) -> bool {
        // Fast rejects/accepts first.
        if !self.scene_location().intersects(rect) {
            return false;
        }
        if rect.contains(&self.camera) {
            return true;
        }
        let proj = LocalProjection::new(self.camera);
        let poly = self.polygon_xy(&proj);
        let rect_xy: Vec<XY> = rect.corners().iter().map(|c| proj.to_xy(c)).collect();
        // Any sector vertex inside the rectangle?
        let (min_x, max_x) = (
            rect_xy.iter().map(|p| p.x).fold(f64::INFINITY, f64::min),
            rect_xy
                .iter()
                .map(|p| p.x)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        let (min_y, max_y) = (
            rect_xy.iter().map(|p| p.y).fold(f64::INFINITY, f64::min),
            rect_xy
                .iter()
                .map(|p| p.y)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        if poly
            .iter()
            .any(|p| p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y)
        {
            return true;
        }
        // Any rectangle corner inside the sector polygon?
        if rect_xy.iter().any(|c| point_in_polygon(*c, &poly)) {
            return true;
        }
        // Any edge crossing?
        for i in 0..poly.len() {
            let a1 = poly[i];
            let a2 = poly[(i + 1) % poly.len()];
            for j in 0..4 {
                let b1 = rect_xy[j];
                let b2 = rect_xy[(j + 1) % 4];
                if segments_intersect(a1, a2, b1, b2) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether two FOVs view overlapping regions (sector/sector overlap,
    /// via mutual polygon containment and edge crossings).
    pub fn overlaps(&self, other: &Fov) -> bool {
        // Cheap circle test first.
        let d = self.camera.fast_distance_m(&other.camera);
        if d > self.radius_m + other.radius_m {
            return false;
        }
        let proj = LocalProjection::new(self.camera);
        let a = self.polygon_xy(&proj);
        let b = other.polygon_xy(&proj);
        if a.iter().any(|p| point_in_polygon(*p, &b)) || b.iter().any(|p| point_in_polygon(*p, &a))
        {
            return true;
        }
        for i in 0..a.len() {
            for j in 0..b.len() {
                if segments_intersect(a[i], a[(i + 1) % a.len()], b[j], b[(j + 1) % b.len()]) {
                    return true;
                }
            }
        }
        false
    }

    /// The approximate physical area covered by the sector, in m².
    pub fn area_m2(&self) -> f64 {
        std::f64::consts::PI * self.radius_m * self.radius_m * (self.angle_deg / 360.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn north_fov() -> Fov {
        // 60° aperture looking due north, 100 m deep.
        Fov::new(GeoPoint::new(34.05, -118.25), 0.0, 60.0, 100.0)
    }

    #[test]
    fn contains_points_ahead_not_behind() {
        let f = north_fov();
        let ahead = f.camera.destination(0.0, 50.0);
        let edge = f.camera.destination(29.0, 50.0);
        let outside_angle = f.camera.destination(45.0, 50.0);
        let behind = f.camera.destination(180.0, 50.0);
        let too_far = f.camera.destination(0.0, 150.0);
        assert!(f.contains(&ahead));
        assert!(f.contains(&edge));
        assert!(!f.contains(&outside_angle));
        assert!(!f.contains(&behind));
        assert!(!f.contains(&too_far));
        assert!(f.contains(&f.camera));
    }

    #[test]
    fn full_circle_fov_ignores_direction() {
        let f = Fov::new(GeoPoint::new(34.0, -118.0), 0.0, 360.0, 100.0);
        for brg in [0.0, 90.0, 180.0, 270.0] {
            assert!(f.contains(&f.camera.destination(brg, 99.0)));
        }
    }

    #[test]
    fn scene_location_contains_sector_samples() {
        let f = north_fov();
        let mbr = f.scene_location();
        assert!(mbr.contains(&f.camera));
        for brg in [-30.0, -15.0, 0.0, 15.0, 30.0] {
            for dist in [10.0, 50.0, 100.0] {
                let p = f.camera.destination(brg, dist);
                assert!(mbr.contains(&p), "missing brg={brg} dist={dist}");
            }
        }
    }

    #[test]
    fn scene_location_tight_for_north_sector() {
        let f = north_fov();
        let mbr = f.scene_location();
        // For a 60° north-facing sector the northern edge is R from camera.
        let north_extent = (mbr.max_lat - f.camera.lat) * crate::METERS_PER_DEG_LAT;
        assert!(
            (north_extent - 100.0).abs() < 1.0,
            "north extent {north_extent}"
        );
        // Southern edge is the camera itself.
        assert!((mbr.min_lat - f.camera.lat).abs() < 1e-9);
    }

    #[test]
    fn wrapping_sector_scene_location_spans_both_sides() {
        // Looking north with a wide sector that wraps through 0°.
        let f = Fov::new(GeoPoint::new(34.0, -118.0), 350.0, 40.0, 100.0);
        let mbr = f.scene_location();
        let west = f.camera.destination(335.0, 100.0);
        let east = f.camera.destination(5.0, 100.0);
        assert!(mbr.contains(&west));
        assert!(mbr.contains(&east));
    }

    #[test]
    fn intersects_bbox_cases() {
        let f = north_fov();
        // Box fully ahead within the sector.
        let target = f.camera.destination(0.0, 60.0);
        let inside = BBox::new(
            target.lat - 1e-4,
            target.lon - 1e-4,
            target.lat + 1e-4,
            target.lon + 1e-4,
        );
        assert!(f.intersects_bbox(&inside));
        // Box behind the camera.
        let behind_pt = f.camera.destination(180.0, 60.0);
        let behind = BBox::new(
            behind_pt.lat - 1e-4,
            behind_pt.lon - 1e-4,
            behind_pt.lat + 1e-4,
            behind_pt.lon + 1e-4,
        );
        assert!(!f.intersects_bbox(&behind));
        // Huge box containing everything.
        let world = BBox::new(33.0, -119.0, 35.0, -117.0);
        assert!(f.intersects_bbox(&world));
        // Box that contains only the camera vertex.
        let at_cam = BBox::new(
            f.camera.lat - 1e-5,
            f.camera.lon - 1e-5,
            f.camera.lat + 1e-5,
            f.camera.lon + 1e-5,
        );
        assert!(f.intersects_bbox(&at_cam));
    }

    #[test]
    fn overlap_between_fovs() {
        let a = north_fov();
        // Camera 50 m north of `a`, also looking north: overlapping wedges.
        let b = Fov::new(a.camera.destination(0.0, 50.0), 0.0, 60.0, 100.0);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // Camera 500 m away: disjoint.
        let c = Fov::new(a.camera.destination(90.0, 500.0), 0.0, 60.0, 100.0);
        assert!(!a.overlaps(&c));
        // Facing away from each other from the same spot still overlap at apex.
        let d = Fov::new(a.camera, 180.0, 60.0, 100.0);
        assert!(a.overlaps(&d));
    }

    #[test]
    fn area_scales_with_angle() {
        let narrow = Fov::new(GeoPoint::new(34.0, -118.0), 0.0, 30.0, 100.0);
        let wide = Fov::new(GeoPoint::new(34.0, -118.0), 0.0, 60.0, 100.0);
        assert!((wide.area_m2() / narrow.area_m2() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "viewable angle")]
    fn zero_angle_rejected() {
        let _ = Fov::new(GeoPoint::new(34.0, -118.0), 0.0, 0.0, 100.0);
    }
}
