//! Geospatial substrate for the Translational Visual Data Platform (TVDP).
//!
//! This crate implements the spatial descriptors of the TVDP data model
//! (ICDE 2019, Section IV-A):
//!
//! * [`GeoPoint`] — the GPS camera-location descriptor,
//! * [`Fov`] — the field-of-view descriptor (camera location `L`, viewing
//!   direction `θ`, viewable angle `α`, maximum visible distance `R`;
//!   paper Fig. 3),
//! * [`Fov::scene_location`] — the scene-location descriptor, i.e. the
//!   minimum bounding box of the geographical region depicted by an image,
//! * [`coverage`] — the sector-based spatial coverage measurement model used
//!   to evaluate the adequacy of a collected dataset and to drive iterative
//!   spatial-crowdsourcing campaigns (paper Section III).
//!
//! All geometry is computed on a local equirectangular projection, which is
//! accurate to well under a metre at the city scales TVDP targets (tens of
//! kilometres).

pub mod angle;
pub mod bbox;
pub mod coverage;
pub mod error;
pub mod fov;
pub mod point;
pub mod polygon;
pub mod projection;

pub use angle::{angular_diff_deg, normalize_deg, AngularRange};
pub use bbox::BBox;
pub use coverage::{CoverageGrid, CoverageReport, CoverageSpec};
pub use error::GeoError;
pub use fov::Fov;
pub use point::GeoPoint;
pub use polygon::GeoPolygon;
pub use projection::LocalProjection;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Metres per degree of latitude (approximately constant).
pub const METERS_PER_DEG_LAT: f64 = 111_320.0;
