//! Geographic points and great-circle arithmetic.

use serde::{Deserialize, Serialize};

use crate::{EARTH_RADIUS_M, METERS_PER_DEG_LAT};

/// A WGS-84 geographic coordinate: the GPS spatial descriptor of an image.
///
/// Latitude is in degrees north (`-90..=90`), longitude in degrees east
/// (`-180..=180`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Degrees north.
    pub lat: f64,
    /// Degrees east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude degrees.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is non-finite or out of range; spatial
    /// descriptors come from sensors and must be validated at ingest.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            lat.is_finite() && (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        assert!(
            lon.is_finite() && (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        Self { lat, lon }
    }

    /// Fallible constructor for untrusted sensor input.
    pub fn try_new(lat: f64, lon: f64) -> Option<Self> {
        if lat.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && lon.is_finite()
            && (-180.0..=180.0).contains(&lon)
        {
            Some(Self { lat, lon })
        } else {
            None
        }
    }

    /// Great-circle (haversine) distance to `other` in metres.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Fast local-plane distance in metres (equirectangular approximation).
    ///
    /// Accurate to a fraction of a percent for distances under ~50 km, which
    /// covers all city-scale TVDP workloads; used on hot query paths.
    pub fn fast_distance_m(&self, other: &GeoPoint) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lon - self.lon) * METERS_PER_DEG_LAT * mean_lat.cos();
        let dy = (other.lat - self.lat) * METERS_PER_DEG_LAT;
        (dx * dx + dy * dy).sqrt()
    }

    /// Initial compass bearing from `self` to `other`, degrees in `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        crate::angle::normalize_deg(y.atan2(x).to_degrees())
    }

    /// The point reached by travelling `distance_m` metres along compass
    /// bearing `bearing_deg` (degrees clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let brg = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let d = distance_m / EARTH_RADIUS_M;
        let lat2 = (lat1.sin() * d.cos() + lat1.cos() * d.sin() * brg.cos()).asin();
        let lon2 =
            lon1 + (brg.sin() * d.sin() * lat1.cos()).atan2(d.cos() - lat1.sin() * lat2.sin());
        let lon_deg = lon2.to_degrees();
        // Re-wrap longitude into [-180, 180].
        let lon_deg = if lon_deg > 180.0 {
            lon_deg - 360.0
        } else if lon_deg < -180.0 {
            lon_deg + 360.0
        } else {
            lon_deg
        };
        GeoPoint::new(lat2.to_degrees().clamp(-90.0, 90.0), lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LA_CITY_HALL: GeoPoint = GeoPoint {
        lat: 34.0537,
        lon: -118.2427,
    };
    const USC: GeoPoint = GeoPoint {
        lat: 34.0224,
        lon: -118.2851,
    };

    #[test]
    fn haversine_known_distance() {
        // City Hall to USC is roughly 5.2 km.
        let d = LA_CITY_HALL.haversine_m(&USC);
        assert!((5000.0..5600.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(LA_CITY_HALL.haversine_m(&LA_CITY_HALL), 0.0);
    }

    #[test]
    fn fast_distance_close_to_haversine_at_city_scale() {
        let d1 = LA_CITY_HALL.haversine_m(&USC);
        let d2 = LA_CITY_HALL.fast_distance_m(&USC);
        assert!((d1 - d2).abs() / d1 < 0.005, "haversine {d1} vs fast {d2}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new(34.0, -118.0);
        let north = origin.destination(0.0, 1000.0);
        let east = origin.destination(90.0, 1000.0);
        assert!((origin.bearing_deg(&north) - 0.0).abs() < 0.1);
        assert!((origin.bearing_deg(&east) - 90.0).abs() < 0.1);
    }

    #[test]
    fn destination_round_trip() {
        let origin = GeoPoint::new(34.05, -118.24);
        for brg in [0.0, 45.0, 133.0, 270.0, 359.0] {
            let dest = origin.destination(brg, 750.0);
            let back = origin.haversine_m(&dest);
            assert!((back - 750.0).abs() < 0.5, "bearing {brg}: {back}");
            let measured = origin.bearing_deg(&dest);
            assert!(
                crate::angle::angular_diff_deg(measured, brg) < 0.1,
                "bearing {brg} -> {measured}"
            );
        }
    }

    #[test]
    fn try_new_rejects_bad_input() {
        assert!(GeoPoint::try_new(91.0, 0.0).is_none());
        assert!(GeoPoint::try_new(0.0, 181.0).is_none());
        assert!(GeoPoint::try_new(f64::NAN, 0.0).is_none());
        assert!(GeoPoint::try_new(34.0, -118.0).is_some());
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn new_panics_on_bad_latitude() {
        let _ = GeoPoint::new(123.0, 0.0);
    }
}
