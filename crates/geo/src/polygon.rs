//! Simple geographic polygons (city districts, council zones,
//! disaster perimeters).
//!
//! Rectangles rarely match administrative reality; spatial queries accept
//! arbitrary simple polygons. Geometry runs on the local planar
//! projection, exact at city scale.

use serde::{Deserialize, Serialize};

use crate::bbox::BBox;
use crate::point::GeoPoint;
use crate::projection::{point_in_polygon, segments_intersect, LocalProjection, XY};

/// A simple (non-self-intersecting) polygon over geographic points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoPolygon {
    vertices: Vec<GeoPoint>,
}

impl GeoPolygon {
    /// Creates a polygon from at least three vertices (either winding).
    ///
    /// # Panics
    ///
    /// Panics with fewer than three vertices.
    pub fn new(vertices: Vec<GeoPoint>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        Self { vertices }
    }

    /// The vertices, in input order.
    pub fn vertices(&self) -> &[GeoPoint] {
        &self.vertices
    }

    /// Axis-aligned bounding box (cheap pre-filter for indexes).
    pub fn bbox(&self) -> BBox {
        // tvdp-lint: allow(no_panic, reason = "GeoPolygon::new asserts at least three vertices")
        BBox::from_points(&self.vertices).expect("non-empty vertex set")
    }

    fn projected(&self) -> (LocalProjection, Vec<XY>) {
        let proj = LocalProjection::new(self.vertices[0]);
        let poly = self.vertices.iter().map(|v| proj.to_xy(v)).collect();
        (proj, poly)
    }

    /// Whether `p` lies inside the polygon (boundary points may resolve
    /// either way, as with any ray-cast test).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        if !self.bbox().contains(p) {
            return false;
        }
        let (proj, poly) = self.projected();
        point_in_polygon(proj.to_xy(p), &poly)
    }

    /// Whether the polygon and the rectangle share any area.
    pub fn intersects_bbox(&self, rect: &BBox) -> bool {
        if !self.bbox().intersects(rect) {
            return false;
        }
        let (proj, poly) = self.projected();
        let corners: Vec<XY> = rect.corners().iter().map(|c| proj.to_xy(c)).collect();
        // Any polygon vertex inside the rectangle?
        let (min_x, max_x) = (
            corners.iter().map(|p| p.x).fold(f64::INFINITY, f64::min),
            corners
                .iter()
                .map(|p| p.x)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        let (min_y, max_y) = (
            corners.iter().map(|p| p.y).fold(f64::INFINITY, f64::min),
            corners
                .iter()
                .map(|p| p.y)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        if poly
            .iter()
            .any(|p| p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y)
        {
            return true;
        }
        // Any rectangle corner inside the polygon?
        if corners.iter().any(|c| point_in_polygon(*c, &poly)) {
            return true;
        }
        // Any edge crossing?
        for i in 0..poly.len() {
            let a1 = poly[i];
            let a2 = poly[(i + 1) % poly.len()];
            for j in 0..4 {
                if segments_intersect(a1, a2, corners[j], corners[(j + 1) % 4]) {
                    return true;
                }
            }
        }
        false
    }

    /// Physical area in m² (shoelace formula on the local plane).
    pub fn area_m2(&self) -> f64 {
        let (_, poly) = self.projected();
        let mut acc = 0.0;
        for i in 0..poly.len() {
            let a = poly[i];
            let b = poly[(i + 1) % poly.len()];
            // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
            acc += a.x * b.y - b.x * a.y;
        }
        (acc / 2.0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A right triangle: 1 km east leg, 1 km north leg.
    fn triangle() -> GeoPolygon {
        let a = GeoPoint::new(34.0, -118.3);
        let b = a.destination(90.0, 1000.0);
        let c = a.destination(0.0, 1000.0);
        GeoPolygon::new(vec![a, b, c])
    }

    #[test]
    fn contains_interior_not_exterior() {
        let t = triangle();
        let a = t.vertices()[0];
        let inside = a.destination(45.0, 300.0);
        let outside = a.destination(45.0, 1200.0);
        let behind = a.destination(225.0, 100.0);
        assert!(t.contains(&inside));
        assert!(!t.contains(&outside));
        assert!(!t.contains(&behind));
    }

    #[test]
    fn area_of_right_triangle() {
        let t = triangle();
        // 1 km x 1 km / 2 = 500_000 m^2.
        let area = t.area_m2();
        assert!((area - 500_000.0).abs() < 5_000.0, "area {area}");
    }

    #[test]
    fn bbox_covers_vertices() {
        let t = triangle();
        let b = t.bbox();
        for v in t.vertices() {
            assert!(b.contains(v));
        }
    }

    #[test]
    fn intersects_bbox_cases() {
        let t = triangle();
        let a = t.vertices()[0];
        // Rect fully inside the triangle.
        let c = a.destination(45.0, 250.0);
        let small = BBox::new(c.lat - 1e-4, c.lon - 1e-4, c.lat + 1e-4, c.lon + 1e-4);
        assert!(t.intersects_bbox(&small));
        // Rect containing the whole triangle.
        let big = BBox::new(33.9, -118.4, 34.1, -118.2);
        assert!(t.intersects_bbox(&big));
        // Rect crossing one edge.
        let edge_pt = a.destination(90.0, 500.0);
        let crossing = BBox::new(
            edge_pt.lat - 1e-4,
            edge_pt.lon - 1e-4,
            edge_pt.lat + 1e-4,
            edge_pt.lon + 1e-4,
        );
        assert!(t.intersects_bbox(&crossing));
        // Far rect.
        let far_pt = a.destination(270.0, 5_000.0);
        let far = BBox::new(
            far_pt.lat - 1e-4,
            far_pt.lon - 1e-4,
            far_pt.lat + 1e-4,
            far_pt.lon + 1e-4,
        );
        assert!(!t.intersects_bbox(&far));
        // Near but outside the hypotenuse: a rect just past the diagonal.
        let diag_out = a.destination(45.0, 1100.0);
        let out = BBox::new(
            diag_out.lat - 1e-5,
            diag_out.lon - 1e-5,
            diag_out.lat + 1e-5,
            diag_out.lon + 1e-5,
        );
        assert!(!t.intersects_bbox(&out));
    }

    #[test]
    fn serde_roundtrip() {
        let t = triangle();
        let json = serde_json::to_string(&t).unwrap();
        let back: GeoPolygon = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn two_vertices_rejected() {
        let _ = GeoPolygon::new(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)]);
    }
}
