//! Local planar projection for exact small-scale geometry.
//!
//! FOV-vs-rectangle intersection tests need segment/segment intersection
//! predicates, which are much simpler in a plane. [`LocalProjection`]
//! projects lat/lon into metres on a tangent plane anchored at a reference
//! point (equirectangular), which is effectively exact at the sub-kilometre
//! scales of a single camera view.

use crate::point::GeoPoint;
use crate::METERS_PER_DEG_LAT;

/// A 2-D point in local metres: `x` east, `y` north of the anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XY {
    /// Metres east of the anchor.
    pub x: f64,
    /// Metres north of the anchor.
    pub y: f64,
}

impl XY {
    /// Euclidean distance to another local point.
    pub fn dist(&self, other: &XY) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Equirectangular projection anchored at a reference point.
#[derive(Debug, Clone, Copy)]
pub struct LocalProjection {
    anchor: GeoPoint,
    meters_per_deg_lon: f64,
}

impl LocalProjection {
    /// Creates a projection anchored at `anchor`.
    pub fn new(anchor: GeoPoint) -> Self {
        Self {
            anchor,
            meters_per_deg_lon: METERS_PER_DEG_LAT * anchor.lat.to_radians().cos(),
        }
    }

    /// The anchor point (projects to the origin).
    pub fn anchor(&self) -> GeoPoint {
        self.anchor
    }

    /// Projects a geographic point into local metres.
    pub fn to_xy(&self, p: &GeoPoint) -> XY {
        XY {
            x: (p.lon - self.anchor.lon) * self.meters_per_deg_lon,
            y: (p.lat - self.anchor.lat) * METERS_PER_DEG_LAT,
        }
    }

    /// Inverse projection.
    pub fn to_geo(&self, p: &XY) -> GeoPoint {
        GeoPoint::new(
            self.anchor.lat + p.y / METERS_PER_DEG_LAT,
            self.anchor.lon + p.x / self.meters_per_deg_lon,
        )
    }
}

/// Whether segments `a1-a2` and `b1-b2` intersect (including endpoints and
/// collinear overlap).
pub fn segments_intersect(a1: XY, a2: XY, b1: XY, b2: XY) -> bool {
    fn orient(p: XY, q: XY, r: XY) -> f64 {
        (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
    }
    fn on_segment(p: XY, q: XY, r: XY) -> bool {
        q.x >= p.x.min(r.x) && q.x <= p.x.max(r.x) && q.y >= p.y.min(r.y) && q.y <= p.y.max(r.y)
    }
    let d1 = orient(b1, b2, a1);
    let d2 = orient(b1, b2, a2);
    let d3 = orient(a1, a2, b1);
    let d4 = orient(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(b1, a1, b2))
        || (d2 == 0.0 && on_segment(b1, a2, b2))
        || (d3 == 0.0 && on_segment(a1, b1, a2))
        || (d4 == 0.0 && on_segment(a1, b2, a2))
}

/// Whether `p` is inside the simple polygon `poly` (ray casting; boundary
/// points may return either value, which is acceptable for coverage tests).
pub fn point_in_polygon(p: XY, poly: &[XY]) -> bool {
    let mut inside = false;
    let n = poly.len();
    let mut j = n - 1;
    for i in 0..n {
        let (pi, pj) = (poly[i], poly[j]);
        if ((pi.y > p.y) != (pj.y > p.y))
            && (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_projection() {
        let proj = LocalProjection::new(GeoPoint::new(34.05, -118.25));
        let p = GeoPoint::new(34.0612, -118.2391);
        let xy = proj.to_xy(&p);
        let back = proj.to_geo(&xy);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_distance() {
        let a = GeoPoint::new(34.05, -118.25);
        let b = GeoPoint::new(34.06, -118.24);
        let proj = LocalProjection::new(a);
        let planar = proj.to_xy(&a).dist(&proj.to_xy(&b));
        let sphere = a.haversine_m(&b);
        assert!(
            (planar - sphere).abs() / sphere < 0.002,
            "{planar} vs {sphere}"
        );
    }

    #[test]
    fn segment_intersection_cases() {
        let o = XY { x: 0.0, y: 0.0 };
        let e = XY { x: 10.0, y: 0.0 };
        let n = XY { x: 5.0, y: 5.0 };
        let s = XY { x: 5.0, y: -5.0 };
        assert!(segments_intersect(o, e, n, s)); // crossing
        assert!(segments_intersect(o, e, e, n)); // shared endpoint
        let far1 = XY { x: 0.0, y: 10.0 };
        let far2 = XY { x: 10.0, y: 10.0 };
        assert!(!segments_intersect(o, e, far1, far2)); // parallel, apart
        let mid = XY { x: 3.0, y: 0.0 };
        let mid2 = XY { x: 7.0, y: 0.0 };
        assert!(segments_intersect(o, e, mid, mid2)); // collinear overlap
    }

    #[test]
    fn point_in_polygon_triangle() {
        let tri = vec![
            XY { x: 0.0, y: 0.0 },
            XY { x: 10.0, y: 0.0 },
            XY { x: 5.0, y: 10.0 },
        ];
        assert!(point_in_polygon(XY { x: 5.0, y: 3.0 }, &tri));
        assert!(!point_in_polygon(XY { x: 9.0, y: 9.0 }, &tri));
        assert!(!point_in_polygon(XY { x: -1.0, y: 0.5 }, &tri));
    }
}
