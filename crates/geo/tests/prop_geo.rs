//! Property-based tests of the geospatial substrate invariants.

use proptest::prelude::*;
use tvdp_geo::{angular_diff_deg, normalize_deg, AngularRange, BBox, Fov, GeoPoint};

/// City-scale coordinates (greater Los Angeles) so planar approximations hold.
fn la_point() -> impl Strategy<Value = GeoPoint> {
    (33.6f64..34.4, -118.7f64..-117.9).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn fov() -> impl Strategy<Value = Fov> {
    (la_point(), 0.0f64..360.0, 10.0f64..180.0, 20.0f64..500.0)
        .prop_map(|(cam, heading, angle, radius)| Fov::new(cam, heading, angle, radius))
}

proptest! {
    #[test]
    fn normalize_in_range(deg in -10_000.0f64..10_000.0) {
        let n = normalize_deg(deg);
        prop_assert!((0.0..360.0).contains(&n));
        // Normalizing twice is idempotent.
        prop_assert!((normalize_deg(n) - n).abs() < 1e-12);
    }

    #[test]
    fn angular_diff_symmetric_and_bounded(a in -720.0f64..720.0, b in -720.0f64..720.0) {
        let d1 = angular_diff_deg(a, b);
        let d2 = angular_diff_deg(b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=180.0).contains(&d1));
    }

    #[test]
    fn destination_bearing_roundtrip(p in la_point(), brg in 0.0f64..360.0, dist in 1.0f64..2_000.0) {
        let dest = p.destination(brg, dist);
        prop_assert!((p.haversine_m(&dest) - dist).abs() < 1.0);
        prop_assert!(angular_diff_deg(p.bearing_deg(&dest), brg) < 0.5);
    }

    #[test]
    fn fast_distance_matches_haversine(a in la_point(), b in la_point()) {
        let h = a.haversine_m(&b);
        let f = a.fast_distance_m(&b);
        // Within 1% at metro scale (absolute slack for near-zero distances).
        prop_assert!((h - f).abs() <= 0.01 * h + 0.01, "h={h} f={f}");
    }

    #[test]
    fn bbox_union_contains_operands(a in la_point(), b in la_point(), c in la_point(), d in la_point()) {
        let b1 = BBox::from_points(&[a, b]).unwrap();
        let b2 = BBox::from_points(&[c, d]).unwrap();
        let u = b1.union(&b2);
        prop_assert!(u.contains_bbox(&b1));
        prop_assert!(u.contains_bbox(&b2));
    }

    #[test]
    fn bbox_intersection_subset_of_operands(a in la_point(), b in la_point(), c in la_point(), d in la_point()) {
        let b1 = BBox::from_points(&[a, b]).unwrap();
        let b2 = BBox::from_points(&[c, d]).unwrap();
        if let Some(i) = b1.intersection(&b2) {
            prop_assert!(b1.contains_bbox(&i));
            prop_assert!(b2.contains_bbox(&i));
            prop_assert!(b1.intersects(&b2));
        } else {
            prop_assert!(!b1.intersects(&b2));
        }
    }

    #[test]
    fn scene_location_contains_visible_points(f in fov(), brg_off in -0.49f64..0.49, frac in 0.0f64..1.0) {
        // Any point in the sector must fall inside the scene-location MBR.
        // Samples on the very edge of the sector can fall out of
        // `contains` by sub-millimetre great-circle-vs-planar rounding;
        // the invariant under test only concerns contained points.
        let brg = f.heading_deg + brg_off * f.angle_deg;
        let p = f.camera.destination(brg, frac * f.radius_m);
        prop_assume!(f.contains(&p));
        prop_assert!(f.scene_location().contains(&p));
    }

    #[test]
    fn visible_point_implies_bbox_intersection(f in fov(), brg_off in -0.45f64..0.45, frac in 0.05f64..0.95) {
        let brg = f.heading_deg + brg_off * f.angle_deg;
        let p = f.camera.destination(brg, frac * f.radius_m);
        let tiny = BBox::new(p.lat - 1e-5, p.lon - 1e-5, p.lat + 1e-5, p.lon + 1e-5);
        prop_assert!(f.intersects_bbox(&tiny));
    }

    #[test]
    fn far_bbox_never_intersects(f in fov(), brg in 0.0f64..360.0) {
        // A box centred 10x the radius away can never intersect.
        let p = f.camera.destination(brg, f.radius_m * 10.0);
        let tiny = BBox::new(p.lat - 1e-6, p.lon - 1e-6, p.lat + 1e-6, p.lon + 1e-6);
        prop_assert!(!f.intersects_bbox(&tiny));
    }

    #[test]
    fn fov_overlap_is_symmetric(f1 in fov(), f2 in fov()) {
        prop_assert_eq!(f1.overlaps(&f2), f2.overlaps(&f1));
    }

    #[test]
    fn fov_overlaps_itself(f in fov()) {
        prop_assert!(f.overlaps(&f));
    }

    #[test]
    fn angular_range_union_contains_members(s1 in 0.0f64..360.0, w1 in 1.0f64..120.0, s2 in 0.0f64..360.0, w2 in 1.0f64..120.0, t in 0.0f64..1.0) {
        let a = AngularRange::new(s1, w1);
        let b = AngularRange::new(s2, w2);
        let u = a.union(&b);
        let in_a = normalize_deg(s1 + w1 * t);
        let in_b = normalize_deg(s2 + w2 * t);
        prop_assert!(u.contains(in_a), "union misses member of a");
        prop_assert!(u.contains(in_b), "union misses member of b");
    }

    #[test]
    fn angular_range_overlap_consistent_with_contains(s1 in 0.0f64..360.0, w1 in 1.0f64..180.0, s2 in 0.0f64..360.0, w2 in 1.0f64..180.0) {
        let a = AngularRange::new(s1, w1);
        let b = AngularRange::new(s2, w2);
        // If a contains b's centre they must overlap.
        if a.contains(b.center()) {
            prop_assert!(a.overlaps(&b));
        }
    }
}
