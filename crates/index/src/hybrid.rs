//! Visual R*-tree: the hybrid spatial-visual index (paper ref [28]).
//!
//! Hybrid spatial-visual queries ("images near this corner that look like
//! this example") are served poorly by chaining single-modal indexes: a
//! spatial-first plan post-filters many features, a visual-first plan
//! post-filters many locations. The Visual R*-tree augments every R-tree
//! node with a *feature-space bounding ball* — the centroid of all feature
//! vectors beneath it and a radius covering them — so a single traversal
//! prunes in both spaces: a subtree is skipped when its MBR misses the
//! query region **or** when `‖q − centroid‖ − radius` exceeds the
//! similarity threshold.
//!
//! The tree does not own feature bytes: entries carry `u32` row handles
//! into a shared [feature arena](tvdp_kernel::arena), and every
//! operation that touches feature values takes a
//! [`RowSource`] (the live [`tvdp_kernel::FeatureSlab`] at insert time,
//! an `Arc`-shared [`tvdp_kernel::SlabView`] snapshot at query time).
//! Only the per-node ball centroids are owned — they are derived
//! aggregates, not copies of any row.

use tvdp_geo::BBox;
use tvdp_kernel::{l2, l2_sq, RowSource};

use crate::rtree::{choose_subtree, split_entries, HasBBox, NODE_MAX};

#[derive(Debug, Clone)]
struct Entry<T> {
    bbox: BBox,
    /// Arena row handle of this entry's feature vector.
    row: u32,
    value: T,
}

impl<T> HasBBox for Entry<T> {
    fn bbox(&self) -> BBox {
        self.bbox
    }
}

/// Feature-space bounding ball: every feature below lies within
/// `radius` of `centroid`.
#[derive(Debug, Clone)]
struct Ball {
    centroid: Vec<f32>,
    radius: f32,
    count: usize,
}

#[derive(Debug, Clone)]
struct Child<T> {
    bbox: BBox,
    ball: Ball,
    node: Box<Node<T>>,
}

impl<T> HasBBox for Child<T> {
    fn bbox(&self) -> BBox {
        self.bbox
    }
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { entries: Vec<Entry<T>> },
    Internal { children: Vec<Child<T>> },
}

impl<T> Node<T> {
    /// Recomputes (MBR, ball) from immediate children/entries only.
    fn summary(&self, rows: &impl RowSource, dim: usize) -> Option<(BBox, Ball)> {
        match self {
            Node::Leaf { entries } => {
                let first = entries.first()?;
                let mut bbox = first.bbox;
                let mut centroid = vec![0.0f32; dim];
                for e in entries {
                    bbox = bbox.union(&e.bbox);
                    for (c, &f) in centroid.iter_mut().zip(rows.row(e.row)) {
                        *c += f;
                    }
                }
                let n = entries.len() as f32;
                for c in &mut centroid {
                    *c /= n;
                }
                let radius = entries
                    .iter()
                    .map(|e| l2(&centroid, rows.row(e.row)))
                    .fold(0.0f32, f32::max);
                Some((
                    bbox,
                    Ball {
                        centroid,
                        radius,
                        count: entries.len(),
                    },
                ))
            }
            Node::Internal { children } => {
                let first = children.first()?;
                let mut bbox = first.bbox;
                let mut centroid = vec![0.0f32; dim];
                let mut total = 0usize;
                for c in children {
                    bbox = bbox.union(&c.bbox);
                    total += c.ball.count;
                    for (acc, &f) in centroid.iter_mut().zip(&c.ball.centroid) {
                        *acc += f * c.ball.count as f32;
                    }
                }
                for c in &mut centroid {
                    *c /= total as f32;
                }
                // Triangle inequality: features under child c lie within
                // dist(centroid, child centroid) + child radius.
                let radius = children
                    .iter()
                    .map(|c| l2(&centroid, &c.ball.centroid) + c.ball.radius)
                    .fold(0.0f32, f32::max);
                Some((
                    bbox,
                    Ball {
                        centroid,
                        radius,
                        count: total,
                    },
                ))
            }
        }
    }
}

/// The hybrid spatial-visual index over arena row handles.
#[derive(Debug, Clone)]
pub struct VisualRTree<T> {
    root: Node<T>,
    dim: usize,
    len: usize,
}

impl<T: Clone> VisualRTree<T> {
    /// An empty tree over `dim`-dimensional feature vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional features");
        Self {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            dim,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts an object with spatial extent `bbox` whose feature
    /// vector is arena row `row` of `rows`. The source must resolve
    /// every previously inserted row too (ball maintenance re-reads
    /// sibling features on splits).
    ///
    /// # Panics
    ///
    /// Panics on feature dimensionality mismatch.
    pub fn insert(&mut self, rows: &impl RowSource, bbox: BBox, row: u32, value: T) {
        assert_eq!(rows.dim(), self.dim, "feature dimension mismatch");
        self.len += 1;
        let entry = Entry { bbox, row, value };
        if let Some((left, right)) = Self::insert_rec(&mut self.root, rows, entry, self.dim) {
            let mk = |n: Node<T>, dim: usize| {
                // tvdp-lint: allow(no_panic, reason = "hybrid-tree structural invariant: the node touched here is non-empty by construction")
                let (bbox, ball) = n.summary(rows, dim).expect("split node non-empty");
                Child {
                    bbox,
                    ball,
                    node: Box::new(n),
                }
            };
            self.root = Node::Internal {
                children: vec![mk(left, self.dim), mk(right, self.dim)],
            };
        }
    }

    fn insert_rec(
        node: &mut Node<T>,
        rows: &impl RowSource,
        entry: Entry<T>,
        dim: usize,
    ) -> Option<(Node<T>, Node<T>)> {
        match node {
            Node::Leaf { entries } => {
                entries.push(entry);
                if entries.len() > NODE_MAX {
                    let (a, b) = split_entries(std::mem::take(entries));
                    return Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }));
                }
                None
            }
            Node::Internal { children } => {
                let idx = choose_subtree(children, &entry.bbox);
                match Self::insert_rec(&mut children[idx].node, rows, entry, dim) {
                    None => {
                        let (bbox, ball) =
                            // tvdp-lint: allow(no_panic, reason = "hybrid-tree structural invariant: the node touched here is non-empty by construction")
                            children[idx].node.summary(rows, dim).expect("child non-empty");
                        children[idx].bbox = bbox;
                        children[idx].ball = ball;
                    }
                    Some((left, right)) => {
                        let mk = |n: Node<T>| {
                            // tvdp-lint: allow(no_panic, reason = "hybrid-tree structural invariant: the node touched here is non-empty by construction")
                            let (bbox, ball) = n.summary(rows, dim).expect("split node non-empty");
                            Child {
                                bbox,
                                ball,
                                node: Box::new(n),
                            }
                        };
                        children[idx] = mk(left);
                        children.push(mk(right));
                        if children.len() > NODE_MAX {
                            let (a, b) = split_entries(std::mem::take(children));
                            return Some((
                                Node::Internal { children: a },
                                Node::Internal { children: b },
                            ));
                        }
                    }
                }
                None
            }
        }
    }

    /// Spatial-visual range query: entries intersecting `region` whose
    /// feature distance to `query` is at most `max_dist`. Returns
    /// `(distance, payload)` sorted by distance.
    pub fn range_visual(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist: f32,
    ) -> Vec<(f32, &T)> {
        self.range_visual_sq(rows, region, query, max_dist * max_dist)
            .into_iter()
            .map(|(d_sq, v)| (d_sq.sqrt(), v))
            .collect()
    }

    /// [`VisualRTree::range_visual`] in squared-distance space: entries
    /// intersecting `region` with `l2_sq(feature, query) <= max_dist_sq`,
    /// as `(squared_distance, payload)` sorted ascending. The compare-only
    /// form every thresholding path (dedup, visual filters) should use —
    /// no square root is taken anywhere.
    pub fn range_visual_sq(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist_sq: f32,
    ) -> Vec<(f32, &T)> {
        assert_eq!(query.len(), self.dim, "feature dimension mismatch");
        let mut out = Vec::new();
        Self::range_rec(&self.root, rows, region, query, max_dist_sq, &mut out);
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    fn range_rec<'a>(
        node: &'a Node<T>,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist_sq: f32,
        out: &mut Vec<(f32, &'a T)>,
    ) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    if e.bbox.intersects(region) {
                        let d_sq = l2_sq(rows.row(e.row), query);
                        if d_sq <= max_dist_sq {
                            out.push((d_sq, &e.value));
                        }
                    }
                }
            }
            Node::Internal { children } => {
                for c in children {
                    // Ball pruning needs the true centroid distance (the
                    // lower bound subtracts a radius), but it runs once
                    // per child node, not once per candidate entry.
                    let feat_lb = (l2(&c.ball.centroid, query) - c.ball.radius).max(0.0);
                    if c.bbox.intersects(region) && feat_lb * feat_lb <= max_dist_sq {
                        Self::range_rec(&c.node, rows, region, query, max_dist_sq, out);
                    }
                }
            }
        }
    }

    /// Spatial-visual top-k: the `k` entries intersecting `region` most
    /// similar to `query`, via best-first traversal on the feature-distance
    /// lower bound.
    pub fn knn_visual(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        k: usize,
    ) -> Vec<(f32, &T)> {
        assert_eq!(query.len(), self.dim, "feature dimension mismatch");
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Item<'a, T> {
            dist: f32,
            kind: Kind<'a, T>,
        }
        enum Kind<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a T),
        }
        impl<T> PartialEq for Item<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl<T> Eq for Item<'_, T> {}
        impl<T> PartialOrd for Item<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Item<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist.total_cmp(&other.dist)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Item {
            dist: 0.0,
            kind: Kind::Node(&self.root),
        }));
        let mut out = Vec::with_capacity(k);
        while let Some(Reverse(item)) = heap.pop() {
            match item.kind {
                Kind::Entry(v) => {
                    out.push((item.dist, v));
                    if out.len() == k {
                        break;
                    }
                }
                Kind::Node(Node::Leaf { entries }) => {
                    for e in entries {
                        if e.bbox.intersects(region) {
                            heap.push(Reverse(Item {
                                dist: l2(rows.row(e.row), query),
                                kind: Kind::Entry(&e.value),
                            }));
                        }
                    }
                }
                Kind::Node(Node::Internal { children }) => {
                    for c in children {
                        if c.bbox.intersects(region) {
                            let lb = (l2(&c.ball.centroid, query) - c.ball.radius).max(0.0);
                            heap.push(Reverse(Item {
                                dist: lb,
                                kind: Kind::Node(&c.node),
                            }));
                        }
                    }
                }
            }
        }
        out
    }

    /// Verifies the bounding-ball invariant: every entry's feature lies
    /// within its ancestors' balls (test helper).
    pub fn check_invariants(&self, rows: &impl RowSource) {
        fn rows_under<T>(node: &Node<T>, out: &mut Vec<u32>) {
            match node {
                Node::Leaf { entries } => out.extend(entries.iter().map(|e| e.row)),
                Node::Internal { children } => {
                    for c in children {
                        rows_under(&c.node, out);
                    }
                }
            }
        }
        fn walk<T>(node: &Node<T>, rows: &impl RowSource) {
            if let Node::Internal { children } = node {
                for c in children {
                    let mut handles = Vec::new();
                    rows_under(&c.node, &mut handles);
                    assert_eq!(handles.len(), c.ball.count, "count mismatch");
                    for &h in &handles {
                        let d = l2(rows.row(h), &c.ball.centroid);
                        assert!(
                            d <= c.ball.radius + 1e-4,
                            "feature escapes ball: {d} > {}",
                            c.ball.radius
                        );
                    }
                    walk(&c.node, rows);
                }
            }
        }
        walk(&self.root, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_kernel::FeatureSlab;

    type RawEntry = (BBox, Vec<f32>, usize);

    /// Entries on a spatial grid; feature = one-hot-ish vector by group so
    /// visual similarity is controlled.
    fn build(n: usize) -> (VisualRTree<usize>, FeatureSlab, Vec<RawEntry>) {
        let mut tree = VisualRTree::new(4);
        let mut slab = FeatureSlab::new(4);
        let mut raw = Vec::new();
        for i in 0..n {
            let lat = 34.0 + (i / 12) as f64 * 0.001;
            let lon = -118.3 + (i % 12) as f64 * 0.001;
            let b = BBox::from_point(GeoPoint::new(lat, lon));
            let group = i % 4;
            let mut f = vec![0.1f32; 4];
            f[group] = 1.0 + (i as f32 * 0.001);
            let row = slab.push(&f);
            tree.insert(&slab, b, row, i);
            raw.push((b, f, i));
        }
        (tree, slab, raw)
    }

    #[test]
    fn range_visual_matches_linear_scan() {
        let (tree, slab, raw) = build(200);
        tree.check_invariants(&slab);
        let region = BBox::new(34.0, -118.3, 34.01, -118.292);
        let query = {
            let mut f = vec![0.1f32; 4];
            f[2] = 1.0;
            f
        };
        let got: Vec<usize> = tree
            .range_visual(&slab, &region, &query, 0.3)
            .into_iter()
            .map(|(_, id)| *id)
            .collect();
        let mut expected: Vec<(f32, usize)> = raw
            .iter()
            .filter(|(b, f, _)| b.intersects(&region) && l2(f, &query) <= 0.3)
            .map(|(_, f, id)| (l2(f, &query), *id))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        let expected_ids: Vec<usize> = expected.into_iter().map(|(_, id)| id).collect();
        assert_eq!(got, expected_ids);
        assert!(!got.is_empty());
    }

    #[test]
    fn range_visual_works_through_a_detached_view() {
        let (tree, slab, _) = build(150);
        let view = slab.view();
        let region = BBox::new(33.9, -118.4, 34.1, -118.2);
        let query = vec![0.1f32, 0.1, 1.0, 0.1];
        let direct = tree.range_visual_sq(&slab, &region, &query, 0.5);
        let snapped = tree.range_visual_sq(&view, &region, &query, 0.5);
        assert_eq!(direct.len(), snapped.len());
        for ((da, ia), (db, ib)) in direct.iter().zip(&snapped) {
            assert_eq!(da.to_bits(), db.to_bits());
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn knn_visual_matches_linear_scan() {
        let (tree, slab, raw) = build(200);
        let region = BBox::new(33.99, -118.31, 34.05, -118.27);
        let query = {
            let mut f = vec![0.1f32; 4];
            f[1] = 1.05;
            f
        };
        let got: Vec<f32> = tree
            .knn_visual(&slab, &region, &query, 10)
            .iter()
            .map(|(d, _)| *d)
            .collect();
        let mut lin: Vec<f32> = raw
            .iter()
            .filter(|(b, _, _)| b.intersects(&region))
            .map(|(_, f, _)| l2(f, &query))
            .collect();
        lin.sort_by(f32::total_cmp);
        for (g, e) in got.iter().zip(&lin[..10]) {
            assert!((g - e).abs() < 1e-6, "{g} vs {e}");
        }
        // Distances sorted ascending.
        for w in got.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn spatial_constraint_respected() {
        let (tree, slab, _) = build(100);
        // Region far away from all data.
        let empty_region = BBox::new(35.0, -117.0, 35.1, -116.9);
        let query = vec![1.0, 0.1, 0.1, 0.1];
        assert!(tree
            .range_visual(&slab, &empty_region, &query, 100.0)
            .is_empty());
        assert!(tree.knn_visual(&slab, &empty_region, &query, 5).is_empty());
    }

    #[test]
    fn visual_threshold_respected() {
        let (tree, slab, _) = build(100);
        let region = BBox::new(33.9, -118.4, 34.1, -118.2);
        let query = vec![0.0; 4];
        for (d, _) in tree.range_visual(&slab, &region, &query, 0.9) {
            assert!(d <= 0.9);
        }
    }

    #[test]
    fn empty_tree_and_dim_checks() {
        let tree: VisualRTree<u8> = VisualRTree::new(3);
        assert!(tree.is_empty());
        assert_eq!(tree.dim(), 3);
        let slab = FeatureSlab::new(3);
        let region = BBox::new(0.0, 0.0, 1.0, 1.0);
        assert!(tree.range_visual(&slab, &region, &[0.0; 3], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_rejected() {
        let mut tree: VisualRTree<u8> = VisualRTree::new(3);
        let mut slab = FeatureSlab::new(4);
        let row = slab.push(&[0.0; 4]);
        tree.insert(&slab, BBox::new(0.0, 0.0, 1.0, 1.0), row, 1);
    }
}
