//! Inverted file index for textual keyword queries.
//!
//! The paper's textual descriptors (manual keywords and event
//! descriptions) are served by a classic inverted index (Zobel & Moffat,
//! ref \[27\]): per-term postings lists with term frequencies, tf-idf
//! ranked retrieval, plus boolean AND/OR modes.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use tvdp_kernel::{TopK, TotalF64};

/// Document handles are dense `usize` values assigned by the caller.
///
/// ```
/// use tvdp_index::InvertedIndex;
///
/// let mut idx = InvertedIndex::new();
/// idx.index_document(0, "homeless encampment under the overpass");
/// idx.index_document(1, "clean street");
/// assert_eq!(idx.search_and("encampment overpass"), vec![0]);
/// assert_eq!(idx.search_or("street overpass"), vec![0, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// term -> postings (doc, term frequency), sorted by doc. An
    /// ordered map (lint rule L2): postings iteration must never leak
    /// hash order into ranked results.
    postings: BTreeMap<String, Vec<(usize, u32)>>,
    /// Number of terms per document (for length normalization).
    doc_lengths: BTreeMap<usize, u32>,
    n_docs: usize,
}

/// Lowercases and splits text into alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// One query term's tf-idf contribution to a document's ranked score.
///
/// This is *the* scoring formula of [`InvertedIndex::search_ranked`],
/// factored out so distributed executors can score a document that
/// lives in one partition against **corpus-global** statistics
/// (`n_docs`, `df`) and still produce bit-identical floats: the
/// contribution is a pure function of `(tf, doc_len, n_docs, df)`, so
/// any executor holding the same four numbers reproduces the exact
/// same `f64`.
pub fn ranked_term_contribution(tf: u32, doc_len: u32, n_docs: usize, df: usize) -> f64 {
    let idf = ((n_docs as f64 + 1.0) / (df as f64 + 1.0)).ln() + 1.0;
    (f64::from(tf) / f64::from(doc_len).max(1.0)) * idf
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.n_docs
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Indexes a document's text under handle `doc`.
    ///
    /// # Panics
    ///
    /// Panics when `doc` was already indexed (documents are immutable).
    pub fn index_document(&mut self, doc: usize, text: &str) {
        assert!(
            !self.doc_lengths.contains_key(&doc),
            "document {doc} already indexed"
        );
        let tokens = tokenize(text);
        let mut tf: BTreeMap<String, u32> = BTreeMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            let list = self.postings.entry(term).or_default();
            // Handles arrive in any order; keep postings sorted by doc.
            let pos = list.partition_point(|&(d, _)| d < doc);
            list.insert(pos, (doc, count));
        }
        self.doc_lengths.insert(doc, tokens.len() as u32);
        self.n_docs += 1;
    }

    /// Documents containing *every* query term (boolean AND), sorted.
    pub fn search_and(&self, query: &str) -> Vec<usize> {
        let terms = tokenize(query);
        if terms.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<(usize, u32)>> = Vec::with_capacity(terms.len());
        for t in &terms {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        // Intersect starting from the shortest list.
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<usize> = lists[0].iter().map(|&(d, _)| d).collect();
        for list in &lists[1..] {
            result.retain(|d| list.binary_search_by_key(d, |&(doc, _)| doc).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Documents containing *any* query term (boolean OR), sorted.
    pub fn search_or(&self, query: &str) -> Vec<usize> {
        let mut docs: Vec<usize> = tokenize(query)
            .iter()
            .filter_map(|t| self.postings.get(t))
            .flat_map(|l| l.iter().map(|&(d, _)| d))
            .collect();
        docs.sort_unstable();
        docs.dedup();
        docs
    }

    /// tf-idf ranked retrieval: returns `(score, doc)` sorted by
    /// descending score, at most `k` results. Documents must match at
    /// least one term. Selection runs through a bounded top-k heap
    /// (`O(n log k)`) instead of sorting every scored document.
    pub fn search_ranked(&self, query: &str, k: usize) -> Vec<(f64, usize)> {
        self.search_ranked_with_stats(query, k, self.n_docs, |_, list_len| list_len)
    }

    /// [`InvertedIndex::search_ranked`] scored against externally
    /// supplied corpus statistics: `n_docs` is the corpus-wide document
    /// count, and `df(term, local_df)` maps a term (with its document
    /// frequency in *this* index) to its corpus-wide document
    /// frequency. A partitioned corpus uses this for two-phase ranked
    /// retrieval — gather per-partition frequencies first, then score
    /// each partition's documents with the global numbers — and the
    /// per-document scores come out bit-identical to one big index (see
    /// [`ranked_term_contribution`]). With `self.n_docs` and the
    /// identity closure this *is* `search_ranked`.
    pub fn search_ranked_with_stats(
        &self,
        query: &str,
        k: usize,
        n_docs: usize,
        df: impl Fn(&str, usize) -> usize,
    ) -> Vec<(f64, usize)> {
        let terms = tokenize(query);
        let mut scores: BTreeMap<usize, f64> = BTreeMap::new();
        for term in &terms {
            let Some(list) = self.postings.get(term) else {
                continue;
            };
            let term_df = df(term, list.len());
            for &(doc, tf) in list {
                *scores.entry(doc).or_insert(0.0) +=
                    ranked_term_contribution(tf, self.doc_lengths[&doc], n_docs, term_df);
            }
        }
        // "Smallest k" under (Reverse(score), doc) = highest score first,
        // ties broken by ascending doc — the published result order.
        let mut top = TopK::new(k);
        top.extend(scores.into_iter().map(|(d, s)| (Reverse(TotalF64(s)), d)));
        top.into_sorted_vec()
            .into_iter()
            .map(|(Reverse(TotalF64(s)), d)| (s, d))
            .collect()
    }

    /// Document frequency of a term (diagnostics and planner
    /// selectivity estimates).
    pub fn doc_frequency(&self, term: &str) -> usize {
        self.postings.get(&term.to_lowercase()).map_or(0, Vec::len)
    }

    /// Whether `doc` contains *every* term of `terms` (pre-tokenized,
    /// as from [`tokenize`]). Exactly the membership predicate of
    /// [`InvertedIndex::search_and`]: empty `terms` matches nothing.
    /// O(terms · log postings) — the planner uses it to post-filter a
    /// small candidate set instead of materializing the full AND.
    pub fn doc_matches_all(&self, doc: usize, terms: &[String]) -> bool {
        !terms.is_empty()
            && terms.iter().all(|t| {
                self.postings
                    .get(t)
                    .is_some_and(|list| list.binary_search_by_key(&doc, |&(d, _)| d).is_ok())
            })
    }

    /// Whether `doc` contains *any* term of `terms` (pre-tokenized) —
    /// the membership predicate of [`InvertedIndex::search_or`].
    pub fn doc_matches_any(&self, doc: usize, terms: &[String]) -> bool {
        terms.iter().any(|t| {
            self.postings
                .get(t)
                .is_some_and(|list| list.binary_search_by_key(&doc, |&(d, _)| d).is_ok())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.index_document(0, "illegal dumping near the overpass");
        idx.index_document(1, "homeless encampment under overpass bridge");
        idx.index_document(2, "clean street after sweep");
        idx.index_document(3, "bulky item: abandoned couch, street corner");
        idx.index_document(4, "Overpass graffiti and dumping, dumping again");
        idx
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(tokenize("Hello, World-42!"), vec!["hello", "world", "42"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn and_search_intersects() {
        let idx = sample_index();
        assert_eq!(idx.search_and("overpass dumping"), vec![0, 4]);
        assert_eq!(idx.search_and("overpass"), vec![0, 1, 4]);
        assert!(idx.search_and("overpass missingterm").is_empty());
        assert!(idx.search_and("").is_empty());
    }

    #[test]
    fn or_search_unions() {
        let idx = sample_index();
        assert_eq!(idx.search_or("couch sweep"), vec![2, 3]);
        assert_eq!(idx.search_or("overpass street"), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn search_is_case_insensitive() {
        let idx = sample_index();
        assert_eq!(idx.search_and("OVERPASS"), vec![0, 1, 4]);
    }

    #[test]
    fn ranked_prefers_higher_tf() {
        let idx = sample_index();
        let ranked = idx.search_ranked("dumping", 10);
        // Doc 4 says "dumping" twice; must rank above doc 0.
        assert_eq!(ranked[0].1, 4);
        assert_eq!(ranked[1].1, 0);
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn ranked_idf_downweights_common_terms() {
        let mut idx = InvertedIndex::new();
        // "street" in every doc; "graffiti" rare.
        idx.index_document(0, "street graffiti");
        idx.index_document(1, "street");
        idx.index_document(2, "street");
        let ranked = idx.search_ranked("street graffiti", 10);
        assert_eq!(ranked[0].1, 0, "doc with rare term must rank first");
    }

    #[test]
    fn ranked_respects_k() {
        let idx = sample_index();
        let ranked = idx.search_ranked("street overpass dumping", 2);
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn doc_frequency_counts() {
        let idx = sample_index();
        assert_eq!(idx.doc_frequency("overpass"), 3);
        assert_eq!(idx.doc_frequency("OVERPASS"), 3);
        assert_eq!(idx.doc_frequency("nothing"), 0);
        assert_eq!(idx.len(), 5);
        assert!(idx.vocabulary_size() > 10);
    }

    #[test]
    fn doc_matches_mirrors_search_membership() {
        let idx = sample_index();
        for query in ["overpass dumping", "street", "overpass missingterm", ""] {
            let terms = tokenize(query);
            let and_hits = idx.search_and(query);
            let or_hits = idx.search_or(query);
            for doc in 0..5 {
                assert_eq!(
                    idx.doc_matches_all(doc, &terms),
                    and_hits.contains(&doc),
                    "AND membership mismatch for {query:?} doc {doc}"
                );
                assert_eq!(
                    idx.doc_matches_any(doc, &terms),
                    or_hits.contains(&doc),
                    "OR membership mismatch for {query:?} doc {doc}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn duplicate_doc_rejected() {
        let mut idx = InvertedIndex::new();
        idx.index_document(1, "a");
        idx.index_document(1, "b");
    }
}
