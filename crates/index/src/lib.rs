//! Indexing substrate for the Translational Visual Data Platform.
//!
//! The paper's access layer (Section IV-C) serves five query families —
//! spatial, visual, categorical, textual, temporal — plus hybrid
//! combinations, backed by:
//!
//! * [`rtree::RTree`] — an R*-style spatial tree for range and k-NN
//!   queries over points and scene-location rectangles,
//! * [`oriented::OrientedRTree`] — the direction-augmented R-tree of
//!   Lu et al. (GeoInformatica 2016, paper ref \[25\]) for FOV queries with
//!   viewing-direction constraints,
//! * [`lsh::LshIndex`] — locality-sensitive hashing with p-stable
//!   projections (Datar et al., SoCG 2004, ref \[26\]) for high-dimensional
//!   visual-feature similarity search,
//! * [`inverted::InvertedIndex`] — a tf-idf inverted file (Zobel & Moffat,
//!   ref \[27\]) for textual keyword queries,
//! * [`temporal::TemporalIndex`] — an ordered index over capture /
//!   upload timestamps,
//! * [`hybrid::VisualRTree`] — the hybrid spatial-visual index of
//!   Alfarrarjeh et al. (ACM MM Workshops 2017, ref \[28\]): an R-tree whose
//!   nodes carry feature-space summaries so one traversal prunes in both
//!   spaces at once,
//! * [`vfirst::VisualFirstIndex`] — the opposite hybrid ordering
//!   (visual-first IVF cells with spatial MBR pruning), for workloads
//!   whose spatial predicate is broad and visual predicate sharp.

pub mod hybrid;
pub mod inverted;
pub mod lsh;
pub mod oriented;
pub mod rtree;
pub mod temporal;
pub mod vfirst;

pub use hybrid::VisualRTree;
pub use inverted::InvertedIndex;
pub use lsh::{LshConfig, LshIndex};
pub use oriented::OrientedRTree;
pub use rtree::RTree;
pub use temporal::TemporalIndex;
pub use vfirst::VisualFirstIndex;
