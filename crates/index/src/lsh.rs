//! Locality-sensitive hashing with p-stable (Gaussian) projections.
//!
//! Implements the E2LSH scheme of Datar et al. (SoCG 2004, paper ref
//! \[26\]): each of `tables` hash tables hashes a vector with `hashes_per_table`
//! functions `h(v) = ⌊(a·v + b) / w⌋` where `a` has i.i.d. standard normal
//! entries and `b ~ U[0, w)`. Vectors colliding with the query in any
//! table become candidates; exact distances re-rank the candidates.
//!
//! The index stores no vector bytes: each handle maps to a `u32` row in
//! a shared [feature arena](tvdp_kernel::arena), and re-ranking resolves
//! rows through a [`RowSource`] (live slab or snapshot view) so exact
//! distances run on arena memory with zero copies.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use tvdp_kernel::{l2_sq, Pool, RowSource, TopK, TotalF32};

/// Below this many candidate-distance multiplications the re-rank runs
/// serially; above it, the work fans out over the global [`Pool`].
/// Serial and pooled paths are bit-identical, so the gate is purely a
/// latency knob.
const PARALLEL_RERANK_FLOPS: usize = 1 << 17;

/// LSH tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    /// Number of hash tables `L`; more tables raise recall and memory.
    pub tables: usize,
    /// Hash functions per table `k`; more hashes sharpen buckets.
    pub hashes_per_table: usize,
    /// Quantization width `w`; should be on the order of typical
    /// nearest-neighbour distances.
    pub bucket_width: f32,
    /// Seed for projection directions and offsets.
    pub seed: u64,
    /// Oversampling factor for approximate top-k serving: callers that
    /// post-filter LSH results (e.g. the query engine restricting to
    /// indexed images) fetch `k * candidate_multiple` neighbours before
    /// filtering down to `k`. Higher values trade re-rank work for
    /// recall.
    pub candidate_multiple: usize,
    /// Absolute floor on the oversampled fetch: approximate serving
    /// fetches `max(k * candidate_multiple, min_candidates)` neighbours
    /// (see [`LshConfig::oversampled_fetch`]). A pure multiple cliffs at
    /// small `k` — `k = 1` with the default multiple fetches only 4
    /// candidates, and any post-filter (spatial region, quantized
    /// pre-scan) that eats most of them collapses recall on small
    /// indexes. The floor keeps the post-filter fed; 32 costs at most a
    /// few thousand extra FLOPs per query, which is noise next to one
    /// hash probe.
    pub min_candidates: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            tables: 12,
            hashes_per_table: 8,
            bucket_width: 1.0,
            seed: 0x154,
            candidate_multiple: 4,
            min_candidates: 32,
        }
    }
}

impl LshConfig {
    /// How many neighbours approximate serving should fetch before
    /// post-filtering down to `k`: `max(k * candidate_multiple,
    /// min_candidates)`. Every call site that oversamples must go
    /// through this so the documented floor is applied uniformly.
    pub fn oversampled_fetch(&self, k: usize) -> usize {
        (k * self.candidate_multiple).max(self.min_candidates)
    }
}

#[derive(Debug, Clone)]
struct HashFamily {
    /// `hashes_per_table` projection vectors, flattened.
    projections: Vec<f32>,
    offsets: Vec<f32>,
    k: usize,
    dim: usize,
    width: f32,
}

impl HashFamily {
    fn new(dim: usize, k: usize, width: f32, rng: &mut StdRng) -> Self {
        let projections = (0..k * dim)
            .map(|_| {
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        let offsets = (0..k).map(|_| rng.gen_range(0.0..width)).collect();
        Self {
            projections,
            offsets,
            k,
            dim,
            width,
        }
    }

    fn hash(&self, v: &[f32]) -> Vec<i32> {
        debug_assert_eq!(v.len(), self.dim);
        (0..self.k)
            .map(|h| {
                let proj: f32 = self.projections[h * self.dim..(h + 1) * self.dim]
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a * b)
                    // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
                    .sum();
                ((proj + self.offsets[h]) / self.width).floor() as i32
            })
            .collect()
    }
}

/// An LSH index over arena feature rows with dense `usize` handles.
#[derive(Debug, Clone)]
pub struct LshIndex {
    config: LshConfig,
    dim: usize,
    families: Vec<HashFamily>,
    /// One bucket map per hash table. Ordered maps (lint rule L2) so
    /// that any future iteration over buckets is reproducible; lookups
    /// on `Vec<i32>` keys stay O(log n).
    tables: Vec<BTreeMap<Vec<i32>, Vec<usize>>>,
    /// Arena row handle per LSH handle (dense, insertion order).
    rows: Vec<u32>,
}

impl LshIndex {
    /// Creates an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, config: LshConfig) -> Self {
        assert!(dim > 0, "zero-dimensional vectors");
        assert!(
            config.tables >= 1 && config.hashes_per_table >= 1,
            "degenerate config"
        );
        assert!(config.bucket_width > 0.0, "bucket width must be positive");
        assert!(config.candidate_multiple >= 1, "degenerate oversampling");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let families = (0..config.tables)
            .map(|_| HashFamily::new(dim, config.hashes_per_table, config.bucket_width, &mut rng))
            .collect();
        let tables = vec![BTreeMap::new(); config.tables];
        Self {
            config,
            dim,
            families,
            tables,
            rows: Vec::new(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The configuration in use.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// Indexes arena row `row` whose values are `v`, returning its
    /// handle (dense, starting at 0). Only the hash of `v` is retained;
    /// the bytes stay in the arena.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, v: &[f32], row: u32) -> usize {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let id = self.rows.len();
        for (family, table) in self.families.iter().zip(&mut self.tables) {
            table.entry(family.hash(v)).or_default().push(id);
        }
        self.rows.push(row);
        id
    }

    /// The arena row a handle points at.
    pub fn row_of(&self, id: usize) -> u32 {
        self.rows[id]
    }

    /// Candidate handles colliding with `q` in at least one table
    /// (deduplicated, unordered).
    pub fn candidates(&self, q: &[f32]) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "dimension mismatch");
        let mut seen = vec![false; self.rows.len()];
        let mut out = Vec::new();
        for (family, table) in self.families.iter().zip(&self.tables) {
            if let Some(bucket) = table.get(&family.hash(q)) {
                for &id in bucket {
                    if !seen[id] {
                        seen[id] = true;
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Squared distances from `q` to each handle in `ids`, in order.
    /// Fans out over the global pool when the work is large enough to
    /// amortize it; the pooled path is bit-identical to the serial one.
    fn rerank_sq(&self, rows: &(impl RowSource + Sync), q: &[f32], ids: &[usize]) -> Vec<f32> {
        if ids.len() * self.dim < PARALLEL_RERANK_FLOPS {
            ids.iter()
                .map(|&id| l2_sq(q, rows.row(self.rows[id])))
                .collect()
        } else {
            Pool::global().map(ids, |_, &id| l2_sq(q, rows.row(self.rows[id])))
        }
    }

    /// Selects the `k` smallest `(d_sq, id)` pairs — the bounded-heap
    /// replacement for sort-everything-then-truncate — and converts the
    /// survivors to reported (rooted) distances.
    fn select_k(d_sq: Vec<f32>, ids: Vec<usize>, k: usize) -> Vec<(f32, usize)> {
        let mut top = TopK::new(k);
        top.extend(d_sq.into_iter().zip(ids).map(|(d, id)| (TotalF32(d), id)));
        top.into_sorted_vec()
            .into_iter()
            .map(|(TotalF32(d), id)| (d.sqrt(), id))
            .collect()
    }

    /// Approximate k-NN: exact re-ranking of the LSH candidate set.
    /// Returns `(distance, handle)` sorted ascending; may return fewer
    /// than `k` when the candidate set is small.
    ///
    /// Candidates are ranked on squared distances (monotonic, so the
    /// order is the same) through a bounded top-k heap; the square root
    /// is taken only for the `k` survivors.
    pub fn knn(&self, rows: &(impl RowSource + Sync), q: &[f32], k: usize) -> Vec<(f32, usize)> {
        let ids = self.candidates(q);
        let d_sq = self.rerank_sq(rows, q, &ids);
        Self::select_k(d_sq, ids, k)
    }

    /// All handles within `radius` of `q` among the candidates.
    pub fn within_radius(
        &self,
        rows: &(impl RowSource + Sync),
        q: &[f32],
        radius: f32,
    ) -> Vec<(f32, usize)> {
        let ids = self.candidates(q);
        let radius_sq = radius * radius;
        let mut out: Vec<(f32, usize)> = self
            .rerank_sq(rows, q, &ids)
            .into_iter()
            .zip(ids)
            .filter_map(|(d_sq, id)| (d_sq <= radius_sq).then_some((d_sq, id)))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for o in &mut out {
            o.0 = o.0.sqrt();
        }
        out
    }

    /// Exact linear-scan k-NN over all stored vectors (the brute-force
    /// baseline the benchmarks compare against).
    pub fn knn_exact(
        &self,
        rows: &(impl RowSource + Sync),
        q: &[f32],
        k: usize,
    ) -> Vec<(f32, usize)> {
        let ids: Vec<usize> = (0..self.rows.len()).collect();
        let d_sq = self.rerank_sq(rows, q, &ids);
        Self::select_k(d_sq, ids, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_kernel::FeatureSlab;

    fn clustered_vectors(n_clusters: usize, per_cluster: usize, dim: usize) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut out = Vec::new();
        for c in 0..n_clusters {
            let center: Vec<f32> = (0..dim).map(|d| ((c * 7 + d) % 5) as f32 * 2.0).collect();
            for _ in 0..per_cluster {
                out.push(
                    center
                        .iter()
                        .map(|&v| v + rng.gen_range(-0.1..0.1))
                        .collect(),
                );
            }
        }
        out
    }

    fn indexed(vectors: &[Vec<f32>], dim: usize, config: LshConfig) -> (LshIndex, FeatureSlab) {
        let mut idx = LshIndex::new(dim, config);
        let mut slab = FeatureSlab::new(dim);
        for v in vectors {
            let row = slab.push(v);
            idx.insert(v, row);
        }
        (idx, slab)
    }

    #[test]
    fn exact_duplicate_always_found() {
        let vectors = clustered_vectors(4, 10, 8);
        let (idx, slab) = indexed(&vectors, 8, LshConfig::default());
        // A stored vector must collide with itself in every table.
        let cands = idx.candidates(&vectors[5]);
        assert!(cands.contains(&5));
        let knn = idx.knn(&slab, &vectors[5], 1);
        assert_eq!(knn[0].1, 5);
        assert!(knn[0].0 < 1e-6);
    }

    #[test]
    fn knn_recall_on_clustered_data() {
        let vectors = clustered_vectors(5, 20, 8);
        let (idx, slab) = indexed(&vectors, 8, LshConfig::default());
        // For each cluster representative, at least 8 of the true top-10
        // must appear in the approximate top-10 (recall >= 0.8).
        let mut total_recall = 0.0;
        let mut queries = 0;
        for q in (0..vectors.len()).step_by(20) {
            let approx: Vec<usize> = idx
                .knn(&slab, &vectors[q], 10)
                .iter()
                .map(|&(_, i)| i)
                .collect();
            let exact: Vec<usize> = idx
                .knn_exact(&slab, &vectors[q], 10)
                .iter()
                .map(|&(_, i)| i)
                .collect();
            let hit = exact.iter().filter(|i| approx.contains(i)).count();
            total_recall += hit as f64 / exact.len() as f64;
            queries += 1;
        }
        let recall = total_recall / queries as f64;
        assert!(recall >= 0.8, "recall {recall}");
    }

    #[test]
    fn oversampling_multiple_improves_recall_after_post_filter() {
        // Emulates the engine's approximate visual path: fetch
        // `k * candidate_multiple` neighbours, post-filter half the
        // corpus away, keep k. Recall against the filtered exact top-k
        // must not degrade when the multiple grows.
        let dim = 8;
        let k = 10;
        let vectors = clustered_vectors(6, 25, dim);
        let (idx, slab) = indexed(&vectors, dim, LshConfig::default());
        let keep = |id: usize| id % 2 == 0;
        let exact: Vec<usize> = idx
            .knn_exact(&slab, &vectors[0], vectors.len())
            .into_iter()
            .filter(|&(_, id)| keep(id))
            .take(k)
            .map(|(_, id)| id)
            .collect();
        let recall_at = |fetch: usize| {
            let approx: Vec<usize> = idx
                .knn(&slab, &vectors[0], fetch)
                .into_iter()
                .filter(|&(_, id)| keep(id))
                .take(k)
                .map(|(_, id)| id)
                .collect();
            exact.iter().filter(|id| approx.contains(id)).count() as f64 / exact.len() as f64
        };
        let low = recall_at(k);
        let default = recall_at(LshConfig::default().oversampled_fetch(k));
        assert_eq!(LshConfig::default().candidate_multiple, 4);
        assert!(default >= low, "recall fell from {low} to {default}");
        assert!(default >= 0.8, "oversampled recall {default}");
    }

    #[test]
    fn min_candidates_floor_prevents_small_k_recall_cliff() {
        // k = 1 with multiple 1 fetches a single neighbour; a post-filter
        // that rejects it (here: odd handles) zeroes recall. The floor
        // keeps the filter fed regardless of k — this is the regression
        // pin for the quantized pre-scan, whose candidate filter is
        // strictly tighter than the plain spatial one.
        let dim = 8;
        let vectors = clustered_vectors(6, 25, dim);
        let config = LshConfig {
            candidate_multiple: 1,
            ..Default::default()
        };
        let (idx, slab) = indexed(&vectors, dim, config);
        assert_eq!(config.oversampled_fetch(1), config.min_candidates);
        assert_eq!(config.oversampled_fetch(100), 100);
        assert_eq!(LshConfig::default().oversampled_fetch(4), 32);
        assert_eq!(LshConfig::default().oversampled_fetch(10), 40);
        let keep = |id: usize| id % 2 == 0;
        let truth = idx
            .knn_exact(&slab, &vectors[1], vectors.len())
            .into_iter()
            .find(|&(_, id)| keep(id))
            .map(|(_, id)| id)
            .unwrap();
        let top_with = |fetch: usize| {
            idx.knn(&slab, &vectors[1], fetch)
                .into_iter()
                .find(|&(_, id)| keep(id))
                .map(|(_, id)| id)
        };
        // Unclamped fetch of k = 1 candidates cannot survive the filter
        // (handle 1 is odd); the floored fetch recovers the true hit.
        assert_ne!(top_with(1), Some(truth));
        assert_eq!(top_with(config.oversampled_fetch(1)), Some(truth));
    }

    #[test]
    fn within_radius_returns_only_close_vectors() {
        let vectors = vec![
            vec![0.0; 4],
            vec![0.05, 0.0, 0.0, 0.0],
            vec![10.0, 10.0, 10.0, 10.0],
        ];
        let (idx, slab) = indexed(&vectors, 4, LshConfig::default());
        let hits = idx.within_radius(&slab, &[0.0; 4], 0.5);
        let ids: Vec<usize> = hits.iter().map(|&(_, i)| i).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            indexed(
                &clustered_vectors(3, 5, 6),
                6,
                LshConfig {
                    seed: 7,
                    ..Default::default()
                },
            )
        };
        let (a, _) = mk();
        let (b, _) = mk();
        let q = vec![1.0; 6];
        assert_eq!(a.candidates(&q), b.candidates(&q));
    }

    #[test]
    fn candidates_far_smaller_than_corpus_for_sharp_config() {
        // With clustered data, a query should only collide with its own
        // cluster (plus stragglers), not the whole corpus.
        let vectors = clustered_vectors(10, 30, 8);
        let (idx, _) = indexed(&vectors, 8, LshConfig::default());
        let cands = idx.candidates(&vectors[0]);
        assert!(
            cands.len() < vectors.len() / 2,
            "candidate set too large: {} of {}",
            cands.len(),
            vectors.len()
        );
    }

    #[test]
    fn knn_matches_view_snapshot_bitwise() {
        let vectors = clustered_vectors(4, 12, 8);
        let (idx, slab) = indexed(&vectors, 8, LshConfig::default());
        let view = slab.view();
        let direct = idx.knn(&slab, &vectors[3], 7);
        let snapped = idx.knn(&view, &vectors[3], 7);
        assert_eq!(direct.len(), snapped.len());
        for ((da, ia), (db, ib)) in direct.iter().zip(&snapped) {
            assert_eq!(da.to_bits(), db.to_bits());
            assert_eq!(ia, ib);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_rejects_wrong_dim() {
        let mut idx = LshIndex::new(4, LshConfig::default());
        idx.insert(&[0.0; 5], 0);
    }
}
