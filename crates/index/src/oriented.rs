//! Oriented R-tree: a direction-augmented spatial index over FOVs.
//!
//! Plain R-trees over scene locations answer "which images show this
//! area?" but cannot prune by *viewing direction* ("images looking north
//! at this corner"). Following Lu et al. (paper ref \[25\]), each node of
//! the oriented R-tree stores, alongside the spatial MBR, the union of the
//! viewing-direction arcs of all FOVs beneath it; a directional query can
//! then discard whole subtrees whose direction summary misses the query
//! arc.

use tvdp_geo::{AngularRange, BBox, Fov, GeoPoint};

use crate::rtree::{choose_subtree, split_entries, HasBBox, NODE_MAX};

/// A leaf entry: scene-location box, the FOV itself, and the payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    bbox: BBox,
    fov: Fov,
    value: T,
}

impl<T> HasBBox for Entry<T> {
    fn bbox(&self) -> BBox {
        self.bbox
    }
}

#[derive(Debug, Clone)]
struct Child<T> {
    bbox: BBox,
    dirs: AngularRange,
    node: Box<Node<T>>,
}

impl<T> HasBBox for Child<T> {
    fn bbox(&self) -> BBox {
        self.bbox
    }
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { entries: Vec<Entry<T>> },
    Internal { children: Vec<Child<T>> },
}

impl<T> Node<T> {
    fn summary(&self) -> Option<(BBox, AngularRange)> {
        match self {
            Node::Leaf { entries } => {
                let first = entries.first()?;
                let mut bbox = first.bbox;
                let mut dirs = first.fov.direction_range();
                for e in &entries[1..] {
                    bbox = bbox.union(&e.bbox);
                    dirs = dirs.union(&e.fov.direction_range());
                }
                Some((bbox, dirs))
            }
            Node::Internal { children } => {
                let first = children.first()?;
                let mut bbox = first.bbox;
                let mut dirs = first.dirs;
                for c in &children[1..] {
                    bbox = bbox.union(&c.bbox);
                    dirs = dirs.union(&c.dirs);
                }
                Some((bbox, dirs))
            }
        }
    }
}

/// An R-tree over FOVs with per-node viewing-direction summaries.
#[derive(Debug, Clone)]
pub struct OrientedRTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T: Clone> Default for OrientedRTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> OrientedRTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of stored FOVs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an FOV with payload; the spatial key is the FOV's scene
    /// location.
    pub fn insert(&mut self, fov: Fov, value: T) {
        self.len += 1;
        let entry = Entry {
            bbox: fov.scene_location(),
            fov,
            value,
        };
        if let Some((left, right)) = Self::insert_rec(&mut self.root, entry) {
            let mk_child = |n: Node<T>| {
                // tvdp-lint: allow(no_panic, reason = "OR-tree structural invariant: the node touched here is non-empty by construction")
                let (bbox, dirs) = n.summary().expect("split node non-empty");
                Child {
                    bbox,
                    dirs,
                    node: Box::new(n),
                }
            };
            self.root = Node::Internal {
                children: vec![mk_child(left), mk_child(right)],
            };
        }
    }

    fn insert_rec(node: &mut Node<T>, entry: Entry<T>) -> Option<(Node<T>, Node<T>)> {
        match node {
            Node::Leaf { entries } => {
                entries.push(entry);
                if entries.len() > NODE_MAX {
                    let (a, b) = split_entries(std::mem::take(entries));
                    return Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }));
                }
                None
            }
            Node::Internal { children } => {
                let idx = choose_subtree(children, &entry.bbox);
                match Self::insert_rec(&mut children[idx].node, entry) {
                    None => {
                        // tvdp-lint: allow(no_panic, reason = "OR-tree structural invariant: the node touched here is non-empty by construction")
                        let (bbox, dirs) = children[idx].node.summary().expect("child non-empty");
                        children[idx].bbox = bbox;
                        children[idx].dirs = dirs;
                    }
                    Some((left, right)) => {
                        let mk_child = |n: Node<T>| {
                            // tvdp-lint: allow(no_panic, reason = "OR-tree structural invariant: the node touched here is non-empty by construction")
                            let (bbox, dirs) = n.summary().expect("split node non-empty");
                            Child {
                                bbox,
                                dirs,
                                node: Box::new(n),
                            }
                        };
                        children[idx] = mk_child(left);
                        children.push(mk_child(right));
                        if children.len() > NODE_MAX {
                            let (a, b) = split_entries(std::mem::take(children));
                            return Some((
                                Node::Internal { children: a },
                                Node::Internal { children: b },
                            ));
                        }
                    }
                }
                None
            }
        }
    }

    /// FOVs whose scene location intersects `region` and whose viewing
    /// direction overlaps `directions`. Pass [`AngularRange::FULL`] for a
    /// purely spatial query.
    pub fn range_directed(&self, region: &BBox, directions: &AngularRange) -> Vec<(&Fov, &T)> {
        let mut out = Vec::new();
        Self::query_rec(&self.root, region, directions, &mut out);
        out
    }

    fn query_rec<'a>(
        node: &'a Node<T>,
        region: &BBox,
        directions: &AngularRange,
        out: &mut Vec<(&'a Fov, &'a T)>,
    ) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    if e.bbox.intersects(region) && e.fov.direction_range().overlaps(directions) {
                        out.push((&e.fov, &e.value));
                    }
                }
            }
            Node::Internal { children } => {
                for c in children {
                    if c.bbox.intersects(region) && c.dirs.overlaps(directions) {
                        Self::query_rec(&c.node, region, directions, out);
                    }
                }
            }
        }
    }

    /// FOVs that actually *see* point `p` (exact sector test after index
    /// pruning), optionally restricted to a viewing-direction arc.
    pub fn covering_point(
        &self,
        p: &GeoPoint,
        directions: Option<&AngularRange>,
    ) -> Vec<(&Fov, &T)> {
        let region = BBox::from_point(*p);
        let dirs = directions.copied().unwrap_or(AngularRange::FULL);
        self.range_directed(&region, &dirs)
            .into_iter()
            .filter(|(fov, _)| fov.contains(p))
            .collect()
    }

    /// Verifies per-node summaries cover their subtrees (test helper).
    pub fn check_invariants(&self) {
        fn walk<T>(node: &Node<T>) {
            if let Node::Internal { children } = node {
                for c in children {
                    // tvdp-lint: allow(no_panic, reason = "OR-tree structural invariant: the node touched here is non-empty by construction")
                    let (bbox, dirs) = c.node.summary().expect("child non-empty");
                    assert!(c.bbox.contains_bbox(&bbox), "bbox summary too small");
                    // Every direction covered below must be inside the
                    // stored summary: test a dense sample.
                    for step in 0..72 {
                        let deg = step as f64 * 5.0;
                        if dirs.contains(deg) {
                            assert!(c.dirs.contains(deg), "direction summary misses {deg}");
                        }
                    }
                    walk(&c.node);
                }
            }
        }
        walk(&self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_fovs(n: usize) -> Vec<(Fov, usize)> {
        // FOVs on a grid, heading rotates by index.
        let mut fovs = Vec::new();
        for i in 0..n {
            let lat = 34.0 + (i / 10) as f64 * 0.001;
            let lon = -118.3 + (i % 10) as f64 * 0.001;
            let heading = (i * 37 % 360) as f64;
            fovs.push((Fov::new(GeoPoint::new(lat, lon), heading, 60.0, 80.0), i));
        }
        fovs
    }

    #[test]
    fn directed_range_matches_linear_scan() {
        let fovs = make_fovs(150);
        let mut tree = OrientedRTree::new();
        for (f, id) in &fovs {
            tree.insert(*f, *id);
        }
        tree.check_invariants();
        let region = BBox::new(34.002, -118.297, 34.008, -118.291);
        let dirs = AngularRange::centered(0.0, 90.0);
        let mut got: Vec<usize> = tree
            .range_directed(&region, &dirs)
            .into_iter()
            .map(|(_, id)| *id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = fovs
            .iter()
            .filter(|(f, _)| {
                f.scene_location().intersects(&region) && f.direction_range().overlaps(&dirs)
            })
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn direction_filter_reduces_results() {
        let fovs = make_fovs(150);
        let mut tree = OrientedRTree::new();
        for (f, id) in &fovs {
            tree.insert(*f, *id);
        }
        let region = BBox::new(33.99, -118.31, 34.03, -118.27);
        let all = tree.range_directed(&region, &AngularRange::FULL).len();
        let north_only = tree
            .range_directed(&region, &AngularRange::centered(0.0, 30.0))
            .len();
        assert!(
            north_only < all,
            "direction constraint must prune ({north_only} vs {all})"
        );
        assert!(north_only > 0);
    }

    #[test]
    fn covering_point_is_exact() {
        let cam = GeoPoint::new(34.01, -118.29);
        let mut tree = OrientedRTree::new();
        tree.insert(Fov::new(cam, 0.0, 60.0, 100.0), "north");
        tree.insert(Fov::new(cam, 180.0, 60.0, 100.0), "south");
        let ahead = cam.destination(0.0, 50.0);
        let hits = tree.covering_point(&ahead, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].1, "north");
        // Direction-constrained: ask for south-facing cameras seeing the
        // north point — none.
        let south_dirs = AngularRange::centered(180.0, 40.0);
        assert!(tree.covering_point(&ahead, Some(&south_dirs)).is_empty());
    }

    #[test]
    fn empty_tree_queries() {
        let tree: OrientedRTree<u8> = OrientedRTree::new();
        assert!(tree
            .range_directed(&BBox::new(0.0, 0.0, 1.0, 1.0), &AngularRange::FULL)
            .is_empty());
        assert!(tree.is_empty());
    }

    #[test]
    fn grows_past_node_capacity() {
        let fovs = make_fovs(300);
        let mut tree = OrientedRTree::new();
        for (f, id) in &fovs {
            tree.insert(*f, *id);
        }
        assert_eq!(tree.len(), 300);
        tree.check_invariants();
        // Full-region, full-direction query returns everything.
        let region = BBox::new(33.9, -118.4, 34.1, -118.2);
        assert_eq!(tree.range_directed(&region, &AngularRange::FULL).len(), 300);
    }
}
