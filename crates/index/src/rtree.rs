//! An R*-style spatial tree over geographic bounding boxes.
//!
//! Supports rectangle insertion, range queries, point queries, and
//! best-first k-nearest-neighbour search. Splits use the R* axis/margin
//! heuristics (Beckmann et al.) without forced reinsertion, which keeps
//! the structure simple while preserving good query fan-out.

use tvdp_geo::{BBox, GeoPoint};

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { entries: Vec<(BBox, T)> },
    Internal { children: Vec<(BBox, Box<Node<T>>)> },
}

impl<T> Node<T> {
    fn mbr(&self) -> Option<BBox> {
        match self {
            Node::Leaf { entries } => {
                let mut it = entries.iter().map(|(b, _)| *b);
                let first = it.next()?;
                Some(it.fold(first, |acc, b| acc.union(&b)))
            }
            Node::Internal { children } => {
                let mut it = children.iter().map(|(b, _)| *b);
                let first = it.next()?;
                Some(it.fold(first, |acc, b| acc.union(&b)))
            }
        }
    }
}

/// A spatial index mapping bounding boxes to payloads.
///
/// ```
/// use tvdp_index::RTree;
/// use tvdp_geo::{BBox, GeoPoint};
///
/// let mut tree = RTree::new();
/// tree.insert_point(GeoPoint::new(34.05, -118.25), "city hall");
/// tree.insert_point(GeoPoint::new(34.02, -118.29), "campus");
/// let downtown = BBox::new(34.04, -118.26, 34.06, -118.24);
/// assert_eq!(tree.range(&downtown), vec![&"city hall"]);
/// let nearest = tree.knn(&GeoPoint::new(34.021, -118.288), 1);
/// assert_eq!(*nearest[0].1, "campus");
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    height: usize,
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
            height: 1,
        }
    }

    /// Bulk construction by repeated insertion (baseline; prefer
    /// [`RTree::bulk_load`] for large static sets).
    pub fn bulk(items: impl IntoIterator<Item = (BBox, T)>) -> Self {
        let mut t = Self::new();
        for (b, v) in items {
            t.insert(b, v);
        }
        t
    }

    /// Sort-Tile-Recursive (STR) bulk loading: packs entries into fully
    /// occupied leaves by sorting on latitude then tiling on longitude,
    /// then builds the upper levels the same way. Produces a tighter,
    /// shallower tree than repeated insertion and is much faster to
    /// construct.
    pub fn bulk_load(items: Vec<(BBox, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        // Pack the leaf level.
        let mut leaves: Vec<Node<T>> = str_tiles(items, |e| e.0)
            .into_iter()
            .map(|entries| Node::Leaf { entries })
            .collect();
        let mut height = 1;
        // Build upper levels until one root remains.
        while leaves.len() > 1 {
            let children: Vec<(BBox, Box<Node<T>>)> = leaves
                .into_iter()
                // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                .map(|n| (n.mbr().expect("packed node non-empty"), Box::new(n)))
                .collect();
            leaves = str_tiles(children, |c| c.0)
                .into_iter()
                .map(|children| Node::Internal { children })
                .collect();
            height += 1;
        }
        Self {
            // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
            root: leaves.pop().expect("one root remains"),
            len,
            height,
        }
    }

    /// Removes one entry matching `bbox` whose payload satisfies `pred`.
    /// Returns the removed payload, or `None` when nothing matched.
    /// Under-full nodes along the path are dissolved and their remaining
    /// entries re-inserted (the classic R-tree condense step).
    pub fn remove(&mut self, bbox: &BBox, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut orphans: Vec<(BBox, T)> = Vec::new();
        let removed = Self::remove_rec(&mut self.root, bbox, &mut pred, &mut orphans, true);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root with a single internal child.
            loop {
                let replace = match &mut self.root {
                    Node::Internal { children } if children.len() == 1 => {
                        // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                        Some(*children.pop().expect("one child").1)
                    }
                    _ => None,
                };
                match replace {
                    Some(child) => {
                        self.root = child;
                        self.height -= 1;
                    }
                    None => break,
                }
            }
            let reinserts = orphans.len();
            for (b, v) in orphans {
                self.insert(b, v);
            }
            // `insert` bumped len for each orphan, but they were already
            // counted before removal.
            self.len -= reinserts;
        }
        removed
    }

    fn remove_rec(
        node: &mut Node<T>,
        bbox: &BBox,
        pred: &mut impl FnMut(&T) -> bool,
        orphans: &mut Vec<(BBox, T)>,
        is_root: bool,
    ) -> Option<T> {
        match node {
            Node::Leaf { entries } => {
                let pos = entries.iter().position(|(b, v)| b == bbox && pred(v))?;
                Some(entries.remove(pos).1)
            }
            Node::Internal { children } => {
                for i in 0..children.len() {
                    if !children[i].0.intersects(bbox) {
                        continue;
                    }
                    if let Some(v) =
                        Self::remove_rec(&mut children[i].1, bbox, pred, orphans, false)
                    {
                        let child_len = match children[i].1.as_ref() {
                            Node::Leaf { entries } => entries.len(),
                            Node::Internal { children } => children.len(),
                        };
                        if child_len < MIN_ENTRIES && (!is_root || children.len() > 1) {
                            // Dissolve the under-full child; re-insert its
                            // entries from the top.
                            let (_, child) = children.remove(i);
                            collect_entries(*child, orphans);
                        } else if child_len > 0 {
                            // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                            children[i].0 = children[i].1.mbr().expect("non-empty child");
                        }
                        return Some(v);
                    }
                }
                None
            }
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (leaf level = 1); a balance diagnostic.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Inserts a rectangle with payload.
    pub fn insert(&mut self, bbox: BBox, value: T) {
        self.len += 1;
        if let Some((left, right)) = Self::insert_rec(&mut self.root, bbox, value) {
            // Root split: grow the tree by one level.
            let old = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    children: Vec::new(),
                },
            );
            drop(old);
            self.root = Node::Internal {
                children: vec![
                    // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                    (left.mbr().expect("split node non-empty"), Box::new(left)),
                    // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                    (right.mbr().expect("split node non-empty"), Box::new(right)),
                ],
            };
            self.height += 1;
        }
    }

    /// Inserts a point (degenerate rectangle).
    pub fn insert_point(&mut self, p: GeoPoint, value: T) {
        self.insert(BBox::from_point(p), value);
    }

    fn insert_rec(node: &mut Node<T>, bbox: BBox, value: T) -> Option<(Node<T>, Node<T>)> {
        match node {
            Node::Leaf { entries } => {
                entries.push((bbox, value));
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = split_entries(std::mem::take(entries));
                    return Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }));
                }
                None
            }
            Node::Internal { children } => {
                let idx = choose_subtree(children, &bbox);
                match Self::insert_rec(&mut children[idx].1, bbox, value) {
                    None => {
                        // Refresh the child's MBR after insertion.
                        // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                        children[idx].0 = children[idx].1.mbr().expect("child non-empty");
                    }
                    Some((left, right)) => {
                        // The old child was drained by the split; replace it.
                        // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                        children[idx] = (left.mbr().expect("split node non-empty"), Box::new(left));
                        children
                            // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                            .push((right.mbr().expect("split node non-empty"), Box::new(right)));
                        if children.len() > MAX_ENTRIES {
                            let (a, b) = split_entries(std::mem::take(children));
                            return Some((
                                Node::Internal { children: a },
                                Node::Internal { children: b },
                            ));
                        }
                    }
                }
                None
            }
        }
    }

    /// All payloads whose rectangle intersects `query`.
    pub fn range(&self, query: &BBox) -> Vec<&T> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, query, &mut out);
        out
    }

    fn range_rec<'a>(node: &'a Node<T>, query: &BBox, out: &mut Vec<&'a T>) {
        match node {
            Node::Leaf { entries } => {
                for (b, v) in entries {
                    if b.intersects(query) {
                        out.push(v);
                    }
                }
            }
            Node::Internal { children } => {
                for (b, child) in children {
                    if b.intersects(query) {
                        Self::range_rec(child, query, out);
                    }
                }
            }
        }
    }

    /// All payloads whose rectangle contains the point `p`.
    pub fn containing(&self, p: &GeoPoint) -> Vec<&T> {
        self.range(&BBox::from_point(*p))
    }

    /// The `k` entries nearest to `p` by box min-distance, closest first.
    /// Returns `(distance_m, payload)` pairs.
    pub fn knn(&self, p: &GeoPoint, k: usize) -> Vec<(f64, &T)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Orders heap items by distance (min-heap via Reverse).
        struct Item<'a, T> {
            dist: f64,
            kind: ItemKind<'a, T>,
        }
        enum ItemKind<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a T),
        }
        impl<T> PartialEq for Item<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl<T> Eq for Item<'_, T> {}
        impl<T> PartialOrd for Item<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Item<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist.total_cmp(&other.dist)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Item {
            dist: 0.0,
            kind: ItemKind::Node(&self.root),
        }));
        let mut out = Vec::with_capacity(k);
        while let Some(Reverse(item)) = heap.pop() {
            match item.kind {
                ItemKind::Entry(v) => {
                    out.push((item.dist, v));
                    if out.len() == k {
                        break;
                    }
                }
                ItemKind::Node(Node::Leaf { entries }) => {
                    for (b, v) in entries {
                        heap.push(Reverse(Item {
                            dist: b.min_distance_m(p),
                            kind: ItemKind::Entry(v),
                        }));
                    }
                }
                ItemKind::Node(Node::Internal { children }) => {
                    for (b, child) in children {
                        heap.push(Reverse(Item {
                            dist: b.min_distance_m(p),
                            kind: ItemKind::Node(child),
                        }));
                    }
                }
            }
        }
        out
    }

    /// Visits every entry (diagnostics / verification).
    pub fn for_each(&self, mut f: impl FnMut(&BBox, &T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&BBox, &T)) {
            match node {
                Node::Leaf { entries } => {
                    for (b, v) in entries {
                        f(b, v);
                    }
                }
                Node::Internal { children } => {
                    for (_, c) in children {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Verifies structural invariants (tests/debugging): MBRs cover their
    /// subtrees and node occupancy respects the branching bounds.
    pub fn check_invariants(&self) {
        fn walk<T>(node: &Node<T>, is_root: bool, depth: usize, leaf_depth: &mut Option<usize>) {
            match node {
                Node::Leaf { entries } => {
                    assert!(
                        is_root || entries.len() >= MIN_ENTRIES.min(1),
                        "underfull leaf"
                    );
                    assert!(entries.len() <= MAX_ENTRIES, "overfull leaf");
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                    }
                }
                Node::Internal { children } => {
                    assert!(!children.is_empty(), "empty internal node");
                    assert!(children.len() <= MAX_ENTRIES, "overfull internal node");
                    for (b, c) in children {
                        // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
                        let child_mbr = c.mbr().expect("child non-empty");
                        assert!(
                            b.contains_bbox(&child_mbr),
                            "stored MBR does not cover child"
                        );
                        walk(c, false, depth + 1, leaf_depth);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, true, 0, &mut leaf_depth);
    }
}

/// Picks the child whose MBR needs least area enlargement (ties: least
/// area) to absorb `bbox`.
pub(crate) fn choose_subtree<E: HasBBox>(children: &[E], bbox: &BBox) -> usize {
    let mut best = 0;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in children.iter().enumerate() {
        let b = e.bbox();
        let area = b.area_deg2();
        let enlarge = b.union(bbox).area_deg2() - area;
        if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
            best = i;
            best_enlarge = enlarge;
            best_area = area;
        }
    }
    best
}

/// R* split: choose the axis with minimum total margin over candidate
/// distributions, then the distribution with least MBR overlap (ties:
/// least total area).
pub(crate) fn split_entries<E: HasBBox>(mut entries: Vec<E>) -> (Vec<E>, Vec<E>) {
    let total = entries.len();
    debug_assert!(total > MAX_ENTRIES);

    let mbr_of = |slice: &[E]| -> BBox {
        let mut it = slice.iter().map(|e| e.bbox());
        // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
        let first = it.next().expect("non-empty slice");
        it.fold(first, |acc, b| acc.union(&b))
    };

    // Candidate split positions for a sorted entry list.
    let candidate_range = MIN_ENTRIES..=(total - MIN_ENTRIES);

    let mut best: Option<(usize, usize, f64, f64)> = None; // (axis, split_at, overlap, area)
    for axis in 0..2 {
        match axis {
            0 => entries.sort_by(|a, b| {
                a.bbox()
                    .min_lat
                    .total_cmp(&b.bbox().min_lat)
                    .then(a.bbox().max_lat.total_cmp(&b.bbox().max_lat))
            }),
            _ => entries.sort_by(|a, b| {
                a.bbox()
                    .min_lon
                    .total_cmp(&b.bbox().min_lon)
                    .then(a.bbox().max_lon.total_cmp(&b.bbox().max_lon))
            }),
        }
        for at in candidate_range.clone() {
            let left = mbr_of(&entries[..at]);
            let right = mbr_of(&entries[at..]);
            let overlap = left.intersection(&right).map_or(0.0, |i| i.area_deg2());
            let area = left.area_deg2() + right.area_deg2();
            if best.is_none_or(|(_, _, o, a)| overlap < o || (overlap == o && area < a)) {
                best = Some((axis, at, overlap, area));
            }
        }
    }
    // tvdp-lint: allow(no_panic, reason = "R-tree structural invariant: the node touched here is non-empty by construction")
    let (axis, at, _, _) = best.expect("at least one candidate split");
    // Re-sort on the winning axis (entries may be sorted on the other).
    match axis {
        0 => entries.sort_by(|a, b| {
            a.bbox()
                .min_lat
                .total_cmp(&b.bbox().min_lat)
                .then(a.bbox().max_lat.total_cmp(&b.bbox().max_lat))
        }),
        _ => entries.sort_by(|a, b| {
            a.bbox()
                .min_lon
                .total_cmp(&b.bbox().min_lon)
                .then(a.bbox().max_lon.total_cmp(&b.bbox().max_lon))
        }),
    }
    let right = entries.split_off(at);
    (entries, right)
}

/// Flattens a subtree back into raw leaf entries (condense step).
fn collect_entries<T>(node: Node<T>, out: &mut Vec<(BBox, T)>) {
    match node {
        Node::Leaf { entries } => out.extend(entries),
        Node::Internal { children } => {
            for (_, child) in children {
                collect_entries(*child, out);
            }
        }
    }
}

/// Partitions `items` into STR tiles of at most `MAX_ENTRIES` each:
/// sort by latitude, cut into vertical slabs of `slab = ceil(sqrt(P))`
/// tiles, sort each slab by longitude, and chunk.
fn str_tiles<E>(mut items: Vec<E>, key: impl Fn(&E) -> BBox) -> Vec<Vec<E>> {
    let per_node = MAX_ENTRIES;
    let n_tiles = items.len().div_ceil(per_node);
    let slabs = (n_tiles as f64).sqrt().ceil() as usize;
    let per_slab = items.len().div_ceil(slabs.max(1));
    items.sort_by(|a, b| {
        let (ka, kb) = (key(a), key(b));
        (ka.min_lat + ka.max_lat).total_cmp(&(kb.min_lat + kb.max_lat))
    });
    let mut tiles = Vec::with_capacity(n_tiles);
    let mut items = items.into_iter().peekable();
    while items.peek().is_some() {
        let mut slab: Vec<E> = items.by_ref().take(per_slab).collect();
        slab.sort_by(|a, b| {
            let (ka, kb) = (key(a), key(b));
            (ka.min_lon + ka.max_lon).total_cmp(&(kb.min_lon + kb.max_lon))
        });
        let mut slab = slab.into_iter().peekable();
        while slab.peek().is_some() {
            tiles.push(slab.by_ref().take(per_node).collect());
        }
    }
    tiles
}

/// Anything carrying a bounding box (leaf entries and internal children);
/// shared with the oriented and hybrid trees so they reuse the same split
/// machinery. The split constants are re-exported for them as well.
pub(crate) trait HasBBox {
    fn bbox(&self) -> BBox;
}

impl<T> HasBBox for (BBox, T) {
    fn bbox(&self) -> BBox {
        self.0
    }
}

pub(crate) const NODE_MAX: usize = MAX_ENTRIES;

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(GeoPoint, usize)> {
        // n x n grid of points near downtown LA.
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let lat = 34.0 + i as f64 * 0.001;
                let lon = -118.3 + j as f64 * 0.001;
                pts.push((GeoPoint::new(lat, lon), i * n + j));
            }
        }
        pts
    }

    #[test]
    fn insert_and_range_match_linear_scan() {
        let pts = grid_points(12); // 144 points forces multiple splits
        let mut tree = RTree::new();
        for (p, id) in &pts {
            tree.insert_point(*p, *id);
        }
        assert_eq!(tree.len(), 144);
        tree.check_invariants();
        let query = BBox::new(34.002, -118.297, 34.006, -118.293);
        let mut got: Vec<usize> = tree.range(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn range_on_empty_tree() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.range(&BBox::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(tree.is_empty());
    }

    #[test]
    fn knn_returns_sorted_nearest() {
        let pts = grid_points(10);
        let tree = RTree::bulk(pts.iter().map(|(p, id)| (BBox::from_point(*p), *id)));
        let q = GeoPoint::new(34.0045, -118.2955);
        let knn = tree.knn(&q, 5);
        assert_eq!(knn.len(), 5);
        for w in knn.windows(2) {
            assert!(w[0].0 <= w[1].0, "knn not sorted");
        }
        // Verify against linear scan.
        let mut lin: Vec<(f64, usize)> = pts
            .iter()
            .map(|(p, id)| (q.fast_distance_m(p), *id))
            .collect();
        lin.sort_by(|a, b| a.0.total_cmp(&b.0));
        let got: Vec<usize> = knn.iter().map(|(_, id)| **id).collect();
        let expect: Vec<usize> = lin[..5].iter().map(|(_, id)| *id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn knn_k_exceeds_len() {
        let mut tree = RTree::new();
        tree.insert_point(GeoPoint::new(34.0, -118.0), 1u32);
        tree.insert_point(GeoPoint::new(34.1, -118.1), 2u32);
        let knn = tree.knn(&GeoPoint::new(34.0, -118.0), 10);
        assert_eq!(knn.len(), 2);
    }

    #[test]
    fn rectangles_supported() {
        let mut tree = RTree::new();
        tree.insert(BBox::new(34.0, -118.3, 34.1, -118.2), "a");
        tree.insert(BBox::new(34.05, -118.25, 34.15, -118.15), "b");
        tree.insert(BBox::new(35.0, -117.0, 35.1, -116.9), "c");
        let q = BBox::new(34.06, -118.24, 34.07, -118.23);
        let mut hits: Vec<&str> = tree.range(&q).into_iter().copied().collect();
        hits.sort_unstable();
        assert_eq!(hits, vec!["a", "b"]);
        let contains = tree.containing(&GeoPoint::new(35.05, -116.95));
        assert_eq!(contains, vec![&"c"]);
    }

    #[test]
    fn tree_grows_in_height_and_stays_balanced() {
        let mut tree = RTree::new();
        for (p, id) in grid_points(20) {
            tree.insert_point(p, id);
        }
        assert!(tree.height() >= 2, "400 entries must split the root");
        tree.check_invariants();
        let mut count = 0;
        tree.for_each(|_, _| count += 1);
        assert_eq!(count, 400);
    }

    #[test]
    fn bulk_load_equals_incremental_queries() {
        let pts = grid_points(18); // 324 entries, multiple levels
        let incremental = RTree::bulk(pts.iter().map(|(p, id)| (BBox::from_point(*p), *id)));
        let packed = RTree::bulk_load(
            pts.iter()
                .map(|(p, id)| (BBox::from_point(*p), *id))
                .collect(),
        );
        packed.check_invariants();
        assert_eq!(packed.len(), 324);
        assert!(packed.height() <= incremental.height());
        for query in [
            BBox::new(34.0, -118.3, 34.004, -118.296),
            BBox::new(34.008, -118.29, 34.016, -118.284),
            BBox::new(33.0, -119.0, 35.0, -117.0),
        ] {
            let mut a: Vec<usize> = packed.range(&query).into_iter().copied().collect();
            let mut b: Vec<usize> = incremental.range(&query).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_handles_empty_and_tiny() {
        let empty: RTree<u8> = RTree::bulk_load(vec![]);
        assert!(empty.is_empty());
        let one = RTree::bulk_load(vec![(BBox::new(0.0, 0.0, 1.0, 1.0), 7u8)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.range(&BBox::new(0.5, 0.5, 0.6, 0.6)), vec![&7]);
    }

    #[test]
    fn remove_deletes_exactly_one_match() {
        let pts = grid_points(10);
        let mut tree = RTree::new();
        for (p, id) in &pts {
            tree.insert_point(*p, *id);
        }
        let (target_p, target_id) = pts[37];
        let removed = tree.remove(&BBox::from_point(target_p), |&id| id == target_id);
        assert_eq!(removed, Some(target_id));
        assert_eq!(tree.len(), 99);
        tree.check_invariants();
        assert!(tree.containing(&target_p).is_empty());
        // Removing again finds nothing.
        assert_eq!(
            tree.remove(&BBox::from_point(target_p), |&id| id == target_id),
            None
        );
        // Everything else is still there.
        let world = BBox::new(33.0, -119.0, 35.0, -117.0);
        assert_eq!(tree.range(&world).len(), 99);
    }

    #[test]
    fn remove_many_then_queries_stay_correct() {
        let pts = grid_points(12);
        let mut tree = RTree::new();
        for (p, id) in &pts {
            tree.insert_point(*p, *id);
        }
        // Delete every third entry.
        for (p, id) in pts.iter().filter(|(_, id)| id % 3 == 0) {
            assert!(tree.remove(&BBox::from_point(*p), |&v| v == *id).is_some());
        }
        tree.check_invariants();
        let world = BBox::new(33.0, -119.0, 35.0, -117.0);
        let mut left: Vec<usize> = tree.range(&world).into_iter().copied().collect();
        left.sort_unstable();
        let expected: Vec<usize> = pts
            .iter()
            .map(|(_, id)| *id)
            .filter(|id| id % 3 != 0)
            .collect();
        assert_eq!(left, expected);
        assert_eq!(tree.len(), expected.len());
    }

    #[test]
    fn remove_predicate_disambiguates_duplicates() {
        let mut tree = RTree::new();
        let p = GeoPoint::new(34.0, -118.0);
        for i in 0..5u32 {
            tree.insert_point(p, i);
        }
        let removed = tree.remove(&BBox::from_point(p), |&v| v == 3);
        assert_eq!(removed, Some(3));
        let mut rest: Vec<u32> = tree.containing(&p).into_iter().copied().collect();
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 1, 2, 4]);
    }

    #[test]
    fn duplicate_points_all_retrievable() {
        let mut tree = RTree::new();
        let p = GeoPoint::new(34.0, -118.0);
        for i in 0..30u32 {
            tree.insert_point(p, i);
        }
        let hits = tree.containing(&p);
        assert_eq!(hits.len(), 30);
    }
}
